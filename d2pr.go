// Package d2pr is the public façade of the degree de-coupled PageRank
// library — a complete Go reproduction of "PageRank Revisited: On the
// Relationship between Node Degrees and Node Significances in Different
// Applications" (Kim, Candan, Sapino; EDBT/ICDT 2016 Workshops).
//
// # The idea
//
// Conventional PageRank scores are tightly coupled to node degrees: on
// typical data graphs the Spearman correlation between PageRank ranks and
// degree ranks exceeds 0.85. In many applications that coupling is wrong —
// an actor with many movies may be a non-discriminating "B-movie" actor, a
// product with many comments is often a bad product. Degree de-coupled
// PageRank (D2PR) re-weights the random-walk transition by a per-destination
// factor deg(v)^-p:
//
//	p > 0  penalizes high-degree destinations,
//	p = 0  recovers conventional PageRank,
//	p < 0  boosts high-degree destinations.
//
// For weighted graphs, a second parameter β blends conventional
// connection-strength transitions with the degree-de-coupled ones.
//
// # Quick start
//
//	g, err := d2pr.NewBuilder(d2pr.Undirected).
//		AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 2).AddEdge(2, 3).
//		Build()
//	...
//	res, err := d2pr.Rank(g, d2pr.Params{P: 0.5})       // D2PR with p = 0.5
//	conv, err := d2pr.Rank(g, d2pr.Params{})            // conventional PageRank
//	rho := d2pr.Spearman(res.Scores, conv.Scores)
//
// Everything deeper — transitions, baselines, synthetic datasets, the
// experiment harness — is exported through the subpackage-aliased types
// below; see README.md for the architecture map.
package d2pr

import (
	"math"

	"d2pr/internal/core"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// Graph kinds, re-exported from the graph substrate.
const (
	Undirected = graph.Undirected
	Directed   = graph.Directed
)

// Core graph types.
type (
	// Graph is an immutable CSR graph. Build one with NewBuilder.
	Graph = graph.Graph
	// Kind distinguishes directed from undirected graphs.
	Kind = graph.Kind
	// Builder accumulates edges and freezes them into a Graph.
	Builder = graph.Builder
	// WeightedEdge is a (u, v, w) triple for bulk construction.
	WeightedEdge = graph.WeightedEdge
	// Stats bundles the structural statistics of a graph (Table 3 of the
	// paper).
	Stats = graph.Stats
)

// Ranking types.
type (
	// Options configures the power-iteration solver (α, tolerance,
	// iteration cap, teleport vector, parallelism).
	Options = core.Options
	// Result carries scores plus convergence diagnostics.
	Result = core.Result
	// Transition is a column-stochastic per-arc transition table.
	Transition = core.Transition
	// HITSResult carries hub and authority vectors.
	HITSResult = core.HITSResult
)

// NewBuilder returns a builder for a graph of the given kind.
func NewBuilder(kind Kind) *Builder { return graph.NewBuilder(kind) }

// FromEdges builds an unweighted graph from an edge list.
func FromEdges(kind Kind, edges [][2]int32) (*Graph, error) { return graph.FromEdges(kind, edges) }

// FromWeighted builds a weighted graph from a weighted edge list.
func FromWeighted(kind Kind, edges []WeightedEdge) (*Graph, error) {
	return graph.FromWeighted(kind, edges)
}

// ComputeStats returns the structural statistics of g, including the median
// standard deviation of neighbors' degrees from the paper's Table 3.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// Params selects a member of the D2PR family for Rank.
type Params struct {
	// P is the degree de-coupling weight. 0 (with Beta 0) is conventional
	// PageRank on unweighted graphs.
	P float64
	// Beta blends connection strength (β) with degree de-coupling (1-β) on
	// weighted graphs; it must lie in [0, 1]. On unweighted graphs β only
	// interpolates between two identical transitions when P = 0.
	Beta float64
	// Seeds, when non-empty, personalizes the teleport vector uniformly
	// over the given nodes (PPR-style contextualization).
	Seeds []int32
	// Options tunes the solver (α, tolerance, workers, ...). Zero values
	// mean the documented defaults (α = 0.85, tol = 1e-10, 500 iterations).
	Options Options
}

// Rank computes a D2PR-family ranking of g.
//
//   - Params{} is conventional PageRank (connection-strength transitions on
//     weighted graphs).
//   - Params{P: p} is the paper's D2PR with full de-coupling.
//   - Params{P: p, Beta: b} is the weighted blend of §3.2.3.
//   - Params{Seeds: ...} personalizes any of the above.
func Rank(g *Graph, params Params) (*Result, error) {
	opts := params.Options
	if len(params.Seeds) > 0 {
		tele := make([]float64, g.NumNodes())
		for _, s := range params.Seeds {
			if s < 0 || int(s) >= g.NumNodes() {
				return nil, errSeedRange(s, g.NumNodes())
			}
			tele[s] = 1
		}
		opts.Teleport = tele
	}
	if params.Beta != 0 {
		t, err := core.Blended(g, params.P, params.Beta)
		if err != nil {
			return nil, err
		}
		return core.Solve(t, opts)
	}
	if params.P == 0 && len(params.Seeds) == 0 && !g.Weighted() {
		return core.PageRank(g, opts)
	}
	return core.Solve(core.DegreeDecoupled(g, params.P), opts)
}

// PageRank computes conventional PageRank (weighted graphs use connection
// strength).
func PageRank(g *Graph, opts Options) (*Result, error) { return core.PageRank(g, opts) }

// D2PR computes degree de-coupled PageRank with weight p (full de-coupling).
func D2PR(g *Graph, p float64, opts Options) (*Result, error) { return core.D2PR(g, p, opts) }

// D2PRBlended computes the weighted β-blend of §3.2.3.
func D2PRBlended(g *Graph, p, beta float64, opts Options) (*Result, error) {
	return core.D2PRBlended(g, p, beta, opts)
}

// PersonalizedPageRank computes seed-teleport PPR.
func PersonalizedPageRank(g *Graph, seeds []int32, opts Options) (*Result, error) {
	return core.PersonalizedPageRank(g, seeds, opts)
}

// HITS runs Kleinberg's hubs-and-authorities fixpoint.
func HITS(g *Graph, opts Options) (*HITSResult, error) { return core.HITS(g, opts) }

// DegreeCentrality returns degree/(n-1) for every node.
func DegreeCentrality(g *Graph) []float64 { return core.DegreeCentrality(g) }

// Spearman returns Spearman's rank correlation of the paired samples with
// average-rank tie handling — the agreement measure used throughout the
// paper's evaluation.
func Spearman(xs, ys []float64) float64 { return stats.Spearman(xs, ys) }

// Pearson returns the Pearson correlation of the paired samples.
func Pearson(xs, ys []float64) float64 { return stats.Pearson(xs, ys) }

// TopK returns the indices of the k largest scores in decreasing order.
func TopK(scores []float64, k int) []int { return stats.TopK(scores, k) }

// CompetitionRanks returns 1-based competition ranks (1 = best) for scores.
func CompetitionRanks(scores []float64) []int { return stats.CompetitionRanks(scores) }

type seedRangeError struct {
	seed int32
	n    int
}

func (e seedRangeError) Error() string {
	return "d2pr: seed " + itoa(int(e.seed)) + " out of range [0, " + itoa(e.n) + ")"
}

func errSeedRange(seed int32, n int) error { return seedRangeError{seed, n} }

// itoa is a minimal integer formatter to keep the façade free of fmt.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// degreeVector returns float64 degrees, a convenience for correlation against
// rankings.
func degreeVector(g *Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = float64(g.Degree(int32(i)))
	}
	return out
}

// DegreeCorrelation returns Spearman's ρ between the given scores and node
// degrees — the paper's Table-1 diagnostic for degree coupling.
func DegreeCorrelation(g *Graph, scores []float64) float64 {
	return stats.Spearman(scores, degreeVector(g))
}

// OptimalP sweeps p over [lo, hi] with the given step and returns the p
// whose D2PR ranking maximizes Spearman correlation with the significance
// vector, together with that correlation. It is the model-selection helper a
// recommender would run on held-out significance data (the paper's Figures
// 2–4 as an API call).
func OptimalP(g *Graph, significance []float64, lo, hi, step float64, opts Options) (bestP, bestRho float64, err error) {
	if step <= 0 || hi < lo {
		return 0, 0, errBadSweep{}
	}
	bestRho = math.Inf(-1)
	for p := lo; p <= hi+1e-12; p += step {
		res, err := core.D2PR(g, p, opts)
		if err != nil {
			return 0, 0, err
		}
		rho := stats.Spearman(res.Scores, significance)
		if rho > bestRho {
			bestRho, bestP = rho, p
		}
	}
	return bestP, bestRho, nil
}

type errBadSweep struct{}

func (errBadSweep) Error() string { return "d2pr: OptimalP needs step > 0 and hi ≥ lo" }
