module d2pr

go 1.24
