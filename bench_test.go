// Benchmarks that regenerate every table and figure of the paper (one
// Benchmark per artifact), plus the ablation benches from DESIGN.md §4.
//
// Run everything:  go test -bench=. -benchmem
// One artifact:    go test -bench=BenchmarkFigure2 -benchmem
//
// The benches run against scale-0.25 data graphs at tolerance 1e-8 so a full
// pass stays in CPU-minutes; `cmd/d2pr-experiments -scale 1` reproduces the
// full-size numbers recorded in EXPERIMENTS.md.
package d2pr_test

import (
	"io"
	"sync"
	"testing"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/experiments"
	"d2pr/internal/stats"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner returns a shared Runner with all eight graphs pre-generated,
// so individual benches time the experiment, not the data generation.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(dataset.Config{Scale: 0.25, Seed: 42})
		runner.Tol = 1e-8
		if _, err := runner.AllGraphs(); err != nil {
			panic(err)
		}
	})
	return runner
}

func benchExperiment(b *testing.B, id string) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAndRender(r, id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One bench per paper artifact.

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "fig11") }

// Ablation: transition-matrix de-coupling (the paper's D2PR) versus the
// degree-biased-teleportation alternative of reference [2]. The reported
// "rho" metric is each method's best achievable significance correlation on
// the Group-A actor graph — the quantity the design chooses D2PR to win.
func BenchmarkAblationTeleport(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.IMDBActorActor)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	opts := core.Options{Tol: 1e-8}
	b.Run("d2pr-transition", func(b *testing.B) {
		var best float64 = -1
		for i := 0; i < b.N; i++ {
			best = -1
			for _, p := range []float64{0.5, 1, 1.5, 2} {
				res, err := core.D2PR(g, p, opts)
				if err != nil {
					b.Fatal(err)
				}
				if rho := stats.Spearman(res.Scores, d.Significance); rho > best {
					best = rho
				}
			}
		}
		b.ReportMetric(best, "rho")
	})
	b.Run("biased-teleport", func(b *testing.B) {
		var best float64 = -1
		for i := 0; i < b.N; i++ {
			best = -1
			for _, q := range []float64{0.5, 1, 1.5, 2} {
				res, err := core.DegreeBiasedTeleport(g, q, opts)
				if err != nil {
					b.Fatal(err)
				}
				if rho := stats.Spearman(res.Scores, d.Significance); rho > best {
					best = rho
				}
			}
		}
		b.ReportMetric(best, "rho")
	})
}

// Ablation: log-space transition normalization versus naive math.Pow.
// Correctness at extreme p is covered by tests; this reports the
// construction-cost difference.
func BenchmarkAblationLogspace(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.LastfmArtistArtist)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	b.Run("logspace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DegreeDecoupled(g, 4)
		}
	})
	b.Run("naive-pow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.NaivePow(g, 4)
		}
	})
}

// Ablation: sequential versus parallel edge sweep in the solver.
func BenchmarkAblationParallel(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.LastfmArtistArtist)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.D2PR(g, 1, core.Options{Tol: 1e-8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.D2PR(g, 1, core.Options{Tol: 1e-8, Workers: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: exact power iteration versus forward-push for a personalized
// query at matched practical accuracy.
func BenchmarkAblationPush(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.DBLPAuthorAuthor)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	tr := core.DegreeDecoupled(g, 0.5)
	tele := make([]float64, g.NumNodes())
	tele[0] = 1
	b.Run("power-iteration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(tr, core.Options{Tol: 1e-8, Teleport: tele}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forward-push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ForwardPush(tr, 0, core.ForwardPushOptions{Epsilon: 1e-8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: D2PR at the group-optimal p against the classic significance
// baselines, reported as "rho" on the Group-A actor graph.
func BenchmarkAblationBaselines(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.IMDBActorActor)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	run := func(name string, score func() ([]float64, error)) {
		b.Run(name, func(b *testing.B) {
			var rho float64
			for i := 0; i < b.N; i++ {
				s, err := score()
				if err != nil {
					b.Fatal(err)
				}
				rho = stats.Spearman(s, d.Significance)
			}
			b.ReportMetric(rho, "rho")
		})
	}
	run("d2pr-p1", func() ([]float64, error) {
		res, err := core.D2PR(g, 1, core.Options{Tol: 1e-8})
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	})
	run("pagerank", func() ([]float64, error) {
		res, err := core.PageRank(g, core.Options{Tol: 1e-8})
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	})
	run("degree", func() ([]float64, error) { return core.DegreeCentrality(g), nil })
	run("hits-auth", func() ([]float64, error) {
		res, err := core.HITS(g, core.Options{Tol: 1e-8})
		if err != nil {
			return nil, err
		}
		return res.Authorities, nil
	})
	run("betweenness-sampled", func() ([]float64, error) {
		return core.BetweennessSampled(g, 64, 9), nil
	})
	run("closeness-sampled", func() ([]float64, error) {
		return core.ClosenessCentrality(g, 64, 9), nil
	})
}

// Ablation: Jacobi power iteration versus alternating-sweep Gauss–Seidel.
// The "iters" metric shows the sweep-count difference; wall time follows it.
func BenchmarkAblationGaussSeidel(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.DBLPAuthorAuthor)
	if err != nil {
		b.Fatal(err)
	}
	tr := core.DegreeDecoupled(d.Unweighted(), 0.5)
	b.Run("power-iteration", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			res, err := core.Solve(tr, core.Options{Tol: 1e-10})
			if err != nil {
				b.Fatal(err)
			}
			iters = res.Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	})
	b.Run("gauss-seidel", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			res, err := core.SolveGaussSeidel(tr, core.Options{Tol: 1e-10})
			if err != nil {
				b.Fatal(err)
			}
			iters = res.Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	})
}

// Micro-benchmarks of the substrate hot paths.

func BenchmarkSolvePageRank(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.EpinionsCommenter)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	b.ReportMetric(float64(g.NumArcs()), "arcs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PageRank(g, core.Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBuild measures the one-time pull-topology build (transpose
// + arc permutation + 1/outdeg table) that core.EngineFor caches per graph —
// the work every Solve used to repeat and the serving path now pays once.
func BenchmarkEngineBuild(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.EpinionsCommenter)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NewEngine(g)
	}
}

// BenchmarkSolveWarmEngine is the serving steady state: repeated solves on
// one graph through the cached engine (PageRank on an unweighted graph runs
// the implicit uniform transition — no per-arc array anywhere).
func BenchmarkSolveWarmEngine(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.EpinionsCommenter)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	if _, err := core.PageRank(g, core.Options{Tol: 1e-8}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PageRank(g, core.Options{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitionBuild(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.EpinionsCommenter)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DegreeDecoupled(g, 1.5)
	}
}

func BenchmarkSpearman(b *testing.B) {
	r := benchRunner(b)
	d, err := r.Graph(dataset.EpinionsCommenter)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Unweighted()
	res, err := core.PageRank(g, core.Options{Tol: 1e-8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Spearman(res.Scores, d.Significance)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dataset.AllGraphs(dataset.Config{Scale: 0.25, Seed: uint64(i + 1)})
	}
}
