// Directed-graph D2PR (§3.2.2 of the paper): on a citation network, the
// degree that gets de-coupled is the OUT-degree — the reference list a paper
// chose to write, which costs effort — while in-links (citations received)
// remain the authority signal.
//
// The generator plants the paper's directed semantics: long reference lists
// signal low per-reference effort (OutDegreeCost), and good papers attract
// citations. A paper that cites everything should not gain rank for being
// cited by such a non-discerning paper's peers; penalizing high out-degree
// destinations during the walk (p > 0) sharpens the authority signal.
//
// Run with: go run ./examples/citations
package main

import (
	"fmt"
	"log"

	"d2pr"
	"d2pr/internal/dataset"
)

func main() {
	net := dataset.GenerateCitations(dataset.CitationConfig{
		Papers:        3000,
		MeanRefs:      8,
		OutDegreeCost: 2, // long reference lists ⇒ low per-reference effort
		Attachment:    0.4,
		Seed:          17,
	})
	// Rank on the REVERSED graph: authority flows along citations, from the
	// citing paper to the cited one — the standard PageRank-on-citations
	// setup. D2PR then de-couples using the out-degrees of the reversed
	// graph, i.e. how indiscriminately a paper's citers cite.
	g := net.Graph
	fmt.Printf("citation network: %v (arc u→v: u cites v)\n\n", g)

	fmt.Printf("%-6s %-22s %-22s\n", "p", "corr(D2PR, citations)", "corr(D2PR, quality)")
	for _, p := range []float64{-2, -1, 0, 0.5, 1, 2} {
		res, err := d2pr.D2PR(g, p, d2pr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.1f %-22.4f %-22.4f\n", p,
			d2pr.Spearman(res.Scores, net.Significance),
			d2pr.Spearman(res.Scores, net.Quality))
	}

	// The walk above runs along reference lists (u→v follows a citation),
	// so PageRank mass accumulates on heavily-cited papers. Compare the
	// top-5 under conventional PageRank and under out-degree penalization.
	conv, err := d2pr.Rank(g, d2pr.Params{})
	if err != nil {
		log.Fatal(err)
	}
	pen, err := d2pr.Rank(g, d2pr.Params{P: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 papers (node: citations, quality):")
	fmt.Println("conventional PageRank      | out-degree-penalized D2PR (p=1)")
	convTop := d2pr.TopK(conv.Scores, 5)
	penTop := d2pr.TopK(pen.Scores, 5)
	for i := 0; i < 5; i++ {
		a, b := convTop[i], penTop[i]
		fmt.Printf("#%d: %4d (%3.0f, %.2f)       | #%d: %4d (%3.0f, %.2f)\n",
			i+1, a, net.Significance[a], net.Quality[a],
			i+1, b, net.Significance[b], net.Quality[b])
	}
	fmt.Println("\nOut-edges cost effort; in-edges confer authority — the paper's §3.2.2.")
}
