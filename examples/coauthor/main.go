// Bibliographic analysis: two graphs from one DBLP-style dataset need
// opposite treatment. The author-author co-authorship graph is Group B
// (conventional PageRank already matches average-citation significance),
// while the article-article shared-author graph is Group C (citation counts
// are popularity-driven, so degree boosting is safe and penalization is
// catastrophic). The example also shows the α × p interplay of the paper's
// Figures 6–8.
//
// Run with: go run ./examples/coauthor
package main

import (
	"fmt"
	"log"

	"d2pr"
	"d2pr/internal/dataset"
)

func main() {
	cfg := dataset.Config{Scale: 0.5, Seed: 11}
	for _, name := range []string{dataset.DBLPAuthorAuthor, dataset.DBLPArticleArticle} {
		data, err := dataset.GraphByName(cfg, name)
		if err != nil {
			log.Fatal(err)
		}
		g := data.Unweighted()
		st := d2pr.ComputeStats(g)
		fmt.Printf("=== %s (group %s) ===\n", data.Name, data.Group)
		fmt.Printf("%d nodes, %d edges, avg degree %.1f, median neighbor-degree stddev %.1f\n",
			st.Nodes, st.Edges, st.AvgDegree, st.MedianNeighborDegStdDev)
		fmt.Printf("significance: %s\n", data.SignificanceMeaning)

		// Sweep p at the default α.
		fmt.Printf("%-6s %s\n", "p", "corr(D2PR, significance)")
		for _, p := range []float64{-2, -1, 0, 1, 2} {
			res, err := d2pr.D2PR(g, p, d2pr.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6.1f %+.4f\n", p, d2pr.Spearman(res.Scores, data.Significance))
		}

		// The α × p interplay (paper Figures 7 and 8): for Group B and C
		// graphs, larger α (longer walks) helps near the optimal p but stops
		// helping when p is pushed to the wrong side.
		fmt.Printf("\n%-8s", "alpha")
		ps := []float64{-1, 0, 1}
		for _, p := range ps {
			fmt.Printf("p=%-8.0f", p)
		}
		fmt.Println()
		for _, alpha := range []float64{0.5, 0.7, 0.85, 0.9} {
			fmt.Printf("%-8.2f", alpha)
			for _, p := range ps {
				res, err := d2pr.D2PR(g, p, d2pr.Options{Alpha: alpha})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-10.4f", d2pr.Spearman(res.Scores, data.Significance))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Same dataset, opposite de-coupling needs — why p must be application-tuned.")
}
