// Movie recommendation (the paper's Example 1): on an actor-actor graph
// built from shared movies, conventional PageRank surfaces prolific
// ("B-movie") actors because its scores track degree; degree de-coupled
// PageRank with p > 0 surfaces the discriminating, highly-rated actors.
//
// The data is the synthetic IMDB dataset of this reproduction: actors carry
// a latent quality, roles cost effort proportional to movie quality, and the
// observable significance is the average user rating of the movies an actor
// played in (merged MovieLens-style ratings in the paper).
//
// Run with: go run ./examples/movierec
package main

import (
	"fmt"
	"log"

	"d2pr"
	"d2pr/internal/dataset"
	"d2pr/internal/stats"
)

func main() {
	data, err := dataset.GraphByName(dataset.Config{Scale: 0.5, Seed: 7}, dataset.IMDBActorActor)
	if err != nil {
		log.Fatal(err)
	}
	g := data.Unweighted()
	fmt.Printf("actor-actor graph: %v (edge = shared movie)\n", g)
	fmt.Printf("significance: %s\n\n", data.SignificanceMeaning)

	// 1. Conventional PageRank is degree-coupled.
	pr, err := d2pr.PageRank(g, d2pr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional PageRank:  corr(rank, degree)       = %+.3f\n",
		d2pr.DegreeCorrelation(g, pr.Scores))
	fmt.Printf("                        corr(rank, avg rating)   = %+.3f\n\n",
		d2pr.Spearman(pr.Scores, data.Significance))

	// 2. Model selection: find the de-coupling weight that best matches the
	// rating-based significance (the paper's Figure 2(a) sweep as one call).
	bestP, bestRho, err := d2pr.OptimalP(g, data.Significance, -2, 3, 0.5, d2pr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal de-coupling weight: p = %.1f (corr = %+.3f)\n\n", bestP, bestRho)

	// 3. Compare the top-10 recommendations.
	dec, err := d2pr.D2PR(g, bestP, d2pr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-10 actors by conventional PageRank vs D2PR:")
	fmt.Printf("%-4s | %-8s %-7s %-7s | %-8s %-7s %-7s\n",
		"rank", "PR actor", "deg", "rating", "D2 actor", "deg", "rating")
	prTop := stats.TopK(pr.Scores, 10)
	d2Top := stats.TopK(dec.Scores, 10)
	rating := dataset.RatingScale(data.Significance, 1, 5)
	for i := 0; i < 10; i++ {
		a, b := prTop[i], d2Top[i]
		fmt.Printf("%-4d | %-8d %-7d %-7.2f | %-8d %-7d %-7.2f\n",
			i+1, a, g.Degree(int32(a)), rating[a], b, g.Degree(int32(b)), rating[b])
	}

	avg := func(idx []int) (deg, rate float64) {
		for _, u := range idx {
			deg += float64(g.Degree(int32(u)))
			rate += rating[u]
		}
		return deg / float64(len(idx)), rate / float64(len(idx))
	}
	prDeg, prRate := avg(prTop)
	d2Deg, d2Rate := avg(d2Top)
	fmt.Printf("\nPageRank top-10: mean degree %.0f, mean rating %.2f\n", prDeg, prRate)
	fmt.Printf("D2PR     top-10: mean degree %.0f, mean rating %.2f\n", d2Deg, d2Rate)
	fmt.Println("\nD2PR trades raw connectivity for per-movie quality — the paper's point.")
}
