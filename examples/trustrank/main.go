// Trust-aware ranking on weighted graphs: the Epinions-style
// commenter-commenter graph, where edge weights count shared products and
// significance is the number of trust votes a commenter received. The
// example sweeps the β parameter of weighted D2PR (§3.2.3) — β = 1 is
// conventional connection-strength PageRank, β = 0 is full degree
// de-coupling — and then personalizes the ranking for one commenter.
//
// Run with: go run ./examples/trustrank
package main

import (
	"fmt"
	"log"

	"d2pr"
	"d2pr/internal/dataset"
	"d2pr/internal/stats"
)

func main() {
	data, err := dataset.GraphByName(dataset.Config{Scale: 0.5, Seed: 23}, dataset.EpinionsCommenter)
	if err != nil {
		log.Fatal(err)
	}
	g := data.Weighted
	fmt.Printf("%v (edge weight: %s)\n", g, data.EdgeMeaning)
	fmt.Printf("significance: %s\n\n", data.SignificanceMeaning)

	// β × p grid on the weighted graph (paper Figure 9(b)).
	ps := []float64{0, 0.5, 1, 2}
	fmt.Printf("%-8s", "beta")
	for _, p := range ps {
		fmt.Printf("p=%-8.1f", p)
	}
	fmt.Println()
	type best struct{ beta, p, rho float64 }
	bst := best{rho: -2}
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		fmt.Printf("%-8.2f", beta)
		for _, p := range ps {
			res, err := d2pr.D2PRBlended(g, p, beta, d2pr.Options{})
			if err != nil {
				log.Fatal(err)
			}
			rho := d2pr.Spearman(res.Scores, data.Significance)
			if rho > bst.rho {
				bst = best{beta, p, rho}
			}
			fmt.Printf("%-10.4f", rho)
		}
		fmt.Println()
	}
	fmt.Printf("\nbest grid point: beta=%.2f p=%.1f (corr %+0.4f)\n", bst.beta, bst.p, bst.rho)
	fmt.Println("note: β = 1 (pure connection strength) is not the best strategy — §4.5.")

	// Personalized trust neighborhood: rank commenters from the point of
	// view of one node, with degree penalization so prolific low-effort
	// commenters don't dominate.
	seed := int32(stats.TopK(data.Significance, 1)[0]) // most-trusted commenter
	res, err := d2pr.Rank(g, d2pr.Params{P: bst.p, Seeds: []int32{seed}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-8 commenters most related to #%d (personalized D2PR, p=%.1f):\n", seed, bst.p)
	fmt.Printf("%-6s %-8s %-8s %-8s\n", "rank", "node", "degree", "score")
	shown := 0
	for _, u := range stats.TopK(res.Scores, 9) {
		if int32(u) == seed {
			continue // the seed itself always ranks first
		}
		shown++
		fmt.Printf("%-6d %-8d %-8d %-8.5f\n", shown, u, g.Degree(int32(u)), res.Scores[u])
		if shown == 8 {
			break
		}
	}
}
