// Quickstart: build the paper's Figure-1 sample graph, inspect how the
// degree de-coupling weight p reshapes the transition probabilities, and
// compare the resulting rankings.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"d2pr"
	"d2pr/internal/core"
)

func main() {
	// The sample graph of the paper's Figure 1: node A has three neighbors
	// B (degree 2), C (degree 3), D (degree 1).
	//
	//	    B --- C --- E --- F
	//	     \   /
	//	      \ /
	//	  D -- A
	names := []string{"A", "B", "C", "D", "E", "F"}
	g, err := d2pr.FromEdges(d2pr.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	// Transition probabilities from A for p = 0 (conventional), 2
	// (penalize high-degree destinations), -2 (boost them). These match
	// the paper's Figure 1(b): 0.33/0.33/0.33, 0.18/0.08/0.74,
	// 0.29/0.64/0.07.
	fmt.Println("\ntransition probabilities from A:")
	fmt.Printf("%-6s %-8s %-8s %-8s %-8s\n", "dest", "degree", "p=0", "p=2", "p=-2")
	t0 := core.DegreeDecoupled(g, 0)
	t2 := core.DegreeDecoupled(g, 2)
	tm2 := core.DegreeDecoupled(g, -2)
	for j, v := range g.Neighbors(0) {
		fmt.Printf("%-6s %-8d %-8.2f %-8.2f %-8.2f\n",
			names[v], g.Degree(v),
			t0.ProbsFrom(0)[j], t2.ProbsFrom(0)[j], tm2.ProbsFrom(0)[j])
	}

	// Full rankings under different de-coupling weights.
	fmt.Println("\nscores (α = 0.85):")
	fmt.Printf("%-6s %-8s %-10s %-10s %-10s\n", "node", "degree", "p=0", "p=2", "p=-2")
	scores := map[float64][]float64{}
	for _, p := range []float64{0, 2, -2} {
		res, err := d2pr.Rank(g, d2pr.Params{P: p})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("p=%v did not converge after %d iterations", p, res.Iterations)
		}
		scores[p] = res.Scores
	}
	for u := range names {
		fmt.Printf("%-6s %-8d %-10.4f %-10.4f %-10.4f\n",
			names[u], g.Degree(int32(u)),
			scores[0][u], scores[2][u], scores[-2][u])
	}

	// The headline diagnostic: how tightly each ranking couples to degree.
	fmt.Println("\ncorrelation with degree (Spearman):")
	for _, p := range []float64{-2, 0, 2} {
		fmt.Printf("  p=%+.0f: %+.3f\n", p, d2pr.DegreeCorrelation(g, scores[p]))
	}
	fmt.Println("\np > 0 decouples the ranking from degree; p < 0 couples it harder.")
}
