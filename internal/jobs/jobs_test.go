package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"d2pr/internal/graph"
	"d2pr/internal/rankcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
)

func testRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	if err := reg.AddGraph("g", g, []float64{0.1, 0.9, 0.4, 0.8, 0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGraph("nosig", g, nil); err != nil {
		t.Fatal(err)
	}
	return reg
}

func testManager(t *testing.T, reg *registry.Registry, opts Options) (*Manager, *rankcache.Cache) {
	t.Helper()
	cache := rankcache.New(64)
	opts.Resolve = reg.Get
	opts.Cache = cache
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m, cache
}

// waitTerminal polls until the job leaves its running states.
func waitTerminal(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return Status{}
}

func TestSweepExpand(t *testing.T) {
	sw := SweepSpec{Graph: "g", Ps: []float64{0, 0.5}, Betas: []float64{0, 1}, Alphas: []float64{0.5, 0.85, 0.9}}
	if n := sw.GridSize(); n != 12 {
		t.Fatalf("grid size = %d, want 12", n)
	}
	specs := sw.Expand()
	if len(specs) != 12 {
		t.Fatalf("expanded = %d", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if sp.Algo != rankspec.AlgoD2PR {
			t.Errorf("algo not defaulted: %+v", sp)
		}
		key := string(sp.CacheKey())
		if seen[key] {
			t.Errorf("duplicate config in grid: %s", key)
		}
		seen[key] = true
	}
	// Empty axes default to a one-point grid.
	if n := (SweepSpec{Graph: "g"}).GridSize(); n != 1 {
		t.Errorf("default grid size = %d, want 1", n)
	}
}

func TestSweepValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		sw   SweepSpec
		ok   bool
	}{
		{"defaults", SweepSpec{Graph: "g"}, true},
		{"no graph", SweepSpec{}, false},
		{"bad algo", SweepSpec{Graph: "g", Algo: "bogus"}, false},
		{"bad beta", SweepSpec{Graph: "g", Betas: []float64{0, 2}}, false},
		{"bad alpha", SweepSpec{Graph: "g", Alphas: []float64{0.85, 1}}, false},
		{"negative topk", SweepSpec{Graph: "g", TopK: -1}, false},
		{"negative seed", SweepSpec{Graph: "g", Seeds: []int32{-1}}, false},
		{"oversized grid", SweepSpec{Graph: "g",
			Ps:     make([]float64, 100),
			Betas:  make([]float64, 100),
			Alphas: []float64{0.85}}, false},
	} {
		err := tc.sw.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	reg := testRegistry(t)
	m, cache := testManager(t, reg, Options{Workers: 3})
	snap, err := reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Submit(SweepSpec{
		Graph: "g", Ps: []float64{0, 0.5, 1}, Betas: []float64{0, 1},
		TopK: 3, Correlate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 {
		t.Fatalf("total = %d, want 6", st.Total)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (error %q)", final.State, final.Error)
	}
	if final.Completed != 6 || final.Failed != 0 {
		t.Fatalf("progress = %d/%d failed %d", final.Completed, final.Total, final.Failed)
	}
	rows, _, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("results = %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Error != "" {
			t.Errorf("config %s failed: %s", row.Config, row.Error)
		}
		if len(row.Top) != 3 {
			t.Errorf("config %s top = %d rows", row.Config, len(row.Top))
		}
		if row.Spearman == nil || row.DegreeSpearman == nil {
			t.Errorf("config %s missing correlations", row.Config)
		}
		// The job's solve must be findable by a later synchronous request
		// deriving the epoch-qualified key from the same spec and snapshot.
		if _, hit := cache.Lookup(row.Spec.CacheKeyFor(snap)); !hit {
			t.Errorf("config %s not resident in the rank cache", row.Config)
		}
	}
	if got := cache.Len(); got != 6 {
		t.Errorf("cache len = %d, want 6", got)
	}
}

func TestSubmitValidationAndResolveFailures(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{})
	if _, err := m.Submit(SweepSpec{Graph: "g", Algo: "bogus"}); err == nil {
		t.Error("bad sweep must be rejected at submit")
	}
	// Unknown graph passes Submit (the registry is only consulted at run
	// time) and fails the job.
	st, err := m.Submit(SweepSpec{Graph: "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, st.ID); final.State != StateFailed || final.Error == "" {
		t.Errorf("state = %s error = %q, want failed with message", final.State, final.Error)
	}
	// Correlate against a graph without significance fails the job.
	st, err = m.Submit(SweepSpec{Graph: "nosig", Correlate: true})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, st.ID); final.State != StateFailed {
		t.Errorf("state = %s, want failed (no significance)", final.State)
	}
	// Seed beyond the node count fails at run time, not submit.
	st, err = m.Submit(SweepSpec{Graph: "g", Seeds: []int32{999}})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, m, st.ID); final.State != StateFailed {
		t.Errorf("state = %s, want failed (seed bounds)", final.State)
	}
}

func TestCancelMidSweep(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	m.hookBeforeConfig = func(rankspec.Spec) {
		started <- struct{}{}
		<-release
	}
	st, err := m.Submit(SweepSpec{Graph: "g", Ps: []float64{0, 0.25, 0.5, 0.75, 1}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // first configuration is executing
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	final := waitTerminal(t, m, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Completed >= final.Total {
		t.Errorf("cancel completed the whole grid (%d/%d)", final.Completed, final.Total)
	}
	// Cancelling a finished job is a harmless no-op.
	if st2, err := m.Cancel(st.ID); err != nil || st2.State != StateCancelled {
		t.Errorf("re-cancel: %v / %s", err, st2.State)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown cancel err = %v", err)
	}
}

// TestCancelledConfigsLandAsSkippedRows: a cancelled sweep must account for
// every configuration in the grid — the ones the cancel kept from running
// come back as explicit skipped rows (Skipped, Error "cancelled"), visible
// both in Results and in the streamed NDJSON rows, never silently dropped.
func TestCancelledConfigsLandAsSkippedRows(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	m.hookBeforeConfig = func(rankspec.Spec) {
		started <- struct{}{}
		<-release
	}
	st, err := m.Submit(SweepSpec{Graph: "g", Ps: []float64{0, 0.25, 0.5, 0.75, 1}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	final := waitTerminal(t, m, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Skipped == 0 {
		t.Fatalf("no skipped configurations recorded: %+v", final)
	}
	if final.Completed+final.Skipped > final.Total {
		t.Fatalf("completed %d + skipped %d exceeds total %d", final.Completed, final.Skipped, final.Total)
	}

	rows, _, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != final.Total {
		t.Fatalf("results hold %d rows for a %d-config grid: cancelled configs were dropped", len(rows), final.Total)
	}
	skipped := 0
	for _, row := range rows {
		if row.Skipped {
			skipped++
			if row.Error != "cancelled" {
				t.Errorf("skipped row %q error = %q, want \"cancelled\"", row.Config, row.Error)
			}
			if row.Top != nil {
				t.Errorf("skipped row %q carries scores", row.Config)
			}
		}
	}
	if skipped != final.Skipped {
		t.Errorf("rows mark %d skipped, status says %d", skipped, final.Skipped)
	}

	// The NDJSON stream replays every row, skipped ones included.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	streamed := 0
	if _, err := m.Stream(ctx, st.ID, func(r ConfigResult) error { streamed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if streamed != final.Total {
		t.Errorf("stream delivered %d rows, want %d", streamed, final.Total)
	}
}

func TestStreamDeliversAllRows(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{Workers: 2})
	st, err := m.Submit(SweepSpec{Graph: "g", Ps: []float64{0, 0.5, 1, 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []ConfigResult
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := m.Stream(ctx, st.ID, func(r ConfigResult) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || final.State != StateDone {
		t.Fatalf("streamed %d rows, state %s", len(rows), final.State)
	}
	// Streaming an already-finished job replays every row.
	rows = rows[:0]
	if _, err := m.Stream(ctx, st.ID, func(r ConfigResult) error { rows = append(rows, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("replay streamed %d rows", len(rows))
	}
	if _, err := m.Stream(ctx, "job-999999", nil); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown stream err = %v", err)
	}
}

func TestTTLPrunesFinishedJobs(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{TTL: 20 * time.Millisecond})
	st, err := m.Submit(SweepSpec{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := m.Get(st.ID); errors.Is(err, ErrUnknownJob) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never pruned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(m.List()); got != 0 {
		t.Errorf("retained jobs = %d", got)
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := m.Submit(SweepSpec{Graph: "g", Ps: []float64{float64(i), float64(i) + 0.1}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s state after drain = %s", id, st.State)
		}
	}
	if _, err := m.Submit(SweepSpec{Graph: "g"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close err = %v", err)
	}
}

func TestCloseCancelsOnExpiredContext(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{Workers: 1})
	release := make(chan struct{})
	var once bool
	m.hookBeforeConfig = func(rankspec.Spec) {
		if !once {
			once = true
			<-release
		}
	}
	st, err := m.Submit(SweepSpec{Graph: "g", Ps: []float64{0, 0.5, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(release)
	}()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close err = %v, want deadline exceeded", err)
	}
	final, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Errorf("state after forced close = %s", final.State)
	}
}

func TestRunSyncSharesSnapshotAndCache(t *testing.T) {
	reg := testRegistry(t)
	cache := rankcache.New(64)
	snap, err := reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	sw := SweepSpec{Graph: "g", Ps: []float64{0, 0.5, 1}, TopK: 2, Correlate: true}
	results := RunSync(context.Background(), snap, sw, cache, make(chan struct{}, 2))
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, row := range results {
		if row.Error != "" {
			t.Errorf("%s: %s", row.Config, row.Error)
		}
		if row.Cached {
			t.Errorf("%s: first run must be a fresh solve", row.Config)
		}
	}
	// Second run over the same grid is all cache hits.
	again := RunSync(context.Background(), snap, sw, cache, nil)
	for _, row := range again {
		if !row.Cached {
			t.Errorf("%s: repeat run must be cached", row.Config)
		}
	}
	// A cancelled context marks unlaunched configurations instead of
	// computing them.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gone := RunSync(ctx, snap, SweepSpec{Graph: "g", Ps: []float64{7, 8}}, cache, make(chan struct{}, 1))
	for _, row := range gone {
		if row.Error != "cancelled" {
			t.Errorf("cancelled run produced %+v", row)
		}
	}
}

func TestManagerStats(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{Workers: 2})
	st, err := m.Submit(SweepSpec{Graph: "g", Ps: []float64{0, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	if _, err := m.Submit(SweepSpec{Graph: "missing"}); err != nil {
		t.Fatal(err)
	}
	// Wait for the failing job too.
	for _, s := range m.List() {
		waitTerminal(t, m, s.ID)
	}
	stats := m.Stats()
	if stats.Submitted != 2 || stats.Done != 1 || stats.Failed != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Workers != 2 || stats.Retained != 2 || stats.Active != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing resolve/cache must error")
	}
	if _, err := New(Options{Resolve: func(string) (*registry.Snapshot, error) { return nil, fmt.Errorf("x") }}); err == nil {
		t.Error("missing cache must error")
	}
}
