package jobs

import (
	"errors"
	"fmt"

	"d2pr/internal/core"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
)

// ErrNoSignificance marks a correlating sweep over a graph that has no
// significance vector — a missing-resource condition (HTTP 404, matching
// /v1/{graph}/correlate) rather than a malformed spec (400).
var ErrNoSignificance = errors.New("has no significance vector to correlate against")

// MaxGridSize caps how many configurations one sweep may expand to. The cap
// bounds job memory (one retained ConfigResult per configuration) and keeps
// a single submission from monopolizing the worker pool indefinitely.
const MaxGridSize = 4096

// SweepSpec describes a parameter sweep over one graph: the cross product of
// the given p, β, and α lists, each configuration ranked with the same
// algorithm and optional personalized-teleport seed set. Empty lists
// default to a single entry (p=0, β=0, α=core.DefaultAlpha), so the zero
// grid is one conventional configuration.
type SweepSpec struct {
	// Graph names the registry entry to sweep.
	Graph string `json:"graph"`
	// Algo is the ranking algorithm (default "d2pr").
	Algo string `json:"algo,omitempty"`
	// Ps, Betas, and Alphas are the parameter axes; the sweep grid is their
	// cross product.
	Ps     []float64 `json:"ps,omitempty"`
	Betas  []float64 `json:"betas,omitempty"`
	Alphas []float64 `json:"alphas,omitempty"`
	// Seeds is a personalized teleport set applied to every configuration.
	Seeds []int32 `json:"seeds,omitempty"`
	// TopK, when positive, retains the k best rows per configuration in the
	// job results. Full score vectors are never stored in results — they
	// land in the rank cache, where later /rank requests find them.
	TopK int `json:"top_k,omitempty"`
	// Correlate computes the Spearman correlation of every configuration's
	// ranking against the graph's significance vector (the paper's central
	// measurement) plus the ranking-vs-degree correlation. Requires the
	// graph to carry a significance vector.
	Correlate bool `json:"correlate,omitempty"`
}

// withDefaults returns a copy with empty fields replaced by defaults.
func (sw SweepSpec) withDefaults() SweepSpec {
	if sw.Algo == "" {
		sw.Algo = rankspec.AlgoD2PR
	}
	if len(sw.Ps) == 0 {
		sw.Ps = []float64{0}
	}
	if len(sw.Betas) == 0 {
		sw.Betas = []float64{0}
	}
	if len(sw.Alphas) == 0 {
		sw.Alphas = []float64{core.DefaultAlpha}
	}
	return sw
}

// GridSize returns the number of configurations the sweep expands to
// (after defaulting empty axes).
func (sw SweepSpec) GridSize() int {
	sw = sw.withDefaults()
	return len(sw.Ps) * len(sw.Betas) * len(sw.Alphas)
}

// Validate checks the sweep after defaulting. Seed ids are bounds-checked
// only against non-negativity here; the upper bound needs the materialized
// graph and is re-checked when the job resolves it.
func (sw SweepSpec) Validate() error {
	sw = sw.withDefaults()
	if sw.Graph == "" {
		return fmt.Errorf("jobs: sweep names no graph")
	}
	if sw.TopK < 0 {
		return fmt.Errorf("jobs: negative top_k %d", sw.TopK)
	}
	if n := sw.GridSize(); n > MaxGridSize {
		return fmt.Errorf("jobs: sweep expands to %d configurations (max %d)", n, MaxGridSize)
	}
	// Validating one corner of the grid checks algo and seeds; the remaining
	// corners only vary in p/β/α, which are checked per-axis below.
	probe := rankspec.Spec{Graph: sw.Graph, Algo: sw.Algo, Alpha: sw.Alphas[0], Beta: sw.Betas[0], P: sw.Ps[0], Seeds: sw.Seeds}
	if err := probe.Validate(-1); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	for _, b := range sw.Betas {
		if b < 0 || b > 1 {
			return fmt.Errorf("jobs: beta %v out of [0, 1]", b)
		}
	}
	for _, a := range sw.Alphas {
		if a <= 0 || a >= 1 {
			return fmt.Errorf("jobs: alpha %v out of (0, 1)", a)
		}
	}
	return nil
}

// ValidateWith performs the snapshot-dependent half of validation that
// Validate had to defer: seed upper bounds against the real node count, and
// the presence of a significance vector when the sweep correlates. Both the
// job runner (after resolving the graph) and the synchronous batch handler
// (which resolves it up front) use this, so the two paths cannot drift.
func (sw SweepSpec) ValidateWith(snap *registry.Snapshot) error {
	n := snap.Graph.NumNodes()
	for _, sd := range sw.Seeds {
		if int(sd) >= n {
			return fmt.Errorf("seed %d out of range for %d nodes", sd, n)
		}
	}
	if sw.Correlate && snap.Significance == nil {
		return fmt.Errorf("graph %q %w", sw.Graph, ErrNoSignificance)
	}
	return nil
}

// Expand materializes the configuration grid in deterministic order
// (p-major, then β, then α).
func (sw SweepSpec) Expand() []rankspec.Spec {
	sw = sw.withDefaults()
	out := make([]rankspec.Spec, 0, sw.GridSize())
	for _, p := range sw.Ps {
		for _, b := range sw.Betas {
			for _, a := range sw.Alphas {
				out = append(out, rankspec.Spec{
					Graph: sw.Graph, Algo: sw.Algo,
					P: p, Beta: b, Alpha: a, Seeds: sw.Seeds,
				})
			}
		}
	}
	return out
}
