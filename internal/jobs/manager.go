// Package jobs is the asynchronous sweep subsystem of the serving layer: it
// accepts a SweepSpec (one graph, the cross product of p/β/α parameter
// lists), expands it into a configuration grid, and executes the grid on a
// bounded worker pool shared by all jobs. Each job tracks per-configuration
// progress, supports cancellation, and retains its results for a TTL after
// completion. Score vectors are computed through the serving layer's
// rankcache, so every configuration a job touches leaves the cache warm for
// later synchronous /rank requests — the sweep is the batch face of the same
// cache the interactive face reads.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"d2pr/internal/pprcache"
	"d2pr/internal/rankcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
	"d2pr/internal/stats"
	"d2pr/internal/telemetry"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Options configures a Manager.
type Options struct {
	// Workers bounds how many configurations execute concurrently across
	// all jobs. 0 means DefaultWorkers.
	Workers int
	// TTL is how long a finished job's results stay retrievable. 0 means
	// DefaultTTL.
	TTL time.Duration
	// Resolve materializes a graph by registry name. Required.
	Resolve func(name string) (*registry.Snapshot, error)
	// Cache receives every computed score vector. Required.
	Cache *rankcache.Cache
	// PPRCache receives every computed personalized top-k. Required only for
	// SubmitPPR; a manager built without one rejects PPR cohorts.
	PPRCache *pprcache.Cache
	// Telemetry, when non-nil, receives per-solve statistics for every fresh
	// solve a job executes — batch work shows up in the same per-graph
	// iteration/residual series as interactive traffic.
	Telemetry *telemetry.Registry
}

// Defaults for Options.
const (
	DefaultWorkers = 4
	DefaultTTL     = 15 * time.Minute
)

// ConfigResult is the retained outcome of one configuration of a sweep or
// one seed of a PPR cohort. Exactly one of Spec / PPRSpec is populated,
// matching the job kind.
type ConfigResult struct {
	// Config is the canonical cache key (rankcache for sweeps, pprcache for
	// cohorts); a later synchronous request with the same configuration is
	// served from the corresponding cache.
	Config string        `json:"config"`
	Spec   rankspec.Spec `json:"spec,omitzero"`
	// Seed and PPRSpec identify a PPR-cohort row.
	Seed    *int32            `json:"seed,omitempty"`
	PPRSpec *rankspec.PPRSpec `json:"ppr_spec,omitempty"`
	// Cached reports that the score vector came from the rank cache (or an
	// in-flight solve it piggybacked on) rather than a fresh solve.
	Cached    bool    `json:"cached"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Iterations, Residual, Converged, and Pushes carry the solver's own
	// diagnostics for rows whose solve ran fresh (they are zero for cached
	// rows — the cache stores scores, not the work that produced them).
	// Residual is the final L1 residual for iterative solves and the
	// un-pushed residual mass for PPR rows; Pushes is PPR-only.
	Iterations int              `json:"iterations,omitempty"`
	Residual   float64          `json:"residual,omitempty"`
	Converged  bool             `json:"converged,omitempty"`
	Pushes     int              `json:"pushes,omitempty"`
	Top        []rankspec.Entry `json:"top,omitempty"`
	// Spearman and DegreeSpearman are set when the sweep requested
	// correlation: ranking vs. significance and ranking vs. degree.
	Spearman       *float64 `json:"spearman,omitempty"`
	DegreeSpearman *float64 `json:"degree_spearman,omitempty"`
	Error          string   `json:"error,omitempty"`
	// Skipped marks a configuration whose solve never ran because the job
	// was cancelled (or the manager shut down) first. Skipped rows still
	// appear in the NDJSON stream — every configuration of the grid is
	// accounted for — but are excluded from Status.Completed and do not
	// count as failures.
	Skipped bool `json:"skipped,omitempty"`
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	ID    string `json:"id"`
	Graph string `json:"graph"`
	Algo  string `json:"algo"`
	State State  `json:"state"`
	// Total is the grid size; Completed counts finished configurations
	// (including failed ones, excluding skipped ones), Failed the subset
	// that errored, Skipped the configurations a cancellation kept from
	// ever starting.
	Total      int       `json:"total"`
	Completed  int       `json:"completed"`
	Failed     int       `json:"failed"`
	Skipped    int       `json:"skipped,omitempty"`
	Error      string    `json:"error,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// RequestID echoes the X-Request-ID of the submitting request, tying a
	// job's lifecycle back to the access-log line that created it.
	RequestID string `json:"request_id,omitempty"`
}

// job is the internal mutable job record. cond is broadcast on every result
// append and state change, which Stream uses to deliver rows as they land.
type job struct {
	id        string
	requestID string
	spec      SweepSpec
	specs     []rankspec.Spec
	// pprSpec/pprSpecs are set instead of spec/specs for PPR-cohort jobs.
	pprSpec  *PPRBatchSpec
	pprSpecs []rankspec.PPRSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	state    State
	results  []ConfigResult
	failed   int
	skipped  int
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
}

func (j *job) statusLocked() Status {
	graph, algo, total := j.spec.Graph, j.spec.Algo, len(j.specs)
	if j.pprSpec != nil {
		graph, algo, total = j.pprSpec.Graph, AlgoPPR, len(j.pprSpecs)
	}
	return Status{
		ID: j.id, Graph: graph, Algo: algo, State: j.state,
		Total: total, Completed: len(j.results) - j.skipped, Failed: j.failed, Skipped: j.skipped,
		Error: j.errMsg, CreatedAt: j.created, StartedAt: j.started, FinishedAt: j.finished,
		RequestID: j.requestID,
	}
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// Sentinel errors returned by Manager methods.
var (
	ErrUnknownJob = errors.New("jobs: unknown job")
	ErrClosed     = errors.New("jobs: manager is closed")
)

// Stats aggregates manager-level counters for the /metrics endpoint.
type Stats struct {
	Workers   int    `json:"workers"`
	Submitted uint64 `json:"submitted"`
	// Active counts jobs not yet in a terminal state.
	Active    int    `json:"active"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Retained counts jobs currently held (active + finished within TTL).
	Retained int `json:"retained"`
}

// Manager owns the worker pool and the job table. All methods are safe for
// concurrent use.
type Manager struct {
	opts Options
	sem  chan struct{}

	mu     sync.Mutex
	jobs   map[string]*job
	seq    uint64
	closed bool
	totals struct {
		submitted, done, failed, cancelled uint64
	}

	wg          sync.WaitGroup // one unit per running job goroutine
	janitorStop chan struct{}

	// hookBeforeConfig / hookBeforePPRConfig, when non-nil, run before each
	// configuration executes — test seams for deterministic
	// cancellation/progress tests.
	hookBeforeConfig    func(cfg rankspec.Spec)
	hookBeforePPRConfig func(cfg rankspec.PPRSpec)
}

// New returns a Manager executing sweeps with opts. Resolve and Cache are
// required. Call Close to drain workers and stop the TTL janitor.
func New(opts Options) (*Manager, error) {
	if opts.Resolve == nil || opts.Cache == nil {
		return nil, errors.New("jobs: Options.Resolve and Options.Cache are required")
	}
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	m := &Manager{
		opts:        opts,
		sem:         make(chan struct{}, opts.Workers),
		jobs:        map[string]*job{},
		janitorStop: make(chan struct{}),
	}
	go m.janitor()
	return m, nil
}

// Sem exposes the manager's worker semaphore so synchronous sweeps
// (RunSync) can share the same global concurrency bound as async jobs —
// with a shared semaphore, -job-workers caps total in-flight sweep
// configurations regardless of how the work arrived.
func (m *Manager) Sem() chan struct{} { return m.sem }

// janitor prunes expired jobs periodically (List/Get also prune lazily, so
// the janitor only bounds memory when nobody is looking).
func (m *Manager) janitor() {
	interval := min(max(m.opts.TTL/2, 10*time.Millisecond), time.Minute)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.prune()
		}
	}
}

// prune drops finished jobs older than the TTL.
func (m *Manager) prune() {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.terminal() && now.Sub(j.finished) > m.opts.TTL
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
		}
	}
}

// Submit validates and enqueues a sweep, returning the queued job's status.
// The grid starts executing immediately (subject to worker availability).
func (m *Manager) Submit(spec SweepSpec) (Status, error) {
	return m.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with a request ID attached to the job record, so
// job listings and NDJSON terminal lines carry the submitting request's
// X-Request-ID.
func (m *Manager) SubmitTraced(spec SweepSpec, requestID string) (Status, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		requestID: requestID,
		spec:      spec,
		specs:     spec.Expand(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		created:   time.Now(),
	}
	return m.enqueue(j)
}

// enqueue registers a constructed job and starts its runner goroutine.
func (m *Manager) enqueue(j *job) (Status, error) {
	j.cond = sync.NewCond(&j.mu)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.cancel()
		return Status{}, ErrClosed
	}
	m.seq++
	j.id = fmt.Sprintf("job-%06d", m.seq)
	m.jobs[j.id] = j
	m.totals.submitted++
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(j)
	return j.status(), nil
}

// run executes one job: resolve the graph once, re-validate seeds against
// the real node count, then fan the work out over the shared worker pool.
func (m *Manager) run(j *job) {
	defer m.wg.Done()
	// A panic anywhere on the job path (resolve, engine build, fan-out
	// bookkeeping) fails this job, not the process. Per-configuration panics
	// are additionally contained inside fanOut so one bad configuration
	// doesn't take down its siblings.
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if m.opts.Telemetry != nil {
			m.opts.Telemetry.RecordPanic()
		}
		j.mu.Lock()
		terminal := j.state.terminal()
		j.mu.Unlock()
		if !terminal {
			m.finishJob(j, fmt.Sprintf("panic: %v", p))
		}
	}()
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.cond.Broadcast()
	j.mu.Unlock()

	if j.pprSpec != nil {
		m.runPPR(j)
		return
	}

	snap, err := m.opts.Resolve(j.spec.Graph)
	if err == nil {
		err = j.spec.ValidateWith(snap)
	}
	if err != nil {
		m.finishJob(j, err.Error())
		return
	}

	var deg []float64
	if j.spec.Correlate {
		deg = rankspec.DegreeVector(snap.Graph)
	}
	// One Computer per job: the D2PR sweep state (log Θ̂, transpose
	// structure, β-blend partner) is built once and shared by every
	// configuration the workers execute.
	comp := rankspec.NewComputer(snap)

	m.fanOut(j, len(j.specs), func(i int) ConfigResult {
		cfg := j.specs[i]
		if m.hookBeforeConfig != nil {
			m.hookBeforeConfig(cfg)
		}
		return runConfig(j.ctx, comp, cfg, j.spec, m.opts.Cache, deg, m.opts.Telemetry)
	}, func(i int) ConfigResult {
		cfg := j.specs[i]
		return ConfigResult{Config: string(cfg.CacheKey()), Spec: cfg, Skipped: true, Error: "cancelled"}
	})
}

// fanOut executes n work items over the shared worker pool, appending each
// item's result row as it completes (broadcasting for streamers), then moves
// the job to its terminal state. exec must be safe for concurrent calls; it
// is never invoked after the job's context is cancelled — configurations the
// cancellation keeps from running land as skip(i) rows instead, so the
// NDJSON stream accounts for every configuration of the grid rather than
// silently dropping the tail.
func (m *Manager) fanOut(j *job, n int, exec, skip func(i int) ConfigResult) {
	add := func(res ConfigResult) {
		j.mu.Lock()
		j.results = append(j.results, res)
		if res.Skipped {
			j.skipped++
		} else if res.Error != "" {
			j.failed++
			if j.errMsg == "" {
				j.errMsg = res.Error
			}
		}
		j.cond.Broadcast()
		j.mu.Unlock()
	}
	// runOne contains a panicking configuration: the row is recorded as a
	// failure (skip(i) supplies the Config/Spec identity) and the worker
	// goroutine survives to release its semaphore slot.
	runOne := func(i int) (res ConfigResult) {
		defer func() {
			if p := recover(); p != nil {
				if m.opts.Telemetry != nil {
					m.opts.Telemetry.RecordPanic()
				}
				res = skip(i)
				res.Skipped = false
				res.Error = fmt.Sprintf("panic: %v", p)
			}
		}()
		return exec(i)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if j.ctx.Err() != nil {
			add(skip(i))
			continue
		}
		select {
		case <-j.ctx.Done():
			add(skip(i))
		case m.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-m.sem }()
				if j.ctx.Err() != nil {
					add(skip(i))
					return
				}
				add(runOne(i))
			}(i)
		}
	}
	wg.Wait()
	m.finishJob(j, "")
}

// finishJob moves a job to its terminal state and updates the manager
// counters. errMsg, when non-empty, marks the whole job failed (e.g. the
// graph never resolved); otherwise the state derives from cancellation and
// per-configuration failures.
func (m *Manager) finishJob(j *job, errMsg string) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case errMsg != "":
		j.state = StateFailed
		j.errMsg = errMsg
	case j.ctx.Err() != nil:
		j.state = StateCancelled
	case j.failed > 0:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	state := j.state
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancel() // release the context's resources

	m.mu.Lock()
	switch state {
	case StateDone:
		m.totals.done++
	case StateFailed:
		m.totals.failed++
	case StateCancelled:
		m.totals.cancelled++
	}
	m.mu.Unlock()
}

// runConfig executes one configuration through the rank cache and builds its
// retained result row. ctx bounds this configuration's wait and (if it is
// the last interested party) its solve. deg is the precomputed per-node
// degree vector (nil unless the sweep correlates). tel, when non-nil,
// receives the solve's statistics from inside the compute closure — recorded
// even when the requester abandons the solve.
//
// The solve diagnostics on the returned row come from a probe the closure
// fills. Reading it is only safe on the leader-success path (err == nil and
// !cached): the cache's done-channel close orders the closure's writes before
// the leader's return, whereas on error or piggyback paths an abandoned
// closure may still be running.
func runConfig(ctx context.Context, comp *rankspec.Computer, cfg rankspec.Spec, sw SweepSpec, cache *rankcache.Cache, deg []float64, tel *telemetry.Registry) ConfigResult {
	snap := comp.Snapshot()
	started := time.Now()
	// Cache operations are keyed by snapshot epoch (a reload invalidates by
	// changing the key); the wire-visible Config string stays epoch-less so
	// rows are comparable across reloads.
	key := cfg.CacheKeyFor(snap)
	var probe telemetry.SolveStats
	scores, cached, err := cache.Get(ctx, key, func(solveCtx context.Context) ([]float64, error) {
		s, st, cerr := comp.ComputeStats(solveCtx, cfg)
		if cerr != nil {
			if tel != nil {
				tel.RecordSolveError(snap.Name)
			}
			return nil, cerr
		}
		if tel != nil {
			tel.RecordSolve(snap.Name, st)
		}
		probe = st
		return s, nil
	})
	res := ConfigResult{Config: string(cfg.CacheKey()), Spec: cfg, Cached: cached}
	if err != nil {
		res.Error = err.Error()
		res.ElapsedMs = time.Since(started).Seconds() * 1000
		return res
	}
	if !cached {
		res.Iterations = probe.Iterations
		res.Residual = probe.Residual
		res.Converged = probe.Converged
	}
	if sw.TopK > 0 {
		res.Top = rankspec.TopEntries(snap.Graph, scores, sw.TopK)
	}
	if sw.Correlate && snap.Significance != nil {
		rho := stats.Spearman(scores, snap.Significance)
		res.Spearman = &rho
		dr := stats.Spearman(scores, deg)
		res.DegreeSpearman = &dr
	}
	res.ElapsedMs = time.Since(started).Seconds() * 1000
	return res
}

// RunSync executes a sweep synchronously over an already-resolved snapshot,
// returning results in grid order. It backs the /v1/{graph}/rank/batch
// endpoint: one registry snapshot and one CSR are shared across every
// configuration, and each score vector still lands in the cache. sem bounds
// configuration concurrency; pass a semaphore shared across callers to cap
// the aggregate solver load of concurrent batches (nil creates a
// call-local DefaultWorkers bound). ctx cancellation stops launching new
// configurations; rows for configurations never started carry a
// "cancelled" error.
func RunSync(ctx context.Context, snap *registry.Snapshot, sw SweepSpec, cache *rankcache.Cache, sem chan struct{}) []ConfigResult {
	return RunSyncTraced(ctx, snap, sw, cache, sem, nil)
}

// RunSyncTraced is RunSync with an optional telemetry registry: fresh solves
// report their statistics to tel exactly as async jobs' do.
func RunSyncTraced(ctx context.Context, snap *registry.Snapshot, sw SweepSpec, cache *rankcache.Cache, sem chan struct{}, tel *telemetry.Registry) []ConfigResult {
	sw = sw.withDefaults()
	specs := sw.Expand()
	if sem == nil {
		sem = make(chan struct{}, DefaultWorkers)
	}
	var deg []float64
	if sw.Correlate {
		deg = rankspec.DegreeVector(snap.Graph)
	}
	comp := rankspec.NewComputer(snap)
	results := make([]ConfigResult, len(specs))
	var wg sync.WaitGroup
	for i, cfg := range specs {
		// Select on ctx while waiting for a slot (the semaphore may be
		// shared with other in-flight batches): a disconnected client must
		// neither block here nor burn a solve once a slot frees up.
		cancelled := ctx.Err() != nil
		if !cancelled {
			select {
			case <-ctx.Done():
				cancelled = true
			case sem <- struct{}{}:
			}
		}
		if cancelled {
			results[i] = ConfigResult{Config: string(cfg.CacheKey()), Spec: cfg, Skipped: true, Error: "cancelled"}
			continue
		}
		wg.Add(1)
		go func(i int, cfg rankspec.Spec) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				results[i] = ConfigResult{Config: string(cfg.CacheKey()), Spec: cfg, Skipped: true, Error: "cancelled"}
				return
			}
			results[i] = runConfig(ctx, comp, cfg, sw, cache, deg, tel)
		}(i, cfg)
	}
	wg.Wait()
	return results
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (Status, error) {
	m.prune()
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j.status(), nil
}

// List returns every retained job's status, newest first.
func (m *Manager) List() []Status {
	m.prune()
	m.mu.Lock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.status())
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Cancel requests cancellation of a running job. Configurations already
// executing finish (a power-iteration solve is not interruptible); queued
// configurations are dropped. Cancelling a finished job is a no-op; the
// returned status reflects the job at call time.
func (m *Manager) Cancel(id string) (Status, error) {
	m.prune()
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	terminal := j.state.terminal()
	j.mu.Unlock()
	if !terminal {
		j.cancel()
	}
	return j.status(), nil
}

// Results returns a snapshot of the job's completed configuration rows (in
// completion order) plus its current status. For a running job this is the
// partial result set so far.
func (m *Manager) Results(id string) ([]ConfigResult, Status, error) {
	m.prune()
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, Status{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	rows := make([]ConfigResult, len(j.results))
	copy(rows, j.results)
	st := j.statusLocked()
	j.mu.Unlock()
	return rows, st, nil
}

// Stream delivers the job's configuration rows to fn in completion order,
// including rows that complete after the call starts, and returns when the
// job reaches a terminal state (after all rows are delivered), fn returns an
// error, or ctx is cancelled. The returned status is the job's state at exit.
func (m *Manager) Stream(ctx context.Context, id string, fn func(ConfigResult) error) (Status, error) {
	m.prune()
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	// cond.Wait cannot select on ctx; wake the waiter when ctx fires.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	j.mu.Lock()
	defer j.mu.Unlock()
	next := 0
	for {
		for next < len(j.results) && ctx.Err() == nil {
			row := j.results[next]
			next++
			j.mu.Unlock()
			err := fn(row)
			j.mu.Lock()
			if err != nil {
				return j.statusLocked(), err
			}
		}
		if ctx.Err() != nil {
			return j.statusLocked(), ctx.Err()
		}
		if j.state.terminal() {
			return j.statusLocked(), nil
		}
		j.cond.Wait()
	}
}

// Stats returns manager-level counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Workers:   m.opts.Workers,
		Submitted: m.totals.submitted,
		Done:      m.totals.done,
		Failed:    m.totals.failed,
		Cancelled: m.totals.cancelled,
		Retained:  len(m.jobs),
	}
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.state.terminal() {
			st.Active++
		}
		j.mu.Unlock()
	}
	return st
}

// closeSettle bounds how long Close waits, after cancelling jobs on grace
// expiry, for workers to observe the cancellation. A power-iteration solve
// is not interruptible, so waiting for full completion could hold process
// exit hostage for minutes on a large graph; after the settle window Close
// returns and any still-running solves are abandoned to process exit (or,
// in a library embedder, finish harmlessly in the background).
const closeSettle = time.Second

// Close stops accepting submissions, stops the janitor, and waits for
// running jobs to drain. If ctx expires first, every remaining job is
// cancelled, Close waits up to closeSettle for the in-flight
// configurations to wind down, and returns ctx.Err() — it does not block
// indefinitely on a non-interruptible solve. Close is idempotent only in
// its first call; callers own calling it once.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.janitorStop)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			j.cancel()
		}
		m.mu.Unlock()
		select {
		case <-done:
		case <-time.After(closeSettle):
		}
		return ctx.Err()
	}
}
