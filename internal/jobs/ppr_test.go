package jobs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"d2pr/internal/pprcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
)

// testPPRManager builds a manager with a PPR cache wired in.
func testPPRManager(t *testing.T, opts Options) (*Manager, *pprcache.Cache) {
	m, ppr, _ := testPPRManagerReg(t, opts)
	return m, ppr
}

// testPPRManagerReg additionally exposes the backing registry, for tests that
// need the snapshot (epoch-qualified cache keys).
func testPPRManagerReg(t *testing.T, opts Options) (*Manager, *pprcache.Cache, *registry.Registry) {
	t.Helper()
	ppr := pprcache.New(64, 4)
	opts.PPRCache = ppr
	reg := testRegistry(t)
	m, _ := testManager(t, reg, opts)
	return m, ppr, reg
}

func TestPPRBatchValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sp      PPRBatchSpec
		ok      bool
		errHint string
	}{
		{"ok", PPRBatchSpec{Graph: "g", Seeds: []int32{0, 1, 2}}, true, ""},
		{"no graph", PPRBatchSpec{Seeds: []int32{0}}, false, "no graph"},
		{"no seeds", PPRBatchSpec{Graph: "g"}, false, "no seeds"},
		{"duplicate seed", PPRBatchSpec{Graph: "g", Seeds: []int32{0, 3, 0}}, false, "duplicate seed 0"},
		{"negative seed", PPRBatchSpec{Graph: "g", Seeds: []int32{1, -4}}, false, "is negative"},
		{"bad alpha", PPRBatchSpec{Graph: "g", Seeds: []int32{0}, Alpha: 1.5}, false, "alpha"},
		{"bad eps", PPRBatchSpec{Graph: "g", Seeds: []int32{0}, Epsilon: 0.5}, false, "eps"},
		{"bad k", PPRBatchSpec{Graph: "g", Seeds: []int32{0}, K: -1}, false, "k"},
		{"oversized", PPRBatchSpec{Graph: "g", Seeds: make([]int32, MaxGridSize+1)}, false, "exceeds max"},
	} {
		if tc.name == "oversized" {
			for i := range tc.sp.Seeds {
				tc.sp.Seeds[i] = int32(i)
			}
		}
		err := tc.sp.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
		if err != nil && tc.errHint != "" && !strings.Contains(err.Error(), tc.errHint) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errHint)
		}
	}
}

func TestPPRBatchRunsToCompletion(t *testing.T) {
	m, ppr, reg := testPPRManagerReg(t, Options{Workers: 2, TTL: time.Minute})
	snap, err := reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.SubmitPPR(PPRBatchSpec{Graph: "g", Seeds: []int32{0, 3, 5}, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Algo != AlgoPPR || st.Total != 3 {
		t.Fatalf("submitted status %+v", st)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateDone || st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("terminal status %+v", st)
	}
	rows, _, err := m.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	seedsSeen := map[int32]bool{}
	for _, row := range rows {
		if row.Seed == nil || row.PPRSpec == nil {
			t.Fatalf("cohort row missing seed/spec: %+v", row)
		}
		if row.Error != "" {
			t.Fatalf("row for seed %d failed: %s", *row.Seed, row.Error)
		}
		seedsSeen[*row.Seed] = true
		if len(row.Top) == 0 || len(row.Top) > 4 {
			t.Errorf("seed %d: %d top rows, want 1..4", *row.Seed, len(row.Top))
		}
		// The seed must appear in its own personalized top-k (at α=0.85 a
		// low-degree seed's top node may legitimately be its hub neighbor).
		found := false
		for _, e := range row.Top {
			if e.Node == *row.Seed {
				found = true
			}
		}
		if !found {
			t.Errorf("seed %d absent from its own top-%d", *row.Seed, len(row.Top))
		}
		if row.Top[0].Rank != 1 {
			t.Errorf("seed %d: first row rank %d", *row.Seed, row.Top[0].Rank)
		}
		// The job's config string must be the synchronous path's cache key.
		if want := string(row.PPRSpec.CacheKey()); row.Config != want {
			t.Errorf("config %q != spec cache key %q", row.Config, want)
		}
	}
	if len(seedsSeen) != 3 {
		t.Errorf("rows cover %d distinct seeds, want 3", len(seedsSeen))
	}
	// Every cohort result must be resident in the PPR cache afterwards.
	if got := ppr.Len(); got != 3 {
		t.Errorf("ppr cache holds %d entries after cohort, want 3", got)
	}
	for _, row := range rows {
		if _, ok := ppr.Lookup(row.PPRSpec.CacheKeyFor(snap)); !ok {
			t.Errorf("cohort key %q not in cache", row.Config)
		}
	}
}

func TestPPRBatchWarmsCacheForRepeatCohort(t *testing.T) {
	m, _ := testPPRManager(t, Options{Workers: 2, TTL: time.Minute})
	spec := PPRBatchSpec{Graph: "g", Seeds: []int32{1, 2}}
	st, err := m.SubmitPPR(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st.ID)
	st2, err := m.SubmitPPR(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, st2.ID)
	rows, _, err := m.Results(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !row.Cached {
			t.Errorf("repeat cohort seed %d recomputed", *row.Seed)
		}
	}
}

func TestPPRBatchFailuresSurface(t *testing.T) {
	m, _ := testPPRManager(t, Options{Workers: 1, TTL: time.Minute})
	// Unknown graph: the job fails at resolve time.
	st, err := m.SubmitPPR(PPRBatchSpec{Graph: "missing", Seeds: []int32{0}})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitTerminal(t, m, st.ID); st.State != StateFailed {
		t.Errorf("unknown graph: state %s, want failed", st.State)
	}
	// Seed beyond the real node count: accepted at submit (the bound needs
	// the graph), failed at run.
	st, err = m.SubmitPPR(PPRBatchSpec{Graph: "g", Seeds: []int32{0, 99}})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, m, st.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "seed 99 out of range") {
		t.Errorf("out-of-range cohort: %+v", st)
	}
}

func TestPPRBatchRequiresCache(t *testing.T) {
	m, _ := testManager(t, testRegistry(t), Options{}) // no PPRCache
	if _, err := m.SubmitPPR(PPRBatchSpec{Graph: "g", Seeds: []int32{0}}); err == nil {
		t.Fatal("SubmitPPR without a PPR cache must fail")
	}
}

func TestPPRBatchCancelMidCohort(t *testing.T) {
	m, _ := testPPRManager(t, Options{Workers: 1, TTL: time.Minute})
	started := make(chan string)
	release := make(chan struct{})
	var once sync.Once
	m.hookBeforePPRConfig = func(rankspec.PPRSpec) {
		once.Do(func() {
			started <- "first"
			<-release
		})
	}
	seeds := make([]int32, 6)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	st, err := m.SubmitPPR(PPRBatchSpec{Graph: "g", Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	st = waitTerminal(t, m, st.ID)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if st.Completed >= len(seeds) {
		t.Errorf("all %d seeds completed despite cancellation", st.Completed)
	}
}
