package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"d2pr/internal/pprcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
	"d2pr/internal/telemetry"
)

// AlgoPPR is the Status.Algo value reported by PPR-cohort jobs,
// distinguishing them from parameter sweeps in /v1/jobs listings.
const AlgoPPR = "ppr"

// PPRBatchSpec describes a personalized-ranking cohort: one forward-push
// solve per seed on one graph, all at the same α/ε/k. It is the batch face
// of /v1/{graph}/ppr — every computed top-k lands in the PPR cache, so
// warming a cohort of user seeds overnight makes the next morning's
// synchronous requests cache hits.
type PPRBatchSpec struct {
	// Graph names the registry entry to solve over.
	Graph string `json:"graph"`
	// Seeds lists the cohort's seed nodes. Required, duplicate-free; one
	// result row is produced per seed.
	Seeds []int32 `json:"seeds"`
	// Alpha, Epsilon, and K parameterize every solve in the cohort; zero
	// values select the serving defaults (core.DefaultAlpha,
	// core.DefaultPPREpsilon, rankspec.DefaultPPRK).
	Alpha   float64 `json:"alpha,omitempty"`
	Epsilon float64 `json:"eps,omitempty"`
	K       int     `json:"k,omitempty"`
}

// withDefaults returns a copy with zero parameters replaced by the serving
// defaults — the same defaults the synchronous endpoint applies, so a cohort
// row and a later plain GET share a cache key.
func (sp PPRBatchSpec) withDefaults() PPRBatchSpec {
	def := rankspec.NewPPR(sp.Graph, 0)
	if sp.Alpha == 0 {
		sp.Alpha = def.Alpha
	}
	if sp.Epsilon == 0 {
		sp.Epsilon = def.Epsilon
	}
	if sp.K == 0 {
		sp.K = def.K
	}
	return sp
}

// Validate checks the cohort after defaulting. Duplicate and negative seeds
// are rejected outright — a duplicate is almost certainly a caller bug
// (deduplicating silently would return fewer rows than seeds submitted), and
// the error names the offender so the caller can fix the list. Seed upper
// bounds need the materialized graph and are re-checked by ValidateWith.
func (sp PPRBatchSpec) Validate() error {
	sp = sp.withDefaults()
	if sp.Graph == "" {
		return fmt.Errorf("jobs: ppr cohort names no graph")
	}
	if len(sp.Seeds) == 0 {
		return fmt.Errorf("jobs: ppr cohort has no seeds")
	}
	if len(sp.Seeds) > MaxGridSize {
		return fmt.Errorf("jobs: ppr cohort of %d seeds exceeds max %d", len(sp.Seeds), MaxGridSize)
	}
	seen := make(map[int32]bool, len(sp.Seeds))
	for i, sd := range sp.Seeds {
		if sd < 0 {
			return fmt.Errorf("jobs: seed %d (position %d) is negative", sd, i)
		}
		if seen[sd] {
			return fmt.Errorf("jobs: duplicate seed %d (position %d) in cohort", sd, i)
		}
		seen[sd] = true
	}
	// One probe spec validates the shared α/ε/k ranges.
	probe := rankspec.PPRSpec{Graph: sp.Graph, Seed: sp.Seeds[0], Alpha: sp.Alpha, Epsilon: sp.Epsilon, K: sp.K}
	if err := probe.Validate(-1); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// ValidateWith performs the snapshot-dependent half of validation: seed
// upper bounds against the real node count.
func (sp PPRBatchSpec) ValidateWith(snap *registry.Snapshot) error {
	n := snap.Graph.NumNodes()
	for _, sd := range sp.Seeds {
		if int(sd) >= n {
			return fmt.Errorf("seed %d out of range for %d nodes", sd, n)
		}
	}
	return nil
}

// Expand materializes one PPRSpec per seed, in submission order.
func (sp PPRBatchSpec) Expand() []rankspec.PPRSpec {
	sp = sp.withDefaults()
	out := make([]rankspec.PPRSpec, len(sp.Seeds))
	for i, sd := range sp.Seeds {
		out[i] = rankspec.PPRSpec{Graph: sp.Graph, Seed: sd, Alpha: sp.Alpha, Epsilon: sp.Epsilon, K: sp.K}
	}
	return out
}

// SubmitPPR validates and enqueues a PPR cohort, returning the queued job's
// status. The cohort executes on the same worker pool, job table, TTL
// retention, and streaming plumbing as parameter sweeps.
func (m *Manager) SubmitPPR(spec PPRBatchSpec) (Status, error) {
	return m.SubmitPPRTraced(spec, "")
}

// SubmitPPRTraced is SubmitPPR with a request ID attached to the job record
// (see SubmitTraced).
func (m *Manager) SubmitPPRTraced(spec PPRBatchSpec, requestID string) (Status, error) {
	if m.opts.PPRCache == nil {
		return Status{}, errors.New("jobs: manager has no PPR cache configured")
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		requestID: requestID,
		pprSpec:   &spec,
		pprSpecs:  spec.Expand(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		created:   time.Now(),
	}
	return m.enqueue(j)
}

// runPPR executes a cohort job: resolve the graph once, bound-check the
// seeds against it, then fan the seeds out over the shared worker pool.
func (m *Manager) runPPR(j *job) {
	snap, err := m.opts.Resolve(j.pprSpec.Graph)
	if err == nil {
		err = j.pprSpec.ValidateWith(snap)
	}
	if err != nil {
		m.finishJob(j, err.Error())
		return
	}
	m.fanOut(j, len(j.pprSpecs), func(i int) ConfigResult {
		spec := j.pprSpecs[i]
		if m.hookBeforePPRConfig != nil {
			m.hookBeforePPRConfig(spec)
		}
		return runPPRConfig(j.ctx, snap, spec, m.opts.PPRCache, m.opts.Telemetry)
	}, func(i int) ConfigResult {
		spec := j.pprSpecs[i]
		seed := spec.Seed
		return ConfigResult{Config: string(spec.CacheKey()), Seed: &seed, PPRSpec: &spec, Skipped: true, Error: "cancelled"}
	})
}

// runPPRConfig executes one seed through the PPR cache and builds its
// retained result row. ctx bounds this seed's wait and (if it is the last
// interested party) its solve. The cached compact rows are expanded to full
// ranking entries here (O(k)); the cache itself never stores degrees or
// ranks. tel, when non-nil, receives the push statistics from inside the
// compute closure; the probe is read only on the leader-success path, as in
// runConfig.
func runPPRConfig(ctx context.Context, snap *registry.Snapshot, spec rankspec.PPRSpec, cache *pprcache.Cache, tel *telemetry.Registry) ConfigResult {
	started := time.Now()
	// Epoch-keyed like runConfig: the cache key carries the snapshot epoch,
	// the wire-visible Config string does not.
	key := spec.CacheKeyFor(snap)
	var probe telemetry.SolveStats
	rows, cached, err := cache.Get(ctx, key, func(solveCtx context.Context) ([]pprcache.Entry, error) {
		entries, st, cerr := spec.ComputeStats(solveCtx, snap)
		if cerr != nil {
			if tel != nil {
				tel.RecordSolveError(snap.Name)
			}
			return nil, cerr
		}
		if tel != nil {
			tel.RecordSolve(snap.Name, st)
		}
		probe = st
		return entries, nil
	})
	seed := spec.Seed
	res := ConfigResult{Config: string(spec.CacheKey()), Seed: &seed, PPRSpec: &spec, Cached: cached}
	if err != nil {
		res.Error = err.Error()
	} else {
		if !cached {
			res.Pushes = probe.Pushes
			res.Residual = probe.Residual
			res.Converged = probe.Converged
		}
		res.Top = rankspec.PPREntries(snap.Graph, rows)
	}
	res.ElapsedMs = time.Since(started).Seconds() * 1000
	return res
}
