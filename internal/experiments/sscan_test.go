package experiments

import "fmt"

// sscan parses a float from a table cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
