// Package experiments regenerates every table and figure in the paper's
// evaluation (§4) from the synthetic data graphs. Each experiment returns a
// renderable Result so the CLI, the benchmarks, and the tests share one code
// path.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Result is the output of one experiment (one paper table or figure).
type Result struct {
	// ID is the experiment identifier, e.g. "table1" or "fig2".
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Sections hold one table per figure panel (the paper's multi-panel
	// figures become multiple sections).
	Sections []Section
}

// Section is a single rendered table with optional notes.
type Section struct {
	Heading string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the result as aligned text tables.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for i := range r.Sections {
		if err := r.Sections[i].render(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Section) render(w io.Writer) error {
	if s.Heading != "" {
		if _, err := fmt.Fprintf(w, "\n-- %s --\n", s.Heading); err != nil {
			return err
		}
	}
	widths := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		widths[i] = len(c)
	}
	for _, row := range s.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(s.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range s.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, note := range s.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// fmtF formats a float compactly for table cells.
func fmtF(x float64) string { return fmt.Sprintf("%.4f", x) }

// fmtP formats a de-coupling weight (short form).
func fmtP(x float64) string {
	s := fmt.Sprintf("%.1f", x)
	return strings.TrimSuffix(s, ".0")
}
