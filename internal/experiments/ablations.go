package experiments

import (
	"fmt"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/stats"
)

// Ablations compares the design choices DESIGN.md calls out, on the Group-A
// actor graph where de-coupling matters most:
//
//  1. D2PR's transition-matrix modification vs the degree-biased
//     teleportation of the paper's reference [2];
//  2. D2PR at its operating point vs the classic significance baselines
//     (degree, HITS authorities, sampled closeness/betweenness);
//  3. power iteration vs Gauss–Seidel sweeps (solver equivalence+cost).
//
// Each correlation carries a 95% bootstrap confidence interval so that
// "method X beats method Y" claims are separable from sampling noise.
func Ablations(r *Runner) (*Result, error) {
	d, err := r.Graph(dataset.IMDBActorActor)
	if err != nil {
		return nil, err
	}
	g := d.Unweighted()
	opts := r.solverOpts(DefaultAlpha)

	res := &Result{ID: "ablations", Title: "Design-choice ablations (Group-A actor graph)"}

	// 1+2: significance prediction quality per method.
	sec := Section{
		Heading: "significance correlation with 95% bootstrap CI",
		Columns: []string{"method", "corr(scores, significance)"},
	}
	addRow := func(name string, scores []float64) error {
		ci, err := stats.SpearmanBootstrap(scores, d.Significance, 0.05, 400, 7)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		sec.Rows = append(sec.Rows, []string{name, ci.String()})
		return nil
	}
	for _, p := range []float64{0.5, 1, 1.5} {
		dec, err := core.D2PR(g, p, opts)
		if err != nil {
			return nil, err
		}
		if err := addRow(fmt.Sprintf("d2pr p=%g", p), dec.Scores); err != nil {
			return nil, err
		}
	}
	for _, q := range []float64{1, 2} {
		bt, err := core.DegreeBiasedTeleport(g, q, opts)
		if err != nil {
			return nil, err
		}
		if err := addRow(fmt.Sprintf("biased-teleport q=%g (ref [2])", q), bt.Scores); err != nil {
			return nil, err
		}
	}
	pr, err := core.PageRank(g, opts)
	if err != nil {
		return nil, err
	}
	if err := addRow("pagerank (p=0)", pr.Scores); err != nil {
		return nil, err
	}
	if err := addRow("degree centrality", core.DegreeCentrality(g)); err != nil {
		return nil, err
	}
	hits, err := core.HITS(g, opts)
	if err != nil {
		return nil, err
	}
	if err := addRow("hits authorities", hits.Authorities); err != nil {
		return nil, err
	}
	if err := addRow("closeness (sampled)", core.ClosenessCentrality(g, 128, 7)); err != nil {
		return nil, err
	}
	if err := addRow("betweenness (sampled)", core.BetweennessSampled(g, 128, 7)); err != nil {
		return nil, err
	}
	sec.Notes = append(sec.Notes,
		"transition-matrix de-coupling should dominate; every degree-aligned baseline inherits PageRank's failure on Group-A data")
	res.Sections = append(res.Sections, sec)

	// 3: solver equivalence and sweep counts.
	tr := core.DegreeDecoupled(g, 1)
	power, err := core.Solve(tr, opts)
	if err != nil {
		return nil, err
	}
	gs, err := core.SolveGaussSeidel(tr, opts)
	if err != nil {
		return nil, err
	}
	maxDiff := 0.0
	for i := range power.Scores {
		d := power.Scores[i] - gs.Scores[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	res.Sections = append(res.Sections, Section{
		Heading: "solver ablation (same fixpoint, different sweeps)",
		Columns: []string{"solver", "iterations", "converged"},
		Rows: [][]string{
			{"power iteration", fmt.Sprint(power.Iterations), fmt.Sprint(power.Converged)},
			{"gauss-seidel (alternating)", fmt.Sprint(gs.Iterations), fmt.Sprint(gs.Converged)},
		},
		Notes: []string{fmt.Sprintf("max |power − gauss-seidel| = %.3g", maxDiff)},
	})
	return res, nil
}
