package experiments

import (
	"strings"
	"testing"
)

func TestAblationsD2PRDominates(t *testing.T) {
	res, err := Ablations(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(res.Sections))
	}
	// Parse "point [lo, hi]" cells; collect the best D2PR point and the
	// best non-D2PR point.
	var bestD2PR, bestOther float64 = -2, -2
	for _, row := range res.Sections[0].Rows {
		var point float64
		if _, err := sscan(strings.Fields(row[1])[0], &point); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if strings.HasPrefix(row[0], "d2pr") {
			if point > bestD2PR {
				bestD2PR = point
			}
		} else if point > bestOther {
			bestOther = point
		}
	}
	if bestD2PR <= bestOther {
		t.Errorf("best D2PR %v must beat best baseline %v on Group-A data", bestD2PR, bestOther)
	}
	if bestD2PR <= 0 {
		t.Errorf("best D2PR %v must be positive", bestD2PR)
	}
	// Solver section: both converged, same fixpoint.
	for _, row := range res.Sections[1].Rows {
		if row[2] != "true" {
			t.Errorf("solver %s did not converge", row[0])
		}
	}
}

func TestAlphaFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("4-alpha sweep over three graphs")
	}
	res, err := Figure6(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 3 {
		t.Fatalf("fig6 sections = %d, want 3 Group-A graphs", len(res.Sections))
	}
	for _, sec := range res.Sections {
		if len(sec.Columns) != 5 { // p + 4 alphas
			t.Errorf("%s: columns = %d, want 5", sec.Heading, len(sec.Columns))
		}
		if len(sec.Rows) != 17 {
			t.Errorf("%s: rows = %d, want 17 p values", sec.Heading, len(sec.Rows))
		}
		// Grouping must be preserved across α (paper §4.4): the peak stays
		// at p > 0 for every α column.
		ps := PSweep()
		for col := 1; col <= 4; col++ {
			rhos := parseColumn(t, sec, col)
			if pk, _ := Peak(ps, rhos); pk <= 0 {
				t.Errorf("%s col %d: peak at p=%v, want > 0 for all α", sec.Heading, col, pk)
			}
		}
	}
}

func TestBetaFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("5-beta sweep over three graphs")
	}
	res, err := Figure9(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	ps := PSweep()
	for _, sec := range res.Sections {
		if len(sec.Columns) != 6 { // p + 5 betas
			t.Fatalf("%s: columns = %d, want 6", sec.Heading, len(sec.Columns))
		}
		// β=0 (full de-coupling, col 1) must reach a higher peak than β=1
		// (pure connection strength, col 5) on Group-A weighted graphs —
		// the paper's §4.5 headline.
		_, peak0 := Peak(ps, parseColumn(t, sec, 1))
		_, peak1 := Peak(ps, parseColumn(t, sec, 5))
		if peak0 <= peak1 {
			t.Errorf("%s: β=0 peak %v must beat β=1 peak %v", sec.Heading, peak0, peak1)
		}
	}
}
