package experiments

import (
	"fmt"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// Panel membership of the paper's figure groups (§4.3).
var (
	groupAGraphs = []string{dataset.IMDBActorActor, dataset.EpinionsCommenter, dataset.EpinionsProductProd}
	groupBGraphs = []string{dataset.DBLPAuthorAuthor, dataset.IMDBMovieMovie}
	groupCGraphs = []string{dataset.DBLPArticleArticle, dataset.LastfmListener, dataset.LastfmArtistArtist}
)

// Figure1 reproduces Figure 1: the worked transition-probability example.
// Node A has neighbors B (degree 2), C (degree 3), and D (degree 1); the
// table shows the transition probabilities from A under p = 0, 2, -2.
func Figure1(r *Runner) (*Result, error) {
	// The sample graph of the paper: A-B, A-C, A-D, B-C, C-E, E-F.
	names := []string{"A", "B", "C", "D", "E", "F"}
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		return nil, err
	}
	ps := []float64{0, 2, -2}
	trans := make([]*core.Transition, len(ps))
	for i, p := range ps {
		trans[i] = core.DegreeDecoupled(g, p)
	}
	const a = int32(0)
	cols := []string{"dest v_j", "deg(v_j)"}
	for _, p := range ps {
		cols = append(cols, "P(A→v_j)@p="+fmtP(p))
	}
	var rows [][]string
	nb := g.Neighbors(a)
	for j := range nb {
		v := nb[j]
		row := []string{names[v], fmt.Sprint(g.Degree(v))}
		for i := range ps {
			row = append(row, fmt.Sprintf("%.2f", trans[i].ProbsFrom(a)[j]))
		}
		rows = append(rows, row)
	}
	return &Result{
		ID:    "fig1",
		Title: "Transition probabilities from node A under degree de-coupling",
		Sections: []Section{{
			Columns: cols,
			Rows:    rows,
			Notes: []string{
				"paper: p=0 → 0.33/0.33/0.33, p=2 → 0.18/0.08/0.74, p=-2 → 0.29/0.64/0.07",
			},
		}},
	}, nil
}

// groupFigure builds a Figures-2/3/4-style result: one section per graph in
// the group, sweeping p at the default α on the unweighted graphs.
func groupFigure(r *Runner, id, title string, names []string, expect string) (*Result, error) {
	ps := PSweep()
	res := &Result{ID: id, Title: title}
	for _, name := range names {
		d, err := r.Graph(name)
		if err != nil {
			return nil, err
		}
		g := d.Unweighted()
		rhos, err := r.CorrelationSweep(g, d.Significance, DefaultAlpha, ps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		sec := Section{
			Heading: fmt.Sprintf("%s (unweighted graph) — %s", d.Name, d.SignificanceMeaning),
			Columns: []string{"p", "corr(D2PR ranks, significance)"},
		}
		for i, p := range ps {
			sec.Rows = append(sec.Rows, []string{fmtP(p), fmtF(rhos[i])})
		}
		peakP, peakRho := Peak(ps, rhos)
		conv := rhos[indexOfP(ps, 0)]
		sec.Notes = append(sec.Notes,
			fmt.Sprintf("conventional PageRank (p=0): %s; peak %.4f at p=%s; expected: %s",
				fmtF(conv), peakRho, fmtP(peakP), expect))
		res.Sections = append(res.Sections, sec)
	}
	return res, nil
}

func indexOfP(ps []float64, p float64) int {
	for i, v := range ps {
		if v == p {
			return i
		}
	}
	return 0
}

// Figure2 reproduces Figure 2 (Application Group A: degree penalization
// helps; optimal p > 0).
func Figure2(r *Runner) (*Result, error) {
	return groupFigure(r, "fig2",
		"Group A: corr(D2PR, significance) vs p — penalization optimal",
		groupAGraphs, "peak at p≈0.5 (product-product: plateau for large p, negative at p=0)")
}

// Figure3 reproduces Figure 3 (Application Group B: conventional PageRank is
// ideal; optimal p = 0).
func Figure3(r *Runner) (*Result, error) {
	return groupFigure(r, "fig3",
		"Group B: corr(D2PR, significance) vs p — conventional PageRank optimal",
		groupBGraphs, "peak at p=0, sharp degradation for p<0")
}

// Figure4 reproduces Figure 4 (Application Group C: degree boosting helps;
// optimal p < 0).
func Figure4(r *Runner) (*Result, error) {
	return groupFigure(r, "fig4",
		"Group C: corr(D2PR, significance) vs p — boosting optimal",
		groupCGraphs, "peak near p≈-1, stable plateau for p<0")
}

// Figure5 reproduces Figure 5: the direct Spearman correlation between node
// degrees and application-specific significances for every data graph,
// grouped by application group.
func Figure5(r *Runner) (*Result, error) {
	all, err := r.AllGraphs()
	if err != nil {
		return nil, err
	}
	byGroup := map[dataset.Group][]*dataset.DataGraph{}
	for _, d := range all {
		byGroup[d.Group] = append(byGroup[d.Group], d)
	}
	res := &Result{
		ID:    "fig5",
		Title: "Correlation between node degrees and application significances",
	}
	for _, grp := range []dataset.Group{dataset.GroupA, dataset.GroupB, dataset.GroupC} {
		sec := Section{
			Heading: fmt.Sprintf("group %s (optimal %s)", grp, map[dataset.Group]string{
				dataset.GroupA: "p > 0", dataset.GroupB: "p = 0", dataset.GroupC: "p < 0",
			}[grp]),
			Columns: []string{"graph", "corr(degree, significance)"},
		}
		for _, d := range byGroup[grp] {
			g := d.Unweighted()
			deg := make([]float64, g.NumNodes())
			for i := range deg {
				deg[i] = float64(g.Degree(int32(i)))
			}
			rho := stats.Spearman(deg, d.Significance)
			sec.Rows = append(sec.Rows, []string{d.Name, fmtF(rho)})
		}
		res.Sections = append(res.Sections, sec)
	}
	res.Sections[len(res.Sections)-1].Notes = []string{
		"paper Figure 5: Group-A graphs negative (product-product most negative), Group B mildly positive, Group C positive",
	}
	return res, nil
}

// alphaFigure builds a Figures-6/7/8-style result: p sweep × α sweep on the
// unweighted graphs of one group.
func alphaFigure(r *Runner, id, title string, names []string) (*Result, error) {
	ps := PSweep()
	alphas := Alphas()
	res := &Result{ID: id, Title: title}
	for _, name := range names {
		d, err := r.Graph(name)
		if err != nil {
			return nil, err
		}
		g := d.Unweighted()
		cols := []string{"p"}
		series := make([][]float64, len(alphas))
		for ai, alpha := range alphas {
			cols = append(cols, fmt.Sprintf("rho@alpha=%.2f", alpha))
			series[ai], err = r.CorrelationSweep(g, d.Significance, alpha, ps)
			if err != nil {
				return nil, fmt.Errorf("%s alpha=%v: %w", name, alpha, err)
			}
		}
		sec := Section{Heading: d.Name + " (unweighted graph)", Columns: cols}
		for i, p := range ps {
			row := []string{fmtP(p)}
			for ai := range alphas {
				row = append(row, fmtF(series[ai][i]))
			}
			sec.Rows = append(sec.Rows, row)
		}
		for ai, alpha := range alphas {
			pk, rho := Peak(ps, series[ai])
			sec.Notes = append(sec.Notes, fmt.Sprintf("alpha=%.2f: peak %.4f at p=%s", alpha, rho, fmtP(pk)))
		}
		res.Sections = append(res.Sections, sec)
	}
	return res, nil
}

// Figure6 reproduces Figure 6: p × α interplay for Group A.
func Figure6(r *Runner) (*Result, error) {
	return alphaFigure(r, "fig6", "Group A: relationship between p and alpha", groupAGraphs)
}

// Figure7 reproduces Figure 7: p × α interplay for Group B.
func Figure7(r *Runner) (*Result, error) {
	return alphaFigure(r, "fig7", "Group B: relationship between p and alpha", groupBGraphs)
}

// Figure8 reproduces Figure 8: p × α interplay for Group C.
func Figure8(r *Runner) (*Result, error) {
	return alphaFigure(r, "fig8", "Group C: relationship between p and alpha", groupCGraphs)
}

// betaFigure builds a Figures-9/10/11-style result: p sweep × β sweep on the
// weighted graphs of one group at the default α.
func betaFigure(r *Runner, id, title string, names []string) (*Result, error) {
	ps := PSweep()
	betas := Betas()
	res := &Result{ID: id, Title: title}
	for _, name := range names {
		d, err := r.Graph(name)
		if err != nil {
			return nil, err
		}
		g := d.Weighted
		cols := []string{"p"}
		series := make([][]float64, len(betas))
		for bi, beta := range betas {
			cols = append(cols, fmt.Sprintf("rho@beta=%.2f", beta))
			series[bi], err = r.BlendedSweep(g, d.Significance, DefaultAlpha, beta, ps)
			if err != nil {
				return nil, fmt.Errorf("%s beta=%v: %w", name, beta, err)
			}
		}
		sec := Section{
			Heading: fmt.Sprintf("%s (weighted graph; edge weight: %s)", d.Name, d.EdgeMeaning),
			Columns: cols,
		}
		for i, p := range ps {
			row := []string{fmtP(p)}
			for bi := range betas {
				row = append(row, fmtF(series[bi][i]))
			}
			sec.Rows = append(sec.Rows, row)
		}
		for bi, beta := range betas {
			pk, rho := Peak(ps, series[bi])
			sec.Notes = append(sec.Notes, fmt.Sprintf("beta=%.2f: peak %.4f at p=%s", beta, rho, fmtP(pk)))
		}
		res.Sections = append(res.Sections, sec)
	}
	return res, nil
}

// Figure9 reproduces Figure 9: p × β interplay for Group A (weighted).
func Figure9(r *Runner) (*Result, error) {
	return betaFigure(r, "fig9", "Group A: relationship between p and beta (weighted graphs)", groupAGraphs)
}

// Figure10 reproduces Figure 10: p × β interplay for Group B (weighted).
func Figure10(r *Runner) (*Result, error) {
	return betaFigure(r, "fig10", "Group B: relationship between p and beta (weighted graphs)", groupBGraphs)
}

// Figure11 reproduces Figure 11: p × β interplay for Group C (weighted).
func Figure11(r *Runner) (*Result, error) {
	return betaFigure(r, "fig11", "Group C: relationship between p and beta (weighted graphs)", groupCGraphs)
}
