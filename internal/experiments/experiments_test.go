package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"d2pr/internal/dataset"
)

// testRunner generates small graphs and solves at a relaxed tolerance so the
// full experiment suite stays fast under `go test`.
func testRunner() *Runner {
	r := NewRunner(dataset.Config{Scale: 0.25, Seed: 42})
	r.Tol = 1e-8
	return r
}

func TestSweepConstants(t *testing.T) {
	ps := PSweep()
	if len(ps) != 17 || ps[0] != -4 || ps[len(ps)-1] != 4 {
		t.Errorf("PSweep = %v, want -4..4 step 0.5", ps)
	}
	if len(Alphas()) != 4 || len(Betas()) != 5 {
		t.Errorf("sweep sizes: alphas %d betas %d", len(Alphas()), len(Betas()))
	}
	if DefaultAlpha != 0.85 {
		t.Errorf("default alpha = %v", DefaultAlpha)
	}
}

func TestPeak(t *testing.T) {
	ps := []float64{-1, 0, 1}
	p, rho := Peak(ps, []float64{0.1, 0.5, 0.3})
	if p != 0 || rho != 0.5 {
		t.Errorf("Peak = %v/%v", p, rho)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := testRunner()
	a, err := r.Graph(dataset.IMDBActorActor)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Graph(dataset.IMDBActorActor)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("runner must cache generated graphs")
	}
	if _, err := r.Graph("bogus"); err == nil {
		t.Error("unknown graph must error")
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	res, err := Figure1(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Sections[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 neighbors of A", len(rows))
	}
	// Columns: dest, deg, p=0, p=2, p=-2. Paper values (B, C, D):
	want := [][]string{
		{"B", "2", "0.33", "0.18", "0.29"},
		{"C", "3", "0.33", "0.08", "0.64"},
		{"D", "1", "0.33", "0.73", "0.07"},
	}
	for i, w := range want {
		for j, cell := range w {
			if rows[i][j] != cell {
				t.Errorf("row %d col %d = %q, want %q", i, j, rows[i][j], cell)
			}
		}
	}
}

func TestTable1HighCorrelations(t *testing.T) {
	res, err := Table1(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Sections[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		var rho float64
		if _, err := fmtSscan(row[1], &rho); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		// The paper reports 0.848–0.997; the headline claim is "tightly
		// coupled", i.e. clearly above 0.7 on every graph.
		if rho < 0.7 {
			t.Errorf("%s: PageRank–degree ρ = %v, want ≥ 0.7", row[0], rho)
		}
	}
}

func TestTable2RankMovement(t *testing.T) {
	res, err := Table2(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Sections[0].Rows
	// First row is the top-degree node: rank at p=2 (col 5) must be much
	// worse than rank at p=-2 (col 3). Columns: id, degree, p=-4, -2, 0, 2, 4.
	var rTopBoost, rTopPen float64
	if _, err := fmtSscan(rows[0][3], &rTopBoost); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(rows[0][5], &rTopPen); err != nil {
		t.Fatal(err)
	}
	if rTopPen <= rTopBoost {
		t.Errorf("top-degree node: rank at p=2 (%v) must exceed rank at p=-2 (%v)", rTopPen, rTopBoost)
	}
	// Last row is a minimum-degree node: penalization must improve its rank.
	last := rows[len(rows)-1]
	var rLowBoost, rLowPen float64
	if _, err := fmtSscan(last[3], &rLowBoost); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(last[5], &rLowPen); err != nil {
		t.Fatal(err)
	}
	if rLowPen >= rLowBoost {
		t.Errorf("low-degree node: rank at p=2 (%v) must beat rank at p=-2 (%v)", rLowPen, rLowBoost)
	}
}

func TestTable3AllGraphs(t *testing.T) {
	res, err := Table3(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections[0].Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(res.Sections[0].Rows))
	}
}

func TestFigure2GroupAShape(t *testing.T) {
	r := testRunner()
	res, err := Figure2(r)
	if err != nil {
		t.Fatal(err)
	}
	ps := PSweep()
	for _, sec := range res.Sections {
		rhos := parseColumn(t, sec, 1)
		peakP, peakRho := Peak(ps, rhos)
		conv := rhos[indexOfP(ps, 0)]
		if peakP <= 0 {
			t.Errorf("%s: peak at p=%v, want > 0 (Group A)", sec.Heading, peakP)
		}
		if peakRho <= conv {
			t.Errorf("%s: peak %v must beat conventional %v", sec.Heading, peakRho, conv)
		}
	}
}

func TestFigure3GroupBShape(t *testing.T) {
	r := testRunner()
	res, err := Figure3(r)
	if err != nil {
		t.Fatal(err)
	}
	ps := PSweep()
	for _, sec := range res.Sections {
		rhos := parseColumn(t, sec, 1)
		peakP, peakRho := Peak(ps, rhos)
		conv := rhos[indexOfP(ps, 0)]
		// Group B: conventional PageRank must be within noise of the best
		// (the paper's "p = 0 is optimal"); the sweep must not find a
		// decisively better operating point.
		if peakRho-conv > 0.05 {
			t.Errorf("%s: peak %v at p=%v far above conventional %v", sec.Heading, peakRho, peakP, conv)
		}
		// Strong penalization must hurt.
		if rhos[indexOfP(ps, 4)] >= conv {
			t.Errorf("%s: p=4 (%v) should fall below p=0 (%v)", sec.Heading, rhos[indexOfP(ps, 4)], conv)
		}
	}
}

func TestFigure4GroupCShape(t *testing.T) {
	r := testRunner()
	res, err := Figure4(r)
	if err != nil {
		t.Fatal(err)
	}
	ps := PSweep()
	for _, sec := range res.Sections {
		rhos := parseColumn(t, sec, 1)
		conv := rhos[indexOfP(ps, 0)]
		// Plateau: the p ∈ [-4, 0] segment stays within a narrow band.
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, p := range ps {
			if p <= 0 {
				if rhos[i] < lo {
					lo = rhos[i]
				}
				if rhos[i] > hi {
					hi = rhos[i]
				}
			}
		}
		if hi-lo > 0.12 {
			t.Errorf("%s: p≤0 plateau spread %v, want stable (paper §4.3.3)", sec.Heading, hi-lo)
		}
		// Cliff: strong penalization must collapse the correlation.
		if rhos[indexOfP(ps, 2)] > conv-0.15 {
			t.Errorf("%s: p=2 (%v) must fall well below p=0 (%v)", sec.Heading, rhos[indexOfP(ps, 2)], conv)
		}
	}
}

func TestFigure5SignPattern(t *testing.T) {
	res, err := Figure5(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 3 {
		t.Fatalf("sections = %d, want 3 groups", len(res.Sections))
	}
	// Group A section: all negative. Group C: all positive.
	for _, row := range res.Sections[0].Rows {
		var rho float64
		if _, err := fmtSscan(row[1], &rho); err != nil {
			t.Fatal(err)
		}
		if rho >= 0 {
			t.Errorf("group A %s: corr = %v, want negative", row[0], rho)
		}
	}
	for _, row := range res.Sections[2].Rows {
		var rho float64
		if _, err := fmtSscan(row[1], &rho); err != nil {
			t.Fatal(err)
		}
		if rho <= 0 {
			t.Errorf("group C %s: corr = %v, want positive", row[0], rho)
		}
	}
}

func TestBetaFigureEndpoints(t *testing.T) {
	// Figure 9 on one graph: the β=1 column must be constant in p (pure
	// connection strength ignores p entirely).
	r := testRunner()
	d, err := r.Graph(dataset.EpinionsCommenter)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{-2, 0, 2}
	rhos, err := r.BlendedSweep(d.Weighted, d.Significance, DefaultAlpha, 1.0, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rhos); i++ {
		if math.Abs(rhos[i]-rhos[0]) > 1e-9 {
			t.Errorf("β=1 sweep must be flat: %v", rhos)
			break
		}
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Errorf("registry size = %d, want 15 (3 tables + 11 figures + ablations)", len(reg))
	}
	if _, err := ByID("fig2"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must error")
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Error("IDs() incomplete")
	}
	// Smoke-run the cheap experiments end to end through the renderer.
	r := testRunner()
	var buf bytes.Buffer
	for _, id := range []string{"fig1", "table3", "fig5"} {
		if err := RunAndRender(r, id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"== fig1", "== table3", "== fig5", "epinions-product-product"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestSectionRendering(t *testing.T) {
	res := &Result{
		ID:    "x",
		Title: "demo",
		Sections: []Section{{
			Heading: "h",
			Columns: []string{"a", "long-column"},
			Rows:    [][]string{{"1", "2"}, {"333", "4"}},
			Notes:   []string{"note text"},
		}},
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "-- h --", "long-column", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// parseColumn extracts a float column from a section.
func parseColumn(t *testing.T, sec Section, col int) []float64 {
	t.Helper()
	out := make([]float64, len(sec.Rows))
	for i, row := range sec.Rows {
		if _, err := fmtSscan(row[col], &out[i]); err != nil {
			t.Fatalf("row %d col %d: %q", i, col, row[col])
		}
	}
	return out
}

// fmtSscan is a tiny indirection so tests read cleanly.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}
