package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Runner) (*Result, error)
}

// Registry returns every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "PageRank–degree rank correlation", Table1},
		{"table2", "node ranks across de-coupling weights", Table2},
		{"table3", "data graph statistics", Table3},
		{"fig1", "worked transition example", Figure1},
		{"fig2", "Group A p-sweep", Figure2},
		{"fig3", "Group B p-sweep", Figure3},
		{"fig4", "Group C p-sweep", Figure4},
		{"fig5", "degree–significance correlations", Figure5},
		{"fig6", "Group A p×alpha", Figure6},
		{"fig7", "Group B p×alpha", Figure7},
		{"fig8", "Group C p×alpha", Figure8},
		{"fig9", "Group A p×beta (weighted)", Figure9},
		{"fig10", "Group B p×beta (weighted)", Figure10},
		{"fig11", "Group C p×beta (weighted)", Figure11},
		{"ablations", "design-choice ablations with bootstrap CIs", Ablations},
	}
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}

// RunAndRender executes the experiment with the given id and renders it to w.
func RunAndRender(r *Runner, id string, w io.Writer) error {
	e, err := ByID(id)
	if err != nil {
		return err
	}
	res, err := e.Run(r)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	return res.Render(w)
}

// RunAll executes every experiment in paper order, rendering each to w.
func RunAll(r *Runner, w io.Writer) error {
	for _, e := range Registry() {
		res, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if err := res.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
