package experiments

import (
	"fmt"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// Table1 reproduces Table 1: Spearman's rank correlation between node-degree
// ranks and PageRank-score ranks for the listener (Last.fm friendship),
// article (DBLP co-author), and movie (IMDB co-contributor) graphs. The
// paper reports 0.988, 0.997, 0.848 — the headline evidence that PageRank is
// tightly coupled to degree.
func Table1(r *Runner) (*Result, error) {
	rows := [][]string{}
	for _, spec := range []struct{ label, name string }{
		{"Listener Graph (friendship edges, Last.fm)", dataset.LastfmListener},
		{"Article Graph (co-author edges, DBLP)", dataset.DBLPArticleArticle},
		{"Movie Graph (co-contributor edges, IMDB)", dataset.IMDBMovieMovie},
	} {
		d, err := r.Graph(spec.name)
		if err != nil {
			return nil, err
		}
		g := d.Unweighted()
		res, err := core.PageRank(g, r.solverOpts(DefaultAlpha))
		if err != nil {
			return nil, err
		}
		deg := make([]float64, g.NumNodes())
		for i := range deg {
			deg[i] = float64(g.Degree(int32(i)))
		}
		rho := stats.Spearman(res.Scores, deg)
		rows = append(rows, []string{spec.label, fmtF(rho)})
	}
	return &Result{
		ID:    "table1",
		Title: "Spearman correlation between degree ranks and PageRank ranks",
		Sections: []Section{{
			Columns: []string{"data graph", "corr(PageRank, degree)"},
			Rows:    rows,
			Notes: []string{
				"paper reports 0.988 (listener), 0.997 (article), 0.848 (movie)",
			},
		}},
	}, nil
}

// Table2 reproduces Table 2: competition ranks of extreme-degree nodes under
// D2PR for de-coupling weights p ∈ {-4, -2, 0, 2, 4}. High-degree nodes sink
// as p grows and degree-1 nodes rise, mirroring the paper's sample rows.
func Table2(r *Runner) (*Result, error) {
	d, err := r.Graph(dataset.DBLPArticleArticle)
	if err != nil {
		return nil, err
	}
	g := d.Unweighted()
	ps := []float64{-4, -2, 0, 2, 4}
	ranks := make([][]int, len(ps))
	for i, p := range ps {
		res, err := core.D2PR(g, p, r.solverOpts(DefaultAlpha))
		if err != nil {
			return nil, err
		}
		ranks[i] = stats.CompetitionRanks(res.Scores)
	}
	top := graph.TopDegreeNodes(g, 2)
	bottom := graph.BottomDegreeNodes(g, 2)
	cols := []string{"node id", "node degree"}
	for _, p := range ps {
		cols = append(cols, "rank@p="+fmtP(p))
	}
	var rows [][]string
	addRow := func(u int32) {
		row := []string{fmt.Sprint(u), fmt.Sprint(g.Degree(u))}
		for i := range ps {
			row = append(row, fmt.Sprint(ranks[i][u]))
		}
		rows = append(rows, row)
	}
	for _, u := range top {
		addRow(u)
	}
	rows = append(rows, []string{"...", "...", "...", "...", "...", "...", "..."})
	for _, u := range bottom {
		addRow(u)
	}
	return &Result{
		ID:    "table2",
		Title: "Ranks of extreme-degree nodes for different de-coupling weights p",
		Sections: []Section{{
			Heading: d.Name + " (sample graph)",
			Columns: cols,
			Rows:    rows,
			Notes: []string{
				"p > 0 pushes high-degree nodes down the ranking; p < 0 pulls them up (paper Table 2)",
			},
		}},
	}, nil
}

// Table3 reproduces Table 3: structural statistics of all eight data graphs,
// including the median standard deviation of neighbors' degrees that the
// paper uses to explain Group-B vs Group-C sensitivity to p < 0.
func Table3(r *Runner) (*Result, error) {
	all, err := r.AllGraphs()
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, d := range all {
		s := graph.ComputeStats(d.Unweighted())
		rows = append(rows, []string{
			d.Dataset,
			d.Name,
			fmt.Sprint(s.Nodes),
			fmt.Sprint(s.Edges),
			fmt.Sprintf("%.2f", s.AvgDegree),
			fmt.Sprintf("%.2f", s.DegreeStdDev),
			fmt.Sprintf("%.2f", s.MedianNeighborDegStdDev),
		})
	}
	return &Result{
		ID:    "table3",
		Title: "Data sets and data graphs (structure statistics)",
		Sections: []Section{{
			Columns: []string{
				"data set", "graph", "# nodes", "# edges",
				"avg degree", "stddev degree", "median stddev of neighbors' degrees",
			},
			Rows: rows,
			Notes: []string{
				"Group-B graphs (movie-movie, author-author) should show low median neighbor-degree stddev;",
				"Group-C graphs (article-article, listener-listener, artist-artist) high — paper §4.3.2/4.3.3",
			},
		}},
	}, nil
}
