package experiments

import (
	"fmt"
	"math"
	"sync"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// Runner generates data graphs once and executes experiments against them.
// It is safe for concurrent use by multiple goroutines.
type Runner struct {
	// Data configures the synthetic data graphs (scale, seed).
	Data dataset.Config
	// Tol is the solver convergence tolerance. Correlations are stable to
	// ~1e-4 already at 1e-8, so experiments default to 1e-9 rather than the
	// solver's 1e-10.
	Tol float64
	// Workers is passed to the solver (-1 = GOMAXPROCS).
	Workers int

	mu     sync.Mutex
	graphs map[string]*dataset.DataGraph
}

// NewRunner returns a Runner with experiment defaults.
func NewRunner(data dataset.Config) *Runner {
	return &Runner{Data: data, Tol: 1e-9, Workers: -1, graphs: map[string]*dataset.DataGraph{}}
}

// PSweep returns the paper's default de-coupling sweep: -4 to 4 in 0.5
// steps (§4.1).
func PSweep() []float64 {
	var ps []float64
	for p := -4.0; p <= 4.0+1e-9; p += 0.5 {
		ps = append(ps, math.Round(p*2)/2)
	}
	return ps
}

// Alphas returns the residual-probability sweep used in Figures 6–8. The
// paper varies α between 0.5 and 0.9 with default 0.85.
func Alphas() []float64 { return []float64{0.5, 0.7, 0.85, 0.9} }

// Betas returns the connection-strength mix sweep used in Figures 9–11
// (§4.1: β between 0.0 and 1.0, default 0).
func Betas() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1.0} }

// DefaultAlpha is the paper's default residual probability.
const DefaultAlpha = 0.85

// Graph returns (generating and caching on first use) the named data graph.
func (r *Runner) Graph(name string) (*dataset.DataGraph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.graphs[name]; ok {
		return d, nil
	}
	d, err := dataset.GraphByName(r.Data, name)
	if err != nil {
		return nil, err
	}
	r.graphs[d.Name] = d
	return d, nil
}

// AllGraphs returns all eight paper graphs, cached.
func (r *Runner) AllGraphs() ([]*dataset.DataGraph, error) {
	out := make([]*dataset.DataGraph, 0, 8)
	for _, name := range dataset.GraphNames() {
		d, err := r.Graph(name)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func (r *Runner) solverOpts(alpha float64) core.Options {
	return core.Options{Alpha: alpha, Tol: r.Tol, Workers: r.Workers}
}

// D2PRCorrelation computes Spearman's ρ between D2PR scores (de-coupling
// weight p, residual probability α) on g and the significance vector.
func (r *Runner) D2PRCorrelation(g *graph.Graph, sig []float64, p, alpha float64) (float64, error) {
	res, err := core.D2PR(g, p, r.solverOpts(alpha))
	if err != nil {
		return 0, err
	}
	return stats.Spearman(res.Scores, sig), nil
}

// BlendedCorrelation is D2PRCorrelation for the weighted β-blend of §3.2.3.
func (r *Runner) BlendedCorrelation(g *graph.Graph, sig []float64, p, beta, alpha float64) (float64, error) {
	res, err := core.D2PRBlended(g, p, beta, r.solverOpts(alpha))
	if err != nil {
		return 0, err
	}
	return stats.Spearman(res.Scores, sig), nil
}

// CorrelationSweep evaluates ρ(D2PR, significance) for every p in ps.
func (r *Runner) CorrelationSweep(g *graph.Graph, sig []float64, alpha float64, ps []float64) ([]float64, error) {
	out := make([]float64, len(ps))
	for i, p := range ps {
		rho, err := r.D2PRCorrelation(g, sig, p, alpha)
		if err != nil {
			return nil, fmt.Errorf("p=%v: %w", p, err)
		}
		out[i] = rho
	}
	return out, nil
}

// BlendedSweep evaluates ρ(blended D2PR, significance) for every p in ps at
// a fixed β.
func (r *Runner) BlendedSweep(g *graph.Graph, sig []float64, alpha, beta float64, ps []float64) ([]float64, error) {
	out := make([]float64, len(ps))
	for i, p := range ps {
		rho, err := r.BlendedCorrelation(g, sig, p, beta, alpha)
		if err != nil {
			return nil, fmt.Errorf("p=%v beta=%v: %w", p, beta, err)
		}
		out[i] = rho
	}
	return out, nil
}

// Peak returns the p value maximizing rho and the maximum itself.
func Peak(ps, rhos []float64) (bestP, bestRho float64) {
	bestP, bestRho = math.NaN(), math.Inf(-1)
	for i, rho := range rhos {
		if rho > bestRho {
			bestRho = rho
			bestP = ps[i]
		}
	}
	return bestP, bestRho
}
