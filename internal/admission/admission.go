// Package admission is the serving layer's load-shedding gate: per-graph
// concurrency budgets with a small bounded wait queue, plus request-deadline
// derivation. A solve may only run while holding a slot of its graph's
// budget; when the slots are busy a bounded number of requests wait in line
// (cancellable), and past that the controller sheds with ErrQueueFull — the
// signal the HTTP layer turns into 429 + Retry-After (or a stale cached
// score, when one exists).
//
// The budget is per graph, not global: one graph's cold-solve burst must not
// starve cheap requests on the others — the FolkRank-style multi-tenant
// discipline where one expensive personalization cannot monopolize the
// service. Cache hits and single-flight piggybacks never touch the budget;
// only the compute closure of an actual solve acquires a slot.
package admission

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Acquire when a graph's compute slots and wait
// queue are both saturated — the request should be shed (HTTP 429).
var ErrQueueFull = errors.New("admission: per-graph compute queue is full")

// Defaults for Config fields left zero.
const (
	DefaultMaxConcurrent = 4
	DefaultMaxQueue      = 16
	DefaultMaxTimeout    = time.Minute
)

// Config tunes a Controller. The zero value takes every default.
type Config struct {
	// MaxConcurrent is the number of solves that may run concurrently per
	// graph. 0 means DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueue bounds how many acquisitions may wait for a slot per graph
	// beyond the ones running; arrivals past the bound are shed with
	// ErrQueueFull. 0 means DefaultMaxQueue; negative means no waiting (shed
	// as soon as the slots are busy).
	MaxQueue int
	// Timeout is the deadline applied to a request that does not ask for its
	// own (see Deadline). 0 means no default deadline.
	Timeout time.Duration
	// MaxTimeout caps per-request deadline overrides — a client cannot buy
	// more solver time than the operator allows. 0 means DefaultMaxTimeout.
	MaxTimeout time.Duration
}

// Stats is a point-in-time snapshot of the controller's counters.
type Stats struct {
	MaxConcurrent int `json:"max_concurrent"`
	MaxQueue      int `json:"max_queue"`
	// Admitted counts acquisitions that got a slot (immediately or after
	// waiting); Shed counts acquisitions rejected with ErrQueueFull.
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	// Abandoned counts acquisitions whose context ended while waiting in
	// the queue.
	Abandoned uint64 `json:"abandoned"`
	// Running and QueueDepth are the current slot holders and queued
	// waiters across all graphs.
	Running    int `json:"running"`
	QueueDepth int `json:"queue_depth"`
}

// budget is one graph's admission state. slots is a buffered channel used
// as a counting semaphore; queued counts waiters blocked on it (guarded by
// the controller mutex).
type budget struct {
	slots  chan struct{}
	queued int
}

// Controller hands out per-graph compute slots. All methods are safe for
// concurrent use.
type Controller struct {
	cfg    Config
	mu     sync.Mutex
	graphs map[string]*budget
	stats  Stats
}

// New returns a Controller with cfg's budgets, applying defaults to zero
// fields.
func New(cfg Config) *Controller {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.Timeout > cfg.MaxTimeout {
		cfg.Timeout = cfg.MaxTimeout
	}
	return &Controller{cfg: cfg, graphs: map[string]*budget{}}
}

// budgetFor returns (creating on first use) the named graph's budget.
// Callers hold c.mu.
func (c *Controller) budgetFor(graph string) *budget {
	b, ok := c.graphs[graph]
	if !ok {
		b = &budget{slots: make(chan struct{}, c.cfg.MaxConcurrent)}
		c.graphs[graph] = b
	}
	return b
}

// Acquire claims a compute slot of the named graph's budget, waiting in the
// bounded queue when the slots are busy. It returns a release function that
// must be called exactly once when the solve finishes. When the queue is
// full it sheds immediately with ErrQueueFull; when ctx ends first it
// returns ctx.Err(). The wait honors ctx, so an abandoned solve context
// (every requester gone) also unblocks anyone queued on its behalf.
func (c *Controller) Acquire(ctx context.Context, graph string) (release func(), err error) {
	c.mu.Lock()
	b := c.budgetFor(graph)
	// Fast path: a free slot means no queueing decision to make.
	select {
	case b.slots <- struct{}{}:
		c.stats.Admitted++
		c.stats.Running++
		c.mu.Unlock()
		return func() { c.release(b) }, nil
	default:
	}
	if b.queued >= c.cfg.MaxQueue {
		c.stats.Shed++
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	b.queued++
	c.stats.QueueDepth++
	c.mu.Unlock()

	select {
	case b.slots <- struct{}{}:
		c.mu.Lock()
		b.queued--
		c.stats.QueueDepth--
		c.stats.Admitted++
		c.stats.Running++
		c.mu.Unlock()
		return func() { c.release(b) }, nil
	case <-ctx.Done():
		c.mu.Lock()
		b.queued--
		c.stats.QueueDepth--
		c.stats.Abandoned++
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (c *Controller) release(b *budget) {
	<-b.slots
	c.mu.Lock()
	c.stats.Running--
	c.mu.Unlock()
}

// Deadline derives a request's compute context from its client context: the
// per-request override when given (capped at MaxTimeout), else the
// configured default Timeout, else no deadline. The returned cancel must
// always be called.
func (c *Controller) Deadline(ctx context.Context, override time.Duration) (context.Context, context.CancelFunc) {
	d := c.cfg.Timeout
	if override > 0 {
		d = min(override, c.cfg.MaxTimeout)
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// QueueDepth returns how many acquisitions are currently queued for the named
// graph's budget — the input for deriving a Retry-After hint on shed
// responses: a deeper queue means a longer wait before a retry can help.
func (c *Controller) QueueDepth(graph string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.graphs[graph]; ok {
		return b.queued
	}
	return 0
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.MaxConcurrent = c.cfg.MaxConcurrent
	st.MaxQueue = c.cfg.MaxQueue
	return st
}
