package admission

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAcquireReleaseCycle: slots are reusable and the counters balance.
func TestAcquireReleaseCycle(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 1})
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, err := c.Acquire(context.Background(), "g")
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if st := c.Stats(); st.Running != 2 || st.Admitted != 2 {
		t.Fatalf("stats after two acquires: %+v", st)
	}
	for _, rel := range releases {
		rel()
	}
	if st := c.Stats(); st.Running != 0 {
		t.Fatalf("stats after releases: %+v", st)
	}
	// Slots freed: a new acquire succeeds immediately.
	rel, err := c.Acquire(context.Background(), "g")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel()
}

// TestQueueFullSheds: with the slots busy and the queue occupied, the next
// acquisition is shed immediately with ErrQueueFull rather than blocking.
func TestQueueFullSheds(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	rel, err := c.Acquire(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// Fill the one queue seat with a waiter.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiterErr := make(chan error, 1)
	go func() {
		rel2, err := c.Acquire(waiterCtx, "g")
		if err == nil {
			rel2()
		}
		waiterErr <- err
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })

	// Queue full: shed, not block.
	if _, err := c.Acquire(context.Background(), "g"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := c.Stats(); st.Shed != 1 {
		t.Fatalf("shed counter: %+v", st)
	}

	// The queued waiter is still intact: cancelling it reports ctx.Err().
	cancelWaiter()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter: want Canceled, got %v", err)
	}
	if st := c.Stats(); st.QueueDepth != 0 || st.Abandoned != 1 {
		t.Fatalf("stats after abandon: %+v", st)
	}
}

// TestQueuedWaiterGetsSlot: releasing a slot hands it to the queued waiter.
func TestQueuedWaiterGetsSlot(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 2})
	rel, err := c.Acquire(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan func(), 1)
	go func() {
		rel2, err := c.Acquire(context.Background(), "g")
		if err != nil {
			t.Error(err)
			return
		}
		got <- rel2
	}()
	waitFor(t, func() bool { return c.Stats().QueueDepth == 1 })
	rel()
	select {
	case rel2 := <-got:
		rel2()
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never got the released slot")
	}
}

// TestBudgetsArePerGraph: saturating one graph does not touch another's
// slots.
func TestBudgetsArePerGraph(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	relA, err := c.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer relA()
	// "a" is saturated with no queue: it sheds...
	if _, err := c.Acquire(context.Background(), "a"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull on saturated graph, got %v", err)
	}
	// ...while "b" admits immediately.
	relB, err := c.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatalf("other graph's budget affected: %v", err)
	}
	relB()
}

// TestDeadline: override beats default, the cap beats the override, and no
// configuration means no deadline.
func TestDeadline(t *testing.T) {
	c := New(Config{Timeout: time.Minute, MaxTimeout: time.Hour})
	ctx, cancel := c.Deadline(context.Background(), 0)
	d, ok := ctx.Deadline()
	cancel()
	if !ok || time.Until(d) > time.Minute {
		t.Fatalf("default deadline: ok=%v d=%v", ok, d)
	}

	ctx, cancel = c.Deadline(context.Background(), 2*time.Hour)
	d, ok = ctx.Deadline()
	cancel()
	if !ok || time.Until(d) > time.Hour {
		t.Fatalf("capped override: ok=%v until=%v", ok, time.Until(d))
	}

	none := New(Config{})
	ctx, cancel = none.Deadline(context.Background(), 0)
	_, ok = ctx.Deadline()
	cancel()
	if ok {
		t.Fatal("unconfigured controller applied a deadline")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
