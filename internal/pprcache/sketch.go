package pprcache

import "math/bits"

// cmSketch is a 4-bit count-min sketch: cmRows rows of power-of-two width,
// two counters packed per byte. touch increments a key's counter in every
// row (saturating at 15); estimate reads the minimum across rows, so hash
// collisions can only over-estimate a key's frequency, never erase it.
//
// The sketch ages by halving every counter after a fixed number of touches
// (the tinyLFU "reset"), so frequency estimates reflect recent traffic and a
// seed that was hot an hour ago eventually yields its cache claim.
type cmSketch struct {
	rows    [cmRows][]byte
	mask    uint64
	touches int
	limit   int
}

const cmRows = 4

// newCMSketch sizes a sketch for a shard holding capacity entries: ~8
// counters per resident entry keeps estimate error low at this scale, and
// the aging window is 10× capacity touches.
func newCMSketch(capacity int) cmSketch {
	w := capacity * 8
	if w < 64 {
		w = 64
	}
	if w&(w-1) != 0 {
		w = 1 << bits.Len(uint(w))
	}
	s := cmSketch{mask: uint64(w - 1), limit: capacity * 10}
	if s.limit < 640 {
		s.limit = 640
	}
	for i := range s.rows {
		s.rows[i] = make([]byte, w/2)
	}
	return s
}

// rowIndex derives row i's counter index from the key hash by remixing with
// an odd multiplier per row — four near-independent hash functions from one
// 64-bit input.
func (s *cmSketch) rowIndex(h uint64, i int) uint64 {
	h = (h + uint64(i)*0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
	h ^= h >> 33
	return h & s.mask
}

func (s *cmSketch) get(row int, idx uint64) byte {
	b := s.rows[row][idx>>1]
	if idx&1 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (s *cmSketch) set(row int, idx uint64, v byte) {
	p := &s.rows[row][idx>>1]
	if idx&1 == 0 {
		*p = (*p &^ 0x0f) | v
	} else {
		*p = (*p &^ 0xf0) | v<<4
	}
}

// touch records one access of the key hashing to h.
func (s *cmSketch) touch(h uint64) {
	for i := 0; i < cmRows; i++ {
		idx := s.rowIndex(h, i)
		if v := s.get(i, idx); v < 15 {
			s.set(i, idx, v+1)
		}
	}
	s.touches++
	if s.touches >= s.limit {
		s.age()
	}
}

// estimate returns the sketch's frequency estimate for the key hashing to h.
func (s *cmSketch) estimate(h uint64) byte {
	est := byte(15)
	for i := 0; i < cmRows; i++ {
		if v := s.get(i, s.rowIndex(h, i)); v < est {
			est = v
		}
	}
	return est
}

// age halves every counter — both nibbles of each byte at once: a right
// shift with the inter-nibble carry bits masked off.
func (s *cmSketch) age() {
	s.touches = 0
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] = (row[j] >> 1) & 0x77
		}
	}
}
