package pprcache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func entriesFor(seed int) []Entry {
	return []Entry{{Node: int32(seed), Score: 1}, {Node: int32(seed + 1), Score: 0.5}}
}

func mustGet(t *testing.T, c *Cache, key Key, seed int) ([]Entry, bool) {
	t.Helper()
	val, cached, err := c.Get(context.Background(), key, func(context.Context) ([]Entry, error) { return entriesFor(seed), nil })
	if err != nil {
		t.Fatal(err)
	}
	return val, cached
}

func TestGetCachesAndReportsStatus(t *testing.T) {
	c := New(8, 1)
	val, cached := mustGet(t, c, "a", 1)
	if cached {
		t.Error("first Get must report a compute, not a cache hit")
	}
	if len(val) != 2 || val[0].Node != 1 {
		t.Fatalf("unexpected value %v", val)
	}
	val2, cached := mustGet(t, c, "a", 99)
	if !cached {
		t.Error("second Get must be served from cache")
	}
	if val2[0].Node != 1 {
		t.Errorf("cached value recomputed: %v", val2)
	}
	if got, ok := c.Lookup("a"); !ok || got[0].Node != 1 {
		t.Errorf("Lookup(a) = %v, %v", got, ok)
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Error("Lookup of absent key must miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / len 1", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8, 1)
	boom := errors.New("boom")
	if _, _, err := c.Get(context.Background(), "a", func(context.Context) ([]Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed compute cached; len = %d", c.Len())
	}
	// The key must be retryable.
	if _, cached := mustGet(t, c, "a", 7); cached {
		t.Error("retry after error must recompute")
	}
	if v, ok := c.Lookup("a"); !ok || v[0].Node != 7 {
		t.Errorf("retry result not cached: %v, %v", v, ok)
	}
}

// TestAdmissionKeepsHotKeys is the tinyLFU property: under a stream of
// one-off keys, frequently-touched residents must stay in the cache, and the
// one-off keys must be rejected rather than evicting them.
func TestAdmissionKeepsHotKeys(t *testing.T) {
	c := New(4, 1)
	hot := []Key{"h0", "h1", "h2", "h3"}
	// Make the hot set resident and frequent.
	for round := 0; round < 8; round++ {
		for i, k := range hot {
			mustGet(t, c, k, i)
		}
	}
	// A flood of cold one-off keys, each seen exactly once.
	for i := 0; i < 200; i++ {
		mustGet(t, c, Key(fmt.Sprintf("cold-%d", i)), 1000+i)
	}
	for _, k := range hot {
		if _, ok := c.Lookup(k); !ok {
			t.Errorf("hot key %q evicted by one-off traffic", k)
		}
	}
	st := c.Stats()
	if st.Rejected == 0 {
		t.Error("admission never rejected a one-off key")
	}
	if st.Len > st.Cap {
		t.Errorf("len %d exceeds cap %d", st.Len, st.Cap)
	}
}

// TestNewlyHotKeyEarnsAdmission: a key that keeps recurring must eventually
// beat a resident that is never touched again.
func TestNewlyHotKeyEarnsAdmission(t *testing.T) {
	c := New(2, 1)
	mustGet(t, c, "old0", 0)
	mustGet(t, c, "old1", 1)
	for i := 0; i < 20; i++ {
		c.Get(context.Background(), "riser", func(context.Context) ([]Entry, error) { return entriesFor(9), nil })
	}
	if _, ok := c.Lookup("riser"); !ok {
		t.Error("recurring key never admitted over idle residents")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, 1)
	// Touch each key enough that admission passes on frequency, then verify
	// the least-recently-used resident is the one displaced.
	for i := 0; i < 4; i++ {
		mustGet(t, c, "a", 0)
		mustGet(t, c, "b", 1)
	}
	for i := 0; i < 6; i++ {
		c.sketchTouchForTest("c")
	}
	mustGet(t, c, "a", 0) // refresh a → b is now LRU
	mustGet(t, c, "c", 2)
	if _, ok := c.Lookup("b"); ok {
		t.Error("LRU victim b survived admission of c")
	}
	if _, ok := c.Lookup("a"); !ok {
		t.Error("recently-used a was evicted instead of b")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("no eviction recorded")
	}
}

// sketchTouchForTest bumps a key's frequency without a Get, standing in for
// repeated misses in tests that need a precise admission setup.
func (c *Cache) sketchTouchForTest(key Key) {
	h := hashKey(key)
	s := c.shardFor(h)
	s.mu.Lock()
	s.sketch.touch(h)
	s.mu.Unlock()
}

func TestSingleflightSharesOneCompute(t *testing.T) {
	c := New(64, 4)
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([][]Entry, waiters)
	cachedFlags := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, cached, err := c.Get(context.Background(), "shared", func(context.Context) ([]Entry, error) {
				computes.Add(1)
				<-release
				return entriesFor(42), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], cachedFlags[i] = val, cached
		}(i)
	}
	// Let every goroutine reach the shard before releasing the leader. The
	// leader blocks in compute; waiters block on cl.done; close frees all.
	for computes.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes for one key, want 1", n)
	}
	leaders := 0
	for i := range results {
		if results[i][0].Node != 42 {
			t.Fatalf("waiter %d got %v", i, results[i])
		}
		if !cachedFlags[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d requests reported a compute, want exactly 1", leaders)
	}
	if st := c.Stats(); st.Shared != waiters-1 {
		t.Errorf("Shared = %d, want %d", st.Shared, waiters-1)
	}
}

func TestPanicDoesNotPoisonKey(t *testing.T) {
	c := New(8, 1)
	// The compute runs detached from any single requester, so a panic cannot
	// be re-raised on a caller's goroutine; it surfaces as an error instead.
	_, _, err := c.Get(context.Background(), "p", func(context.Context) ([]Entry, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic must surface as an error, got %v", err)
	}
	// The key must not deadlock or stay poisoned.
	if _, cached := mustGet(t, c, "p", 5); cached {
		t.Error("post-panic Get must recompute")
	}
}

// TestCancelledWaiterDoesNotFailSiblings: a requester abandoning an in-flight
// push gets its own ctx error while the remaining waiter still receives the
// computed rows.
func TestCancelledWaiterDoesNotFailSiblings(t *testing.T) {
	c := New(8, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	compute := func(ctx context.Context) ([]Entry, error) {
		close(entered)
		<-release
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return entriesFor(42), nil
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Get(leaderCtx, "k", compute)
		leaderErr <- err
	}()
	<-entered
	siblingErr := make(chan error, 1)
	siblingVal := make(chan []Entry, 1)
	go func() {
		v, _, err := c.Get(context.Background(), "k", compute)
		siblingVal <- v
		siblingErr <- err
	}()
	for c.Stats().Shared == 0 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter: want Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	close(release)
	if err := <-siblingErr; err != nil {
		t.Fatalf("sibling must get the result, got %v", err)
	}
	if v := <-siblingVal; len(v) == 0 || v[0].Node != 42 {
		t.Fatalf("sibling value = %v", v)
	}
}

// TestAllWaitersGoneCancelsSolve: the detached compute context is cancelled
// once every requester has walked away, so an abandoned push can stop.
func TestAllWaitersGoneCancelsSolve(t *testing.T) {
	c := New(8, 1)
	entered := make(chan struct{})
	cancelled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, "k", func(ctx context.Context) ([]Entry, error) {
			close(entered)
			<-ctx.Done()
			close(cancelled)
			return nil, ctx.Err()
		})
		errCh <- err
	}()
	<-entered
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context never cancelled after the last waiter left")
	}
	// The key is immediately retryable.
	if _, cached := mustGet(t, c, "k", 3); cached {
		t.Error("retry after abandon must recompute")
	}
}

func TestNewNormalizesShape(t *testing.T) {
	cases := []struct {
		capacity, shards int
		wantShards       int
	}{
		{0, 0, DefaultShards},
		{100, 3, 4},  // rounded up to a power of two
		{2, 16, 2},   // shards capped at capacity
		{1024, 8, 8}, // already a power of two
		{-1, -1, DefaultShards},
	}
	for _, tc := range cases {
		c := New(tc.capacity, tc.shards)
		if len(c.shards) != tc.wantShards {
			t.Errorf("New(%d, %d): %d shards, want %d", tc.capacity, tc.shards, len(c.shards), tc.wantShards)
		}
		if st := c.Stats(); st.Cap < tc.capacity {
			t.Errorf("New(%d, %d): cap %d below requested capacity", tc.capacity, tc.shards, st.Cap)
		}
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// Race-detector stress: many goroutines hammering a small cache with
	// overlapping keys, lookups, and stats reads.
	c := New(32, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := Key(fmt.Sprintf("k%d", (w*7+i)%48))
				seed := i
				if _, _, err := c.Get(context.Background(), key, func(context.Context) ([]Entry, error) { return entriesFor(seed), nil }); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					c.Lookup(key)
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}

func TestSketchEstimateAndAging(t *testing.T) {
	s := newCMSketch(8)
	h := hashKey("hot")
	for i := 0; i < 10; i++ {
		s.touch(h)
	}
	if est := s.estimate(h); est < 10 {
		t.Errorf("estimate %d after 10 touches, want ≥ 10", est)
	}
	// Saturation at 15.
	for i := 0; i < 100; i++ {
		s.touch(h)
	}
	if est := s.estimate(h); est != 15 {
		t.Errorf("estimate %d, want saturation at 15", est)
	}
	before := s.estimate(h)
	s.age()
	if after := s.estimate(h); after != before/2 {
		t.Errorf("aging: %d → %d, want halved", before, after)
	}
	if cold := s.estimate(hashKey("never-seen-key-xyz")); cold > 2 {
		t.Errorf("untouched key estimates %d, want ~0", cold)
	}
}
