// Package pprcache is the per-seed result cache of the personalized-ranking
// serving path: a sharded LRU over computed top-k PPR entries, keyed by the
// full personalized configuration (graph, seed, ε, α, k).
//
// It differs from the global-score rankcache in two ways that match the
// per-seed workload:
//
//   - Sharding. Millions of distinct seeds mean the cache is hit from many
//     goroutines with little key overlap; a power-of-two array of
//     independently-locked shards (selected by key hash) keeps unrelated
//     seeds from serializing on one mutex.
//
//   - Frequency-based admission (tinyLFU-style). A global-score cache sees a
//     handful of configurations, so plain LRU works; a per-seed cache sees a
//     heavy-tailed stream where most seeds occur once. Each shard keeps a
//     4-bit count-min sketch of recent key frequencies; when the shard is
//     full, a newly computed entry is admitted only if its estimated
//     frequency exceeds the LRU victim's — so a one-off seed cannot evict a
//     hot one, and a newly-hot seed earns its slot after a few touches. The
//     sketch halves itself periodically so frequencies age.
//
// Concurrent Gets for the same key share one compute (single-flight), exactly
// like rankcache. A cached value is an immutable []Entry shared by every
// reader; callers must not modify it.
package pprcache

import (
	"container/list"
	"context"
	"fmt"
	"math/bits"
	"sync"
)

// Key identifies one personalized-ranking configuration. The serving layer
// builds it (rankspec.PPRSpec.CacheKey) so both the synchronous endpoint and
// batch cohort jobs derive the identical cache identity.
type Key string

// Entry is one cached (node, score) pair of a top-k PPR result, in rank
// order. Degrees and rank numbers are derivable in O(k) at serve time, so
// the cache stores only the 12 bytes per row that a solve actually produces.
type Entry struct {
	Node  int32   `json:"node"`
	Score float64 `json:"score"`
}

// ComputeFunc produces the top-k entries for a key on a cache miss. The
// context is the solve context: detached from any single requester's
// lifetime, cancelled only when every waiter for the key has abandoned the
// flight (see Get).
type ComputeFunc func(ctx context.Context) ([]Entry, error)

// Stats is a point-in-time snapshot of cache effectiveness counters,
// aggregated across shards.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Shared counts requests that piggybacked on another request's in-flight
	// solve (single-flight deduplication).
	Shared    uint64 `json:"shared"`
	Evictions uint64 `json:"evictions"`
	// Rejected counts computed entries the admission policy declined to
	// cache because their estimated frequency did not beat the LRU victim's.
	Rejected uint64 `json:"rejected"`
	// Abandoned counts in-flight solves cancelled because every waiter gave
	// up (request cancellation / deadline) before the solve finished.
	Abandoned uint64 `json:"abandoned"`
	Len       int    `json:"len"`
	Cap       int    `json:"cap"`
	Shards    int    `json:"shards"`
}

// DefaultCapacity is the total entry budget used when New is given a
// non-positive capacity. A cached entry is O(k) ≈ a few hundred bytes, so
// the default keeps the hot tier of a large seed population resident for a
// few MiB.
const DefaultCapacity = 4096

// DefaultShards is the shard count used when New is given a non-positive
// shard count. Must be a power of two.
const DefaultShards = 16

// call is an in-flight computation shared by concurrent requesters. waiters
// counts the requests currently parked on done (guarded by shard.mu); the
// last waiter to abandon cancels the detached solve via cancel.
type call struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	val     []Entry
	err     error
}

// cacheEntry is one resident LRU slot.
type cacheEntry struct {
	key Key
	val []Entry
}

// shard is one independently-locked slice of the cache: an LRU with its own
// frequency sketch and in-flight table.
type shard struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	index    map[Key]*list.Element
	inflight map[Key]*call
	sketch   cmSketch
	stats    Stats
}

// Cache is a sharded, concurrency-safe PPR result cache with tinyLFU-style
// admission and single-flight computation. The zero value is not usable;
// call New.
type Cache struct {
	shards []*shard
	mask   uint64
	// onPanic, when set, observes the recovered value whenever a compute
	// closure panics (before the panic is converted into the flight's error).
	onPanic func(recovered any)
}

// SetOnPanic installs a hook observing recovered compute panics — the
// serving layer points it at its panic telemetry counter. Set it before the
// cache serves traffic; it is not synchronized against concurrent Gets.
func (c *Cache) SetOnPanic(fn func(recovered any)) { c.onPanic = fn }

// New returns a Cache holding at most capacity entries across numShards
// shards. Non-positive arguments select DefaultCapacity / DefaultShards;
// numShards is rounded up to a power of two and down to capacity so every
// shard holds at least one entry.
func New(capacity, numShards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if numShards <= 0 {
		numShards = DefaultShards
	}
	if numShards > capacity {
		numShards = capacity
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	if numShards&(numShards-1) != 0 {
		numShards = 1 << bits.Len(uint(numShards))
	}
	c := &Cache{shards: make([]*shard, numShards), mask: uint64(numShards - 1)}
	per := (capacity + numShards - 1) / numShards
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: per,
			lru:      list.New(),
			index:    map[Key]*list.Element{},
			inflight: map[Key]*call{},
			sketch:   newCMSketch(per),
		}
	}
	return c
}

// hashKey is FNV-1a over the key bytes; the low bits pick the shard and the
// full hash feeds the frequency sketch.
func hashKey(key Key) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (c *Cache) shardFor(h uint64) *shard { return c.shards[h&c.mask] }

// Lookup returns the cached entries for key without computing anything. It
// counts as a use for LRU and frequency purposes but does not touch hit/miss
// counters.
func (c *Cache) Lookup(key Key) ([]Entry, bool) {
	h := hashKey(key)
	s := c.shardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sketch.touch(h)
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Get returns the entries for key, computing them with compute on a miss.
// Concurrent Gets for the same key share one compute call (single-flight).
// The second return reports whether the value was served without running
// compute in this request (resident hit or piggyback) — the serving layer's
// cache-status header. Errors are not cached; a later Get retries.
//
// Cancellation semantics match rankcache: ctx bounds this request's wait,
// not the solve. The compute runs in its own goroutine under a context
// detached from every requester, so one cancelled waiter abandons with
// ctx.Err() while the solve keeps running for the others; only the last
// waiter out cancels the detached solve.
func (c *Cache) Get(ctx context.Context, key Key, compute ComputeFunc) ([]Entry, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h := hashKey(key)
	s := c.shardFor(h)
	s.mu.Lock()
	s.sketch.touch(h)
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		val := el.Value.(*cacheEntry).val
		s.mu.Unlock()
		return val, true, nil
	}
	if cl, ok := s.inflight[key]; ok {
		cl.waiters++
		s.stats.Shared++
		s.mu.Unlock()
		return s.wait(ctx, key, cl, true)
	}
	solveCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl := &call{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.inflight[key] = cl
	s.stats.Misses++
	s.mu.Unlock()

	go func() {
		// A panicking compute must not poison the key: waiters are parked
		// on cl.done and future Gets would block on the stale inflight
		// entry forever. The panic becomes an error delivered to every
		// waiter (it cannot re-raise on a requester's stack — the leader
		// may already be gone).
		defer func() {
			if r := recover(); r != nil {
				cl.err = fmt.Errorf("pprcache: compute for %q panicked: %v", key, r)
				if c.onPanic != nil {
					c.onPanic(r)
				}
			}
			s.finish(key, h, cl)
		}()
		cl.val, cl.err = compute(solveCtx)
	}()
	return s.wait(ctx, key, cl, false)
}

// wait parks one requester on an in-flight call until the solve finishes or
// the requester's own context is done, whichever is first.
func (s *shard) wait(ctx context.Context, key Key, cl *call, piggyback bool) ([]Entry, bool, error) {
	select {
	case <-cl.done:
		return cl.val, piggyback, cl.err
	case <-ctx.Done():
		s.abandon(key, cl)
		return nil, false, ctx.Err()
	}
}

// abandon drops one waiter from an in-flight call. The last waiter out
// cancels the detached solve and retires the inflight entry so a later Get
// starts fresh instead of joining a doomed flight.
func (s *shard) abandon(key Key, cl *call) {
	s.mu.Lock()
	cl.waiters--
	if cl.waiters == 0 && s.inflight[key] == cl {
		delete(s.inflight, key)
		s.stats.Abandoned++
		cl.cancel()
	}
	s.mu.Unlock()
}

// finish publishes a completed in-flight call: runs the admission decision
// on success, releases the waiters, and retires the inflight entry. The
// identity check guards against a fully-abandoned flight whose slot has
// already been retired (and possibly re-occupied by a fresh call).
func (s *shard) finish(key Key, h uint64, cl *call) {
	s.mu.Lock()
	if s.inflight[key] == cl {
		delete(s.inflight, key)
	}
	if cl.err == nil {
		s.admit(key, h, cl.val)
	}
	s.mu.Unlock()
	cl.cancel()
	close(cl.done)
}

// admit inserts a computed value, subject to frequency-based admission when
// the shard is full: the candidate must beat the LRU victim's estimated
// frequency to claim its slot. Callers hold s.mu.
func (s *shard) admit(key Key, h uint64, val []Entry) {
	if el, ok := s.index[key]; ok {
		// A concurrent leader for the same key already inserted; refresh.
		s.lru.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	for s.lru.Len() >= s.capacity {
		tail := s.lru.Back()
		victim := tail.Value.(*cacheEntry)
		if s.sketch.estimate(h) <= s.sketch.estimate(hashKey(victim.key)) {
			// The resident victim is at least as hot as the candidate:
			// serve the computed value but keep the cache as-is.
			s.stats.Rejected++
			return
		}
		s.lru.Remove(tail)
		delete(s.index, victim.key)
		s.stats.Evictions++
	}
	s.index[key] = s.lru.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the number of resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the effectiveness counters, aggregated across
// shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.stats.Hits
		st.Misses += s.stats.Misses
		st.Shared += s.stats.Shared
		st.Evictions += s.stats.Evictions
		st.Rejected += s.stats.Rejected
		st.Len += s.lru.Len()
		st.Cap += s.capacity
		s.mu.Unlock()
	}
	st.Shards = len(c.shards)
	return st
}
