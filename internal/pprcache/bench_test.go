package pprcache

import (
	"context"
	"fmt"
	"testing"
)

// benchEntries mirrors a top-k serving payload (k=100).
func benchEntries(seed int) []Entry {
	out := make([]Entry, 100)
	for i := range out {
		out[i] = Entry{Node: int32(seed + i), Score: 1 / float64(i+1)}
	}
	return out
}

// BenchmarkPPRWarmSeed measures serving a resident seed from the cache — the
// warm counterpart of BenchmarkPPRColdSeed (internal/core), which it must
// beat by ≥100×. The Get itself allocates nothing; the value is the shared
// immutable []Entry, so the whole warm path is a hash, a shard lock, a sketch
// touch, and an LRU bump.
func BenchmarkPPRWarmSeed(b *testing.B) {
	c := New(1024, 16)
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("g/ppr/seed=%d/eps=1e-07/k=100", i))
		seed := i
		if _, _, err := c.Get(context.Background(), keys[i], func(context.Context) ([]Entry, error) { return benchEntries(seed), nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, cached, err := c.Get(context.Background(), keys[i%len(keys)], func(context.Context) ([]Entry, error) {
			return nil, fmt.Errorf("warm bench must not compute")
		})
		if err != nil || !cached || len(val) != 100 {
			b.Fatalf("val=%d cached=%v err=%v", len(val), cached, err)
		}
	}
}

// BenchmarkPPRCacheAdmission measures the full miss path under a heavy-tailed
// seed stream: a small hot set that must stay resident plus a majority of
// one-off seeds exercising the sketch-vs-victim admission decision on every
// insert attempt.
func BenchmarkPPRCacheAdmission(b *testing.B) {
	c := New(256, 16)
	hot := make([]Key, 32)
	for i := range hot {
		hot[i] = Key(fmt.Sprintf("hot-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var key Key
		if i%4 != 0 {
			key = hot[i%len(hot)]
		} else {
			key = Key(fmt.Sprintf("cold-%d", i))
		}
		seed := i
		if _, _, err := c.Get(context.Background(), key, func(context.Context) ([]Entry, error) { return benchEntries(seed), nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.Rejected == 0 && b.N > 10000 {
		b.Fatalf("admission idle under one-off flood: %+v", st)
	}
}
