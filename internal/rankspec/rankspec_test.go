package rankspec

import (
	"context"
	"math"
	"testing"

	"d2pr/internal/graph"
	"d2pr/internal/registry"
)

func testSnapshot(t *testing.T) *registry.Snapshot {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &registry.Snapshot{Name: "t", Graph: g}
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Spec)
		ok   bool
	}{
		{"default", func(s *Spec) {}, true},
		{"bad algo", func(s *Spec) { s.Algo = "bogus" }, false},
		{"alpha high", func(s *Spec) { s.Alpha = 1 }, false},
		{"alpha zero", func(s *Spec) { s.Alpha = 0 }, false},
		{"beta high", func(s *Spec) { s.Beta = 1.5 }, false},
		{"negative p ok", func(s *Spec) { s.P = -2 }, true},
		{"alpha NaN", func(s *Spec) { s.Alpha = math.NaN() }, false},
		{"alpha +Inf", func(s *Spec) { s.Alpha = math.Inf(1) }, false},
		{"alpha -Inf", func(s *Spec) { s.Alpha = math.Inf(-1) }, false},
		{"beta NaN", func(s *Spec) { s.Beta = math.NaN() }, false},
		{"beta Inf", func(s *Spec) { s.Beta = math.Inf(1) }, false},
		{"p NaN", func(s *Spec) { s.P = math.NaN() }, false},
		{"p Inf", func(s *Spec) { s.P = math.Inf(1) }, false},
		{"p -Inf", func(s *Spec) { s.P = math.Inf(-1) }, false},
		{"seed out of range", func(s *Spec) { s.Seeds = []int32{6} }, false},
		{"seed in range", func(s *Spec) { s.Seeds = []int32{5} }, true},
	} {
		spec := New("t")
		tc.mut(&spec)
		err := spec.Validate(6)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Deferred seed bounds: numNodes < 0 skips the upper bound only.
	spec := New("t")
	spec.Seeds = []int32{9999}
	if err := spec.Validate(-1); err != nil {
		t.Errorf("deferred bounds: %v", err)
	}
	spec.Seeds = []int32{-1}
	if err := spec.Validate(-1); err == nil {
		t.Error("negative seed must fail even with deferred bounds")
	}
}

// TestCacheKeyCanonicalization: algorithms that ignore parameters must map
// equivalent specs to one key, and distinct configurations must not collide.
func TestCacheKeyCanonicalization(t *testing.T) {
	base := New("t")
	if a, b := base, base; a.CacheKey() != b.CacheKey() {
		t.Error("identical specs produce different keys")
	}
	pr1, pr2 := New("t"), New("t")
	pr1.Algo, pr2.Algo = AlgoPageRank, AlgoPageRank
	pr1.P, pr2.P = 1, 2
	if pr1.CacheKey() != pr2.CacheKey() {
		t.Error("pagerank must ignore p")
	}
	h1, h2 := New("t"), New("t")
	h1.Algo, h2.Algo = AlgoHITS, AlgoHITS
	h1.Alpha, h1.Seeds = 0.5, []int32{1}
	if h1.CacheKey() != h2.CacheKey() {
		t.Error("hits must ignore alpha and seeds")
	}
	d1, d2 := New("t"), New("t")
	d1.Algo, d2.Algo = AlgoDegree, AlgoDegree
	d1.P, d1.Alpha = 3, 0.2
	if d1.CacheKey() != d2.CacheKey() {
		t.Error("degree must ignore every solver option")
	}
	v1, v2 := New("t"), New("t")
	v2.P = 0.5
	if v1.CacheKey() == v2.CacheKey() {
		t.Error("d2pr p must be part of the key")
	}
	g1, g2 := New("a"), New("b")
	if g1.CacheKey() == g2.CacheKey() {
		t.Error("graph name must be part of the key")
	}
	s1, s2 := New("t"), New("t")
	s1.Seeds = []int32{3}
	if s1.CacheKey() == s2.CacheKey() {
		t.Error("seeds must be part of the key")
	}
}

// TestFloat32ModeCacheIdentity: the server-wide float32 tier changes which
// score vector a spec produces, so it must be part of the cache key — but
// only for the algorithms it applies to.
func TestFloat32ModeCacheIdentity(t *testing.T) {
	defer SetFloat32Mode(false)

	d := New("t") // d2pr
	pr := New("t")
	pr.Algo = AlgoPageRank
	hits := New("t")
	hits.Algo = AlgoHITS

	SetFloat32Mode(false)
	dKey, prKey, hitsKey := d.CacheKey(), pr.CacheKey(), hits.CacheKey()
	if d.Options(10).Float32 {
		t.Error("float32 off: Options must not request the float32 tier")
	}
	SetFloat32Mode(true)
	if !Float32Mode() {
		t.Fatal("Float32Mode not set")
	}
	if !d.Options(10).Float32 || !pr.Options(10).Float32 {
		t.Error("float32 on: d2pr/pagerank Options must request the float32 tier")
	}
	if d.CacheKey() == dKey {
		t.Error("d2pr cache key must change with float32 mode")
	}
	if pr.CacheKey() == prKey {
		t.Error("pagerank cache key must change with float32 mode")
	}
	if hits.CacheKey() != hitsKey {
		t.Error("hits cache key must not depend on float32 mode")
	}
}

func TestComputeAllAlgos(t *testing.T) {
	snap := testSnapshot(t)
	for _, algo := range Algos() {
		spec := New("t")
		spec.Algo = algo
		scores, err := spec.Compute(context.Background(), snap)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(scores) != snap.Graph.NumNodes() {
			t.Fatalf("%s: %d scores for %d nodes", algo, len(scores), snap.Graph.NumNodes())
		}
	}
	bad := New("t")
	bad.Algo = "bogus"
	if _, err := bad.Compute(context.Background(), snap); err == nil {
		t.Error("unknown algo must error")
	}
}

func TestTopEntries(t *testing.T) {
	snap := testSnapshot(t)
	spec := New("t")
	scores, err := spec.Compute(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	top := TopEntries(snap.Graph, scores, 3)
	if len(top) != 3 {
		t.Fatalf("top = %d rows", len(top))
	}
	for i, e := range top {
		if e.Rank != i+1 {
			t.Errorf("row %d rank = %d", i, e.Rank)
		}
		if i > 0 && e.Score > top[i-1].Score {
			t.Errorf("rows not descending: %+v", top)
		}
		if e.Degree != snap.Graph.Degree(e.Node) {
			t.Errorf("row %d degree mismatch", i)
		}
	}
	// k beyond n clamps to n.
	if all := TopEntries(snap.Graph, scores, 99); len(all) != snap.Graph.NumNodes() {
		t.Errorf("k>n: %d rows", len(all))
	}
}
