// Package rankspec defines the canonical ranking configuration shared by the
// serving layer (internal/server) and the sweep-job subsystem (internal/jobs):
// one Spec names a graph, an algorithm, and its parameters, and knows how to
// derive its rankcache key and how to compute its score vector over a
// registry snapshot. Centralizing this plumbing guarantees that a score
// computed by a background job is found by a later synchronous request — both
// sides derive the identical cache identity from the identical Spec.
package rankspec

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d2pr/internal/core"
	"d2pr/internal/graph"
	"d2pr/internal/rankcache"
	"d2pr/internal/registry"
	"d2pr/internal/stats"
	"d2pr/internal/telemetry"
)

// Supported algorithm names.
const (
	AlgoD2PR     = "d2pr"
	AlgoPageRank = "pagerank"
	AlgoHITS     = "hits"
	AlgoDegree   = "degree"
)

// Algos lists the supported algorithm names in documentation order.
func Algos() []string { return []string{AlgoD2PR, AlgoPageRank, AlgoHITS, AlgoDegree} }

// float32Mode is the process-wide score-tier toggle; see SetFloat32Mode.
var float32Mode atomic.Bool

// SetFloat32Mode switches the power-iteration serving algorithms (d2pr and
// pagerank) to the float32 score tier (core.Options.Float32): half the
// memory traffic per sweep in exchange for ~1e-6 absolute score error —
// far finer than any ranking consumer resolves, but a different contract
// than the float64 default, so it is an explicit operator opt-in
// (d2pr-server -float32). The mode is part of the cache identity: flipping
// it mid-flight changes the derived cache keys, so float64 and float32
// score vectors never alias one another.
func SetFloat32Mode(on bool) { float32Mode.Store(on) }

// Float32Mode reports whether the float32 score tier is active.
func Float32Mode() bool { return float32Mode.Load() }

// float32Applies reports whether the mode affects the given algorithm: only
// the engine-backed power-iteration paths have a float32 tier.
func float32Applies(algo string) bool {
	return algo == AlgoD2PR || algo == AlgoPageRank
}

// Spec is one fully-determined ranking configuration.
type Spec struct {
	Graph string  `json:"graph"`
	Algo  string  `json:"algo"`
	P     float64 `json:"p"`
	Beta  float64 `json:"beta"`
	Alpha float64 `json:"alpha"`
	// Seeds is the personalized-teleport node set; empty means uniform.
	Seeds []int32 `json:"seeds,omitempty"`
}

// New returns the default configuration for a graph: d2pr with p = β = 0
// (conventional PageRank behavior) at the paper's default α.
func New(graphName string) Spec {
	return Spec{Graph: graphName, Algo: AlgoD2PR, Alpha: core.DefaultAlpha}
}

// Validate checks parameter ranges. numNodes bounds the seed ids; pass a
// negative value to skip seed bounds checking when the graph is not yet
// materialized (the check must then be repeated once it is).
func (s Spec) Validate(numNodes int) error {
	switch s.Algo {
	case AlgoD2PR, AlgoPageRank, AlgoHITS, AlgoDegree:
	default:
		return fmt.Errorf("unknown algo %q (want %s)", s.Algo, strings.Join(Algos(), "|"))
	}
	// Non-finite parameters must be rejected explicitly: every range
	// comparison below is false for NaN, so without these checks alpha=NaN
	// sails through, poisons the cache key ("a=NaN"), and caches a NaN
	// score vector forever.
	if !isFinite(s.Alpha) {
		return fmt.Errorf("alpha %v is not finite", s.Alpha)
	}
	if !isFinite(s.Beta) {
		return fmt.Errorf("beta %v is not finite", s.Beta)
	}
	if !isFinite(s.P) {
		return fmt.Errorf("p %v is not finite", s.P)
	}
	if s.Alpha <= 0 || s.Alpha >= 1 {
		return fmt.Errorf("alpha %v out of (0, 1)", s.Alpha)
	}
	if s.Beta < 0 || s.Beta > 1 {
		return fmt.Errorf("beta %v out of [0, 1]", s.Beta)
	}
	for _, sd := range s.Seeds {
		if sd < 0 || (numNodes >= 0 && int(sd) >= numNodes) {
			return fmt.Errorf("seed %d out of range", sd)
		}
	}
	return nil
}

// Options returns the solver options for the spec (teleport built over n
// nodes). The serving compute path always parallelizes the edge sweep
// (Workers = -1, i.e. GOMAXPROCS): results are identical to the sequential
// sweep — each destination accumulates in the same order regardless of the
// partition — so only wall-clock changes, and Options.CacheKey excludes
// Workers, so cache identities are unaffected.
func (s Spec) Options(n int) core.Options {
	o := core.Options{Alpha: s.Alpha, Workers: -1}
	if float32Applies(s.Algo) && Float32Mode() {
		o.Float32 = true
	}
	if len(s.Seeds) > 0 {
		tele := make([]float64, n)
		for _, sd := range s.Seeds {
			tele[sd] = 1
		}
		o.Teleport = tele
	}
	return o
}

// CacheKey derives the rankcache key, canonicalizing parameters each
// algorithm ignores so equivalent configurations share one cache slot:
// p/β for everything but d2pr, alpha and seeds additionally for HITS (which
// only reads Tol/MaxIter), and every solver option for degree centrality.
// The teleport component of Options.CacheKey depends on n, which is unknown
// before the graph loads; seeds are appended verbatim instead, which is
// strictly finer and therefore still correct.
func (s Spec) CacheKey() rankcache.Key {
	p, beta, alpha, seeds := s.P, s.Beta, s.Alpha, s.Seeds
	switch s.Algo {
	case AlgoDegree:
		return rankcache.NewKey(s.Graph, s.Algo, 0, 0, "")
	case AlgoHITS:
		p, beta, alpha, seeds = 0, 0, core.DefaultAlpha, nil
	case AlgoPageRank:
		p, beta = 0, 0
	}
	o := core.Options{Alpha: alpha}
	if float32Applies(s.Algo) && Float32Mode() {
		o.Float32 = true
	}
	optsKey := o.CacheKey()
	if len(seeds) > 0 {
		parts := make([]string, len(seeds))
		for i, sd := range seeds {
			parts[i] = strconv.Itoa(int(sd))
		}
		optsKey += "|seeds=" + strings.Join(parts, ",")
	}
	return rankcache.NewKey(s.Graph, s.Algo, p, beta, optsKey)
}

// CacheKeyFor is CacheKey scoped to one materialized snapshot: the snapshot's
// epoch is appended, so scores computed against a replaced graph are never
// served after a reload swap — old-epoch entries simply age out of the LRU
// instead of being hunted down. Cache operations use this form; wire-visible
// config strings keep the epoch-less CacheKey so response shapes are stable
// across reloads.
func (s Spec) CacheKeyFor(snap *registry.Snapshot) rankcache.Key {
	return s.CacheKey() + rankcache.Key("|epoch="+strconv.FormatUint(snap.Epoch, 10))
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Compute runs the configured algorithm on the snapshot's graph. Power-
// iteration algorithms run through the snapshot's cached engine, so a cache
// miss re-solves but never re-transposes the graph. ctx bounds the solve:
// power-iteration algorithms poll it once per iteration and abort with the
// context's error (HITS and degree centrality ignore it — the former is an
// ablation path, the latter is O(n) and cheaper than a solve iteration).
func (s Spec) Compute(ctx context.Context, snap *registry.Snapshot) ([]float64, error) {
	scores, _, err := s.ComputeStats(ctx, snap)
	return scores, err
}

// fillIterative copies an iterative solve's diagnostics into st.
func fillIterative(st *telemetry.SolveStats, res *core.Result) {
	st.Iterations = res.Iterations
	st.Residual = res.Residual
	st.Converged = res.Converged
}

// ComputeStats is Compute plus per-solve telemetry: which solver ran, how
// hard it worked (iterations, final residual), and where the wall-clock went
// (engine build vs. solve). The engine-build stage is ~0 whenever the
// snapshot's engine is already cached; the solve stage covers transition
// build, the iteration/push loop, and any selection work. AdmissionWait is
// left zero — queueing happens above this layer and is filled in by the
// caller that did the queueing.
func (s Spec) ComputeStats(ctx context.Context, snap *registry.Snapshot) ([]float64, telemetry.SolveStats, error) {
	g := snap.Graph
	opts := s.Options(g.NumNodes())
	st := telemetry.SolveStats{Algo: s.Algo}
	buildStart := time.Now()
	var eng *core.Engine
	switch s.Algo {
	case AlgoD2PR, AlgoPageRank:
		eng = snap.Engine()
	}
	st.EngineBuild = time.Since(buildStart)
	solveStart := time.Now()
	switch s.Algo {
	case AlgoD2PR:
		t, err := core.Blended(g, s.P, s.Beta)
		if err != nil {
			return nil, st, err
		}
		res, err := eng.SolveContext(ctx, t, opts)
		if err != nil {
			return nil, st, err
		}
		fillIterative(&st, res)
		st.Solve = time.Since(solveStart)
		return res.Scores, st, nil
	case AlgoPageRank:
		res, err := eng.SolveContext(ctx, core.ConnectionStrength(g), opts)
		if err != nil {
			return nil, st, err
		}
		fillIterative(&st, res)
		st.Solve = time.Since(solveStart)
		return res.Scores, st, nil
	case AlgoHITS:
		res, err := core.HITS(g, opts)
		if err != nil {
			return nil, st, err
		}
		st.Iterations = res.Iterations
		st.Converged = res.Converged
		st.Solve = time.Since(solveStart)
		return res.Authorities, st, nil
	case AlgoDegree:
		scores := core.DegreeCentrality(g)
		st.Converged = true // O(n) direct computation; nothing to converge
		st.Solve = time.Since(solveStart)
		return scores, st, nil
	}
	return nil, st, fmt.Errorf("unknown algo %q", s.Algo)
}

// Computer evaluates Specs over one snapshot, amortizing the p-independent
// half of the D2PR pipeline across calls via core.SweepSolver (log Θ̂ table,
// connection-strength transition, flow transpose, per-node factor table).
// A sweep executing its grid through one Computer pays that setup once
// instead of per configuration; results agree with Spec.Compute to within
// a few ulps of floating-point reassociation — far inside the solver
// tolerance (see core.SweepSolver). Safe for concurrent use.
type Computer struct {
	snap  *registry.Snapshot
	once  sync.Once
	sweep *core.SweepSolver
}

// NewComputer returns a Computer over snap. The sweep state is built lazily
// on the first d2pr configuration, so non-d2pr sweeps pay nothing.
func NewComputer(snap *registry.Snapshot) *Computer {
	return &Computer{snap: snap}
}

// Snapshot returns the snapshot the Computer evaluates over.
func (c *Computer) Snapshot() *registry.Snapshot { return c.snap }

// Compute evaluates one spec, routing d2pr through the shared sweep solver
// (built over the snapshot's cached engine, so the sweep and every other
// serving path share one pull topology). ctx bounds the solve as in
// Spec.Compute.
func (c *Computer) Compute(ctx context.Context, spec Spec) ([]float64, error) {
	scores, _, err := c.ComputeStats(ctx, spec)
	return scores, err
}

// ComputeStats is Compute plus per-solve telemetry (see Spec.ComputeStats).
// The engine-build stage covers the lazily-built sweep state on the first
// d2pr configuration; later configurations see ~0.
func (c *Computer) ComputeStats(ctx context.Context, spec Spec) ([]float64, telemetry.SolveStats, error) {
	if spec.Algo != AlgoD2PR {
		return spec.ComputeStats(ctx, c.snap)
	}
	st := telemetry.SolveStats{Algo: spec.Algo}
	buildStart := time.Now()
	c.once.Do(func() { c.sweep = core.NewSweepSolverFor(c.snap.Engine()) })
	st.EngineBuild = time.Since(buildStart)
	solveStart := time.Now()
	res, err := c.sweep.SolveContext(ctx, spec.P, spec.Beta, spec.Options(c.snap.Graph.NumNodes()))
	if err != nil {
		return nil, st, err
	}
	fillIterative(&st, res)
	st.Solve = time.Since(solveStart)
	return res.Scores, st, nil
}

// Entry is one row of a top-k ranking table.
type Entry struct {
	Rank   int     `json:"rank"`
	Node   int32   `json:"node"`
	Degree int     `json:"degree"`
	Score  float64 `json:"score"`
}

// DegreeVector materializes per-node degrees as floats — the reference
// vector for the paper's ranking-vs-degree Spearman diagnostic, shared by
// /correlate and the sweep subsystem.
func DegreeVector(g *graph.Graph) []float64 {
	deg := make([]float64, g.NumNodes())
	for i := range deg {
		deg[i] = float64(g.Degree(int32(i)))
	}
	return deg
}

// TopEntries extracts the k best rows with the bounded-heap selector — the
// full score vector is never sorted, so k ≪ n queries stay O(n log k).
func TopEntries(g *graph.Graph, scores []float64, k int) []Entry {
	idx := stats.TopKHeap(scores, k)
	out := make([]Entry, len(idx))
	for i, u := range idx {
		out[i] = Entry{
			Rank: i + 1, Node: int32(u), Degree: g.Degree(int32(u)), Score: scores[u],
		}
	}
	return out
}
