package rankspec

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"d2pr/internal/core"
	"d2pr/internal/graph"
	"d2pr/internal/pprcache"
	"d2pr/internal/registry"
	"d2pr/internal/stats"
	"d2pr/internal/telemetry"
)

// MaxPPRK bounds the top-k size of a personalized request: a cached PPR
// result is O(k), and forward push concentrates mass near the seed, so very
// large k buys nothing a global ranking doesn't already serve.
const MaxPPRK = 4096

// DefaultPPRK is the top-k size used when a PPR request omits k.
const DefaultPPRK = 100

// PPRSpec is one fully-determined personalized-ranking configuration: a seed
// node on a graph, the push accuracy ε, and the result size k. Like Spec, it
// is the single source of the cache identity — the synchronous endpoint and
// the batch cohort path both derive the same pprcache key from the same
// PPRSpec, so a seed computed by a batch job is found by a later GET.
type PPRSpec struct {
	Graph   string  `json:"graph"`
	Seed    int32   `json:"seed"`
	Alpha   float64 `json:"alpha"`
	Epsilon float64 `json:"eps"`
	K       int     `json:"k"`
}

// NewPPR returns the default personalized configuration for a seed: the
// paper's α, the serving ε, and the default top-k.
func NewPPR(graphName string, seed int32) PPRSpec {
	return PPRSpec{
		Graph:   graphName,
		Seed:    seed,
		Alpha:   core.DefaultAlpha,
		Epsilon: core.DefaultPPREpsilon,
		K:       DefaultPPRK,
	}
}

// Validate checks parameter ranges. numNodes bounds the seed id; pass a
// negative value to skip the bound when the graph is not yet materialized
// (the check must then be repeated once it is).
func (s PPRSpec) Validate(numNodes int) error {
	if s.Seed < 0 || (numNodes >= 0 && int(s.Seed) >= numNodes) {
		return fmt.Errorf("seed %d out of range", s.Seed)
	}
	// Explicit non-finite rejection: the range comparisons below are all
	// false for NaN, so eps=NaN would otherwise pass validation, poison the
	// cache key ("e=NaN"), and cache a garbage top-k forever.
	if !isFinite(s.Alpha) {
		return fmt.Errorf("alpha %v is not finite", s.Alpha)
	}
	if !isFinite(s.Epsilon) {
		return fmt.Errorf("eps %v is not finite", s.Epsilon)
	}
	if s.Alpha <= 0 || s.Alpha >= 1 {
		return fmt.Errorf("alpha %v out of (0, 1)", s.Alpha)
	}
	if s.Epsilon <= 0 || s.Epsilon > 1e-2 {
		return fmt.Errorf("eps %v out of (0, 1e-2]", s.Epsilon)
	}
	if s.K <= 0 || s.K > MaxPPRK {
		return fmt.Errorf("k %d out of [1, %d]", s.K, MaxPPRK)
	}
	return nil
}

// CacheKey derives the pprcache key. Every field is discriminating — there is
// nothing to canonicalize away: seed and graph pick the personalized vector,
// α and ε change its values, and k changes how much of it was kept.
func (s PPRSpec) CacheKey() pprcache.Key {
	return pprcache.Key(s.Graph +
		"|ppr|seed=" + strconv.Itoa(int(s.Seed)) +
		"|a=" + strconv.FormatFloat(s.Alpha, 'g', -1, 64) +
		"|e=" + strconv.FormatFloat(s.Epsilon, 'g', -1, 64) +
		"|k=" + strconv.Itoa(s.K))
}

// CacheKeyFor is CacheKey scoped to one materialized snapshot (see
// Spec.CacheKeyFor): cache operations key by epoch so a reload swap
// invalidates personalized results computed on the replaced graph.
func (s PPRSpec) CacheKeyFor(snap *registry.Snapshot) pprcache.Key {
	return s.CacheKey() + pprcache.Key("|epoch="+strconv.FormatUint(snap.Epoch, 10))
}

// Compute runs the forward-push solve on the snapshot's graph and keeps the
// top-k scores. It routes through the snapshot's cached engine — the pull
// topology, the 1/outdeg table, and (for weighted graphs) the
// connection-strength transition are all shared with every other serving
// path — so a cache miss pays only the push itself plus the O(n + k·log k)
// top-k selection. ctx bounds the solve: the push loop polls it
// periodically and aborts with the context's error.
func (s PPRSpec) Compute(ctx context.Context, snap *registry.Snapshot) ([]pprcache.Entry, error) {
	rows, _, err := s.ComputeStats(ctx, snap)
	return rows, err
}

// AlgoPPRName is the SolveStats.Algo value for forward-push solves,
// distinguishing them from the iterative algorithms in per-graph telemetry.
const AlgoPPRName = "ppr"

// ComputeStats is Compute plus per-solve telemetry: push count, un-pushed
// residual mass (as Residual), and engine-build vs. solve wall-clock. The
// solve stage includes the O(n + k·log k) top-k selection.
func (s PPRSpec) ComputeStats(ctx context.Context, snap *registry.Snapshot) ([]pprcache.Entry, telemetry.SolveStats, error) {
	st := telemetry.SolveStats{Algo: AlgoPPRName, Converged: true}
	buildStart := time.Now()
	e := snap.Engine()
	st.EngineBuild = time.Since(buildStart)
	solveStart := time.Now()
	res, err := e.SolvePPRContext(ctx, e.Connection(), s.Seed, core.ForwardPushOptions{
		Alpha:   s.Alpha,
		Epsilon: s.Epsilon,
	})
	if err != nil {
		return nil, st, err
	}
	st.Pushes = res.Pushes
	st.Residual = res.ResidualMass
	rows := topPPREntries(res.Scores, s.K)
	st.Solve = time.Since(solveStart)
	return rows, st, nil
}

// topPPREntries keeps the k best (node, score) pairs in rank order, dropping
// zero-score tail nodes: a push solve leaves almost every node untouched, and
// an exact zero means "never reached", which is noise in a top-k table.
func topPPREntries(scores []float64, k int) []pprcache.Entry {
	idx := stats.TopKHeap(scores, k)
	out := make([]pprcache.Entry, 0, len(idx))
	for _, u := range idx {
		if scores[u] == 0 {
			break
		}
		out = append(out, pprcache.Entry{Node: int32(u), Score: scores[u]})
	}
	return out
}

// PPREntries expands compact cached rows into full ranking-table rows,
// attaching rank numbers and degrees in O(k) — the reason pprcache stores
// only (node, score).
func PPREntries(g *graph.Graph, rows []pprcache.Entry) []Entry {
	out := make([]Entry, len(rows))
	for i, r := range rows {
		out[i] = Entry{Rank: i + 1, Node: r.Node, Degree: g.Degree(r.Node), Score: r.Score}
	}
	return out
}
