package rankspec

import (
	"context"
	"math"
	"testing"

	"d2pr/internal/core"
)

func TestPPRValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*PPRSpec)
		ok   bool
	}{
		{"default", func(s *PPRSpec) {}, true},
		{"negative seed", func(s *PPRSpec) { s.Seed = -1 }, false},
		{"seed out of range", func(s *PPRSpec) { s.Seed = 6 }, false},
		{"seed at edge", func(s *PPRSpec) { s.Seed = 5 }, true},
		{"alpha zero", func(s *PPRSpec) { s.Alpha = 0 }, false},
		{"alpha one", func(s *PPRSpec) { s.Alpha = 1 }, false},
		{"eps zero", func(s *PPRSpec) { s.Epsilon = 0 }, false},
		{"eps too coarse", func(s *PPRSpec) { s.Epsilon = 0.5 }, false},
		{"alpha NaN", func(s *PPRSpec) { s.Alpha = math.NaN() }, false},
		{"alpha +Inf", func(s *PPRSpec) { s.Alpha = math.Inf(1) }, false},
		{"alpha -Inf", func(s *PPRSpec) { s.Alpha = math.Inf(-1) }, false},
		{"eps NaN", func(s *PPRSpec) { s.Epsilon = math.NaN() }, false},
		{"eps Inf", func(s *PPRSpec) { s.Epsilon = math.Inf(1) }, false},
		{"k zero", func(s *PPRSpec) { s.K = 0 }, false},
		{"k over cap", func(s *PPRSpec) { s.K = MaxPPRK + 1 }, false},
		{"k at cap", func(s *PPRSpec) { s.K = MaxPPRK }, true},
	} {
		spec := NewPPR("t", 0)
		tc.mut(&spec)
		err := spec.Validate(6)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Deferred seed bound: numNodes < 0 skips only the upper bound.
	spec := NewPPR("t", 1<<20)
	if err := spec.Validate(-1); err != nil {
		t.Errorf("deferred bound check: %v", err)
	}
	spec.Seed = -1
	if err := spec.Validate(-1); err == nil {
		t.Error("negative seed must fail even with deferred bounds")
	}
}

func TestPPRCacheKeyDiscriminates(t *testing.T) {
	base := NewPPR("g", 3)
	variants := []PPRSpec{
		NewPPR("other", 3),
		NewPPR("g", 4),
		{Graph: "g", Seed: 3, Alpha: 0.5, Epsilon: base.Epsilon, K: base.K},
		{Graph: "g", Seed: 3, Alpha: base.Alpha, Epsilon: 1e-5, K: base.K},
		{Graph: "g", Seed: 3, Alpha: base.Alpha, Epsilon: base.Epsilon, K: 10},
	}
	seen := map[string]bool{string(base.CacheKey()): true}
	for _, v := range variants {
		k := string(v.CacheKey())
		if seen[k] {
			t.Errorf("spec %+v collides with an earlier key %q", v, k)
		}
		seen[k] = true
	}
	if base.CacheKey() != NewPPR("g", 3).CacheKey() {
		t.Error("identical specs must share a key")
	}
}

// TestPPRComputeMatchesSolver: the spec-level compute path (engine-cached
// transition, top-k truncation) must agree with a direct SolvePPR on the
// same graph.
func TestPPRComputeMatchesSolver(t *testing.T) {
	snap := testSnapshot(t)
	spec := NewPPR("t", 0)
	spec.K = 3
	rows, err := spec.Compute(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	e := core.EngineFor(snap.Graph)
	res, err := e.SolvePPR(e.Connection(), 0, core.ForwardPushOptions{
		Alpha: spec.Alpha, Epsilon: spec.Epsilon,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for i, r := range rows {
		if d := math.Abs(res.Scores[r.Node] - r.Score); d > 1e-15 {
			t.Errorf("row %d: cached score %v, solver %v", i, r.Score, res.Scores[r.Node])
		}
		if r.Score > prev {
			t.Errorf("row %d: score %v out of rank order (prev %v)", i, r.Score, prev)
		}
		prev = r.Score
	}
	// The seed dominates its own personalized ranking at α=0.85.
	if rows[0].Node != 0 {
		t.Errorf("top node = %d, want the seed", rows[0].Node)
	}
}

func TestPPRComputeDropsZeroTail(t *testing.T) {
	snap := testSnapshot(t)
	spec := NewPPR("t", 5)
	spec.K = MaxPPRK // far beyond the 6-node graph
	rows, err := spec.Compute(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > snap.Graph.NumNodes() {
		t.Fatalf("got %d rows for a %d-node graph", len(rows), snap.Graph.NumNodes())
	}
	for _, r := range rows {
		if r.Score <= 0 {
			t.Errorf("node %d: zero/negative score %v kept in top-k", r.Node, r.Score)
		}
	}
}

func TestPPREntriesExpansion(t *testing.T) {
	snap := testSnapshot(t)
	spec := NewPPR("t", 0)
	spec.K = 4
	rows, err := spec.Compute(context.Background(), snap)
	if err != nil {
		t.Fatal(err)
	}
	full := PPREntries(snap.Graph, rows)
	if len(full) != len(rows) {
		t.Fatalf("%d entries from %d rows", len(full), len(rows))
	}
	for i, e := range full {
		if e.Rank != i+1 {
			t.Errorf("entry %d: rank %d", i, e.Rank)
		}
		if e.Node != rows[i].Node || e.Score != rows[i].Score {
			t.Errorf("entry %d: %+v does not match row %+v", i, e, rows[i])
		}
		if want := snap.Graph.Degree(e.Node); e.Degree != want {
			t.Errorf("entry %d: degree %d, want %d", i, e.Degree, want)
		}
	}
}
