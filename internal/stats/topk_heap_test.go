package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestTopKHeapMatchesTopK(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse values force plenty of ties, exercising the
			// ascending-index tiebreak.
			scores[i] = float64(r.Intn(10))
		}
		for _, k := range []int{0, 1, 3, n / 2, n, n + 5} {
			got := TopKHeap(scores, k)
			want := TopK(scores, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d k=%d:\nheap %v\nsort %v\nscores %v", n, k, got, want, scores)
			}
		}
	}
}

func TestTopKHeapEdgeCases(t *testing.T) {
	if got := TopKHeap(nil, 5); len(got) != 0 {
		t.Errorf("nil scores → %v", got)
	}
	if got := TopKHeap([]float64{1, 2}, 0); len(got) != 0 {
		t.Errorf("k=0 → %v", got)
	}
	if got := TopKHeap([]float64{3, 1, 2}, 10); !reflect.DeepEqual(got, []int{0, 2, 1}) {
		t.Errorf("k>n → %v", got)
	}
}

// BenchmarkTopK* back the acceptance criterion that /v1/{graph}/topk never
// sorts all n scores: the bounded-heap selector is O(n log k) with O(k)
// allocation, the full sort O(n log n) with O(n) allocation.
func benchScores(n int) []float64 {
	r := rand.New(rand.NewSource(5))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = r.Float64()
	}
	return scores
}

func BenchmarkTopKFullSort(b *testing.B) {
	scores := benchScores(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(scores, 10)
	}
}

func BenchmarkTopKHeap(b *testing.B) {
	scores := benchScores(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopKHeap(scores, 10)
	}
}

func TestTopKHeapDoesNotMutate(t *testing.T) {
	scores := []float64{3, 1, 4, 1, 5}
	orig := append([]float64(nil), scores...)
	TopKHeap(scores, 2)
	if !reflect.DeepEqual(scores, orig) {
		t.Errorf("scores mutated: %v", scores)
	}
}
