package stats

import (
	"math"
	"sort"
)

// sortFloats sorts xs ascending in place.
func sortFloats(xs []float64) { sort.Float64s(xs) }

// sortSliceStable stably sorts idx with the provided comparator.
func sortSliceStable(idx []int, less func(a, b int) bool) {
	sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than one
// observation).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return minOf(xs)
	}
	if q >= 1 {
		return maxOf(xs)
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	return minOf(xs), maxOf(xs)
}

// Normalize scales xs in place so it sums to 1. If the sum is zero it sets
// the uniform distribution. It returns xs for chaining.
func Normalize(xs []float64) []float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return xs
	}
	for i := range xs {
		xs[i] /= s
	}
	return xs
}

// L1Distance returns Σ|xs[i]-ys[i]|.
func L1Distance(xs, ys []float64) float64 {
	checkSameLen("L1Distance", xs, ys)
	var s float64
	for i := range xs {
		s += math.Abs(xs[i] - ys[i])
	}
	return s
}

// ArgMax returns the index of the largest element (smallest index wins ties).
// It returns -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
