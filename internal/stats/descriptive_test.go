package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty inputs must return 0")
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{1, 3, 2, 4}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %v, want 2.5", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("q0.5 = %v, want 2.5", got)
	}
	// Linear interpolation: q0.25 of sorted [1 2 3 4] = 1.75.
	if got := Quantile(xs, 0.25); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("q0.25 = %v, want 1.75", got)
	}
	if !reflect.DeepEqual(xs, []float64{1, 3, 2, 4}) {
		t.Error("Quantile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v/%v, want -1/7", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax of empty must panic")
		}
	}()
	MinMax(nil)
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	Normalize(xs)
	if !reflect.DeepEqual(xs, []float64{0.25, 0.75}) {
		t.Errorf("Normalize = %v", xs)
	}
	zero := []float64{0, 0, 0, 0}
	Normalize(zero)
	for _, v := range zero {
		if v != 0.25 {
			t.Errorf("zero-sum Normalize = %v, want uniform", zero)
			break
		}
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0 {
				// Fold huge magnitudes into a sane range so the sum cannot
				// overflow — Normalize documents finite-sum inputs.
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		Normalize(clean)
		var s float64
		for _, v := range clean {
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestL1Distance(t *testing.T) {
	if got := L1Distance([]float64{1, 2}, []float64{3, 0}); got != 4 {
		t.Errorf("L1 = %v, want 4", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 5, 2}); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
}
