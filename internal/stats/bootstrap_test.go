package stats

import (
	"math"
	"strings"
	"testing"

	"d2pr/internal/dataset/rng"
)

// correlatedSample draws n pairs with a planted monotone relation plus
// noise.
func correlatedSample(n int, noise float64, seed uint64) (xs, ys []float64) {
	r := rng.New(seed)
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = xs[i] + noise*r.NormFloat64()
	}
	return xs, ys
}

func TestSpearmanBootstrapCoversPoint(t *testing.T) {
	xs, ys := correlatedSample(300, 0.25, 1)
	ci, err := SpearmanBootstrap(xs, ys, 0.05, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Errorf("interval %v does not cover the point estimate", ci)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.5 {
		t.Errorf("interval width %v implausible for n=300", ci.Hi-ci.Lo)
	}
	if ci.Point < 0.5 {
		t.Errorf("point = %v, want strong positive for planted relation", ci.Point)
	}
	if !strings.Contains(ci.String(), "[") {
		t.Errorf("String() = %q", ci.String())
	}
}

func TestSpearmanBootstrapShrinksWithN(t *testing.T) {
	xsS, ysS := correlatedSample(50, 1, 3)
	xsL, ysL := correlatedSample(2000, 1, 3)
	small, err := SpearmanBootstrap(xsS, ysS, 0.05, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := SpearmanBootstrap(xsL, ysL, 0.05, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Errorf("interval must shrink with n: n=2000 width %v vs n=50 width %v",
			large.Hi-large.Lo, small.Hi-small.Lo)
	}
}

func TestSpearmanBootstrapDeterministic(t *testing.T) {
	xs, ys := correlatedSample(100, 0.5, 5)
	a, err := SpearmanBootstrap(xs, ys, 0.05, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpearmanBootstrap(xs, ys, 0.05, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v vs %v", a, b)
	}
}

func TestSpearmanBootstrapValidation(t *testing.T) {
	xs, ys := correlatedSample(10, 0.5, 7)
	if _, err := SpearmanBootstrap(xs[:2], ys[:2], 0.05, 100, 1); err == nil {
		t.Error("n < 3 must error")
	}
	if _, err := SpearmanBootstrap(xs, ys, 0, 100, 1); err == nil {
		t.Error("alpha = 0 must error")
	}
	if _, err := SpearmanBootstrap(xs, ys, 1, 100, 1); err == nil {
		t.Error("alpha = 1 must error")
	}
}

func TestPermutationPValue(t *testing.T) {
	// Strong relation → tiny p-value.
	xs, ys := correlatedSample(200, 0.2, 8)
	p, err := PermutationPValue(xs, ys, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("p = %v for a strong relation, want < 0.01", p)
	}
	// Independent samples → p should be large-ish.
	r := rng.New(10)
	zs := make([]float64, 200)
	for i := range zs {
		zs[i] = r.NormFloat64()
	}
	p, err = PermutationPValue(xs, zs, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("p = %v for independent samples, suspiciously small", p)
	}
	if _, err := PermutationPValue(xs[:2], ys[:2], 100, 1); err == nil {
		t.Error("n < 3 must error")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := quantileSorted(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := quantileSorted(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := quantileSorted(xs, 0.5); got != 2.5 {
		t.Errorf("q0.5 = %v", got)
	}
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Error("empty quantile must be NaN")
	}
}
