package stats

import (
	"container/heap"
	"sort"
)

// scoreHeap is a min-heap over (score, index) pairs ordered worst-first:
// the root is the entry that would be dropped next. Ties order by
// descending index so that, of two equal scores, the larger index is
// evicted first — matching TopK's ascending-index tie preference.
type scoreHeap struct {
	scores []float64
	idx    []int
}

func (h *scoreHeap) Len() int { return len(h.idx) }
func (h *scoreHeap) Less(a, b int) bool {
	sa, sb := h.scores[h.idx[a]], h.scores[h.idx[b]]
	if sa != sb {
		return sa < sb
	}
	return h.idx[a] > h.idx[b]
}
func (h *scoreHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *scoreHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *scoreHeap) Pop() any {
	n := len(h.idx)
	v := h.idx[n-1]
	h.idx = h.idx[:n-1]
	return v
}

// TopKHeap returns the indices of the k largest scores in decreasing score
// order, ties broken by ascending index — the same contract as TopK — but in
// O(n log k) time and O(k) extra space via a bounded min-heap. It never
// sorts the full score vector, which is what makes k ≪ n top-k queries cheap
// on large graphs.
func TopKHeap(scores []float64, k int) []int {
	n := len(scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return []int{}
	}
	h := &scoreHeap{scores: scores, idx: make([]int, 0, k+1)}
	for i := 0; i < n; i++ {
		if len(h.idx) < k {
			heap.Push(h, i)
			continue
		}
		// Admit i only if it beats the current worst kept entry.
		worst := h.idx[0]
		if scores[i] > scores[worst] {
			h.idx[0] = i
			heap.Fix(h, 0)
		}
		// Equal scores: the kept entry has the smaller index already
		// (indices arrive in ascending order), so skip.
	}
	out := h.idx
	sort.Slice(out, func(a, b int) bool {
		if scores[out[a]] != scores[out[b]] {
			return scores[out[a]] > scores[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}
