package stats

import "math"

// Pearson returns the Pearson product-moment correlation of the paired
// samples xs and ys. It returns NaN when either sample has zero variance or
// fewer than two observations.
func Pearson(xs, ys []float64) float64 {
	checkSameLen("Pearson", xs, ys)
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient ρ of the paired
// samples: the Pearson correlation of their fractional ranks. This is the
// exact formula the paper states in §4.2 (with x̄, ȳ averages of the rank
// vectors), and it handles ties correctly via average ranks.
func Spearman(xs, ys []float64) float64 {
	checkSameLen("Spearman", xs, ys)
	return Pearson(Ranks(xs), Ranks(ys))
}

// KendallTauB returns Kendall's τ-b of the paired samples, with the standard
// tie correction. O(n log n) via merge-sort inversion counting on y after
// sorting by x.
func KendallTauB(xs, ys []float64) float64 {
	checkSameLen("KendallTauB", xs, ys)
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by x ascending, tie-break by y ascending.
	sortIdx(idx, func(a, b int) bool {
		if xs[a] != xs[b] {
			return xs[a] < xs[b]
		}
		return ys[a] < ys[b]
	})
	// Tie counts.
	var n1, n2, n3 float64 // Σ t(t-1)/2 over x-ties, y-ties, joint ties
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		t := float64(j - i + 1)
		n1 += t * (t - 1) / 2
		// joint ties within this x-tie block
		for a := i; a <= j; {
			b := a
			for b+1 <= j && ys[idx[b+1]] == ys[idx[a]] {
				b++
			}
			u := float64(b - a + 1)
			n3 += u * (u - 1) / 2
			a = b + 1
		}
		i = j + 1
	}
	ysorted := make([]float64, n)
	for i, id := range idx {
		ysorted[i] = ys[id]
	}
	// y tie count over the whole sample.
	{
		cp := make([]float64, n)
		copy(cp, ysorted)
		sortFloats(cp)
		for i := 0; i < n; {
			j := i
			for j+1 < n && cp[j+1] == cp[i] {
				j++
			}
			t := float64(j - i + 1)
			n2 += t * (t - 1) / 2
			i = j + 1
		}
	}
	swaps := countInversions(ysorted)
	n0 := float64(n) * float64(n-1) / 2
	// Concordant minus discordant = n0 - n1 - n2 + n3 - 2*swaps
	num := n0 - n1 - n2 + n3 - 2*float64(swaps)
	den := math.Sqrt((n0 - n1) * (n0 - n2))
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// countInversions counts pairs i<j with xs[i] > xs[j] using merge sort.
// It modifies a copy, not the input.
func countInversions(xs []float64) int64 {
	buf := make([]float64, len(xs))
	cp := make([]float64, len(xs))
	copy(cp, xs)
	return mergeCount(cp, buf)
}

func mergeCount(xs, buf []float64) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(xs[:mid], buf[:mid]) + mergeCount(xs[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			buf[k] = xs[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	for i < mid {
		buf[k] = xs[i]
		i++
		k++
	}
	for j < n {
		buf[k] = xs[j]
		j++
		k++
	}
	copy(xs, buf[:n])
	return inv
}

// TopKOverlap returns |topK(xs) ∩ topK(ys)| / k: the fraction of the k
// highest-scored items shared by the two score vectors. A recommendation-
// accuracy style summary used in the examples.
func TopKOverlap(xs, ys []float64, k int) float64 {
	checkSameLen("TopKOverlap", xs, ys)
	if k <= 0 {
		return 0
	}
	a := TopK(xs, k)
	b := TopK(ys, k)
	set := make(map[int]struct{}, len(a))
	for _, i := range a {
		set[i] = struct{}{}
	}
	shared := 0
	for _, i := range b {
		if _, ok := set[i]; ok {
			shared++
		}
	}
	den := k
	if len(a) < den {
		den = len(a)
	}
	if den == 0 {
		return 0
	}
	return float64(shared) / float64(den)
}

// NDCG returns the normalized discounted cumulative gain at k of the ranking
// induced by scores against the (non-negative) relevance vector rel. NDCG=1
// means the score ordering is relevance-optimal in its top k.
func NDCG(scores, rel []float64, k int) float64 {
	checkSameLen("NDCG", scores, rel)
	if k <= 0 || len(scores) == 0 {
		return 0
	}
	order := TopK(scores, k)
	var dcg float64
	for pos, i := range order {
		dcg += rel[i] / math.Log2(float64(pos)+2)
	}
	ideal := TopK(rel, k)
	var idcg float64
	for pos, i := range ideal {
		idcg += rel[i] / math.Log2(float64(pos)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// sortIdx sorts idx in place with the provided less function.
func sortIdx(idx []int, less func(a, b int) bool) {
	quickSortIdx(idx, less)
}

func quickSortIdx(idx []int, less func(a, b int) bool) {
	// Delegate to the standard library; kept behind a seam so the package
	// has a single sorting entry point.
	sortSliceStable(idx, less)
}
