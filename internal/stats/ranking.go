// Package stats implements the rank statistics the paper's evaluation is
// built on: fractional (average-tie) ranking, Spearman's rank correlation,
// Pearson correlation, Kendall's τ-b, plus top-k agreement measures and basic
// descriptive statistics.
//
// Tie handling matters here: node degrees are small integers, so degree
// vectors contain enormous tie groups, and the Table-1 correlations are
// visibly wrong without average ranks.
package stats

import (
	"fmt"
	"sort"
)

// Ranks returns the fractional ranks of xs: the largest value gets rank 1,
// and tied values share the average of the ranks they span (the standard
// convention used for Spearman's ρ). NaNs are not allowed.
//
// Example: xs = [10, 20, 20, 5] → ranks = [3, 1.5, 1.5, 4].
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// positions i..j (0-based) share average rank of (i+1..j+1)
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// RanksAscending is Ranks with the opposite orientation: the smallest value
// gets rank 1.
func RanksAscending(xs []float64) []float64 {
	neg := make([]float64, len(xs))
	for i, x := range xs {
		neg[i] = -x
	}
	return Ranks(neg)
}

// RankOf returns the 1-based competition rank ("standard" rank: 1 for the
// largest score; equal scores share the smallest rank of the group) of node
// i under the given scores. It is what the paper's Table 2 reports.
func RankOf(scores []float64, i int) int {
	r := 1
	for j, s := range scores {
		if s > scores[i] || (s == scores[i] && j < i) {
			r++
		}
	}
	return r
}

// CompetitionRanks returns the 1-based competition ranks for all scores:
// rank = 1 + (number of strictly larger scores). Tied scores receive the same
// rank. O(n log n).
func CompetitionRanks(scores []float64) []int {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := make([]int, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		for k := i; k <= j; k++ {
			out[idx[k]] = i + 1
		}
		i = j + 1
	}
	return out
}

// TopK returns the indices of the k largest scores in decreasing score order,
// breaking ties by ascending index for determinism.
func TopK(scores []float64, k int) []int {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > n {
		k = n
	}
	return idx[:k]
}

// checkSameLen panics with a descriptive message when the two samples differ
// in length; every correlation here is over paired observations.
func checkSameLen(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: %s: mismatched lengths %d and %d", name, len(xs), len(ys)))
	}
}
