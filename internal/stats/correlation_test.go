package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 5})
	want := []float64{3, 1.5, 1.5, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ranks = %v, want %v", got, want)
	}
}

func TestRanksAllTied(t *testing.T) {
	got := Ranks([]float64{7, 7, 7})
	want := []float64{2, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ranks = %v, want %v", got, want)
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Property: fractional ranks always sum to n(n+1)/2 regardless of ties.
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return true
		}
		var sum float64
		for _, r := range Ranks(xs) {
			sum += r
		}
		n := float64(len(xs))
		return almostEq(sum, n*(n+1)/2, 1e-6*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRanksAscending(t *testing.T) {
	got := RanksAscending([]float64{10, 20, 5})
	want := []float64{2, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RanksAscending = %v, want %v", got, want)
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yPos); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson perfect = %v", got)
	}
	if got := Pearson(x, yNeg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson inverse = %v", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); !math.IsNaN(got) {
		t.Errorf("Pearson constant = %v, want NaN", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); !math.IsNaN(got) {
		t.Errorf("Pearson single = %v, want NaN", got)
	}
}

func TestPearsonMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on mismatched lengths")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	// Spearman is invariant under strictly monotone transforms.
	x := []float64{3, 1, 4, 1.5, 9, 2.6}
	y := []float64{1.2, 0.2, 7, 0.5, 12, 1.1}
	base := Spearman(x, y)
	exp := make([]float64, len(y))
	for i, v := range y {
		exp[i] = math.Exp(v)
	}
	if got := Spearman(x, exp); !almostEq(got, base, 1e-12) {
		t.Errorf("Spearman after exp = %v, want %v", got, base)
	}
	if !almostEq(base, 1, 1e-12) {
		t.Errorf("x and y are co-monotone, want ρ=1, got %v", base)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example with one swapped pair.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 3, 5, 4}
	// d = (0,0,0,1,1); ρ = 1 − 6·Σd²/(n(n²−1)) = 1 − 12/120 = 0.9.
	if got := Spearman(x, y); !almostEq(got, 0.9, 1e-12) {
		t.Errorf("Spearman = %v, want 0.9", got)
	}
}

func TestSpearmanWithTies(t *testing.T) {
	// Tie-aware Spearman equals Pearson of average ranks; verify against a
	// hand-computed case: x = [1,1,2], y = [5,6,7].
	// ranks(x) (descending) = [2.5, 2.5, 1]; ranks(y) = [3, 2, 1].
	x := []float64{1, 1, 2}
	y := []float64{5, 6, 7}
	want := Pearson([]float64{2.5, 2.5, 1}, []float64{3, 2, 1})
	if got := Spearman(x, y); !almostEq(got, want, 1e-12) {
		t.Errorf("Spearman = %v, want %v", got, want)
	}
}

// naiveKendall is the O(n²) reference implementation of τ-b.
func naiveKendall(xs, ys []float64) float64 {
	n := len(xs)
	var conc, disc, tx, ty float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				tx++
				ty++
			case dx == 0:
				tx++
			case dy == 0:
				ty++
			case dx*dy > 0:
				conc++
			default:
				disc++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	den := math.Sqrt((n0 - tx) * (n0 - ty))
	if den == 0 {
		return math.NaN()
	}
	return (conc - disc) / den
}

func TestKendallAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(8)) // deliberately tie-heavy
			ys[i] = float64(r.Intn(8))
		}
		return almostEq(KendallTauB(xs, ys), naiveKendall(xs, ys), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestKendallKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := KendallTauB(x, x); !almostEq(got, 1, 1e-12) {
		t.Errorf("τ of identical = %v", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTauB(x, rev); !almostEq(got, -1, 1e-12) {
		t.Errorf("τ of reversed = %v", got)
	}
}

func TestTopK(t *testing.T) {
	s := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	got := TopK(s, 3)
	want := []int{1, 3, 2} // ties by ascending index
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
	if got := TopK(s, 99); len(got) != 5 {
		t.Errorf("TopK overflow = %d items", len(got))
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{10, 9, 8, 1, 1}
	b := []float64{10, 9, 1, 8, 1}
	if got := TopKOverlap(a, b, 2); got != 1 {
		t.Errorf("overlap@2 = %v, want 1", got)
	}
	if got := TopKOverlap(a, b, 3); !almostEq(got, 2.0/3, 1e-12) {
		t.Errorf("overlap@3 = %v, want 2/3", got)
	}
	if got := TopKOverlap(a, b, 0); got != 0 {
		t.Errorf("overlap@0 = %v, want 0", got)
	}
}

func TestNDCG(t *testing.T) {
	rel := []float64{3, 2, 1, 0}
	perfect := []float64{10, 8, 5, 1}
	if got := NDCG(perfect, rel, 4); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect NDCG = %v, want 1", got)
	}
	worst := []float64{1, 5, 8, 10}
	if got := NDCG(worst, rel, 4); got >= 1 || got <= 0 {
		t.Errorf("reversed NDCG = %v, want in (0,1)", got)
	}
	if got := NDCG(perfect, []float64{0, 0, 0, 0}, 4); got != 0 {
		t.Errorf("zero-relevance NDCG = %v, want 0", got)
	}
}

func TestRankOfAndCompetitionRanks(t *testing.T) {
	s := []float64{0.5, 0.9, 0.5, 0.1}
	ranks := CompetitionRanks(s)
	want := []int{2, 1, 2, 4}
	if !reflect.DeepEqual(ranks, want) {
		t.Errorf("CompetitionRanks = %v, want %v", ranks, want)
	}
	for i := range s {
		if got := RankOf(s, i); got > want[i]+1 || got < want[i] {
			t.Errorf("RankOf(%d) = %d, competition %d", i, got, want[i])
		}
	}
}
