package stats

import (
	"fmt"
	"math"
	"sort"

	"d2pr/internal/dataset/rng"
)

// BootstrapCI is a percentile bootstrap confidence interval for a rank
// correlation.
type BootstrapCI struct {
	// Point is the statistic on the full sample.
	Point float64
	// Lo and Hi bound the (1-alpha) percentile interval.
	Lo, Hi float64
	// Resamples is the number of bootstrap replicates drawn.
	Resamples int
}

// String formats the interval as "0.123 [0.100, 0.150]".
func (ci BootstrapCI) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]", ci.Point, ci.Lo, ci.Hi)
}

// SpearmanBootstrap estimates a percentile bootstrap confidence interval for
// Spearman's ρ of the paired samples. alpha is the two-sided error rate
// (0.05 gives a 95% interval); resamples ≤ 0 defaults to 1000. The seed
// makes the interval reproducible.
//
// The experiment harness uses this to separate real curve structure (the
// Group-A peak) from sampling noise (the ±0.5 peak-position wobble in
// Groups B/C): differences inside the interval are noise.
func SpearmanBootstrap(xs, ys []float64, alpha float64, resamples int, seed uint64) (BootstrapCI, error) {
	checkSameLen("SpearmanBootstrap", xs, ys)
	n := len(xs)
	if n < 3 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap needs ≥ 3 observations, got %d", n)
	}
	if alpha <= 0 || alpha >= 1 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap alpha %v out of (0, 1)", alpha)
	}
	if resamples <= 0 {
		resamples = 1000
	}
	r := rng.New(seed)
	bx := make([]float64, n)
	by := make([]float64, n)
	rhos := make([]float64, 0, resamples)
	for b := 0; b < resamples; b++ {
		for i := 0; i < n; i++ {
			j := r.Intn(n)
			bx[i] = xs[j]
			by[i] = ys[j]
		}
		rho := Spearman(bx, by)
		if !math.IsNaN(rho) {
			rhos = append(rhos, rho)
		}
	}
	if len(rhos) == 0 {
		return BootstrapCI{}, fmt.Errorf("stats: every bootstrap replicate degenerated (constant resamples)")
	}
	sort.Float64s(rhos)
	lo := quantileSorted(rhos, alpha/2)
	hi := quantileSorted(rhos, 1-alpha/2)
	return BootstrapCI{
		Point:     Spearman(xs, ys),
		Lo:        lo,
		Hi:        hi,
		Resamples: resamples,
	}, nil
}

// quantileSorted returns the q-quantile of an ascending slice with linear
// interpolation.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// PermutationPValue estimates the two-sided permutation p-value for the null
// hypothesis ρ = 0: the fraction of label permutations whose |ρ| reaches the
// observed |ρ|. permutations ≤ 0 defaults to 1000.
func PermutationPValue(xs, ys []float64, permutations int, seed uint64) (float64, error) {
	checkSameLen("PermutationPValue", xs, ys)
	n := len(xs)
	if n < 3 {
		return 0, fmt.Errorf("stats: permutation test needs ≥ 3 observations, got %d", n)
	}
	if permutations <= 0 {
		permutations = 1000
	}
	observed := math.Abs(Spearman(xs, ys))
	if math.IsNaN(observed) {
		return 0, fmt.Errorf("stats: observed correlation is undefined")
	}
	r := rng.New(seed)
	perm := make([]float64, n)
	copy(perm, ys)
	extreme := 1 // add-one smoothing: p-values never report exactly 0
	for p := 0; p < permutations; p++ {
		r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		rho := Spearman(xs, perm)
		if !math.IsNaN(rho) && math.Abs(rho) >= observed {
			extreme++
		}
	}
	return float64(extreme) / float64(permutations+1), nil
}
