package core

import (
	"math"
	"testing"

	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(graph.Undirected)
	for i := int32(0); i < int32(n-1); i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func starGraph(k int) *graph.Graph {
	b := graph.NewBuilder(graph.Undirected)
	for v := int32(1); v <= int32(k); v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

func TestDegreeCentrality(t *testing.T) {
	g := starGraph(4)
	c := DegreeCentrality(g)
	if c[0] != 1 {
		t.Errorf("center = %v, want 1 (degree 4 / (n-1)=4)", c[0])
	}
	for v := 1; v <= 4; v++ {
		if c[v] != 0.25 {
			t.Errorf("leaf %d = %v, want 0.25", v, c[v])
		}
	}
	if got := DegreeCentrality(graph.NewBuilder(graph.Undirected).EnsureNodes(1).MustBuild()); got[0] != 0 {
		t.Errorf("singleton centrality = %v, want 0", got)
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: betweenness of node i (undirected, endpoints
	// excluded) is the number of pairs it separates: [0, 3, 4, 3, 0].
	g := pathGraph(5)
	bc := Betweenness(g)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Errorf("bc[%d] = %v, want %v (all: %v)", i, bc[i], want[i], bc)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with k leaves: center lies on all C(k,2) leaf pairs.
	g := starGraph(5)
	bc := Betweenness(g)
	if math.Abs(bc[0]-10) > 1e-9 {
		t.Errorf("center betweenness = %v, want C(5,2)=10", bc[0])
	}
	for v := 1; v <= 5; v++ {
		if bc[v] != 0 {
			t.Errorf("leaf %d betweenness = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessSampledApproximates(t *testing.T) {
	g := pathGraph(40)
	exact := Betweenness(g)
	approx := BetweennessSampled(g, 20, 3)
	// Rank agreement is what the sampled estimator is used for.
	if rho := stats.Spearman(exact, approx); rho < 0.9 {
		t.Errorf("sampled betweenness rank correlation = %v, want ≥ 0.9", rho)
	}
	// samples ≥ n must fall back to exact.
	full := BetweennessSampled(g, 1000, 3)
	for i := range exact {
		if math.Abs(full[i]-exact[i]) > 1e-9 {
			t.Fatal("samples ≥ n must be exact")
		}
	}
}

func TestClosenessStar(t *testing.T) {
	// Harmonic closeness, star k=4: center: 4 neighbors at distance 1 →
	// 4/(n-1) = 1. Leaf: 1 + 3·(1/2) = 2.5 → /4 = 0.625.
	g := starGraph(4)
	c := ClosenessCentrality(g, 0, 1)
	if math.Abs(c[0]-1) > 1e-9 {
		t.Errorf("center closeness = %v, want 1", c[0])
	}
	for v := 1; v <= 4; v++ {
		if math.Abs(c[v]-0.625) > 1e-9 {
			t.Errorf("leaf closeness = %v, want 0.625", c[v])
		}
	}
}

func TestClosenessDisconnected(t *testing.T) {
	// Two components; unreachable pairs contribute zero, no division by
	// zero or infinities.
	g := graph.NewBuilder(graph.Undirected).EnsureNodes(4).AddEdge(0, 1).MustBuild()
	c := ClosenessCentrality(g, 0, 1)
	for i, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("closeness[%d] = %v", i, v)
		}
	}
	if c[3] != 0 {
		t.Errorf("isolated node closeness = %v, want 0", c[3])
	}
}

func TestClosenessSampledApproximates(t *testing.T) {
	// A graph with real closeness spread (paths are the worst case for
	// pivot sampling, with massive near-ties).
	g := skewedGraph(200, 17)
	exact := ClosenessCentrality(g, 0, 1)
	approx := ClosenessCentrality(g, 80, 7)
	if rho := stats.Spearman(exact, approx); rho < 0.85 {
		t.Errorf("sampled closeness rank correlation = %v, want ≥ 0.85", rho)
	}
}

func TestHITSStar(t *testing.T) {
	// Directed star: leaves point at the center. Leaves are the hubs, the
	// center is the sole authority.
	b := graph.NewBuilder(graph.Directed)
	for v := int32(1); v <= 4; v++ {
		b.AddEdge(v, 0)
	}
	g := b.MustBuild()
	h, err := HITS(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converged {
		t.Fatal("HITS did not converge")
	}
	if math.Abs(h.Authorities[0]-1) > 1e-6 {
		t.Errorf("center authority = %v, want 1", h.Authorities[0])
	}
	for v := 1; v <= 4; v++ {
		if math.Abs(h.Hubs[v]-0.25) > 1e-6 {
			t.Errorf("leaf hub = %v, want 0.25", h.Hubs[v])
		}
		if h.Authorities[v] > 1e-9 {
			t.Errorf("leaf authority = %v, want 0", h.Authorities[v])
		}
	}
}

func TestHITSUndirectedMatchesEigenvector(t *testing.T) {
	g := skewedGraph(120, 13)
	h, err := HITS(g, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EigenvectorCentrality(g, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if rho := stats.Spearman(h.Authorities, ev); rho < 0.999 {
		t.Errorf("HITS authorities vs eigenvector centrality ρ = %v, want ≈1", rho)
	}
}

func TestHITSEmpty(t *testing.T) {
	if _, err := HITS(graph.NewBuilder(graph.Directed).MustBuild(), Options{}); err != ErrEmptyGraph {
		t.Errorf("err = %v, want ErrEmptyGraph", err)
	}
}

func TestCentralityByName(t *testing.T) {
	g := starGraph(3)
	for _, name := range []string{"degree", "closeness", "betweenness", "eigenvector", "hits", "pagerank"} {
		scores, err := CentralityByName(g, name, Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(scores) != g.NumNodes() {
			t.Errorf("%s: %d scores for %d nodes", name, len(scores), g.NumNodes())
		}
		// On a star, every sensible centrality puts the center first.
		if best := stats.TopK(scores, 1)[0]; best != 0 {
			t.Errorf("%s: top node = %d, want center 0", name, best)
		}
	}
	if _, err := CentralityByName(g, "nope", Options{}); err == nil {
		t.Error("unknown centrality must error")
	}
}
