package core

import (
	"fmt"
	"math"

	"d2pr/internal/graph"
)

// PageRank computes conventional PageRank scores: uniform transitions for
// unweighted graphs, connection-strength transitions for weighted graphs
// (the paper's β = 1 case). It is exactly D2PR with p = 0 on unweighted
// graphs.
func PageRank(g *graph.Graph, opts Options) (*Result, error) {
	return Solve(ConnectionStrength(g), opts)
}

// D2PR computes the paper's degree de-coupled PageRank with de-coupling
// weight p on the (unweighted or weighted) graph g, with full de-coupling
// (β = 0): transition probabilities depend only on destination degrees Θ.
//
//   - p > 0 penalizes high-degree destinations (Application Group A),
//   - p = 0 reproduces classic unweighted PageRank (Group B),
//   - p < 0 boosts high-degree destinations (Group C).
func D2PR(g *graph.Graph, p float64, opts Options) (*Result, error) {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return nil, fmt.Errorf("core: invalid de-coupling weight p = %v", p)
	}
	return Solve(DegreeDecoupled(g, p), opts)
}

// D2PRBlended computes weighted-graph D2PR per §3.2.3 of the paper:
// transitions are β·T_conn + (1-β)·T_D. β = 0 is full de-coupling, β = 1 is
// conventional weighted PageRank.
func D2PRBlended(g *graph.Graph, p, beta float64, opts Options) (*Result, error) {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return nil, fmt.Errorf("core: invalid de-coupling weight p = %v", p)
	}
	t, err := Blended(g, p, beta)
	if err != nil {
		return nil, err
	}
	return Solve(t, opts)
}

// PersonalizedPageRank computes PPR with the teleport distribution
// concentrated uniformly on the seed nodes. Duplicate seeds are counted
// once. An empty seed set is an error.
func PersonalizedPageRank(g *graph.Graph, seeds []int32, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: personalized PageRank needs at least one seed")
	}
	tele := make([]float64, n)
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("core: seed %d out of range [0, %d)", s, n)
		}
		tele[s] = 1
	}
	opts.Teleport = tele
	return Solve(ConnectionStrength(g), opts)
}

// PersonalizedD2PR combines seed-based teleportation with degree
// de-coupling: the context-aware recommendation setting the paper's
// introduction motivates.
func PersonalizedD2PR(g *graph.Graph, seeds []int32, p float64, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("core: personalized D2PR needs at least one seed")
	}
	tele := make([]float64, n)
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("core: seed %d out of range [0, %d)", s, n)
		}
		tele[s] = 1
	}
	opts.Teleport = tele
	return Solve(DegreeDecoupled(g, p), opts)
}

// DegreeBiasedTeleport computes PageRank with an unchanged (conventional)
// transition matrix but a degree-dependent teleport distribution
// t(v) ∝ Θ̂(v)^-q — the alternative de-coupling mechanism of Bánky et al.
// (reference [2] of the paper), which boosts low-degree nodes through the
// teleport vector instead of the transition matrix. q > 0 boosts low-degree
// nodes, q < 0 boosts hubs, q = 0 is classic PageRank.
//
// It is the ablation partner of D2PR: same goal, different lever.
func DegreeBiasedTeleport(g *graph.Graph, q float64, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("core: invalid teleport bias q = %v", q)
	}
	// Build t(v) ∝ exp(-q log Θ̂(v)) in log-space, like the transition.
	logTheta := make([]float64, n)
	maxE := math.Inf(-1)
	for v := 0; v < n; v++ {
		th := g.WeightedDegree(int32(v))
		if th < 1 {
			th = 1
		}
		logTheta[v] = math.Log(th)
		if e := -q * logTheta[v]; e > maxE {
			maxE = e
		}
	}
	tele := make([]float64, n)
	for v := 0; v < n; v++ {
		tele[v] = math.Exp(-q*logTheta[v] - maxE)
	}
	opts.Teleport = tele
	return Solve(ConnectionStrength(g), opts)
}
