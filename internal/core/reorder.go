package core

import (
	"sort"

	"d2pr/internal/graph"
)

// Locality-first node relabeling ("Gorder-lite").
//
// The pull sweep's only non-streaming access is the gather cur[src] /
// scaled[src] for every in-arc of every destination. On the power-law graphs
// this module targets, those gathers are dominated by a small set of hub
// nodes that every row touches, plus a community-local tail — but the
// builder's arbitrary node ids scatter both across the whole score array, so
// the gather working set is the entire vector.
//
// computeOrder relabels nodes so the sweep's working set is compact:
//
//   - Hub-seeded: BFS starts from the highest-total-degree node, so the
//     nodes touched from everywhere get the lowest new ids and the hot
//     prefix of the score array stays cache-resident across rows.
//   - BFS within components: each frontier expansion hands adjacent ids to
//     topological neighbors (over the union of out- and in-arcs, so directed
//     graphs cluster citers next to citees), which keeps a destination
//     block's sources inside a narrow id window.
//   - Degree-descending frontier expansion: within one node's neighborhood,
//     high-degree neighbors are labeled first, pulling secondary hubs toward
//     the front as well (the "lite" stand-in for Gorder's windowed
//     frequency maximization).
//   - Exhaustive seeding: remaining components are seeded in degree order,
//     so disconnected graphs are fully covered.
//
// The result is a permutation origOf with origOf[new] = old; nil is returned
// when the computed order is the identity (nothing to translate). The order
// is deterministic: ties break on ascending original id everywhere.
func computeOrder(g *graph.Graph) []int32 {
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	m := int64(g.NumArcs())

	// Transient in-adjacency (counting-sort transpose in original id space);
	// released when this function returns.
	inOff := make([]int64, n+1)
	for k := int64(0); k < m; k++ {
		inOff[g.ArcTarget(k)+1]++
	}
	for v := 0; v < n; v++ {
		inOff[v+1] += inOff[v]
	}
	inSrc := make([]int32, m)
	cursor := make([]int64, n)
	copy(cursor, inOff[:n])
	deg := make([]int64, n) // total degree: out + in arc endpoints
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		deg[u] += hi - lo
		for k := lo; k < hi; k++ {
			v := g.ArcTarget(k)
			inSrc[cursor[v]] = u
			cursor[v]++
			deg[v]++
		}
	}

	// Seed scan order: degree descending, id ascending on ties.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.Slice(seeds, func(i, j int) bool {
		a, b := seeds[i], seeds[j]
		if deg[a] != deg[b] {
			return deg[a] > deg[b]
		}
		return a < b
	})

	visited := make([]bool, n)
	origOf := make([]int32, 0, n)
	var nbuf []int32 // per-expansion scratch for the degree-sorted frontier
	head := 0
	for _, s := range seeds {
		if !visited[s] {
			visited[s] = true
			origOf = append(origOf, s)
		}
		for head < len(origOf) {
			u := origOf[head]
			head++
			nbuf = nbuf[:0]
			for _, v := range g.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					nbuf = append(nbuf, v)
				}
			}
			for k := inOff[u]; k < inOff[u+1]; k++ {
				if v := inSrc[k]; !visited[v] {
					visited[v] = true
					nbuf = append(nbuf, v)
				}
			}
			sort.Slice(nbuf, func(i, j int) bool {
				a, b := nbuf[i], nbuf[j]
				if deg[a] != deg[b] {
					return deg[a] > deg[b]
				}
				return a < b
			})
			origOf = append(origOf, nbuf...)
		}
	}

	identity := true
	for i, v := range origOf {
		if int32(i) != v {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	return origOf
}
