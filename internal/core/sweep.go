package core

import (
	"fmt"
	"math"

	"d2pr/internal/graph"
)

// SweepSolver amortizes the p-independent work of ranking one graph under
// many D2PR configurations — the workload of a parameter sweep (many
// de-coupling weights p and blend weights β on one graph). Three pieces are
// built once and shared, read-only, by every Solve call:
//
//   - the per-node log Θ̂ table (one WeightedDegree pass + n logs),
//   - the connection-strength transition for β-blending,
//   - the pull-transpose structure of the flow graph (offsets, sources,
//     dangling set) plus the CSR→flow arc permutation, so each
//     configuration scatters its probabilities in O(arcs) instead of
//     repeating the counting-sort transpose.
//
// Per configuration, the D2PR factors are evaluated as a per-node table
// exp(-p·log Θ̂(v)) — n exponentials instead of one per arc, exploiting
// that the per-source softmax shift of DegreeDecoupled cancels in the
// normalization. Sources whose factor sum over- or underflows anyway fall
// back to the shifted per-source evaluation, preserving DegreeDecoupled's
// stability guarantee for extreme p. The resulting scores agree with
// Blended + Solve to within a few ulps of floating-point reassociation —
// far inside the solver tolerance — so cached sweep results are
// interchangeable with interactive ones.
//
// A SweepSolver is immutable after construction and safe for concurrent
// Solve calls; per-call state is allocated per call.
type SweepSolver struct {
	g        *graph.Graph
	logTheta []float64
	conn     []float64 // connection-strength probs, CSR arc order

	// Transpose template (see newFlow): offsets/sources/dangling are
	// configuration-independent; perm maps CSR arc k to its flow position.
	offsets  []int64
	sources  []int32
	dangling []int32
	perm     []int64
}

// NewSweepSolver prepares the shared state for sweeping g.
func NewSweepSolver(g *graph.Graph) *SweepSolver {
	n := g.NumNodes()
	s := &SweepSolver{
		g:        g,
		logTheta: logThetaTable(g),
		conn:     ConnectionStrength(g).probs,
		offsets:  make([]int64, n+1),
		sources:  make([]int32, g.NumArcs()),
		perm:     make([]int64, g.NumArcs()),
	}
	// Mirror newFlow's counting-sort transpose exactly so that scattering
	// through perm reproduces the same flow layout (and therefore the same
	// floating-point accumulation order) as a fresh newFlow would.
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			s.dangling = append(s.dangling, u)
			continue
		}
		for k := lo; k < hi; k++ {
			s.offsets[g.ArcTarget(k)+1]++
		}
	}
	for v := 0; v < n; v++ {
		s.offsets[v+1] += s.offsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, s.offsets[:n])
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		for k := lo; k < hi; k++ {
			v := g.ArcTarget(k)
			pos := cursor[v]
			cursor[v]++
			s.sources[pos] = u
			s.perm[k] = pos
		}
	}
	return s
}

// Graph returns the graph the solver sweeps.
func (s *SweepSolver) Graph() *graph.Graph { return s.g }

// Solve ranks one (p, β) configuration, equivalent to
// Solve(Blended(g, p, beta), opts) but reusing the shared sweep state.
func (s *SweepSolver) Solve(p, beta float64, opts Options) (*Result, error) {
	n := s.g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return nil, fmt.Errorf("core: beta %v out of range [0, 1]", beta)
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	fprobs := make([]float64, s.g.NumArcs())
	if beta == 1 {
		for k, pos := range s.perm {
			fprobs[pos] = s.conn[k]
		}
	} else {
		s.decoupledFlowProbs(p, beta, fprobs)
	}
	f := &flow{
		n:        n,
		offsets:  s.offsets,
		sources:  s.sources,
		probs:    fprobs,
		dangling: s.dangling,
	}
	return runPower(f, opts)
}

// decoupledFlowProbs writes the (β-blended) D2PR transition directly in
// flow order. The per-node factor table E[v] = exp(-p·log Θ̂(v)) replaces
// DegreeDecoupled's per-arc shifted exponentials; any source whose factor
// sum is not a positive finite number (possible only at extreme p·Θ̂
// spreads) re-runs with the per-source shift, so the stability guarantee
// is unchanged.
func (s *SweepSolver) decoupledFlowProbs(p, beta float64, fprobs []float64) {
	g := s.g
	n := g.NumNodes()
	factor := make([]float64, n)
	for v := range factor {
		factor[v] = math.Exp(-p * s.logTheta[v])
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			sum += factor[g.ArcTarget(k)]
		}
		// The fast path needs a usable reciprocal: a denormal sum passes a
		// plain sum > 0 check but 1/sum overflows to +Inf, so test the
		// reciprocal itself alongside the sum.
		if inv := 1 / sum; sum > 0 && !math.IsInf(sum, 0) && !math.IsNaN(sum) && !math.IsInf(inv, 0) {
			if beta == 0 {
				for k := lo; k < hi; k++ {
					fprobs[s.perm[k]] = factor[g.ArcTarget(k)] * inv
				}
			} else {
				for k := lo; k < hi; k++ {
					fprobs[s.perm[k]] = beta*s.conn[k] + (1-beta)*factor[g.ArcTarget(k)]*inv
				}
			}
			continue
		}
		// Stable fallback: shifted exponentials for this source only.
		maxE := math.Inf(-1)
		for k := lo; k < hi; k++ {
			if e := -p * s.logTheta[g.ArcTarget(k)]; e > maxE {
				maxE = e
			}
		}
		var ssum float64
		for k := lo; k < hi; k++ {
			ssum += math.Exp(-p*s.logTheta[g.ArcTarget(k)] - maxE)
		}
		inv := 1 / ssum
		for k := lo; k < hi; k++ {
			w := math.Exp(-p*s.logTheta[g.ArcTarget(k)]-maxE) * inv
			if beta > 0 {
				w = beta*s.conn[k] + (1-beta)*w
			}
			fprobs[s.perm[k]] = w
		}
	}
}
