package core

import (
	"context"
	"fmt"
	"math"

	"d2pr/internal/graph"
)

// SweepSolver amortizes the p-independent work of ranking one graph under
// many D2PR configurations — the workload of a parameter sweep (many
// de-coupling weights p and blend weights β on one graph). The shared
// read-only state is:
//
//   - the graph's Engine (pull transpose, CSR→flow arc permutation,
//     1/outdeg table) from the per-graph engine cache,
//   - the per-node log Θ̂ table (one WeightedDegree pass + n logs),
//   - the connection-strength transition for β-blending.
//
// Per configuration, the D2PR factors are evaluated as a per-node table
// exp(-p·log Θ̂(v)) — n exponentials instead of one per arc, exploiting
// that the per-source softmax shift of DegreeDecoupled cancels in the
// normalization. Sources whose factor sum over- or underflows anyway fall
// back to the shifted per-source evaluation, preserving DegreeDecoupled's
// stability guarantee for extreme p. Uniform configurations (p = 0 with no
// effective blend, or β = 1 on an unweighted graph) run on the engine's
// implicit 1/outdeg path and touch no per-arc array at all. The resulting
// scores agree with Blended + Solve to within a few ulps of floating-point
// reassociation — far inside the solver tolerance — so cached sweep results
// are interchangeable with interactive ones.
//
// A SweepSolver is immutable after construction and safe for concurrent
// Solve calls; per-call buffers come from the engine's pools.
type SweepSolver struct {
	e        *Engine
	logTheta []float64
	conn     *Transition
}

// NewSweepSolver prepares the shared state for sweeping g, using the cached
// engine for the graph.
func NewSweepSolver(g *graph.Graph) *SweepSolver {
	return NewSweepSolverFor(EngineFor(g))
}

// NewSweepSolverFor prepares the shared state for sweeping the engine's
// graph. Callers holding a long-lived Engine (the registry's snapshots)
// use this to guarantee the sweep shares that exact topology.
func NewSweepSolverFor(e *Engine) *SweepSolver {
	return &SweepSolver{
		e:        e,
		logTheta: logThetaTable(e.g),
		conn:     ConnectionStrength(e.g),
	}
}

// Graph returns the graph the solver sweeps.
func (s *SweepSolver) Graph() *graph.Graph { return s.e.g }

// Solve ranks one (p, β) configuration, equivalent to
// Solve(Blended(g, p, beta), opts) but reusing the shared sweep state.
func (s *SweepSolver) Solve(p, beta float64, opts Options) (*Result, error) {
	return s.SolveContext(context.Background(), p, beta, opts)
}

// SolveContext is Solve with cancellation: the underlying power iteration
// polls ctx once per iteration (see Engine.SolveContext), so a cancelled
// sweep configuration aborts within one iteration instead of running to
// convergence.
func (s *SweepSolver) SolveContext(ctx context.Context, p, beta float64, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.e.n
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return nil, fmt.Errorf("core: beta %v out of range [0, 1]", beta)
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	// Configurations that reduce to the uniform transition take the
	// engine's implicit path — no per-arc probabilities are built. This
	// mirrors Blended's own short-circuits so sweep scores stay
	// interchangeable with the interactive pipeline.
	if (p == 0 && (beta == 0 || s.conn.uniform)) || (beta == 1 && s.conn.uniform) {
		return s.e.power(ctx, flow{}, opts, schedBlocked)
	}
	if beta == 1 {
		// Pure connection-strength: s.conn is long-lived, so the engine's
		// flow-probability memoization applies and repeat solves skip the
		// scatter entirely.
		probs, pooled := s.e.flowProbs(s.conn)
		res, err := s.e.power(ctx, flow{probs: probs}, opts, schedBlocked)
		if pooled != nil {
			s.e.putM(pooled)
		}
		return res, err
	}
	if beta == 0 {
		// Pure de-coupling is rank-1: try the factored form first — two
		// per-node tables instead of a per-arc array, and the solve runs the
		// probs-free kernel. Falls through to the per-arc build only when
		// some source needs the shifted stable evaluation (extreme p).
		rfp, ssp := getNT[float64](s.e), getNT[float64](s.e)
		if s.decoupledFactors(p, *rfp, *ssp) {
			res, err := s.e.power(ctx, flow{rowFactor: *rfp, srcScale: *ssp}, opts, schedBlocked)
			putNT(s.e, rfp)
			putNT(s.e, ssp)
			return res, err
		}
		putNT(s.e, rfp)
		putNT(s.e, ssp)
	}
	pp := s.e.getM()
	fprobs := *pp
	s.decoupledFlowProbs(p, beta, fprobs)
	res, err := s.e.power(ctx, flow{probs: fprobs}, opts, schedBlocked)
	s.e.putM(pp)
	return res, err
}

// decoupledFactors fills the rank-1 factored form of the pure (β = 0) D2PR
// transition for de-coupling weight p directly in the engine's permuted id
// space: rf[dst] = exp(-p·log Θ̂) per destination, ss[src] = the reciprocal
// per-source factor sum (0 for dangling sources). Returns false — with rf/ss
// contents unspecified — when any factor or sum fails the positive-finite
// gate (see factoredDecoupled), in which case the caller must use the
// shifted per-arc build.
func (s *SweepSolver) decoupledFactors(p float64, rf, ss []float64) bool {
	g := s.e.g
	n := g.NumNodes()
	permOf := s.e.permOf
	factorp := getNT[float64](s.e)
	factor := *factorp
	defer putNT(s.e, factorp)
	for v := 0; v < n; v++ {
		f := math.Exp(-p * s.logTheta[v])
		if f <= 0 || math.IsInf(f, 0) {
			return false
		}
		factor[v] = f
	}
	for u := int32(0); int(u) < n; u++ {
		pu := u
		if permOf != nil {
			pu = permOf[u]
		}
		lo, hi := g.ArcRange(u)
		if lo == hi {
			ss[pu] = 0 // dangling; pooled buffers arrive with stale contents
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			sum += factor[g.ArcTarget(k)]
		}
		inv := 1 / sum
		if !(sum > 0) || math.IsInf(sum, 0) || math.IsInf(inv, 0) {
			return false
		}
		ss[pu] = inv
	}
	if permOf == nil {
		copy(rf, factor)
	} else {
		for v, pv := range permOf {
			rf[pv] = factor[v]
		}
	}
	return true
}

// decoupledFlowProbs writes the (β-blended) D2PR transition directly in
// flow order. The per-node factor table E[v] = exp(-p·log Θ̂(v)) replaces
// DegreeDecoupled's per-arc shifted exponentials; any source whose factor
// sum is not a positive finite number (possible only at extreme p·Θ̂
// spreads) re-runs with the per-source shift, so the stability guarantee
// is unchanged.
func (s *SweepSolver) decoupledFlowProbs(p, beta float64, fprobs []float64) {
	g := s.e.g
	n := g.NumNodes()
	perm := s.e.perm
	var conn []float64
	if beta > 0 {
		conn = s.conn.arcProbs()
	}
	factorp := getNT[float64](s.e)
	factor := *factorp
	for v := range factor {
		factor[v] = math.Exp(-p * s.logTheta[v])
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			sum += factor[g.ArcTarget(k)]
		}
		// The fast path needs a usable reciprocal: a denormal sum passes a
		// plain sum > 0 check but 1/sum overflows to +Inf, so test the
		// reciprocal itself alongside the sum.
		if inv := 1 / sum; sum > 0 && !math.IsInf(sum, 0) && !math.IsNaN(sum) && !math.IsInf(inv, 0) {
			if beta == 0 {
				for k := lo; k < hi; k++ {
					fprobs[perm[k]] = factor[g.ArcTarget(k)] * inv
				}
			} else {
				for k := lo; k < hi; k++ {
					fprobs[perm[k]] = beta*conn[k] + (1-beta)*factor[g.ArcTarget(k)]*inv
				}
			}
			continue
		}
		// Stable fallback: shifted exponentials for this source only.
		maxE := math.Inf(-1)
		for k := lo; k < hi; k++ {
			if e := -p * s.logTheta[g.ArcTarget(k)]; e > maxE {
				maxE = e
			}
		}
		var ssum float64
		for k := lo; k < hi; k++ {
			ssum += math.Exp(-p*s.logTheta[g.ArcTarget(k)] - maxE)
		}
		inv := 1 / ssum
		for k := lo; k < hi; k++ {
			w := math.Exp(-p*s.logTheta[g.ArcTarget(k)]-maxE) * inv
			if beta > 0 {
				w = beta*conn[k] + (1-beta)*w
			}
			fprobs[perm[k]] = w
		}
	}
	putNT(s.e, factorp)
}
