package core

import (
	"context"
	"fmt"
	"math"

	"d2pr/internal/graph"
)

// SweepSolver amortizes the p-independent work of ranking one graph under
// many D2PR configurations — the workload of a parameter sweep (many
// de-coupling weights p and blend weights β on one graph). The shared
// read-only state is:
//
//   - the graph's Engine (pull transpose, CSR→flow arc permutation,
//     1/outdeg table) from the per-graph engine cache,
//   - the per-node log Θ̂ table (one WeightedDegree pass + n logs),
//   - the connection-strength transition for β-blending.
//
// Per configuration, the D2PR factors are evaluated as a per-node table
// exp(-p·log Θ̂(v)) — n exponentials instead of one per arc, exploiting
// that the per-source softmax shift of DegreeDecoupled cancels in the
// normalization. Sources whose factor sum over- or underflows anyway fall
// back to the shifted per-source evaluation, preserving DegreeDecoupled's
// stability guarantee for extreme p. Uniform configurations (p = 0 with no
// effective blend, or β = 1 on an unweighted graph) run on the engine's
// implicit 1/outdeg path and touch no per-arc array at all. The resulting
// scores agree with Blended + Solve to within a few ulps of floating-point
// reassociation — far inside the solver tolerance — so cached sweep results
// are interchangeable with interactive ones.
//
// A SweepSolver is immutable after construction and safe for concurrent
// Solve calls; per-call buffers come from the engine's pools.
type SweepSolver struct {
	e        *Engine
	logTheta []float64
	conn     *Transition
}

// NewSweepSolver prepares the shared state for sweeping g, using the cached
// engine for the graph.
func NewSweepSolver(g *graph.Graph) *SweepSolver {
	return NewSweepSolverFor(EngineFor(g))
}

// NewSweepSolverFor prepares the shared state for sweeping the engine's
// graph. Callers holding a long-lived Engine (the registry's snapshots)
// use this to guarantee the sweep shares that exact topology.
func NewSweepSolverFor(e *Engine) *SweepSolver {
	return &SweepSolver{
		e:        e,
		logTheta: logThetaTable(e.g),
		conn:     ConnectionStrength(e.g),
	}
}

// Graph returns the graph the solver sweeps.
func (s *SweepSolver) Graph() *graph.Graph { return s.e.g }

// Solve ranks one (p, β) configuration, equivalent to
// Solve(Blended(g, p, beta), opts) but reusing the shared sweep state.
func (s *SweepSolver) Solve(p, beta float64, opts Options) (*Result, error) {
	return s.SolveContext(context.Background(), p, beta, opts)
}

// SolveContext is Solve with cancellation: the underlying power iteration
// polls ctx once per iteration (see Engine.SolveContext), so a cancelled
// sweep configuration aborts within one iteration instead of running to
// convergence.
func (s *SweepSolver) SolveContext(ctx context.Context, p, beta float64, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.e.n
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return nil, fmt.Errorf("core: beta %v out of range [0, 1]", beta)
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	// Configurations that reduce to the uniform transition take the
	// engine's implicit path — no per-arc probabilities are built. This
	// mirrors Blended's own short-circuits so sweep scores stay
	// interchangeable with the interactive pipeline.
	if (p == 0 && (beta == 0 || s.conn.uniform)) || (beta == 1 && s.conn.uniform) {
		return s.e.power(ctx, nil, opts, true)
	}
	pp := s.e.getM()
	fprobs := *pp
	if beta == 1 {
		src := s.conn.arcProbs()
		for k, pos := range s.e.perm {
			fprobs[pos] = src[k]
		}
	} else {
		s.decoupledFlowProbs(p, beta, fprobs)
	}
	res, err := s.e.power(ctx, fprobs, opts, true)
	s.e.putM(pp)
	return res, err
}

// decoupledFlowProbs writes the (β-blended) D2PR transition directly in
// flow order. The per-node factor table E[v] = exp(-p·log Θ̂(v)) replaces
// DegreeDecoupled's per-arc shifted exponentials; any source whose factor
// sum is not a positive finite number (possible only at extreme p·Θ̂
// spreads) re-runs with the per-source shift, so the stability guarantee
// is unchanged.
func (s *SweepSolver) decoupledFlowProbs(p, beta float64, fprobs []float64) {
	g := s.e.g
	n := g.NumNodes()
	perm := s.e.perm
	var conn []float64
	if beta > 0 {
		conn = s.conn.arcProbs()
	}
	factorp := s.e.getN()
	factor := *factorp
	for v := range factor {
		factor[v] = math.Exp(-p * s.logTheta[v])
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			sum += factor[g.ArcTarget(k)]
		}
		// The fast path needs a usable reciprocal: a denormal sum passes a
		// plain sum > 0 check but 1/sum overflows to +Inf, so test the
		// reciprocal itself alongside the sum.
		if inv := 1 / sum; sum > 0 && !math.IsInf(sum, 0) && !math.IsNaN(sum) && !math.IsInf(inv, 0) {
			if beta == 0 {
				for k := lo; k < hi; k++ {
					fprobs[perm[k]] = factor[g.ArcTarget(k)] * inv
				}
			} else {
				for k := lo; k < hi; k++ {
					fprobs[perm[k]] = beta*conn[k] + (1-beta)*factor[g.ArcTarget(k)]*inv
				}
			}
			continue
		}
		// Stable fallback: shifted exponentials for this source only.
		maxE := math.Inf(-1)
		for k := lo; k < hi; k++ {
			if e := -p * s.logTheta[g.ArcTarget(k)]; e > maxE {
				maxE = e
			}
		}
		var ssum float64
		for k := lo; k < hi; k++ {
			ssum += math.Exp(-p*s.logTheta[g.ArcTarget(k)] - maxE)
		}
		inv := 1 / ssum
		for k := lo; k < hi; k++ {
			w := math.Exp(-p*s.logTheta[g.ArcTarget(k)]-maxE) * inv
			if beta > 0 {
				w = beta*conn[k] + (1-beta)*w
			}
			fprobs[perm[k]] = w
		}
	}
	s.e.putN(factorp)
}
