package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// errAfterCtx is a context whose Err() flips to Canceled on the nth call.
// The solvers poll only ctx.Err() (never Done), so the flip point pins down
// exactly which iteration observes the cancellation — the tests below use it
// to prove the "aborts within one iteration" contract deterministically,
// with no goroutines or wall-clock races.
type errAfterCtx struct {
	context.Context
	calls    atomic.Int64
	cancelAt int64
}

func errAfter(n int64) *errAfterCtx {
	return &errAfterCtx{Context: context.Background(), cancelAt: n}
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) >= c.cancelAt {
		return context.Canceled
	}
	return nil
}

func requireCancelErr(t *testing.T, err error, wantProgress string) {
	t.Helper()
	if err == nil {
		t.Fatal("expected cancellation error, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v is not context.Canceled", err)
	}
	if !strings.Contains(err.Error(), wantProgress) {
		t.Fatalf("error %q does not report progress %q", err, wantProgress)
	}
}

// TestSolveContextCancelsWithinOneIteration: the power loop polls ctx at the
// top of every iteration, so an Err() that flips on poll k aborts the solve
// with exactly k-1 completed iterations — within one iteration of the
// cancellation, for both the sequential and parallel sweep paths.
func TestSolveContextCancelsWithinOneIteration(t *testing.T) {
	g := powerLawGraph(t, 500, 5, 7)
	tr := DegreeDecoupled(g, 1)
	for _, workers := range []int{1, 4} {
		for _, flipAt := range []int64{1, 4} {
			t.Run(fmt.Sprintf("workers=%d flip=%d", workers, flipAt), func(t *testing.T) {
				ctx := errAfter(flipAt)
				res, err := SolveContext(ctx, tr, Options{MaxIter: 50, Tol: 1e-300, Workers: workers})
				requireCancelErr(t, err, fmt.Sprintf("after %d/50 iterations", flipAt-1))
				if res != nil {
					t.Fatalf("cancelled solve returned a result: %+v", res)
				}
			})
		}
	}
}

// TestSweepSolverContextCancel: the sweep path shares the power core, so the
// same one-iteration abort contract holds through SweepSolver.SolveContext.
func TestSweepSolverContextCancel(t *testing.T) {
	g := powerLawGraph(t, 500, 5, 8)
	s := NewSweepSolver(g)
	ctx := errAfter(3)
	_, err := s.SolveContext(ctx, 1.2, 0.3, Options{MaxIter: 40, Tol: 1e-300})
	requireCancelErr(t, err, "after 2/40 iterations")

	// The solver must stay usable after a cancelled configuration: pooled
	// buffers were returned, not leaked mid-solve.
	if _, err := s.Solve(1.2, 0.3, Options{MaxIter: 40}); err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
}

// TestGaussSeidelContextCancel: the sequential ablation solver honors the
// same per-sweep poll.
func TestGaussSeidelContextCancel(t *testing.T) {
	g := powerLawGraph(t, 500, 5, 9)
	tr := DegreeDecoupled(g, 1)
	ctx := errAfter(2)
	res, err := SolveGaussSeidelContext(ctx, tr, Options{MaxIter: 30, Tol: 1e-300})
	requireCancelErr(t, err, "after 1/30 sweeps")
	if res != nil {
		t.Fatalf("cancelled solve returned a result: %+v", res)
	}
	if _, err := SolveGaussSeidel(tr, Options{MaxIter: 30}); err != nil {
		t.Fatalf("solve after cancellation: %v", err)
	}
}

// TestSolvePPRContextCancel: a pre-cancelled context aborts the push loop at
// its first poll (every 256 dequeues) instead of draining the queue. The
// tight epsilon forces far more than 256 pushes on this graph, so a
// completed solve here would mean the poll never fired.
func TestSolvePPRContextCancel(t *testing.T) {
	g := powerLawGraph(t, 3000, 6, 10)
	e := EngineFor(g)
	tr := Uniform(g)
	// Node 0 in powerLawGraph is dangling (only nodes ≥ 1 emit arcs); a
	// high-id seed spreads mass into the hub and forces a long push run.
	seed := int32(g.NumNodes() - 1)

	full, err := e.SolvePPR(tr, seed, ForwardPushOptions{Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if full.Pushes <= 256 {
		t.Fatalf("graph too easy for the cancellation test: only %d pushes", full.Pushes)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.SolvePPRContext(ctx, tr, seed, ForwardPushOptions{Epsilon: 1e-9})
	requireCancelErr(t, err, "pushes")
	if res != nil {
		t.Fatalf("cancelled solve returned a result: %+v", res)
	}

	// Scratch state went back to the pool zeroed: a follow-up solve on the
	// same engine must reproduce the uncancelled answer exactly.
	again, err := e.SolvePPR(tr, seed, ForwardPushOptions{Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if again.Pushes != full.Pushes || again.ResidualMass != full.ResidualMass {
		t.Fatalf("solve after cancellation diverged: %d pushes (want %d), residual %v (want %v)",
			again.Pushes, full.Pushes, again.ResidualMass, full.ResidualMass)
	}
}

// TestSolveContextDeadline: a real expired deadline (the serving-layer
// shape) aborts promptly — the wall-clock companion to the deterministic
// poll-counting tests above.
func TestSolveContextDeadline(t *testing.T) {
	g := powerLawGraph(t, 2000, 6, 11)
	tr := DegreeDecoupled(g, 1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SolveContext(ctx, tr, Options{MaxIter: 1 << 20, Tol: 0})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
