package core

import "math"

// float32or64 constrains the score-tier element type of the sweep kernels.
// float64 is the default serving tier; float32 (Options.Float32) halves the
// memory bandwidth of every per-node and per-arc stream for workloads that
// tolerate ~1e-6 absolute score error.
type float32or64 interface {
	~float32 | ~float64
}

// sweepRows performs one pull sweep over destinations [lo, hi) of the
// permuted pull CSR and returns the segment's partial L1 difference between
// next and cur plus its active-frontier count (nodes moving by more than
// activeTol). Fusing the residual into the sweep epilogue saves a separate
// two-stream pass over the score vectors per iteration (~10% of a warm
// solve, measured). The residual is summed in layout order (an original-id
// walk would be a gather costing ~30% of the solve, measured), so a
// relabeled engine's residual can differ from the unpermuted solve's in its
// last ulps; the iterates themselves stay bit-identical — the epilogue only
// reads them — and the difference could only become caller-visible if a
// residual straddled Tol inside that ulp-level window, a measure-zero
// margin.
//
// With probs == nil the transition is per-node factored: scaled must hold
// cur[u]·srcScale[u] (srcScale is 1/outdeg for the implicit uniform
// transition, the reciprocal factor sum for a rank-1 D2PR transition), and
// the epilogue also maintains the invariant for the next iteration by
// writing nextScaled[v] = next[v]·srcScale[v] — fusing what was a separate
// per-node prescale pass. rowFactor, non-nil only in the rank-1 case,
// multiplies each destination's accumulated sum once per row — the entire
// per-arc probability stream of the D2PR transition collapses into that one
// per-row multiply. With probs non-nil it holds per-arc probabilities in
// pull order and scaled/nextScaled/rowFactor/srcScale are unused.
//
// The accumulation is 4-way unrolled into independent partial sums: the
// single-accumulator loop this replaces serialized one FP add latency per
// arc, which — not bandwidth — was the sweep's bottleneck (the gather
// working set of a 30k-node graph already fits in L2). The reduction order
// (a0+a1)+(a2+a3) after the same 4-lane striping is fixed, so results are
// deterministic and identical across schedules, worker counts, and node
// orderings: a destination's row always holds the same values in the same
// sequence (rows are filled in original source-scan order regardless of the
// relabeling), and each row is always reduced by this exact tree.
//
// Partial sums are accumulated in float64 for both tiers; for the float32
// tier only the stored vectors are narrowed, keeping hub rows (which can sum
// tens of thousands of terms) from losing digits to cascaded float32
// rounding.
func sweepRows[T float32or64](offsets []int64, sources []int32, probs, cur, scaled, next, nextScaled, tele []T, rowFactor, srcScale []float64, alpha, base, activeTol float64, lo, hi int) (diff float64, active int) {
	tail := base + 1 - alpha
	if probs == nil && rowFactor != nil {
		for v := lo; v < hi; v++ {
			row := sources[offsets[v]:offsets[v+1]]
			var a0, a1, a2, a3 float64
			i := 0
			for ; i+4 <= len(row); i += 4 {
				a0 += float64(scaled[row[i]])
				a1 += float64(scaled[row[i+1]])
				a2 += float64(scaled[row[i+2]])
				a3 += float64(scaled[row[i+3]])
			}
			for ; i < len(row); i++ {
				a0 += float64(scaled[row[i]])
			}
			acc := (a0 + a1) + (a2 + a3)
			x := T(alpha*rowFactor[v]*acc + tail*float64(tele[v]))
			next[v] = x
			nextScaled[v] = T(float64(x) * srcScale[v])
			d := math.Abs(float64(x) - float64(cur[v]))
			diff += d
			if d > activeTol {
				active++
			}
		}
		return diff, active
	}
	if probs == nil {
		for v := lo; v < hi; v++ {
			// Row subslice: i+4 <= len(row) lets the compiler drop the
			// per-arc bounds checks on the source stream; only the scaled
			// gather keeps one (its index is data).
			row := sources[offsets[v]:offsets[v+1]]
			var a0, a1, a2, a3 float64
			i := 0
			for ; i+4 <= len(row); i += 4 {
				a0 += float64(scaled[row[i]])
				a1 += float64(scaled[row[i+1]])
				a2 += float64(scaled[row[i+2]])
				a3 += float64(scaled[row[i+3]])
			}
			for ; i < len(row); i++ {
				a0 += float64(scaled[row[i]])
			}
			acc := (a0 + a1) + (a2 + a3)
			x := T(alpha*acc + tail*float64(tele[v]))
			next[v] = x
			nextScaled[v] = T(float64(x) * srcScale[v])
			// math.Abs is a branchless intrinsic; a sign test here would
			// mispredict half the time (residual signs are random).
			d := math.Abs(float64(x) - float64(cur[v]))
			diff += d
			if d > activeTol {
				active++
			}
		}
		return diff, active
	}
	for v := lo; v < hi; v++ {
		klo, khi := offsets[v], offsets[v+1]
		row := sources[klo:khi]
		pr := probs[klo:khi]
		pr = pr[:len(row)] // no-op reslice: proves len(pr) == len(row) to BCE
		var a0, a1, a2, a3 float64
		i := 0
		for ; i+4 <= len(row); i += 4 {
			// The product is taken in T: exact for float64, and for float32 a
			// single rounding per term (the float64 partial sums still keep
			// hub rows from cascading) — well inside the tier's ~1e-6
			// contract, and it keeps the per-arc convert count at one.
			a0 += float64(pr[i] * cur[row[i]])
			a1 += float64(pr[i+1] * cur[row[i+1]])
			a2 += float64(pr[i+2] * cur[row[i+2]])
			a3 += float64(pr[i+3] * cur[row[i+3]])
		}
		for ; i < len(row); i++ {
			a0 += float64(pr[i] * cur[row[i]])
		}
		acc := (a0 + a1) + (a2 + a3)
		x := T(alpha*acc + tail*float64(tele[v]))
		next[v] = x
		d := math.Abs(float64(x) - float64(cur[v]))
		diff += d
		if d > activeTol {
			active++
		}
	}
	return diff, active
}

// materializeScores renormalizes the converged iterate into a fresh
// original-id-order float64 score vector. Both the normalization sum and the
// scaling walk nodes in original id order (via permOf when the engine is
// relabeled), so the result is bit-identical to the unpermuted solve.
func materializeScores[T float32or64](x []T, permOf []int32) []float64 {
	out := make([]float64, len(x))
	var sum float64
	if permOf == nil {
		for _, v := range x {
			sum += float64(v)
		}
		if sum <= 0 {
			for i, v := range x {
				out[i] = float64(v)
			}
			return out
		}
		inv := 1 / sum
		for i, v := range x {
			out[i] = float64(v) * inv
		}
		return out
	}
	for _, pv := range permOf {
		sum += float64(x[pv])
	}
	if sum <= 0 {
		for i, pv := range permOf {
			out[i] = float64(x[pv])
		}
		return out
	}
	inv := 1 / sum
	for i, pv := range permOf {
		out[i] = float64(x[pv]) * inv
	}
	return out
}

// teleportPermuted writes the normalized teleport distribution into tele,
// translated into the engine's permuted id space. The normalization sum runs
// over the caller's original-order vector, so the per-entry arithmetic is
// identical to the unpermuted solve.
func teleportPermuted[T float32or64](opts Options, tele []T, permOf []int32) {
	if opts.Teleport == nil {
		u := 1 / float64(len(tele))
		tu := T(u)
		for i := range tele {
			tele[i] = tu
		}
		return
	}
	var s float64
	for _, v := range opts.Teleport {
		s += v
	}
	if permOf == nil {
		for i, v := range opts.Teleport {
			tele[i] = T(v / s)
		}
		return
	}
	for i, v := range opts.Teleport {
		tele[permOf[i]] = T(v / s)
	}
}
