package core

import (
	"fmt"
	"math"
	"sync"

	"d2pr/internal/graph"
)

// Transition is a column-stochastic random-walk transition over a graph,
// stored as one probability per CSR arc. For every non-dangling source node
// the probabilities of its out-arcs sum to 1; dangling nodes have no arcs and
// their mass is handled by the solver (redistributed to the teleport
// distribution).
//
// Uniform transitions (probability 1/outdeg everywhere) are represented
// implicitly: the solver runs them off the engine's cached 1/outdeg table
// and the per-arc array is only materialized if a caller actually reads
// probabilities (Prob, ProbsFrom, the samplers).
type Transition struct {
	g       *graph.Graph
	uniform bool

	once  sync.Once // guards lazy materialization for uniform/factored transitions
	probs []float64

	// Rank-1 factorization (original id space), set by DegreeDecoupled when
	// numerically safe: probs[k] = rowFactor[dst(k)] · srcScale[src(k)], with
	// srcScale[u] = 1/Σ_{v ∈ out(u)} rowFactor[v] (0 for dangling u). The
	// solvers consume this instead of a per-arc array — the whole O(arcs)
	// probability stream disappears from the sweep. dp keeps the de-coupling
	// weight for lazy per-arc materialization (arcProbs).
	rowFactor []float64
	srcScale  []float64
	dp        float64
}

// Graph returns the graph the transition is defined over.
func (t *Transition) Graph() *graph.Graph { return t.g }

// arcProbs returns the per-arc probabilities, materializing the lazy uniform
// or factored representation on first use. Safe for concurrent callers. The
// factored case materializes through decoupledProbs (the shifted per-source
// evaluation), so the per-arc view is bit-identical to a pre-factorization
// DegreeDecoupled build.
func (t *Transition) arcProbs() []float64 {
	t.once.Do(func() {
		if t.probs == nil {
			if t.rowFactor != nil {
				t.probs = make([]float64, t.g.NumArcs())
				decoupledProbs(t.g, t.dp, logThetaTable(t.g), t.probs)
			} else {
				t.probs = uniformProbs(t.g)
			}
		}
	})
	return t.probs
}

// Prob returns the transition probability attached to arc k.
func (t *Transition) Prob(k int64) float64 { return t.arcProbs()[k] }

// ProbsFrom returns the probability slice parallel to g.Neighbors(u). The
// returned slice aliases internal storage and must not be modified.
func (t *Transition) ProbsFrom(u int32) []float64 {
	probs := t.arcProbs()
	lo, hi := t.g.ArcRange(u)
	return probs[lo:hi]
}

// Uniform builds the classic unweighted PageRank transition: from every node
// each out-arc is taken with probability 1/outdeg, ignoring edge weights.
// The per-arc array is lazy — solving a uniform transition through the
// engine touches no O(arcs) probability storage at all.
func Uniform(g *graph.Graph) *Transition {
	return &Transition{g: g, uniform: true}
}

// uniformProbs materializes the 1/outdeg probabilities of Uniform.
func uniformProbs(g *graph.Graph) []float64 {
	probs := make([]float64, g.NumArcs())
	n := g.NumNodes()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if hi == lo {
			continue
		}
		p := 1 / float64(hi-lo)
		for k := lo; k < hi; k++ {
			probs[k] = p
		}
	}
	return probs
}

// ConnectionStrength builds the conventional weighted PageRank transition
// T_conn(j,i) = w(i→j)/Σ_h w(i→h). For unweighted graphs it coincides with
// Uniform.
func ConnectionStrength(g *graph.Graph) *Transition {
	if !g.Weighted() {
		return Uniform(g)
	}
	t := &Transition{g: g, probs: make([]float64, g.NumArcs())}
	n := g.NumNodes()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if hi == lo {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			sum += g.ArcWeight(k)
		}
		if sum <= 0 {
			// All-zero weights cannot happen (builder enforces w > 0), but
			// guard against hand-constructed graphs: fall back to uniform.
			p := 1 / float64(hi-lo)
			for k := lo; k < hi; k++ {
				t.probs[k] = p
			}
			continue
		}
		for k := lo; k < hi; k++ {
			t.probs[k] = g.ArcWeight(k) / sum
		}
	}
	return t
}

// DegreeDecoupled builds the paper's D2PR transition (Eq. 1 and its directed
// and weighted generalizations):
//
//	T_D(j,i) = Θ(v_j)^-p / Σ_{v_k ∈ out(v_i)} Θ(v_k)^-p
//
// where Θ(v) is the out-degree for unweighted graphs (the degree, for
// undirected graphs) and the total out-weight for weighted graphs. p > 0
// penalizes high-degree destinations, p < 0 boosts them, and p = 0 recovers
// the Uniform transition exactly.
//
// The per-source normalization is evaluated in log-space with the shifted-
// exponential trick, so extreme de-coupling weights (the paper sweeps p up to
// ±4 on graphs with degree ~10³) cannot overflow or underflow: for every
// source the largest factor is exp(0) = 1 and all others lie in (0, 1].
//
// Destinations with Θ = 0 (dangling targets of a directed graph) are treated
// as Θ = 1, the smallest degree a reachable node can meaningfully have; this
// keeps the factor finite for every p and is a no-op on the paper's graphs,
// which have no dangling targets.
//
// p = 0 returns the (implicit) Uniform transition: the factors are exactly
// exp(0)/outdeg = 1/outdeg, so no per-arc array needs to exist.
// When the unshifted factor table exp(-p·log Θ̂) and every per-source factor
// sum are positive finite numbers — always, except at extreme p·Θ̂ spreads —
// the transition is kept in its rank-1 factored form instead of a per-arc
// array: probs[k] = rowFactor[dst(k)]·srcScale[src(k)]. The solvers run the
// factored form directly (one per-node table read per arc replaces the
// per-arc probability stream), and the per-arc view is materialized lazily,
// only if a caller actually reads probabilities.
func DegreeDecoupled(g *graph.Graph, p float64) *Transition {
	if p == 0 {
		return Uniform(g)
	}
	logTheta := logThetaTable(g)
	if rowFactor, srcScale := factoredDecoupled(g, p, logTheta); rowFactor != nil {
		return &Transition{g: g, rowFactor: rowFactor, srcScale: srcScale, dp: p}
	}
	t := &Transition{g: g, probs: make([]float64, g.NumArcs())}
	decoupledProbs(g, p, logTheta, t.probs)
	return t
}

// factoredDecoupled builds the rank-1 form of the D2PR transition, or returns
// (nil, nil) when any factor or per-source factor sum falls outside the
// positive finite range where the unshifted evaluation is safe (the same gate
// SweepSolver.decoupledFlowProbs applies per source; here one bad source
// rejects the whole factorization, because the solvers consume the factored
// form for every row or not at all). A denormal sum passes sum > 0 but its
// reciprocal overflows, so the reciprocal is tested alongside the sum.
func factoredDecoupled(g *graph.Graph, p float64, logTheta []float64) (rowFactor, srcScale []float64) {
	n := g.NumNodes()
	rowFactor = make([]float64, n)
	for v := 0; v < n; v++ {
		f := math.Exp(-p * logTheta[v])
		if f <= 0 || math.IsInf(f, 0) {
			return nil, nil
		}
		rowFactor[v] = f
	}
	srcScale = make([]float64, n)
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			continue // dangling: srcScale stays 0
		}
		var sum float64
		for k := lo; k < hi; k++ {
			sum += rowFactor[g.ArcTarget(k)]
		}
		inv := 1 / sum
		if !(sum > 0) || math.IsInf(sum, 0) || math.IsInf(inv, 0) {
			return nil, nil
		}
		srcScale[u] = inv
	}
	return rowFactor, srcScale
}

// logThetaTable precomputes log Θ̂ for every node — the p-independent half of
// the D2PR transition build, shared across a sweep by SweepSolver.
func logThetaTable(g *graph.Graph) []float64 {
	n := g.NumNodes()
	logTheta := make([]float64, n)
	for v := 0; v < n; v++ {
		th := g.WeightedDegree(int32(v))
		if th < 1 {
			th = 1
		}
		logTheta[v] = math.Log(th)
	}
	return logTheta
}

// decoupledProbs writes the D2PR transition probabilities for de-coupling
// weight p into probs (parallel to the CSR arcs), using a precomputed
// logTheta table.
func decoupledProbs(g *graph.Graph, p float64, logTheta, probs []float64) {
	n := g.NumNodes()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if hi == lo {
			continue
		}
		// exponent for arc k: e_k = -p * log Θ̂(dst)
		maxE := math.Inf(-1)
		for k := lo; k < hi; k++ {
			e := -p * logTheta[g.ArcTarget(k)]
			if e > maxE {
				maxE = e
			}
		}
		var sum float64
		for k := lo; k < hi; k++ {
			e := -p*logTheta[g.ArcTarget(k)] - maxE
			w := math.Exp(e)
			probs[k] = w
			sum += w
		}
		inv := 1 / sum
		for k := lo; k < hi; k++ {
			probs[k] *= inv
		}
	}
}

// Blended builds the weighted-graph D2PR transition of §3.2.3:
//
//	T(j,i) = β·T_conn(j,i) + (1-β)·T_D(j,i)
//
// β = 1 is conventional weighted PageRank; β = 0 is full degree de-coupling.
// β must lie in [0, 1]. The blend is computed in place into a single per-arc
// buffer (the de-coupled half is staged there and the connection half folded
// in), instead of materializing both source transitions plus the output.
func Blended(g *graph.Graph, p, beta float64) (*Transition, error) {
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return nil, fmt.Errorf("core: beta %v out of range [0, 1]", beta)
	}
	if beta == 0 {
		return DegreeDecoupled(g, p), nil
	}
	conn := ConnectionStrength(g)
	if beta == 1 {
		return conn, nil
	}
	if conn.uniform && p == 0 {
		// Both halves are the uniform transition, so the blend is too; keep
		// it implicit rather than blending a distribution with itself.
		return conn, nil
	}
	t := &Transition{g: g, probs: make([]float64, g.NumArcs())}
	blendedProbs(g, p, beta, logThetaTable(g), t.probs)
	return t, nil
}

// blendedProbs writes β·T_conn + (1-β)·T_D directly into probs, one source
// row at a time: the shifted-exponential de-coupled weights are staged in
// the output row, then the connection-strength term is folded in. The
// arithmetic per arc is identical to blending the separately-built
// transitions, without the two extra per-arc arrays.
func blendedProbs(g *graph.Graph, p, beta float64, logTheta, probs []float64) {
	n := g.NumNodes()
	weighted := g.Weighted()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if hi == lo {
			continue
		}
		// De-coupled half (see DegreeDecoupled): shifted exponentials so
		// extreme p cannot over- or underflow.
		maxE := math.Inf(-1)
		for k := lo; k < hi; k++ {
			if e := -p * logTheta[g.ArcTarget(k)]; e > maxE {
				maxE = e
			}
		}
		var dsum float64
		for k := lo; k < hi; k++ {
			w := math.Exp(-p*logTheta[g.ArcTarget(k)] - maxE)
			probs[k] = w
			dsum += w
		}
		dinv := 1 / dsum
		// Connection half (see ConnectionStrength), folded in place.
		uniP := 1 / float64(hi-lo)
		var wsum float64
		if weighted {
			for k := lo; k < hi; k++ {
				wsum += g.ArcWeight(k)
			}
		}
		for k := lo; k < hi; k++ {
			connP := uniP
			if weighted && wsum > 0 {
				connP = g.ArcWeight(k) / wsum
			}
			probs[k] = beta*connP + (1-beta)*(probs[k]*dinv)
		}
	}
}

// NaivePow builds the D2PR transition using direct math.Pow evaluation with
// no log-space stabilization. It exists only as the ablation partner of
// DegreeDecoupled: on hub-heavy graphs with |p| ≥ 4 it produces ±Inf/NaN
// intermediate sums where the stable version does not. Do not use it outside
// tests and benchmarks.
func NaivePow(g *graph.Graph, p float64) *Transition {
	t := &Transition{g: g, probs: make([]float64, g.NumArcs())}
	n := g.NumNodes()
	theta := make([]float64, n)
	for v := 0; v < n; v++ {
		th := g.WeightedDegree(int32(v))
		if th < 1 {
			th = 1
		}
		theta[v] = th
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if hi == lo {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			w := math.Pow(theta[g.ArcTarget(k)], -p)
			t.probs[k] = w
			sum += w
		}
		inv := 1 / sum
		for k := lo; k < hi; k++ {
			t.probs[k] *= inv
		}
	}
	return t
}

// Validate checks that the transition is column-stochastic: every node with
// out-arcs has probabilities summing to 1 within tol, and every probability
// is finite and non-negative. Testing aid.
func (t *Transition) Validate(tol float64) error {
	n := t.g.NumNodes()
	probs := t.arcProbs()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := t.g.ArcRange(u)
		if hi == lo {
			continue
		}
		var sum float64
		for k := lo; k < hi; k++ {
			p := probs[k]
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("core: arc %d has invalid probability %v", k, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("core: node %d out-probabilities sum to %v, want 1±%v", u, sum, tol)
		}
	}
	return nil
}
