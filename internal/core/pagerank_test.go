package core

import (
	"math"
	"testing"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// skewedGraph builds an undirected graph with a broad degree spread: a few
// hubs plus a sparse background, deterministic in seed.
func skewedGraph(n int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(graph.Undirected).EnsureNodes(n).Duplicates(graph.DupKeepFirst)
	// hubs: first 5 nodes connect to many others
	for h := int32(0); h < 5; h++ {
		for i := 0; i < n/4; i++ {
			v := int32(r.Intn(n))
			if v != h {
				b.AddEdge(h, v)
			}
		}
	}
	for i := 0; i < 2*n; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

func degreesOf(g *graph.Graph) []float64 {
	out := make([]float64, g.NumNodes())
	for i := range out {
		out[i] = float64(g.Degree(int32(i)))
	}
	return out
}

func TestD2PRDegreeCouplingTable2(t *testing.T) {
	// The paper's Table 2 effect, stated on the extreme nodes: penalization
	// (p > 0) pushes the top-degree node down the ranking and pulls
	// degree-1 nodes up; boosting (p < 0) does the opposite. (The *global*
	// rank–degree correlation is not monotone in p on hub graphs — boosting
	// over-concentrates on local hubs — so the invariant is about the
	// extremes, exactly as the paper presents it.)
	g := skewedGraph(400, 5)
	deg := degreesOf(g)
	top := stats.TopK(deg, 1)[0]
	rankAt := map[float64]int{}
	for _, p := range []float64{-2, 0, 2} {
		res, err := D2PR(g, p, Options{Tol: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		rankAt[p] = stats.CompetitionRanks(res.Scores)[top]
	}
	// Boosting keeps the hub near the very top (paper: rank 1 at p=-2);
	// penalization sends it far down (paper: rank 5549 of ~7800 at p=2).
	if rankAt[-2] > g.NumNodes()/50 {
		t.Errorf("p=-2: top-degree node rank %d, want within top 2%%", rankAt[-2])
	}
	if rankAt[2] < 10*rankAt[0] || rankAt[2] < g.NumNodes()/2 {
		t.Errorf("p=2: top-degree node rank %d (p=0: %d), want pushed far down",
			rankAt[2], rankAt[0])
	}
	// Conventional PageRank must be strongly degree-coupled (Table 1), and
	// penalization must weaken that coupling substantially.
	r0, err := D2PR(g, 0, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := D2PR(g, 2, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	rho0 := stats.Spearman(r0.Scores, deg)
	rho2 := stats.Spearman(r2.Scores, deg)
	if rho0 < 0.9 {
		t.Errorf("conventional coupling = %v, want ≥ 0.9", rho0)
	}
	if rho2 > rho0-0.2 {
		t.Errorf("penalized coupling = %v, want well below %v", rho2, rho0)
	}
}

func TestD2PRZeroMatchesPageRankUnweighted(t *testing.T) {
	g := skewedGraph(150, 6)
	a, err := D2PR(g, 0, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PageRank(g, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-10 {
			t.Fatalf("node %d: D2PR(0) %v != PageRank %v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestD2PRInvalidP(t *testing.T) {
	g := skewedGraph(20, 7)
	for _, p := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := D2PR(g, p, Options{}); err == nil {
			t.Errorf("p=%v: want error", p)
		}
	}
}

func TestD2PRBlendedWeighted(t *testing.T) {
	g, err := graph.FromWeighted(graph.Undirected, []graph.WeightedEdge{
		{U: 0, V: 1, W: 10}, {U: 0, V: 2, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// β=1 equals conventional weighted PageRank.
	b1, err := D2PRBlended(g, 2, 1, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := PageRank(g, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.Scores {
		if math.Abs(b1.Scores[i]-conv.Scores[i]) > 1e-10 {
			t.Fatalf("β=1 must be conventional: node %d %v vs %v", i, b1.Scores[i], conv.Scores[i])
		}
	}
	if _, err := D2PRBlended(g, 1, 2, Options{}); err == nil {
		t.Error("β=2 must error")
	}
	if _, err := D2PRBlended(g, math.NaN(), 0.5, Options{}); err == nil {
		t.Error("NaN p must error")
	}
}

func TestPersonalizedD2PRLocality(t *testing.T) {
	// Two triangle clusters joined by one bridge; personalizing on cluster
	// one must put all its nodes above all of cluster two.
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {1, 2}, {0, 2}, // cluster one
		{3, 4}, {4, 5}, {3, 5}, // cluster two
		{2, 3}, // bridge
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PersonalizedD2PR(g, []int32{0, 1}, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minNear := math.Min(res.Scores[0], math.Min(res.Scores[1], res.Scores[2]))
	maxFar := math.Max(res.Scores[4], res.Scores[5])
	if minNear <= maxFar {
		t.Errorf("cluster-one scores %v must dominate cluster two %v: %v", minNear, maxFar, res.Scores)
	}
	if _, err := PersonalizedD2PR(g, nil, 0.5, Options{}); err == nil {
		t.Error("empty seeds must error")
	}
	if _, err := PersonalizedD2PR(g, []int32{99}, 0.5, Options{}); err == nil {
		t.Error("out-of-range seed must error")
	}
}

func TestDegreeBiasedTeleport(t *testing.T) {
	g := skewedGraph(300, 9)
	deg := degreesOf(g)
	plain, err := PageRank(g, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	boostLow, err := DegreeBiasedTeleport(g, 2, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	boostHigh, err := DegreeBiasedTeleport(g, -2, Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	rhoPlain := stats.Spearman(plain.Scores, deg)
	rhoLow := stats.Spearman(boostLow.Scores, deg)
	rhoHigh := stats.Spearman(boostHigh.Scores, deg)
	if !(rhoLow < rhoPlain) {
		t.Errorf("q=2 must weaken degree coupling: %v !< %v", rhoLow, rhoPlain)
	}
	if rhoHigh < 0.9 {
		t.Errorf("q=-2 coupling = %v, want still strong (≥0.9)", rhoHigh)
	}
	// The mechanism of ref [2]: low-degree nodes gain rank mass under q>0.
	// Compare the mean score of the 20 lowest-degree (non-isolated) nodes.
	lows := graph.BottomDegreeNodes(g, 20)
	meanAt := func(scores []float64) float64 {
		var s float64
		for _, u := range lows {
			s += scores[u]
		}
		return s / float64(len(lows))
	}
	if !(meanAt(boostLow.Scores) > meanAt(plain.Scores)) {
		t.Errorf("q=2 must lift low-degree nodes: %v !> %v",
			meanAt(boostLow.Scores), meanAt(plain.Scores))
	}
	if _, err := DegreeBiasedTeleport(g, math.NaN(), Options{}); err == nil {
		t.Error("NaN q must error")
	}
	empty := graph.NewBuilder(graph.Undirected).MustBuild()
	if _, err := DegreeBiasedTeleport(empty, 1, Options{}); err == nil {
		t.Error("empty graph must error")
	}
}

func TestWeightedD2PRUsesTheta(t *testing.T) {
	// Node 0 has two neighbors with equal degree but different out-weight
	// Θ: with p > 0 the lighter-Θ neighbor must receive more probability.
	g, err := graph.FromWeighted(graph.Undirected, []graph.WeightedEdge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1},
		{U: 1, V: 3, W: 10}, // Θ(1) = 11
		{U: 2, V: 3, W: 1},  // Θ(2) = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := DegreeDecoupled(g, 1)
	probs := tr.ProbsFrom(0)
	nb := g.Neighbors(0)
	var p1, p2 float64
	for j, v := range nb {
		if v == 1 {
			p1 = probs[j]
		}
		if v == 2 {
			p2 = probs[j]
		}
	}
	if !(p2 > p1) {
		t.Errorf("lighter-Θ neighbor must win under p=1: P(0→2)=%v !> P(0→1)=%v", p2, p1)
	}
	// Exact: Θ(1)=11, Θ(2)=2 → probs ∝ 1/11, 1/2.
	want1 := (1.0 / 11) / (1.0/11 + 0.5)
	if math.Abs(p1-want1) > 1e-12 {
		t.Errorf("P(0→1) = %v, want %v", p1, want1)
	}
}
