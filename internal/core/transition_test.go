package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"d2pr/internal/graph"
)

// fig1Graph is the paper's Figure-1 sample graph.
func fig1Graph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestUniformTransition(t *testing.T) {
	g := fig1Graph(t)
	tr := Uniform(g)
	if err := tr.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.ProbsFrom(0) {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("P(A→·) = %v, want 1/3", p)
		}
	}
}

func TestDegreeDecoupledMatchesPaperFigure1(t *testing.T) {
	g := fig1Graph(t)
	// Neighbors of A (node 0) sorted by id: B(1) deg 2, C(2) deg 3, D(3) deg 1.
	cases := []struct {
		p    float64
		want []float64
	}{
		{0, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}},
		// p=2: deg^-2 = 1/4, 1/9, 1 → normalized 0.1837, 0.0816, 0.7347
		{2, []float64{0.25 / (0.25 + 1.0/9 + 1), (1.0 / 9) / (0.25 + 1.0/9 + 1), 1 / (0.25 + 1.0/9 + 1)}},
		// p=-2: deg^2 = 4, 9, 1 → 4/14, 9/14, 1/14
		{-2, []float64{4.0 / 14, 9.0 / 14, 1.0 / 14}},
	}
	for _, tc := range cases {
		tr := DegreeDecoupled(g, tc.p)
		if err := tr.Validate(1e-12); err != nil {
			t.Fatalf("p=%v: %v", tc.p, err)
		}
		got := tr.ProbsFrom(0)
		for j := range tc.want {
			if math.Abs(got[j]-tc.want[j]) > 1e-12 {
				t.Errorf("p=%v: P(A→%d) = %v, want %v", tc.p, j+1, got[j], tc.want[j])
			}
		}
	}
}

func TestDegreeDecoupledZeroEqualsUniform(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(graph.Directed).EnsureNodes(30)
	for i := 0; i < 150; i++ {
		u, v := int32(r.Intn(30)), int32(r.Intn(30))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	u := Uniform(g)
	d := DegreeDecoupled(g, 0)
	for k := 0; k < g.NumArcs(); k++ {
		if math.Abs(u.Prob(int64(k))-d.Prob(int64(k))) > 1e-12 {
			t.Fatalf("arc %d: uniform %v != decoupled(0) %v", k, u.Prob(int64(k)), d.Prob(int64(k)))
		}
	}
}

func TestDegreeDecoupledStochasticProperty(t *testing.T) {
	// Property: for random graphs and random p ∈ [-5, 5], every row sums to
	// 1 and every probability is finite.
	f := func(seed int64, pRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		p := math.Mod(pRaw, 5)
		if math.IsNaN(p) {
			p = 0
		}
		n := 2 + r.Intn(40)
		b := graph.NewBuilder(graph.Undirected).EnsureNodes(n)
		for i := 0; i < 3*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		return DegreeDecoupled(g, p).Validate(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDegreeDecoupledExtremeP(t *testing.T) {
	// A hub with degree 100000 next to degree-1 leaves, p = ±4: the naive
	// power computation would produce 1e5^±4 = 1e±20 intermediate values —
	// still finite but near the precision edge; at p = ±60 the naive version
	// overflows to +Inf while log-space stays exact.
	b := graph.NewBuilder(graph.Undirected)
	hub := int32(0)
	for v := int32(1); v <= 100000; v++ {
		b.AddEdge(hub, v)
	}
	b.AddEdge(1, 2) // a node adjacent to both the hub and a leaf
	g := b.MustBuild()
	for _, p := range []float64{-60, -4, 4, 60} {
		tr := DegreeDecoupled(g, p)
		if err := tr.Validate(1e-9); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
	// Desideratum §3.1: p ≫ 1 sends ~100% of the mass to the lowest-degree
	// neighbor, p ≪ -1 to the highest-degree one. Node 1 neighbors: hub
	// (deg 100001) and node 2 (deg 2).
	probs := DegreeDecoupled(g, 60).ProbsFrom(1)
	nb := g.Neighbors(1)
	for j, v := range nb {
		if v == hub && probs[j] > 1e-12 {
			t.Errorf("p=60: hub still receives %v", probs[j])
		}
		if v != hub && probs[j] < 1-1e-12 {
			t.Errorf("p=60: low-degree neighbor gets %v, want ≈1", probs[j])
		}
	}
	probs = DegreeDecoupled(g, -60).ProbsFrom(1)
	for j, v := range nb {
		if v == hub && probs[j] < 1-1e-12 {
			t.Errorf("p=-60: hub gets %v, want ≈1", probs[j])
		}
	}
}

func TestNaivePowOverflowsWhereStableDoesNot(t *testing.T) {
	// The ablation pair: same graph, p large enough that deg^-p overflows
	// float64 in the naive normalization.
	b := graph.NewBuilder(graph.Undirected)
	for v := int32(1); v <= 50000; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(1, 2)
	g := b.MustBuild()
	const p = -80 // deg^80 with deg=50001 → +Inf
	if err := DegreeDecoupled(g, p).Validate(1e-9); err != nil {
		t.Fatalf("stable version failed: %v", err)
	}
	if err := NaivePow(g, p).Validate(1e-9); err == nil {
		t.Log("naive version unexpectedly survived; widen the exponent if float semantics change")
	}
}

func TestNaiveAgreesAtModerateP(t *testing.T) {
	g := fig1Graph(t)
	for _, p := range []float64{-2, -0.5, 0, 0.5, 2} {
		a := DegreeDecoupled(g, p)
		b := NaivePow(g, p)
		for k := 0; k < g.NumArcs(); k++ {
			if math.Abs(a.Prob(int64(k))-b.Prob(int64(k))) > 1e-12 {
				t.Errorf("p=%v arc %d: stable %v naive %v", p, k, a.Prob(int64(k)), b.Prob(int64(k)))
			}
		}
	}
}

func TestConnectionStrength(t *testing.T) {
	g, err := graph.FromWeighted(graph.Directed, []graph.WeightedEdge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := ConnectionStrength(g)
	if err := tr.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	probs := tr.ProbsFrom(0)
	if math.Abs(probs[0]-0.25) > 1e-12 || math.Abs(probs[1]-0.75) > 1e-12 {
		t.Errorf("probs = %v, want [0.25 0.75]", probs)
	}
}

func TestBlendedEndpoints(t *testing.T) {
	g, err := graph.FromWeighted(graph.Undirected, []graph.WeightedEdge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 4}, {U: 1, V: 2, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	const p = 1.5
	conn := ConnectionStrength(g)
	dec := DegreeDecoupled(g, p)
	b0, err := Blended(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := Blended(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	bHalf, err := Blended(g, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := bHalf.Validate(1e-12); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < int64(g.NumArcs()); k++ {
		if b0.Prob(k) != dec.Prob(k) {
			t.Fatalf("β=0 must equal DegreeDecoupled at arc %d", k)
		}
		if b1.Prob(k) != conn.Prob(k) {
			t.Fatalf("β=1 must equal ConnectionStrength at arc %d", k)
		}
		want := 0.5*conn.Prob(k) + 0.5*dec.Prob(k)
		if math.Abs(bHalf.Prob(k)-want) > 1e-12 {
			t.Fatalf("β=0.5 arc %d: got %v want %v", k, bHalf.Prob(k), want)
		}
	}
}

func TestBlendedBadBeta(t *testing.T) {
	g := fig1Graph(t)
	for _, beta := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Blended(g, 1, beta); err == nil {
			t.Errorf("beta=%v: want error", beta)
		}
	}
}

func TestDanglingTargetThetaClamp(t *testing.T) {
	// Directed: 0→1, 0→2, 2→0; node 1 is a sink (outdeg 0) and must be
	// treated as Θ=1 rather than producing ±Inf factors.
	g, err := graph.FromEdges(graph.Directed, [][2]int32{{0, 1}, {0, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{-3, 3} {
		if err := DegreeDecoupled(g, p).Validate(1e-12); err != nil {
			t.Errorf("p=%v: %v", p, err)
		}
	}
	// At p=3, the sink (Θ clamped to 1) beats node 2 (outdeg 1)? Both Θ=1:
	// equal split.
	probs := DegreeDecoupled(g, 3).ProbsFrom(0)
	if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[1]-0.5) > 1e-12 {
		t.Errorf("probs = %v, want equal split between Θ̂=1 destinations", probs)
	}
}
