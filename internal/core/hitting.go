package core

import (
	"fmt"
	"math"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
)

// HittingTimeOptions configures Monte-Carlo hitting-time estimation.
type HittingTimeOptions struct {
	// Walks is the number of random walks launched from the source.
	// 0 means 10000.
	Walks int
	// MaxLen truncates each walk; nodes not hit within MaxLen steps
	// contribute MaxLen (the standard truncated-hitting-time measure of
	// Sarkar & Moore, which the hitting-distance literature the paper cites
	// builds on). 0 means 100.
	MaxLen int
	// Seed drives the walk randomness.
	Seed uint64
}

// HittingTime estimates the truncated random-walk hitting time h(source, v)
// for every node v: the expected number of steps a walk starting at source
// takes before first reaching v, truncated at MaxLen. The walk follows the
// given transition; dangling nodes restart the walk at the source.
//
// Smaller values mean "closer"; the source itself gets 0. This is the
// random-walk relatedness baseline of the paper's related work (refs
// [10, 21]).
func HittingTime(t *Transition, source int32, opts HittingTimeOptions) ([]float64, error) {
	g := t.g
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if source < 0 || int(source) >= n {
		return nil, fmt.Errorf("core: hitting-time source %d out of range [0, %d)", source, n)
	}
	if opts.Walks == 0 {
		opts.Walks = 10000
	}
	if opts.MaxLen == 0 {
		opts.MaxLen = 100
	}
	if opts.Walks < 0 || opts.MaxLen < 0 {
		return nil, fmt.Errorf("core: invalid hitting-time options %+v", opts)
	}
	r := rng.New(opts.Seed)
	probs := t.arcProbs()
	totals := make([]float64, n)
	firstHit := make([]int32, n)
	for w := 0; w < opts.Walks; w++ {
		for i := range firstHit {
			firstHit[i] = -1
		}
		firstHit[source] = 0
		u := source
		for step := 1; step <= opts.MaxLen; step++ {
			v, ok := stepFrom(g, probs, u, r)
			if !ok {
				// Dangling: restart at source, step count keeps running so
				// truncation still bounds the walk.
				v = source
			}
			if firstHit[v] == -1 {
				firstHit[v] = int32(step)
			}
			u = v
		}
		for i := range firstHit {
			if firstHit[i] == -1 {
				totals[i] += float64(opts.MaxLen)
			} else {
				totals[i] += float64(firstHit[i])
			}
		}
	}
	inv := 1 / float64(opts.Walks)
	for i := range totals {
		totals[i] *= inv
	}
	return totals, nil
}

// stepFrom samples one transition out of u; ok is false for dangling nodes.
// probs is t's per-arc probability slice, hoisted by the caller so the
// per-step hot path does no lazy-materialization check.
func stepFrom(g *graph.Graph, probs []float64, u int32, r *rng.RNG) (int32, bool) {
	lo, hi := g.ArcRange(u)
	if lo == hi {
		return 0, false
	}
	x := r.Float64()
	var acc float64
	for k := lo; k < hi; k++ {
		acc += probs[k]
		if x < acc {
			return g.ArcTarget(k), true
		}
	}
	return g.ArcTarget(hi - 1), true
}

// MonteCarloPageRank estimates PageRank-style visit frequencies by simulating
// `walks` teleporting random walks of geometric length on the transition.
// It is the verification partner for the power-iteration solver: both must
// agree within Monte-Carlo error. alpha is the residual probability.
func MonteCarloPageRank(t *Transition, alpha float64, walks int, seed uint64) ([]float64, error) {
	g := t.g
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v out of range [0, 1)", alpha)
	}
	if walks <= 0 {
		walks = 100 * n
	}
	r := rng.New(seed)
	probs := t.arcProbs()
	visits := make([]float64, n)
	var total float64
	for w := 0; w < walks; w++ {
		u := int32(r.Intn(n))
		for {
			visits[u]++
			total++
			if r.Float64() >= alpha {
				break
			}
			v, ok := stepFrom(g, probs, u, r)
			if !ok {
				break // dangling: walk teleports (ends)
			}
			u = v
		}
	}
	if total > 0 {
		inv := 1 / total
		for i := range visits {
			visits[i] *= inv
		}
	}
	// Guard against pathological inputs where nothing was visited.
	if math.IsNaN(visits[0]) {
		return nil, fmt.Errorf("core: Monte-Carlo PageRank produced NaN")
	}
	return visits, nil
}
