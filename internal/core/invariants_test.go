package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// This file collects cross-cutting invariants of the ranking engine that are
// cheapest to state as properties over random graphs.

// randomWeighted builds a random weighted graph from fuzz input.
func randomWeighted(r *rand.Rand, directed bool) *graph.Graph {
	kind := graph.Undirected
	if directed {
		kind = graph.Directed
	}
	n := 3 + r.Intn(30)
	b := graph.NewBuilder(kind).Weighted().EnsureNodes(n)
	for i := 0; i < 3*n; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u != v {
			b.AddWeightedEdge(u, v, 0.5+4*r.Float64())
		}
	}
	return b.MustBuild()
}

func TestBlendedStochasticProperty(t *testing.T) {
	// Property: every blended transition is column-stochastic for any
	// (p, β) combination on any weighted graph.
	f := func(seed int64, pRaw, betaRaw float64, directed bool) bool {
		r := rand.New(rand.NewSource(seed))
		p := math.Mod(pRaw, 4)
		beta := math.Abs(math.Mod(betaRaw, 1))
		if math.IsNaN(p) || math.IsNaN(beta) {
			p, beta = 0, 0.5
		}
		g := randomWeighted(r, directed)
		tr, err := Blended(g, p, beta)
		if err != nil {
			return false
		}
		return tr.Validate(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolversAgreeProperty(t *testing.T) {
	// Property: power iteration and Gauss–Seidel reach the same fixpoint on
	// random weighted directed graphs with dangling nodes.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomWeighted(r, true)
		tr := DegreeDecoupled(g, math.Mod(float64(seed), 3))
		a, err := Solve(tr, Options{Tol: 1e-12})
		if err != nil {
			return false
		}
		b, err := SolveGaussSeidel(tr, Options{Tol: 1e-12})
		if err != nil {
			return false
		}
		for i := range a.Scores {
			if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTeleportBoostMonotonicity(t *testing.T) {
	// Property: raising a node's teleport weight never lowers its score.
	g := skewedGraph(120, 51)
	tr := Uniform(g)
	n := g.NumNodes()
	base := make([]float64, n)
	for i := range base {
		base[i] = 1
	}
	for _, boost := range []float64{2, 5, 20} {
		tele := make([]float64, n)
		copy(tele, base)
		tele[7] = boost
		resBase, err := Solve(tr, Options{Tol: 1e-12, Teleport: base})
		if err != nil {
			t.Fatal(err)
		}
		resBoost, err := Solve(tr, Options{Tol: 1e-12, Teleport: tele})
		if err != nil {
			t.Fatal(err)
		}
		if resBoost.Scores[7] <= resBase.Scores[7] {
			t.Errorf("boost %v: score %v !> base %v", boost, resBoost.Scores[7], resBase.Scores[7])
		}
	}
}

func TestIsolatedNodeGetsTeleportShare(t *testing.T) {
	// An isolated node's only mass source is teleportation: its score must
	// be close to (1-α)/n plus returned dangling mass, and strictly
	// positive.
	b := graph.NewBuilder(graph.Undirected).EnsureNodes(10)
	for i := int32(0); i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	g := b.MustBuild() // nodes 8, 9 isolated
	res, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[8] <= 0 || res.Scores[9] <= 0 {
		t.Fatalf("isolated nodes got %v/%v", res.Scores[8], res.Scores[9])
	}
	if math.Abs(res.Scores[8]-res.Scores[9]) > 1e-12 {
		t.Errorf("symmetric isolated nodes differ: %v vs %v", res.Scores[8], res.Scores[9])
	}
	// Ring nodes all symmetric too.
	for i := 1; i < 8; i++ {
		if math.Abs(res.Scores[i]-res.Scores[0]) > 1e-9 {
			t.Errorf("ring symmetry broken at %d: %v vs %v", i, res.Scores[i], res.Scores[0])
		}
	}
}

func TestDesideratumLimits(t *testing.T) {
	// §3.1 of the paper, stated as score-level facts on the Figure-1 graph:
	// as p → +∞ node A's walk goes entirely to D (degree 1); as p → −∞
	// entirely to C (degree 3).
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	strong := DegreeDecoupled(g, 40)
	probs := strong.ProbsFrom(0)
	nb := g.Neighbors(0)
	for j, v := range nb {
		want := 0.0
		if v == 3 { // D, degree 1
			want = 1.0
		}
		if math.Abs(probs[j]-want) > 1e-6 {
			t.Errorf("p=40: P(A→%d) = %v, want %v", v, probs[j], want)
		}
	}
	weak := DegreeDecoupled(g, -40)
	probs = weak.ProbsFrom(0)
	for j, v := range nb {
		want := 0.0
		if v == 2 { // C, degree 3
			want = 1.0
		}
		if math.Abs(probs[j]-want) > 1e-6 {
			t.Errorf("p=-40: P(A→%d) = %v, want %v", v, probs[j], want)
		}
	}
}

func TestFloat32TierWithinTolerance(t *testing.T) {
	// Property: the float32 score tier matches the sequential float64
	// baseline within its documented ~1e-6 absolute contract, across
	// uniform, factored, and per-arc transitions on random graphs.
	f := func(seed int64, directed bool) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomWeighted(r, directed)
		for _, tr := range []*Transition{
			Uniform(g),
			DegreeDecoupled(g, 1+math.Abs(math.Mod(float64(seed), 2))),
			ConnectionStrength(g),
		} {
			base, err := Solve(tr, Options{Tol: 1e-12, Workers: 1})
			if err != nil {
				return false
			}
			f32, err := Solve(tr, Options{Tol: 1e-12, Float32: true})
			if err != nil {
				return false
			}
			for i := range base.Scores {
				if math.Abs(base.Scores[i]-f32.Scores[i]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFloat32TolClamped(t *testing.T) {
	// A float64-grade tolerance is unreachable in the float32 tier; the
	// solve must still terminate converged (Tol clamped to Float32MinTol)
	// instead of spinning to MaxIter on float32 rounding noise.
	g := skewedGraph(200, 77)
	res, err := Solve(DegreeDecoupled(g, 1), Options{Tol: 1e-14, Float32: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("float32 solve did not converge in %d iterations (residual %v)", res.Iterations, res.Residual)
	}
}

func TestHybridMatchesPowerFixpoint(t *testing.T) {
	// Property: the adaptive hybrid solver (power → Gauss–Seidel tail)
	// reaches the same fixpoint as pure power iteration, and actually
	// switches on graphs whose frontier collapses.
	graphs := map[string]*graph.Graph{
		"skewed":   skewedGraph(250, 3),
		"powerlaw": powerLawGraph(t, 400, 6, 29),
	}
	switched := false
	for name, g := range graphs {
		tr := DegreeDecoupled(g, 1.5)
		base, err := Solve(tr, Options{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := Solve(tr, Options{Tol: 1e-12, Hybrid: true})
		if err != nil {
			t.Fatal(err)
		}
		if !hyb.Converged {
			t.Fatalf("%s: hybrid did not converge", name)
		}
		if hyb.HybridSwitch > 0 {
			switched = true
			if hyb.GSSweeps == 0 {
				t.Errorf("%s: switched at %d but ran no GS sweeps", name, hyb.HybridSwitch)
			}
		}
		for i := range base.Scores {
			if math.Abs(base.Scores[i]-hyb.Scores[i]) > 1e-9 {
				t.Fatalf("%s: score[%d] differs by %v", name, i, base.Scores[i]-hyb.Scores[i])
			}
		}
	}
	if !switched {
		t.Error("hybrid never switched to the Gauss–Seidel tail on any test graph")
	}
}

func TestRankCorrelationSanityAcrossSolvers(t *testing.T) {
	// The experiments only consume rankings; verify the two solvers induce
	// identical rankings, not just close scores.
	g := skewedGraph(200, 57)
	tr := DegreeDecoupled(g, 1.5)
	a, err := Solve(tr, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveGaussSeidel(tr, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if rho := stats.Spearman(a.Scores, b.Scores); rho < 0.999999 {
		t.Errorf("solver rankings differ: ρ = %v", rho)
	}
}
