package core

import "context"

// Solve runs power iteration on the transition until the L1 residual drops
// below opts.Tol or opts.MaxIter iterations elapse. The returned score
// vector sums to 1 (up to floating-point rounding).
//
// The pull topology (transpose, dangling set, arc permutation) comes from
// the per-graph engine cache (see EngineFor): the first solve over a graph
// pays the O(m) transpose, repeat solves only scatter transition
// probabilities — and uniform transitions skip even that, running entirely
// off the cached 1/outdeg table.
func Solve(t *Transition, opts Options) (*Result, error) {
	return SolveContext(context.Background(), t, opts)
}

// SolveContext is Solve with cancellation: the solver polls ctx once per
// iteration and aborts with the context's error (wrapped with iteration
// progress) when it is cancelled or its deadline expires. See
// Engine.SolveContext.
func SolveContext(ctx context.Context, t *Transition, opts Options) (*Result, error) {
	if t.g.NumNodes() == 0 {
		return nil, ErrEmptyGraph
	}
	return EngineFor(t.g).SolveContext(ctx, t, opts)
}
