package core

import (
	"math"
	"sync"
)

// flow is the pull-oriented view of a Transition: for every destination node
// v it stores the incoming (source, probability) pairs. Pull iteration lets
// the solver parallelize over destinations with no write contention.
type flow struct {
	n        int
	offsets  []int64
	sources  []int32
	probs    []float64
	dangling []int32
}

// newFlow transposes a transition into pull form and records the dangling
// nodes (no out-arcs) whose mass must be redistributed.
func newFlow(t *Transition) *flow {
	g := t.g
	n := g.NumNodes()
	f := &flow{
		n:       n,
		offsets: make([]int64, n+1),
		sources: make([]int32, g.NumArcs()),
		probs:   make([]float64, g.NumArcs()),
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			f.dangling = append(f.dangling, u)
			continue
		}
		for k := lo; k < hi; k++ {
			f.offsets[g.ArcTarget(k)+1]++
		}
	}
	for v := 0; v < n; v++ {
		f.offsets[v+1] += f.offsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, f.offsets[:n])
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		for k := lo; k < hi; k++ {
			v := g.ArcTarget(k)
			pos := cursor[v]
			cursor[v]++
			f.sources[pos] = u
			f.probs[pos] = t.probs[k]
		}
	}
	return f
}

// Solve runs power iteration on the transition until the L1 residual drops
// below opts.Tol or opts.MaxIter iterations elapse. The returned score
// vector sums to 1 (up to floating-point rounding).
func Solve(t *Transition, opts Options) (*Result, error) {
	n := t.g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	return runPower(newFlow(t), opts)
}

// runPower is the power-iteration core shared by Solve and SweepSolver.
// opts must already have defaults applied and be validated for f.n nodes.
func runPower(f *flow, opts Options) (*Result, error) {
	n := f.n
	tele := opts.teleportDist(n)

	cur := make([]float64, n)
	copy(cur, tele) // start from the teleport distribution
	next := make([]float64, n)

	res := &Result{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Mass on dangling nodes flows back through the teleport
		// distribution, keeping the chain stochastic.
		var dangling float64
		for _, d := range f.dangling {
			dangling += cur[d]
		}
		base := opts.Alpha * dangling // multiplied by tele[v] per node

		if opts.Workers > 1 {
			parallelSweep(f, cur, next, tele, opts.Alpha, base, opts.Workers)
		} else {
			for v := 0; v < n; v++ {
				lo, hi := f.offsets[v], f.offsets[v+1]
				var acc float64
				for k := lo; k < hi; k++ {
					acc += f.probs[k] * cur[f.sources[k]]
				}
				next[v] = opts.Alpha*acc + (base+1-opts.Alpha)*tele[v]
			}
		}

		var diff float64
		for v := 0; v < n; v++ {
			diff += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
		res.Iterations = iter
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
	}
	// Exact renormalization guards against drift over hundreds of
	// iterations.
	var sum float64
	for _, v := range cur {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range cur {
			cur[i] *= inv
		}
	}
	res.Scores = cur
	return res, nil
}

// parallelSweep performs one pull iteration with the destination range
// partitioned across workers. Each worker writes a disjoint slice of next,
// so no synchronization beyond the final WaitGroup is needed.
func parallelSweep(f *flow, cur, next, tele []float64, alpha, base float64, workers int) {
	n := f.n
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				alo, ahi := f.offsets[v], f.offsets[v+1]
				var acc float64
				for k := alo; k < ahi; k++ {
					acc += f.probs[k] * cur[f.sources[k]]
				}
				next[v] = alpha*acc + (base+1-alpha)*tele[v]
			}
		}(lo, hi)
	}
	wg.Wait()
}
