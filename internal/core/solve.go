package core

// Solve runs power iteration on the transition until the L1 residual drops
// below opts.Tol or opts.MaxIter iterations elapse. The returned score
// vector sums to 1 (up to floating-point rounding).
//
// The pull topology (transpose, dangling set, arc permutation) comes from
// the per-graph engine cache (see EngineFor): the first solve over a graph
// pays the O(m) transpose, repeat solves only scatter transition
// probabilities — and uniform transitions skip even that, running entirely
// off the cached 1/outdeg table.
func Solve(t *Transition, opts Options) (*Result, error) {
	if t.g.NumNodes() == 0 {
		return nil, ErrEmptyGraph
	}
	return EngineFor(t.g).Solve(t, opts)
}
