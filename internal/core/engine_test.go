package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"d2pr/internal/graph"
)

// skewedGraph builds a directed power-law-ish graph: every node i emits
// ~avgDeg arcs whose targets are biased hard toward low ids (t = ⌊i·r⁴⌋ for
// uniform r), so in-degree concentrates on a contiguous low-id hub prefix —
// the paper's citation/affiliation shape, and the worst case for
// node-count-balanced sweep partitioning.
func powerLawGraph(t testing.TB, n, avgDeg int, seed int64) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(graph.Directed).Duplicates(graph.DupAllow).EnsureNodes(n)
	for i := 1; i < n; i++ {
		for d := 0; d < avgDeg; d++ {
			x := r.Float64()
			x *= x
			x *= x // r⁴: heavy bias toward 0
			tgt := int32(float64(i) * x)
			if tgt == int32(i) {
				tgt = 0
			}
			b.AddEdge(int32(i), tgt)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestSerialParallelAgreePowerLaw: the arc-balanced parallel sweep must
// agree with the sequential sweep on hub-heavy graphs for every worker
// count — including counts exceeding the node count and counts that force
// empty arc-balanced segments. Parallelization is over destinations, so
// each node's accumulation order is identical and agreement is to the bit;
// the asserted tolerance is 1e-12.
func TestSerialParallelAgreePowerLaw(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		p    float64
		beta float64
	}{
		{"skewed-d2pr", powerLawGraph(t, 3000, 6, 1), 1.5, 0},
		{"skewed-uniform", powerLawGraph(t, 3000, 6, 2), 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := Blended(tc.g, tc.p, tc.beta)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Solve(tr, Options{Tol: 1e-13})
			if err != nil {
				t.Fatal(err)
			}
			n := tc.g.NumNodes()
			for _, workers := range []int{2, 3, 4, 7, 16, 61, n + 5, 4 * n} {
				par, err := Solve(tr, Options{Tol: 1e-13, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par.Iterations != seq.Iterations {
					t.Errorf("workers=%d: %d iterations, sequential took %d",
						workers, par.Iterations, seq.Iterations)
				}
				if d := maxAbsDiff(seq.Scores, par.Scores); d > 1e-12 {
					t.Errorf("workers=%d: max |Δ| = %g > 1e-12", workers, d)
				}
			}
		})
	}
}

// TestParallelSweepEmptyRanges: when one node owns more arcs than a
// worker's share, the arc-balanced split degenerates to empty segments —
// they must be handled, not crash or skew results. An in-star (everyone →
// node 0) makes every split boundary land at node 0 or 1.
func TestParallelSweepEmptyRanges(t *testing.T) {
	const n = 120
	b := graph.NewBuilder(graph.Directed).EnsureNodes(n)
	for i := int32(1); i < n; i++ {
		b.AddEdge(i, 0)
	}
	g := b.MustBuild()

	e := EngineFor(g)
	for _, workers := range []int{4, 8, 32} {
		bounds := e.partitionArcs(workers)
		if len(bounds) != workers+1 {
			t.Fatalf("workers=%d: %d bounds", workers, len(bounds))
		}
		if bounds[0] != 0 || bounds[workers] != n {
			t.Fatalf("workers=%d: bounds do not cover [0, n): %v", workers, bounds)
		}
		empty := 0
		for w := 0; w < workers; w++ {
			if bounds[w] > bounds[w+1] {
				t.Fatalf("workers=%d: bounds not monotone: %v", workers, bounds)
			}
			if bounds[w] == bounds[w+1] {
				empty++
			}
		}
		if workers == 32 && empty == 0 {
			t.Errorf("workers=32 on an in-star should produce empty segments, got none: %v", bounds)
		}
	}

	tr := DegreeDecoupled(g, 0.7)
	seq, err := Solve(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8, 32, 200} {
		par, err := Solve(tr, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d := maxAbsDiff(seq.Scores, par.Scores); d > 1e-12 {
			t.Errorf("workers=%d: max |Δ| = %g", workers, d)
		}
	}
}

// TestPartitionArcsBalance: on a skewed graph the arc-balanced split must
// keep every segment's arc load within a hub row of the ideal share —
// exactly the guarantee node-count splitting lacks.
func TestPartitionArcsBalance(t *testing.T) {
	g := powerLawGraph(t, 5000, 8, 3)
	e := EngineFor(g)
	m := e.pullOffsets[e.n]
	var maxRow int64
	for v := 0; v < e.n; v++ {
		if r := e.pullOffsets[v+1] - e.pullOffsets[v]; r > maxRow {
			maxRow = r
		}
	}
	for _, workers := range []int{2, 4, 8} {
		bounds := e.partitionArcs(workers)
		ideal := (m + int64(e.n)) / int64(workers)
		for w := 0; w < workers; w++ {
			lo, hi := bounds[w], bounds[w+1]
			arcs := e.pullOffsets[hi] - e.pullOffsets[lo]
			if arcs > ideal+maxRow {
				t.Errorf("workers=%d seg %d: %d arcs, ideal %d (+hub %d)", workers, w, arcs, ideal, maxRow)
			}
		}
	}
}

// TestUniformImplicitMatchesExplicit: the implicit 1/outdeg path must
// reproduce the explicit per-arc uniform transition bit for bit (same
// multiplications in the same order).
func TestUniformImplicitMatchesExplicit(t *testing.T) {
	g := powerLawGraph(t, 1500, 5, 4)
	explicit := &Transition{g: g, probs: uniformProbs(g)} // forced explicit path
	implicit := Uniform(g)
	for _, workers := range []int{0, 4} {
		want, err := Solve(explicit, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(implicit, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Iterations != want.Iterations {
			t.Errorf("workers=%d: %d iterations vs %d", workers, got.Iterations, want.Iterations)
		}
		for i := range want.Scores {
			if got.Scores[i] != want.Scores[i] {
				t.Fatalf("workers=%d: score[%d] = %v, explicit %v", workers, i, got.Scores[i], want.Scores[i])
			}
		}
	}
}

// TestEngineForCaches: same graph → same engine; the MRU cache survives
// unrelated churn and a full wrap evicts cleanly.
func TestEngineForCaches(t *testing.T) {
	g := powerLawGraph(t, 50, 3, 5)
	e1 := EngineFor(g)
	if e2 := EngineFor(g); e2 != e1 {
		t.Error("EngineFor rebuilt the engine for a cached graph")
	}
	// Churn more graphs than the cache holds; EngineFor must keep working
	// (returning fresh engines) and the original graph simply rebuilds.
	for i := 0; i < engineCacheCap+4; i++ {
		h := powerLawGraph(t, 20, 2, int64(100+i))
		if EngineFor(h).Graph() != h {
			t.Fatal("engine bound to wrong graph")
		}
	}
	if EngineFor(g).Graph() != g {
		t.Error("rebuilt engine bound to wrong graph")
	}
}

// TestEngineSolveWrongGraph: an engine must reject transitions over a
// different graph instead of silently mixing topologies.
func TestEngineSolveWrongGraph(t *testing.T) {
	g1 := powerLawGraph(t, 30, 3, 6)
	g2 := powerLawGraph(t, 30, 3, 7)
	e := NewEngine(g1)
	if _, err := e.Solve(Uniform(g2), Options{}); err == nil {
		t.Error("want error for mismatched transition graph")
	}
}

// TestWarmUniformSolveAllocationFree: the acceptance criterion of the
// zero-rebuild engine — a warm solve of the uniform/p = 0 transition must
// perform no O(m) or O(n) allocations beyond the returned score vector.
// Counted allocations stay O(1) and allocated bytes stay within a small
// multiple of the score vector, far below the per-arc footprint.
func TestWarmUniformSolveAllocationFree(t *testing.T) {
	const n, avgDeg = 2000, 10
	g := powerLawGraph(t, n, avgDeg, 8)
	e := EngineFor(g)
	tr := Uniform(g)
	opts := Options{MaxIter: 8, Tol: 1e-300} // fixed work per solve
	solve := func() {
		if _, err := e.Solve(tr, opts); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm the engine pools
	solve()

	if allocs := testing.AllocsPerRun(20, solve); allocs > 8 {
		t.Errorf("warm uniform solve: %.1f allocs/run, want O(1) (≤ 8)", allocs)
	}

	// Byte-level check: TotalAlloc is cumulative, so GC cannot hide O(m)
	// garbage. Budget: the returned scores (n·8) plus slack for Result and
	// an occasional pool refill after a GC — still far under one per-arc
	// array (m·8).
	const runs = 40
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		solve()
	}
	runtime.ReadMemStats(&after)
	perRun := float64(after.TotalAlloc-before.TotalAlloc) / runs
	scoreBytes := float64(n * 8)
	arcBytes := float64(g.NumArcs() * 8)
	if perRun > 3*scoreBytes+8192 {
		t.Errorf("warm uniform solve allocates %.0f B/run, want ≤ ~%0.f (scores + slack)", perRun, 3*scoreBytes+8192)
	}
	if perRun > arcBytes/4 {
		t.Errorf("warm uniform solve allocates %.0f B/run — O(m) garbage? (m·8 = %.0f)", perRun, arcBytes)
	}
}

// TestWarmParallelSolveAllocations: the parallel path adds only the
// per-solve sweep descriptor and partition bounds — still O(workers), never
// O(n) or O(m).
func TestWarmParallelSolveAllocations(t *testing.T) {
	g := powerLawGraph(t, 2000, 10, 9)
	e := EngineFor(g)
	tr := Uniform(g)
	opts := Options{MaxIter: 8, Tol: 1e-300, Workers: 4}
	solve := func() {
		if _, err := e.Solve(tr, opts); err != nil {
			t.Fatal(err)
		}
	}
	solve()
	solve()
	if allocs := testing.AllocsPerRun(20, solve); allocs > 16 {
		t.Errorf("warm parallel solve: %.1f allocs/run, want O(workers) (≤ 16)", allocs)
	}
}

// TestConcurrentEngineSolves exercises the shared worker pool and buffer
// pools from many goroutines over multiple engines. Run with -race.
func TestConcurrentEngineSolves(t *testing.T) {
	g1 := powerLawGraph(t, 800, 5, 10)
	g2 := powerLawGraph(t, 600, 4, 11)
	e1, e2 := EngineFor(g1), EngineFor(g2)
	want1, err := e1.Solve(Uniform(g1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := e2.Solve(DegreeDecoupled(g2, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, tr, want := e1, Uniform(g1), want1
			if i%2 == 1 {
				e, tr, want = e2, DegreeDecoupled(g2, 1), want2
			}
			res, err := e.Solve(tr, Options{Workers: 4})
			if err != nil {
				errs <- err
				return
			}
			if d := maxAbsDiff(res.Scores, want.Scores); d > 1e-12 {
				t.Errorf("concurrent solve diverged: max |Δ| = %g", d)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGaussSeidelUniformImplicit: Gauss–Seidel's implicit-uniform path must
// match its explicit-transition path exactly, and both must still agree
// with power iteration within tolerance.
func TestGaussSeidelUniformImplicit(t *testing.T) {
	g := powerLawGraph(t, 400, 4, 12)
	explicit := &Transition{g: g, probs: uniformProbs(g)}
	want, err := SolveGaussSeidel(explicit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveGaussSeidel(Uniform(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Scores {
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("score[%d] = %v, explicit GS %v", i, got.Scores[i], want.Scores[i])
		}
	}
	power, err := Solve(Uniform(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got.Scores, power.Scores); d > 1e-8 {
		t.Errorf("GS vs power iteration: max |Δ| = %g", d)
	}
}
