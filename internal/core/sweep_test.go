package core

import (
	"math"
	"sync"
	"testing"

	"d2pr/internal/graph"
)

func sweepTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Undirected).Weighted()
	// A 40-node graph with hubs, a ring, and varied weights so the three
	// transition regimes (β = 0, β = 1, blends) all differ.
	for i := int32(1); i < 12; i++ {
		b.AddWeightedEdge(0, i, float64(i))
	}
	for i := int32(0); i < 40; i++ {
		b.AddWeightedEdge(i, (i+1)%40, 1.5)
	}
	for i := int32(0); i < 20; i++ {
		b.AddWeightedEdge(i, 39-i, 0.5+float64(i%3))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSweepSolverMatchesSolve: SweepSolver must be a pure optimization —
// scores agreeing with the Blended + Solve path far inside the solver
// tolerance (the per-node factor table reassociates a few float ops, so
// agreement is to ulps, not bits), so sweep-computed cache entries are
// interchangeable with interactive ones.
func TestSweepSolverMatchesSolve(t *testing.T) {
	g := sweepTestGraph(t)
	s := NewSweepSolver(g)
	for _, tc := range []struct{ p, beta float64 }{
		{0, 0}, {0.5, 0}, {-1, 0}, {4, 0},
		{0, 1}, {2, 1},
		{0.5, 0.5}, {1.5, 0.25}, {-2, 0.75},
	} {
		tr, err := Blended(g, tc.p, tc.beta)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Solve(tc.p, tc.beta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Converged != want.Converged {
			t.Errorf("p=%g β=%g: converged %v vs %v", tc.p, tc.beta, got.Converged, want.Converged)
		}
		for i := range want.Scores {
			if d := math.Abs(got.Scores[i] - want.Scores[i]); d > 1e-12 {
				t.Fatalf("p=%g β=%g: score[%d] = %v, want %v (|Δ| = %g)",
					tc.p, tc.beta, i, got.Scores[i], want.Scores[i], d)
			}
		}
	}
}

// TestSweepSolverExtremeP drives the de-coupling weight to values where the
// naive per-node factor table would matter most; the transition must stay
// valid (the per-source fallback guards degenerate sums) and the scores
// must stay finite and normalized.
func TestSweepSolverExtremeP(t *testing.T) {
	g := sweepTestGraph(t)
	s := NewSweepSolver(g)
	// ±300 drives the per-node factors denormal (or to +Inf): the fast
	// path's reciprocal guard must reject those sources and take the
	// shifted fallback instead of caching Inf/NaN scores.
	for _, p := range []float64{-300, -50, -8, 8, 50, 300} {
		res, err := s.Solve(p, 0, Options{})
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		var sum float64
		for _, v := range res.Scores {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("p=%g: invalid score %v", p, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("p=%g: scores sum to %v", p, sum)
		}
		// The stable path must still agree with the reference pipeline.
		tr, err := Blended(g, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Scores {
			if d := math.Abs(res.Scores[i] - want.Scores[i]); d > 1e-9 {
				t.Fatalf("p=%g: score[%d] = %v, want %v", p, i, res.Scores[i], want.Scores[i])
			}
		}
	}
}

// TestSweepSolverConcurrent: one SweepSolver must serve concurrent Solve
// calls (the job worker pool does exactly this). Run with -race.
func TestSweepSolverConcurrent(t *testing.T) {
	g := sweepTestGraph(t)
	s := NewSweepSolver(g)
	ps := []float64{-1, 0, 0.5, 1, 2, 3}
	var wg sync.WaitGroup
	errs := make(chan error, len(ps)*2)
	for _, p := range ps {
		for _, beta := range []float64{0, 0.5} {
			wg.Add(1)
			go func(p, beta float64) {
				defer wg.Done()
				if _, err := s.Solve(p, beta, Options{}); err != nil {
					errs <- err
				}
			}(p, beta)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSweepSolverValidation(t *testing.T) {
	s := NewSweepSolver(sweepTestGraph(t))
	if _, err := s.Solve(0, -0.1, Options{}); err == nil {
		t.Error("negative beta must error")
	}
	if _, err := s.Solve(0, 0, Options{Alpha: 2}); err == nil {
		t.Error("invalid alpha must error")
	}
}
