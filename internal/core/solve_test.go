package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"d2pr/internal/graph"
)

func sumOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestPageRankTwoNodeAnalytic(t *testing.T) {
	// 0 ↔ 1: symmetric, scores must both be 0.5 for any α.
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.5, 0.85, 0.99} {
		res, err := PageRank(g, Options{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("α=%v did not converge", alpha)
		}
		for i, s := range res.Scores {
			if math.Abs(s-0.5) > 1e-9 {
				t.Errorf("α=%v: score[%d] = %v, want 0.5", alpha, i, s)
			}
		}
	}
}

func TestPageRankDirectedCycleUniform(t *testing.T) {
	// Directed 4-cycle: perfect symmetry ⇒ uniform scores.
	g, err := graph.FromEdges(graph.Directed, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.Abs(s-0.25) > 1e-9 {
			t.Errorf("score[%d] = %v, want 0.25", i, s)
		}
	}
}

func TestPageRankStarAnalytic(t *testing.T) {
	// Directed star: k leaves all pointing at the center c, which is
	// dangling. With dangling mass redistributed to the uniform teleport:
	//   leaf = (1-α)/n + α·d/n,  center = leaf + α·k·leaf... solve directly
	// instead: verify against an independent fixed-point iteration done
	// longhand here.
	const k = 5
	b := graph.NewBuilder(graph.Directed)
	for v := int32(1); v <= k; v++ {
		b.AddEdge(v, 0)
	}
	g := b.MustBuild()
	res, err := PageRank(g, Options{Alpha: 0.85, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(k + 1)
	// Fixed point: leaf score x, center score y.
	// x = (1-α)/n + α·y_dangling_share = (1-α)/n + α·(y)/n  [dangling y spreads via teleport]
	// y = (1-α)/n + α·(k·x) + α·y/n
	// Solve the 2×2 system.
	alpha := 0.85
	// From symmetry all leaves equal; unknowns x (leaf), y (center):
	// x = (1-alpha)/n + alpha*y/n
	// y = (1-alpha)/n + alpha*y/n + alpha*k*x
	x := res.Scores[1]
	y := res.Scores[0]
	lhs1 := (1-alpha)/n + alpha*y/n
	lhs2 := (1-alpha)/n + alpha*y/n + alpha*float64(k)*x
	if math.Abs(x-lhs1) > 1e-9 || math.Abs(y-lhs2) > 1e-9 {
		t.Errorf("fixed point violated: x=%v (want %v), y=%v (want %v)", x, lhs1, y, lhs2)
	}
	if math.Abs(sumOf(res.Scores)-1) > 1e-12 {
		t.Errorf("sum = %v, want 1", sumOf(res.Scores))
	}
	for v := 2; v <= k; v++ {
		if math.Abs(res.Scores[v]-x) > 1e-12 {
			t.Errorf("leaf %d score %v differs from leaf 1 %v", v, res.Scores[v], x)
		}
	}
	if y <= x {
		t.Errorf("center %v must outrank leaves %v", y, x)
	}
}

func TestScoresSumToOneProperty(t *testing.T) {
	// Property: for random graphs (with dangling nodes and isolated nodes),
	// any D2PR score vector sums to 1 and is non-negative.
	f := func(seed int64, pRaw float64, directed bool) bool {
		r := rand.New(rand.NewSource(seed))
		p := math.Mod(pRaw, 4)
		if math.IsNaN(p) {
			p = 0
		}
		kind := graph.Undirected
		if directed {
			kind = graph.Directed
		}
		n := 2 + r.Intn(40)
		b := graph.NewBuilder(kind).EnsureNodes(n)
		for i := 0; i < 2*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.MustBuild()
		res, err := D2PR(g, p, Options{Tol: 1e-12})
		if err != nil {
			return false
		}
		if math.Abs(sumOf(res.Scores)-1) > 1e-9 {
			return false
		}
		for _, s := range res.Scores {
			if s < 0 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(graph.Undirected).MustBuild()
	if _, err := PageRank(g, Options{}); err != ErrEmptyGraph {
		t.Errorf("err = %v, want ErrEmptyGraph", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	g, _ := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}})
	cases := []Options{
		{Alpha: -0.1},
		{Alpha: 1.0},
		{Tol: -1},
		{MaxIter: -5},
		{Teleport: []float64{1}},             // wrong length
		{Teleport: []float64{-1, 2}},         // negative entry
		{Teleport: []float64{0, 0}},          // zero sum
		{Teleport: []float64{math.NaN(), 1}}, // invalid entry
	}
	for _, opts := range cases {
		if _, err := PageRank(g, opts); err == nil {
			t.Errorf("opts %+v: want error", opts)
		}
	}
}

func TestTeleportPersonalizationMovesMass(t *testing.T) {
	// Path 0-1-2-3-4; teleporting to node 0 must rank 0 first and decay
	// with distance.
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PersonalizedPageRank(g, []int32{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The seed's only neighbor aggregates mass from both sides and may
	// outrank the seed itself; the robust invariant is decay beyond it,
	// plus the seed dominating everything at distance ≥ 2.
	for i := 2; i < 5; i++ {
		if res.Scores[i-1] <= res.Scores[i] {
			t.Errorf("scores must decay with distance beyond the seed: %v", res.Scores)
			break
		}
	}
	if res.Scores[0] <= res.Scores[2] {
		t.Errorf("seed %v must outrank distance-2 node %v", res.Scores[0], res.Scores[2])
	}
	// Against the uniform-teleport baseline, the seed side must gain mass.
	base, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] <= base.Scores[0] {
		t.Errorf("personalization must boost the seed: %v vs %v", res.Scores[0], base.Scores[0])
	}
}

func TestPPRSeedValidation(t *testing.T) {
	g, _ := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}})
	if _, err := PersonalizedPageRank(g, nil, Options{}); err == nil {
		t.Error("empty seeds must error")
	}
	if _, err := PersonalizedPageRank(g, []int32{7}, Options{}); err == nil {
		t.Error("out-of-range seed must error")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(graph.Directed).EnsureNodes(200)
	for i := 0; i < 2000; i++ {
		u, v := int32(r.Intn(200)), int32(r.Intn(200))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	seq, err := D2PR(g, 1.5, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	par, err := D2PR(g, 1.5, Options{Tol: 1e-13, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Scores {
		if math.Abs(seq.Scores[i]-par.Scores[i]) > 1e-12 {
			t.Fatalf("node %d: seq %v par %v", i, seq.Scores[i], par.Scores[i])
		}
	}
}

func TestConvergenceDiagnostics(t *testing.T) {
	g, _ := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}, {1, 2}})
	res, err := PageRank(g, Options{MaxIter: 2, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("2 iterations at tol 1e-15 must not converge")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
	res2, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged || res2.Residual >= DefaultTol {
		t.Errorf("default opts should converge: %+v", res2)
	}
}

func TestAlphaZeroIsTeleportOnly(t *testing.T) {
	// α is the zero value's sentinel, so pass an explicit tiny alpha: with
	// α≈0 every node's score approaches its teleport probability.
	g, _ := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}, {1, 2}})
	res, err := PageRank(g, Options{Alpha: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Scores {
		if math.Abs(s-1.0/3) > 1e-6 {
			t.Errorf("score[%d] = %v, want ≈1/3", i, s)
		}
	}
}

func TestDanglingMassConserved(t *testing.T) {
	// Directed chain 0→1→2; node 2 dangles. Scores must still sum to 1 and
	// node 2 must outrank node 1 (it receives 1's mass), which outranks 0.
	g, err := graph.FromEdges(graph.Directed, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sumOf(res.Scores)-1) > 1e-12 {
		t.Errorf("sum = %v, want 1", sumOf(res.Scores))
	}
	if !(res.Scores[2] > res.Scores[1] && res.Scores[1] > res.Scores[0]) {
		t.Errorf("expected monotone chain scores, got %v", res.Scores)
	}
}

func TestMonteCarloAgreesWithPowerIteration(t *testing.T) {
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := Uniform(g)
	exact, err := Solve(tr, Options{Alpha: 0.85, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloPageRank(tr, 0.85, 400000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Scores {
		if math.Abs(exact.Scores[i]-mc[i]) > 0.01 {
			t.Errorf("node %d: exact %v, MC %v", i, exact.Scores[i], mc[i])
		}
	}
}
