package core

import (
	"testing"
)

// BenchmarkPPRColdSeed measures one cold per-seed forward-push solve on the
// 30k-node skewed bench graph at the serving default ε — the cost the
// pprcache admission layer is amortizing away for hot seeds. Seeds rotate so
// no push locality carries over between iterations; only the engine pool
// scratch is warm, as it is in a serving process. The warm counterpart
// (BenchmarkPPRWarmSeed, internal/pprcache) must be ≥100× faster.
func BenchmarkPPRColdSeed(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := Uniform(g)
	if _, err := e.SolvePPR(tr, 0, ForwardPushOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int32(i*7919) % int32(g.NumNodes())
		if seed < 0 {
			seed = -seed
		}
		if _, err := e.SolvePPR(tr, seed, ForwardPushOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
