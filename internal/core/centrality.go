package core

import (
	"fmt"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
)

// DegreeCentrality returns the degree of every node divided by (n-1), the
// textbook normalization. It is the paper's "Factor 2" in isolation and the
// simplest baseline significance measure.
func DegreeCentrality(g *graph.Graph) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	den := float64(n - 1)
	for u := 0; u < n; u++ {
		out[u] = float64(g.Degree(int32(u))) / den
	}
	return out
}

// ClosenessCentrality returns harmonic closeness centrality for every node:
// c(u) = Σ_{v≠u} 1/dist(u,v), normalized by (n-1). Harmonic closeness
// handles disconnected graphs gracefully (unreachable pairs contribute 0).
//
// If samples > 0 and samples < n, centrality is estimated by running BFS
// from `samples` uniformly chosen source nodes and rescaling — the standard
// trick for graphs where exact all-pairs BFS is too slow. seed drives source
// selection.
func ClosenessCentrality(g *graph.Graph, samples int, seed uint64) []float64 {
	n := g.NumNodes()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	sources := make([]int32, 0, n)
	if samples <= 0 || samples >= n {
		for u := 0; u < n; u++ {
			sources = append(sources, int32(u))
		}
	} else {
		r := rng.New(seed)
		perm := r.Perm(n)
		for _, u := range perm[:samples] {
			sources = append(sources, int32(u))
		}
	}
	// Harmonic closeness accumulates over sources: dist(s,u) from BFS at s
	// contributes 1/dist to u (using the reverse orientation for directed
	// graphs would give "reachability from"; we use forward BFS, measuring
	// how closely u is reached, which matches in-link prestige).
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for _, s := range sources {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for u := 0; u < n; u++ {
			if dist[u] > 0 {
				out[u] += 1 / float64(dist[u])
			}
		}
	}
	scale := float64(n) / float64(len(sources)) / float64(n-1)
	for u := range out {
		out[u] *= scale
	}
	return out
}

// Betweenness returns exact betweenness centrality via Brandes' algorithm
// (unweighted shortest paths). For undirected graphs the conventional 1/2
// factor is applied. Cost is O(n·m); use BetweennessSampled on large graphs.
func Betweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	return brandes(g, sources, 1)
}

// BetweennessSampled estimates betweenness centrality from `samples` random
// pivot sources (Brandes–Pich style), rescaling by n/samples. seed drives
// pivot selection.
func BetweennessSampled(g *graph.Graph, samples int, seed uint64) []float64 {
	n := g.NumNodes()
	if samples <= 0 || samples >= n {
		return Betweenness(g)
	}
	r := rng.New(seed)
	perm := r.Perm(n)
	sources := make([]int32, samples)
	for i := 0; i < samples; i++ {
		sources[i] = int32(perm[i])
	}
	return brandes(g, sources, float64(n)/float64(samples))
}

// brandes runs the dependency-accumulation phase of Brandes' algorithm from
// the given sources, scaling each accumulated dependency by scale.
func brandes(g *graph.Graph, sources []int32, scale float64) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int32, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)

	for _, s := range sources {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		order = order[:0]
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			order = append(order, u)
			for _, v := range g.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, u := range preds[w] {
				delta[u] += sigma[u] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w] * scale
			}
		}
	}
	if !g.Directed() {
		for i := range bc {
			bc[i] /= 2
		}
	}
	return bc
}

// EigenvectorCentrality returns the principal-eigenvector centrality of g by
// power iteration on the (weighted) adjacency, L1-normalized. On bipartite
// or periodic structures plain adjacency iteration can oscillate; a 1/2 lazy
// self-loop is mixed in to guarantee convergence.
func EigenvectorCentrality(g *graph.Graph, opts Options) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		for i := range next {
			next[i] = 0.5 * cur[i] // lazy component
		}
		for u := int32(0); int(u) < n; u++ {
			lo, hi := g.ArcRange(u)
			for k := lo; k < hi; k++ {
				next[g.ArcTarget(k)] += 0.5 * g.ArcWeight(k) * cur[u]
			}
		}
		normalizeL1(next)
		var diff float64
		for i := 0; i < n; i++ {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		cur, next = next, cur
		if diff < opts.Tol {
			return cur, nil
		}
	}
	return cur, nil
}

// CentralityByName looks up a baseline centrality by its CLI name. It exists
// so cmd/d2pr and the benches share one registry.
func CentralityByName(g *graph.Graph, name string, opts Options) ([]float64, error) {
	switch name {
	case "degree":
		return DegreeCentrality(g), nil
	case "closeness":
		return ClosenessCentrality(g, 0, 1), nil
	case "betweenness":
		return Betweenness(g), nil
	case "eigenvector":
		return EigenvectorCentrality(g, opts)
	case "hits":
		h, err := HITS(g, opts)
		if err != nil {
			return nil, err
		}
		return h.Authorities, nil
	case "pagerank":
		r, err := PageRank(g, opts)
		if err != nil {
			return nil, err
		}
		return r.Scores, nil
	default:
		return nil, fmt.Errorf("core: unknown centrality %q", name)
	}
}
