package core

import "testing"

func TestCacheKeyCanonicalizesDefaults(t *testing.T) {
	zero := Options{}.CacheKey()
	spelled := Options{Alpha: DefaultAlpha, Tol: DefaultTol, MaxIter: DefaultMaxIter}.CacheKey()
	if zero != spelled {
		t.Errorf("zero options %q != spelled-out defaults %q", zero, spelled)
	}
}

func TestCacheKeyIgnoresWorkers(t *testing.T) {
	a := Options{Workers: 0}.CacheKey()
	b := Options{Workers: 8}.CacheKey()
	if a != b {
		t.Errorf("Workers must not affect the cache key: %q vs %q", a, b)
	}
}

func TestCacheKeyDistinguishesSolverParams(t *testing.T) {
	base := Options{}.CacheKey()
	for name, o := range map[string]Options{
		"alpha":   {Alpha: 0.5},
		"tol":     {Tol: 1e-6},
		"maxiter": {MaxIter: 10},
		"tele":    {Teleport: []float64{1, 0, 0}},
	} {
		if o.CacheKey() == base {
			t.Errorf("%s change must change the key", name)
		}
	}
}

func TestCacheKeyTeleportNormalized(t *testing.T) {
	a := Options{Teleport: []float64{1, 2, 1}}.CacheKey()
	b := Options{Teleport: []float64{2, 4, 2}}.CacheKey()
	if a != b {
		t.Errorf("scaled teleport vectors solve identically and must share a key: %q vs %q", a, b)
	}
	c := Options{Teleport: []float64{2, 1, 1}}.CacheKey()
	if a == c {
		t.Error("different teleport distributions must not collide")
	}
}
