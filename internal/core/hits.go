package core

import (
	"math"

	"d2pr/internal/graph"
)

// HITSResult carries the hub and authority vectors of Kleinberg's HITS
// algorithm, each normalized to sum to 1.
type HITSResult struct {
	Hubs        []float64
	Authorities []float64
	Iterations  int
	Converged   bool
	Residual    float64
}

// HITS runs the hubs-and-authorities fixpoint on g:
//
//	auth(v) = Σ_{u→v} hub(u),   hub(u) = Σ_{u→v} auth(v)
//
// normalized each round, until the combined L1 change drops below opts.Tol
// or opts.MaxIter rounds elapse. Alpha and Teleport in opts are ignored —
// HITS has neither. On undirected graphs hubs and authorities coincide with
// the principal eigenvector of the adjacency (eigenvector centrality), which
// is the baseline role it plays here.
func HITS(g *graph.Graph, opts Options) (*HITSResult, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	hub := make([]float64, n)
	auth := make([]float64, n)
	newHub := make([]float64, n)
	newAuth := make([]float64, n)
	u0 := 1 / float64(n)
	for i := range hub {
		hub[i] = u0
		auth[i] = u0
	}
	res := &HITSResult{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// auth update: push hub mass along arcs.
		for i := range newAuth {
			newAuth[i] = 0
		}
		for u := int32(0); int(u) < n; u++ {
			lo, hi := g.ArcRange(u)
			for k := lo; k < hi; k++ {
				w := g.ArcWeight(k)
				newAuth[g.ArcTarget(k)] += w * hub[u]
			}
		}
		normalizeL1(newAuth)
		// hub update: pull new authority mass along arcs.
		for i := range newHub {
			newHub[i] = 0
		}
		for u := int32(0); int(u) < n; u++ {
			lo, hi := g.ArcRange(u)
			var acc float64
			for k := lo; k < hi; k++ {
				acc += g.ArcWeight(k) * newAuth[g.ArcTarget(k)]
			}
			newHub[u] = acc
		}
		normalizeL1(newHub)

		var diff float64
		for i := 0; i < n; i++ {
			diff += math.Abs(newAuth[i]-auth[i]) + math.Abs(newHub[i]-hub[i])
		}
		auth, newAuth = newAuth, auth
		hub, newHub = newHub, hub
		res.Iterations = iter
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.Hubs = hub
	res.Authorities = auth
	return res, nil
}

// normalizeL1 scales xs to sum to 1; if the sum is zero it sets the uniform
// distribution (an isolated-nodes-only graph).
func normalizeL1(xs []float64) {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return
	}
	inv := 1 / s
	for i := range xs {
		xs[i] *= inv
	}
}
