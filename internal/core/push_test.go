package core

import (
	"math"
	"testing"

	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

func TestForwardPushMatchesPowerIteration(t *testing.T) {
	g := skewedGraph(300, 21)
	tr := Uniform(g)
	const seed = int32(7)
	exact, err := Solve(tr, Options{Alpha: 0.85, Tol: 1e-13, Teleport: seedVector(g.NumNodes(), seed)})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ForwardPush(tr, seed, ForwardPushOptions{Alpha: 0.85, Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range exact.Scores {
		if d := math.Abs(exact.Scores[i] - approx[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-5 {
		t.Errorf("max |exact - push| = %v, want ≤ 1e-5", maxErr)
	}
	if rho := stats.Spearman(exact.Scores, approx); rho < 0.999 {
		t.Errorf("rank agreement ρ = %v", rho)
	}
}

func TestForwardPushD2PRTransition(t *testing.T) {
	// Push must work for arbitrary transitions, including degree-decoupled
	// ones — the locality-sensitive D2PR use case.
	g := skewedGraph(200, 22)
	tr := DegreeDecoupled(g, 1.5)
	const seed = int32(3)
	exact, err := Solve(tr, Options{Alpha: 0.85, Tol: 1e-13, Teleport: seedVector(g.NumNodes(), seed)})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ForwardPush(tr, seed, ForwardPushOptions{Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Scores {
		if math.Abs(exact.Scores[i]-approx[i]) > 1e-5 {
			t.Fatalf("node %d: exact %v push %v", i, exact.Scores[i], approx[i])
		}
	}
}

func TestForwardPushMassBound(t *testing.T) {
	g := skewedGraph(100, 23)
	tr := Uniform(g)
	approx, err := ForwardPush(tr, 0, ForwardPushOptions{Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range approx {
		if v < 0 {
			t.Fatalf("negative push estimate %v", v)
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Errorf("push mass = %v, must be ≤ 1", sum)
	}
	if sum < 0.5 {
		t.Errorf("push mass = %v, suspiciously small at ε=1e-4", sum)
	}
}

func TestForwardPushDanglingSeed(t *testing.T) {
	// Seed with no out-arcs: its mass keeps returning to itself through the
	// dangling rule; the estimate must converge with the seed dominant.
	g, err := graph.FromEdges(graph.Directed, [][2]int32{{1, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ForwardPush(Uniform(g), 0, ForwardPushOptions{Epsilon: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if approx[0] < 0.99 {
		t.Errorf("dangling seed score = %v, want ≈1", approx[0])
	}
}

func TestForwardPushValidation(t *testing.T) {
	g := skewedGraph(10, 24)
	tr := Uniform(g)
	if _, err := ForwardPush(tr, -1, ForwardPushOptions{}); err == nil {
		t.Error("negative seed must error")
	}
	if _, err := ForwardPush(tr, 100, ForwardPushOptions{}); err == nil {
		t.Error("out-of-range seed must error")
	}
	if _, err := ForwardPush(tr, 0, ForwardPushOptions{Alpha: 1.5}); err == nil {
		t.Error("alpha ≥ 1 must error")
	}
	if _, err := ForwardPush(tr, 0, ForwardPushOptions{Epsilon: -1}); err == nil {
		t.Error("negative epsilon must error")
	}
}

func seedVector(n int, seed int32) []float64 {
	v := make([]float64, n)
	v[seed] = 1
	return v
}

func TestHittingTimePath(t *testing.T) {
	// Path 0-1-2-3-4, walk from 0: expected first-hit step must increase
	// with distance from the source.
	g := pathGraph(5)
	ht, err := HittingTime(Uniform(g), 0, HittingTimeOptions{Walks: 4000, MaxLen: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ht[0] != 0 {
		t.Errorf("h(0,0) = %v, want 0", ht[0])
	}
	for i := 1; i < 5; i++ {
		if ht[i] <= ht[i-1] {
			t.Errorf("hitting time must grow with distance: %v", ht)
			break
		}
	}
}

func TestHittingTimeUnreachable(t *testing.T) {
	// Two components: unreachable nodes must report the truncation bound.
	g := graph.NewBuilder(graph.Undirected).EnsureNodes(4).
		AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	const maxLen = 50
	ht, err := HittingTime(Uniform(g), 0, HittingTimeOptions{Walks: 200, MaxLen: maxLen, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ht[2] != maxLen || ht[3] != maxLen {
		t.Errorf("unreachable hitting times = %v/%v, want %v", ht[2], ht[3], maxLen)
	}
}

func TestHittingTimeValidation(t *testing.T) {
	g := pathGraph(3)
	if _, err := HittingTime(Uniform(g), 9, HittingTimeOptions{}); err == nil {
		t.Error("bad source must error")
	}
	if _, err := HittingTime(Uniform(g), 0, HittingTimeOptions{Walks: -1}); err == nil {
		t.Error("negative walks must error")
	}
}

func TestMonteCarloPageRankValidation(t *testing.T) {
	g := pathGraph(3)
	if _, err := MonteCarloPageRank(Uniform(g), 1.2, 10, 1); err == nil {
		t.Error("alpha out of range must error")
	}
	empty := graph.NewBuilder(graph.Undirected).MustBuild()
	if _, err := MonteCarloPageRank(Uniform(empty), 0.5, 10, 1); err == nil {
		t.Error("empty graph must error")
	}
}
