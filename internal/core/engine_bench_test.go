package core

import (
	"context"
	"testing"

	"d2pr/internal/graph"
)

// The BenchmarkCore* benches feed scripts/bench.sh → BENCH_core.json: the
// perf trajectory of the solver hot path across PRs. They run on a skewed
// synthetic power-law graph (hub in-degree concentrated on low ids — the
// paper's citation/affiliation shape) where the engine's wins are largest:
//
//   - CoreSolveCold vs CoreSolveWarm: the cost of re-transposing the graph
//     on every solve (the seed behavior) vs reusing the cached engine.
//   - CoreSolveWarmUniform: the implicit 1/outdeg path — no per-arc
//     probability array is built, scattered, or read.
//   - CoreSweepNodeBalanced vs CoreSweepArcBalanced: straggler cost of
//     splitting the parallel sweep by node count when one worker draws all
//     the hub rows, vs splitting by arc prefix-sums.

const (
	benchNodes  = 30000
	benchAvgDeg = 8
)

var benchG *graph.Graph

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	if benchG == nil {
		benchG = powerLawGraph(b, benchNodes, benchAvgDeg, 42)
	}
	return benchG
}

// benchOpts pins the iteration count so every variant does identical work.
var benchOpts = Options{Alpha: DefaultAlpha, MaxIter: 20, Tol: 1e-300}

// BenchmarkCoreSolveCold measures the seed behavior: every solve rebuilds
// the pull topology (transpose + permutation) before iterating.
func BenchmarkCoreSolveCold(b *testing.B) {
	g := benchGraph(b)
	tr := DegreeDecoupled(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(g).Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumArcs()), "arcs")
}

// BenchmarkCoreSolveWarm measures the cached-engine path: the transpose is
// reused, each solve only scatters transition probabilities and iterates.
func BenchmarkCoreSolveWarm(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	if _, err := e.Solve(tr, benchOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreSolveCancelOverhead measures the warm-solve path under a live
// cancellable context — the serving configuration after deadline propagation,
// where every iteration polls ctx.Err() on a real context.WithCancel /
// WithTimeout chain rather than the free Background stub. Compare against
// BenchmarkCoreSolveWarm in BENCH_core.json: the per-iteration check must
// stay under 1% of the warm-solve cost. Declared directly after the warm
// bench so the pair runs back to back — within-suite thermal drift would
// otherwise dwarf the overhead being measured.
func BenchmarkCoreSolveCancelOverhead(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := e.SolveContext(ctx, tr, benchOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SolveContext(ctx, tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreSolveWarmUniform measures the implicit uniform (p = 0)
// transition: no per-arc probabilities exist anywhere on the path.
func BenchmarkCoreSolveWarmUniform(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := Uniform(g)
	if _, err := e.Solve(tr, benchOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep runs the fixed-iteration power core with the given worker count
// and partitioning strategy over a pre-scattered probability buffer. Besides
// wall time (which only separates the strategies on multi-core hosts), it
// reports "imbalance": the heaviest segment's arc load as a multiple of the
// ideal per-worker share — the straggler factor, 1.0 being perfect. The
// metric is deterministic, so BENCH_core.json records the partition quality
// even when the bench host is single-core.
func benchSweep(b *testing.B, workers int, arcBalanced bool) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	probs := make([]float64, g.NumArcs())
	src := tr.arcProbs()
	for k, pos := range e.perm {
		probs[pos] = src[k]
	}
	opts := benchOpts
	opts.Workers = workers

	bounds := partitionNodes(e.n, workers)
	if arcBalanced {
		bounds = e.partitionArcs(workers)
	}
	var maxSeg int64
	for w := 0; w < workers; w++ {
		if arcs := e.offsets[bounds[w+1]] - e.offsets[bounds[w]]; arcs > maxSeg {
			maxSeg = arcs
		}
	}

	if _, err := e.power(context.Background(), probs, opts, arcBalanced); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.power(context.Background(), probs, opts, arcBalanced); err != nil {
			b.Fatal(err)
		}
	}
	// After the loop: ResetTimer deletes user metrics reported before it.
	b.ReportMetric(float64(maxSeg)*float64(workers)/float64(g.NumArcs()), "imbalance")
}

func BenchmarkCoreSweepNodeBalanced4(b *testing.B) { benchSweep(b, 4, false) }
func BenchmarkCoreSweepArcBalanced4(b *testing.B)  { benchSweep(b, 4, true) }
func BenchmarkCoreSweepNodeBalanced8(b *testing.B) { benchSweep(b, 8, false) }
func BenchmarkCoreSweepArcBalanced8(b *testing.B)  { benchSweep(b, 8, true) }

// BenchmarkCoreSweepSequential anchors the parallel numbers.
func BenchmarkCoreSweepSequential(b *testing.B) { benchSweep(b, 1, true) }
