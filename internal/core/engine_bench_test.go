package core

import (
	"context"
	"testing"

	"d2pr/internal/graph"
)

// The BenchmarkCore* benches feed scripts/bench.sh → BENCH_core.json: the
// perf trajectory of the solver hot path across PRs. They run on a skewed
// synthetic power-law graph (hub in-degree concentrated on low ids — the
// paper's citation/affiliation shape) where the engine's wins are largest:
//
//   - CoreSolveCold vs CoreSolveWarm: the cost of re-transposing the graph
//     on every solve (the seed behavior) vs reusing the cached engine.
//   - CoreSolveWarmUniform: the implicit 1/outdeg path — no per-arc
//     probability array is built, scattered, or read.
//   - CoreSolveWarmNoReorder: the identity-order ablation of the locality
//     relabeling (same kernel, builder's node order).
//   - CoreSolveWarmFloat32: the float32 score tier (Options.Float32).
//   - CoreSweepBlocked vs CoreSweepNodeBalanced vs CoreSweepArcBalanced:
//     the dynamic cache-blocked schedule against the two static splits.
//   - CoreConvergePower vs CoreConvergeHybrid: full runs to a real
//     tolerance, with and without the adaptive Gauss–Seidel tail.
//
// Every warm bench also reports ns_per_arc — the tentpole metric the
// CI bench-regression guard tracks (scripts/bench_guard.sh).

const (
	benchNodes  = 30000
	benchAvgDeg = 8
)

var benchG *graph.Graph

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	if benchG == nil {
		benchG = powerLawGraph(b, benchNodes, benchAvgDeg, 42)
	}
	return benchG
}

// benchOpts pins the iteration count so every variant does identical work.
var benchOpts = Options{Alpha: DefaultAlpha, MaxIter: 20, Tol: 1e-300}

// reportNsPerArc converts the measured ns/op into ns per arc-traversal so
// BENCH_core.json tracks kernel throughput independent of graph size and the
// pinned iteration count. Call after the timed loop (ResetTimer would drop
// metrics reported before it).
func reportNsPerArc(b *testing.B, arcs, itersPerOp int) {
	if b.N == 0 {
		return
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/float64(arcs)/float64(itersPerOp), "ns_per_arc")
}

// BenchmarkCoreSolveCold measures the seed behavior: every solve rebuilds
// the pull topology (transpose + reordering + block layout) before iterating.
func BenchmarkCoreSolveCold(b *testing.B) {
	g := benchGraph(b)
	tr := DegreeDecoupled(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEngine(g).Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumArcs()), "arcs")
}

// BenchmarkCoreSolveWarm measures the cached-engine path: the transpose is
// reused and — since tr is long-lived — the flow-probability memo kicks in,
// so each solve is pure iteration.
func BenchmarkCoreSolveWarm(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	for i := 0; i < 2; i++ { // second solve promotes tr into the flow memo
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerArc(b, g.NumArcs(), benchOpts.MaxIter)
}

// BenchmarkCoreSolveCancelOverhead measures the warm-solve path under a live
// cancellable context — the serving configuration after deadline propagation,
// where every iteration polls ctx.Err() on a real context.WithCancel /
// WithTimeout chain rather than the free Background stub. Compare against
// BenchmarkCoreSolveWarm in BENCH_core.json: the per-iteration check must
// stay under 1% of the warm-solve cost. Declared directly after the warm
// bench so the pair runs back to back — within-suite thermal drift would
// otherwise dwarf the overhead being measured.
func BenchmarkCoreSolveCancelOverhead(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, err := e.SolveContext(ctx, tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SolveContext(ctx, tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerArc(b, g.NumArcs(), benchOpts.MaxIter)
}

// BenchmarkCoreSolveWarmUniform measures the implicit uniform (p = 0)
// transition: no per-arc probabilities exist anywhere on the path.
func BenchmarkCoreSolveWarmUniform(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := Uniform(g)
	if _, err := e.Solve(tr, benchOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerArc(b, g.NumArcs(), benchOpts.MaxIter)
}

// BenchmarkCoreSolveWarmNoReorder is the locality-relabeling ablation: the
// same warm solve on an identity-ordered engine. The gap to
// BenchmarkCoreSolveWarm is the reordering's contribution.
func BenchmarkCoreSolveWarmNoReorder(b *testing.B) {
	g := benchGraph(b)
	e := newEngineIdentity(g)
	tr := DegreeDecoupled(g, 1)
	for i := 0; i < 2; i++ {
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerArc(b, g.NumArcs(), benchOpts.MaxIter)
}

// BenchmarkCoreSolveWarmFloat32 measures the float32 score tier on the warm
// explicit-transition path: per-node and per-arc streams at half width,
// accumulation still float64.
func BenchmarkCoreSolveWarmFloat32(b *testing.B) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	opts := benchOpts
	opts.Float32 = true
	for i := 0; i < 2; i++ {
		if _, err := e.Solve(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
	reportNsPerArc(b, g.NumArcs(), opts.MaxIter)
}

// benchSweep runs the fixed-iteration power core with the given worker count
// and schedule over a pre-scattered probability buffer. Besides wall time
// (which only separates the strategies on multi-core hosts), the static
// schedules report "imbalance": the heaviest segment's arc load as a multiple
// of the ideal per-worker share — the straggler factor, 1.0 being perfect.
// The blocked schedule reports its block count instead; its balance is
// dynamic. Both metrics are deterministic, so BENCH_core.json records the
// schedule quality even when the bench host is single-core.
func benchSweep(b *testing.B, workers int, sched schedule) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	probs := make([]float64, g.NumArcs())
	e.scatterFlow(probs, tr.arcProbs())
	opts, err := benchOpts.withDefaults(e.n)
	if err != nil {
		b.Fatal(err)
	}
	opts.Workers = workers

	if _, err := e.power(context.Background(), flow{probs: probs}, opts, sched); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.power(context.Background(), flow{probs: probs}, opts, sched); err != nil {
			b.Fatal(err)
		}
	}
	// After the loop: ResetTimer deletes user metrics reported before it.
	reportNsPerArc(b, g.NumArcs(), opts.MaxIter)
	if sched == schedBlocked {
		b.ReportMetric(float64(len(e.blocks)-1), "blocks")
		return
	}
	bounds := partitionNodes(e.n, workers)
	if sched == schedArcStatic {
		bounds = e.partitionArcs(workers)
	}
	var maxSeg int64
	for w := 0; w < workers; w++ {
		if arcs := e.pullOffsets[bounds[w+1]] - e.pullOffsets[bounds[w]]; arcs > maxSeg {
			maxSeg = arcs
		}
	}
	b.ReportMetric(float64(maxSeg)*float64(workers)/float64(g.NumArcs()), "imbalance")
}

func BenchmarkCoreSweepNodeBalanced4(b *testing.B) { benchSweep(b, 4, schedNodeStatic) }
func BenchmarkCoreSweepArcBalanced4(b *testing.B)  { benchSweep(b, 4, schedArcStatic) }
func BenchmarkCoreSweepBlocked4(b *testing.B)      { benchSweep(b, 4, schedBlocked) }
func BenchmarkCoreSweepNodeBalanced8(b *testing.B) { benchSweep(b, 8, schedNodeStatic) }
func BenchmarkCoreSweepArcBalanced8(b *testing.B)  { benchSweep(b, 8, schedArcStatic) }
func BenchmarkCoreSweepBlocked8(b *testing.B)      { benchSweep(b, 8, schedBlocked) }

// BenchmarkCoreSweepSequential anchors the parallel numbers.
func BenchmarkCoreSweepSequential(b *testing.B) { benchSweep(b, 1, schedArcStatic) }

// benchConverge runs warm solves to a real tolerance (not the pinned
// iteration count), so the hybrid solver's fewer-total-sweeps advantage is
// visible as wall time. The tolerance sits at 1e-14, deep enough that the
// residual frontier collapses and the hybrid actually switches to its
// Gauss–Seidel tail on the bench graph (at looser tolerances power
// iteration converges before the frontier shrinks). Iterations vary per
// variant, so these report plain ns/op only.
func benchConverge(b *testing.B, hybrid bool) {
	g := benchGraph(b)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1)
	opts := Options{Alpha: DefaultAlpha, Tol: 1e-14, Hybrid: hybrid}
	var iters, sweeps int
	for i := 0; i < 2; i++ {
		res, err := e.Solve(tr, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("did not converge in %d iterations", res.Iterations)
		}
		iters, sweeps = res.Iterations, res.GSSweeps
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(iters), "iters")
	b.ReportMetric(float64(sweeps), "gs_sweeps")
}

func BenchmarkCoreConvergePower(b *testing.B)  { benchConverge(b, false) }
func BenchmarkCoreConvergeHybrid(b *testing.B) { benchConverge(b, true) }
