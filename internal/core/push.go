package core

import (
	"fmt"
)

// ForwardPushOptions configures the local-push PPR approximation.
type ForwardPushOptions struct {
	// Alpha is the residual probability (matching Options.Alpha; the same
	// fixpoint is approximated). 0 means DefaultAlpha.
	Alpha float64
	// Epsilon is the per-node residual threshold: push terminates when every
	// node's residual is below Epsilon·outdeg(node). Smaller is more
	// accurate. 0 means 1e-7.
	Epsilon float64
	// MaxPushes caps the total number of push operations as a safety bound.
	// 0 means 100·n/epsilon rounded into int range (effectively unbounded
	// for sane inputs).
	MaxPushes int
}

// ForwardPush computes an approximate personalized PageRank vector for a
// single seed using the Andersen–Chung–Lang forward local push, generalized
// to arbitrary transitions (so it works for D2PR transitions too — the
// locality-sensitive computation style of the paper's reference [17]).
//
// The estimate p̂ satisfies, for every node v,
//
//	|p(v) − p̂(v)| ≤ ε · Σ_u outdeg(u)·(reachability factors)
//
// in the classic analysis; practically, ε=1e-7 matches power iteration to
// ~1e-6 absolute error on the graphs in this module. The returned vector
// sums to ≤ 1; the deficit is the un-pushed residual mass.
func ForwardPush(t *Transition, seed int32, opts ForwardPushOptions) ([]float64, error) {
	g := t.g
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if seed < 0 || int(seed) >= n {
		return nil, fmt.Errorf("core: push seed %d out of range [0, %d)", seed, n)
	}
	if opts.Alpha == 0 {
		opts.Alpha = DefaultAlpha
	}
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v out of range [0, 1)", opts.Alpha)
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 1e-7
	}
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon %v must be positive", opts.Epsilon)
	}
	if opts.MaxPushes == 0 {
		opts.MaxPushes = 1 << 30
	}

	// In the teleporting-walk formulation used by Solve, the PPR vector is
	// p = (1-α) Σ_k α^k T^k e_seed. Forward push maintains p (estimate) and
	// r (residual) with invariant p + (1-α) Σ α^k T^k r = answer.
	p := make([]float64, n)
	r := make([]float64, n)
	r[seed] = 1
	probs := t.arcProbs()

	// Work queue of nodes whose residual exceeds the threshold.
	queue := make([]int32, 0, 64)
	inQueue := make([]bool, n)
	push := func(u int32) {
		if !inQueue[u] {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	threshold := func(u int32) float64 {
		d := g.Degree(u)
		if d == 0 {
			d = 1
		}
		return opts.Epsilon * float64(d)
	}
	push(seed)
	pushes := 0
	for len(queue) > 0 && pushes < opts.MaxPushes {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[u] = false
		ru := r[u]
		if ru < threshold(u) {
			continue
		}
		pushes++
		p[u] += (1 - opts.Alpha) * ru
		r[u] = 0
		lo, hi := g.ArcRange(u)
		if lo == hi {
			// Dangling node: walk mass returns to the seed (the same policy
			// the exact solver applies with a seed teleport vector).
			r[seed] += opts.Alpha * ru
			if r[seed] >= threshold(seed) {
				push(seed)
			}
			continue
		}
		for k := lo; k < hi; k++ {
			v := g.ArcTarget(k)
			r[v] += opts.Alpha * ru * probs[k]
			if r[v] >= threshold(v) {
				push(v)
			}
		}
	}
	return p, nil
}
