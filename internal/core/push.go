package core

import (
	"context"
	"fmt"
	"time"
)

// ForwardPushOptions configures the local-push PPR approximation.
type ForwardPushOptions struct {
	// Alpha is the residual probability (matching Options.Alpha; the same
	// fixpoint is approximated). 0 means DefaultAlpha.
	Alpha float64
	// Epsilon is the per-node residual threshold: push terminates when every
	// node's residual is below Epsilon·outdeg(node). Smaller is more
	// accurate. 0 means DefaultPPREpsilon.
	Epsilon float64
	// MaxPushes caps the total number of push operations as a safety bound.
	// 0 means effectively unbounded for sane inputs.
	MaxPushes int
}

// DefaultPPREpsilon is the per-node residual threshold used when
// ForwardPushOptions.Epsilon is zero. It matches power iteration to ~1e-6
// absolute error on the graphs in this module.
const DefaultPPREpsilon = 1e-7

// PPRResult reports the outcome of a forward-push personalized solve.
type PPRResult struct {
	// Scores is the PPR estimate p̂. It sums to ≤ 1; the deficit is the
	// un-pushed residual mass.
	Scores []float64
	// ResidualMass is Σ_v r(v) at termination. The push invariant
	// Σp̂ + Σr = 1 holds throughout the solve (each push moves (1-α)·r(u)
	// into the estimate and α·r(u) back into the residual), so
	// Scores-sum + ResidualMass = 1 up to floating-point rounding at every ε.
	ResidualMass float64
	// Pushes is the number of push operations performed.
	Pushes int
	// Elapsed is the wall-clock time of the push loop, recorded by the
	// solver for serving-layer telemetry.
	Elapsed time.Duration
}

// pprScratch is the recycled solve-time state of SolvePPR: the residual
// vector, the work queue, and its membership bits. r and inQueue are returned
// to the pool zeroed, so a pooled scratch is ready to use as-is.
type pprScratch struct {
	r       []float64
	inQueue []bool
	queue   []int32
}

func (e *Engine) getPPR() *pprScratch {
	if s, ok := e.pprbuf.Get().(*pprScratch); ok {
		return s
	}
	return &pprScratch{
		r:       make([]float64, e.n),
		inQueue: make([]bool, e.n),
		queue:   make([]int32, 0, 64),
	}
}

func (e *Engine) putPPR(s *pprScratch) {
	clear(s.r)
	clear(s.inQueue)
	s.queue = s.queue[:0]
	e.pprbuf.Put(s)
}

// SolvePPR computes an approximate personalized PageRank vector for a single
// seed using the Andersen–Chung–Lang forward local push, generalized to
// arbitrary transitions (so it works for D2PR transitions too — the
// locality-sensitive computation style of the paper's reference [17]).
// t must be a transition over the engine's graph.
//
// The estimate p̂ satisfies, for every node v,
//
//	|p(v) − p̂(v)| ≤ ε · Σ_u outdeg(u)·(reachability factors)
//
// in the classic analysis; practically, ε=1e-7 matches power iteration to
// ~1e-6 absolute error on the graphs in this module.
//
// This is the per-seed serving hot path: uniform transitions run off the
// engine's cached 1/outdeg table (no per-arc probability array exists), and
// the residual/queue scratch is pooled, so a warm solve allocates only the
// returned result — the same two-allocation discipline as a warm Solve.
func (e *Engine) SolvePPR(t *Transition, seed int32, opts ForwardPushOptions) (*PPRResult, error) {
	return e.SolvePPRContext(context.Background(), t, seed, opts)
}

// SolvePPRContext is SolvePPR with cancellation: the push loop polls ctx
// every few hundred dequeues (a push is far cheaper than a power-iteration
// sweep, so per-operation polling would dominate) and aborts with the
// context's error wrapped with push progress. A cancelled solve returns
// within a small constant number of pushes of the cancellation.
func (e *Engine) SolvePPRContext(ctx context.Context, t *Transition, seed int32, opts ForwardPushOptions) (*PPRResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.g != e.g {
		return nil, fmt.Errorf("core: transition over %v does not match engine graph %v", t.g, e.g)
	}
	g := e.g
	n := e.n
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if seed < 0 || int(seed) >= n {
		return nil, fmt.Errorf("core: push seed %d out of range [0, %d)", seed, n)
	}
	if opts.Alpha == 0 {
		opts.Alpha = DefaultAlpha
	}
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v out of range [0, 1)", opts.Alpha)
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = DefaultPPREpsilon
	}
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon %v must be positive", opts.Epsilon)
	}
	if opts.MaxPushes == 0 {
		opts.MaxPushes = 1 << 30
	}

	// In the teleporting-walk formulation used by Solve, the PPR vector is
	// p = (1-α) Σ_k α^k T^k e_seed. Forward push maintains p (estimate) and
	// r (residual) with invariant p + (1-α) Σ α^k T^k r = answer; since T is
	// stochastic (dangling mass returns to the seed), Σp + Σr = 1 exactly.
	solveStart := time.Now()
	p := make([]float64, n) // escapes as PPRResult.Scores
	st := e.getPPR()
	r, inQueue, queue := st.r, st.inQueue, st.queue
	r[seed] = 1

	var probs []float64
	if !t.uniform {
		probs = t.arcProbs()
	}
	invOut := e.invOut

	push := func(u int32) {
		if !inQueue[u] {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	threshold := func(u int32) float64 {
		d := g.Degree(u)
		if d == 0 {
			d = 1
		}
		return opts.Epsilon * float64(d)
	}
	push(seed)
	pushes := 0
	steps := 0
	for len(queue) > 0 && pushes < opts.MaxPushes {
		steps++
		if steps&255 == 0 {
			if err := ctx.Err(); err != nil {
				st.queue = queue
				e.putPPR(st)
				return nil, fmt.Errorf("core: ppr solve aborted after %d pushes: %w", pushes, err)
			}
		}
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[u] = false
		ru := r[u]
		if ru < threshold(u) {
			continue
		}
		pushes++
		p[u] += (1 - opts.Alpha) * ru
		r[u] = 0
		lo, hi := g.ArcRange(u)
		if lo == hi {
			// Dangling node: walk mass returns to the seed (the same policy
			// the exact solver applies with a seed teleport vector).
			r[seed] += opts.Alpha * ru
			if r[seed] >= threshold(seed) {
				push(seed)
			}
			continue
		}
		if probs == nil {
			// Implicit uniform transition: every out-arc of u carries the
			// cached 1/outdeg probability.
			pv := opts.Alpha * ru * invOut[u]
			for k := lo; k < hi; k++ {
				v := g.ArcTarget(k)
				r[v] += pv
				if r[v] >= threshold(v) {
					push(v)
				}
			}
			continue
		}
		for k := lo; k < hi; k++ {
			v := g.ArcTarget(k)
			r[v] += opts.Alpha * ru * probs[k]
			if r[v] >= threshold(v) {
				push(v)
			}
		}
	}
	var residual float64
	for _, rv := range r {
		residual += rv
	}
	st.queue = queue
	e.putPPR(st)
	return &PPRResult{Scores: p, ResidualMass: residual, Pushes: pushes, Elapsed: time.Since(solveStart)}, nil
}

// ForwardPush computes an approximate personalized PageRank vector for a
// single seed. It is the convenience form of Engine.SolvePPR, routing through
// the per-graph engine cache; callers that hold an engine (the serving layer)
// should call SolvePPR directly and also get the residual diagnostics.
func ForwardPush(t *Transition, seed int32, opts ForwardPushOptions) ([]float64, error) {
	if t.g.NumNodes() == 0 {
		return nil, ErrEmptyGraph
	}
	res, err := EngineFor(t.g).SolvePPR(t, seed, opts)
	if err != nil {
		return nil, err
	}
	return res.Scores, nil
}
