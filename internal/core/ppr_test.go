package core

import (
	"math"
	"math/rand"
	"testing"

	"d2pr/internal/graph"
)

// densePPR solves the personalized PageRank fixpoint
//
//	x = (1-α)·e_seed + α·(T·x + danglingMass·e_seed)
//
// by dense restart-vector power iteration, written independently of both the
// engine solver and the push solver: it walks the forward CSR directly and
// scatters x[u]·prob(u→v) per arc. The reference implementation for the
// SolvePPR property tests.
func densePPR(tr *Transition, seed int32, alpha float64) []float64 {
	g := tr.Graph()
	n := g.NumNodes()
	x := make([]float64, n)
	next := make([]float64, n)
	x[seed] = 1
	for iter := 0; iter < 2000; iter++ {
		for v := range next {
			next[v] = 0
		}
		var dangling float64
		for u := int32(0); int(u) < n; u++ {
			lo, hi := g.ArcRange(u)
			if lo == hi {
				dangling += x[u]
				continue
			}
			probs := tr.ProbsFrom(u)
			for k := lo; k < hi; k++ {
				next[g.ArcTarget(k)] += alpha * x[u] * probs[k-lo]
			}
		}
		next[seed] += (1 - alpha) + alpha*dangling
		var diff float64
		for v := range x {
			diff += math.Abs(next[v] - x[v])
		}
		x, next = next, x
		if diff < 1e-14 {
			break
		}
	}
	return x
}

// TestSolvePPRMatchesDense is the property test for the personalized path:
// across random graph shapes, seeds, and alphas, a tight-ε push solve must
// agree with the independent dense restart-vector solve within tolerance.
func TestSolvePPRMatchesDense(t *testing.T) {
	// Push work is Θ(1/((1-α)·ε)), so the property sweep bounds α at 0.9 and
	// uses ε=1e-8; per-node error scales with ε (empirically ≲ 10⁴·ε here).
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		g := skewedGraph(80+trial*40, uint64(100+trial))
		e := EngineFor(g)
		var tr *Transition
		if trial%2 == 0 {
			tr = Uniform(g)
		} else {
			tr = DegreeDecoupled(g, 0.5+rng.Float64())
		}
		alpha := 0.5 + 0.4*rng.Float64()
		seed := int32(rng.Intn(g.NumNodes()))
		exact := densePPR(tr, seed, alpha)
		res, err := e.SolvePPR(tr, seed, ForwardPushOptions{Alpha: alpha, Epsilon: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			if d := math.Abs(exact[v] - res.Scores[v]); d > 1e-4 {
				t.Fatalf("trial %d (α=%.3f, seed %d): node %d dense %v push %v (Δ=%v)",
					trial, alpha, seed, v, exact[v], res.Scores[v], d)
			}
		}
	}
}

// TestSolvePPRMassConservation checks the push invariant at every ε: each
// push moves (1-α)·r(u) into the estimate and α·r(u) back into residuals, so
// Σp̂ + Σr = 1 must hold exactly (up to rounding) no matter where the ε
// budget stops the solve.
func TestSolvePPRMassConservation(t *testing.T) {
	g := skewedGraph(400, 62)
	e := EngineFor(g)
	tr := Uniform(g)
	for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8} {
		res, err := e.SolvePPR(tr, 11, ForwardPushOptions{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range res.Scores {
			if v < 0 {
				t.Fatalf("ε=%g: negative estimate %v", eps, v)
			}
			sum += v
		}
		if res.ResidualMass < 0 {
			t.Fatalf("ε=%g: negative residual mass %v", eps, res.ResidualMass)
		}
		if total := sum + res.ResidualMass; math.Abs(total-1) > 1e-9 {
			t.Errorf("ε=%g: Σp + Σr = %v, want 1", eps, total)
		}
	}
}

// TestSolvePPREpsilonMonotone: shrinking ε can only shrink the un-pushed
// residual — the ε-residual budget is a real accuracy dial.
func TestSolvePPREpsilonMonotone(t *testing.T) {
	g := skewedGraph(300, 63)
	e := EngineFor(g)
	tr := Uniform(g)
	prev := math.Inf(1)
	for _, eps := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		res, err := e.SolvePPR(tr, 3, ForwardPushOptions{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidualMass > prev+1e-12 {
			t.Errorf("ε=%g: residual %v grew past coarser ε's %v", eps, res.ResidualMass, prev)
		}
		prev = res.ResidualMass
	}
	if prev > 1e-4 {
		t.Errorf("residual at ε=1e-8 still %v", prev)
	}
}

// TestSolvePPRMatchesSeededSolve: the push solve and the engine's power
// iteration with a seed teleport vector approximate the same fixpoint.
func TestSolvePPRMatchesSeededSolve(t *testing.T) {
	g := skewedGraph(250, 64)
	e := EngineFor(g)
	tr := DegreeDecoupled(g, 1.2)
	const seed = int32(9)
	exact, err := e.Solve(tr, Options{Tol: 1e-13, Teleport: seedVector(g.NumNodes(), seed)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SolvePPR(tr, seed, ForwardPushOptions{Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact.Scores {
		if d := math.Abs(exact.Scores[v] - res.Scores[v]); d > 1e-5 {
			t.Fatalf("node %d: solve %v push %v (Δ=%v)", v, exact.Scores[v], res.Scores[v], d)
		}
	}
}

// TestSolvePPRWarmAllocs: a warm per-seed solve must allocate only the
// returned result (scores + the result struct) — the residual vector, queue,
// and membership bits come from the engine pool.
func TestSolvePPRWarmAllocs(t *testing.T) {
	g := skewedGraph(800, 65)
	e := EngineFor(g)
	tr := Uniform(g)
	seeds := []int32{0, 17, 256, 755}
	// Warm the pool (and grow the queue to its high-water mark).
	for _, s := range seeds {
		if _, err := e.SolvePPR(tr, s, ForwardPushOptions{Epsilon: 1e-6}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		s := seeds[i%len(seeds)]
		i++
		if _, err := e.SolvePPR(tr, s, ForwardPushOptions{Epsilon: 1e-6}); err != nil {
			t.Fatal(err)
		}
	})
	// 2 = scores + result struct; allow slack for an occasional post-GC pool
	// refill, which is still far under the O(n) scratch a cold path builds.
	if allocs > 4 {
		t.Errorf("warm SolvePPR: %.1f allocs/run, want ≤ 4", allocs)
	}
}

func TestSolvePPRValidation(t *testing.T) {
	g := skewedGraph(10, 66)
	e := EngineFor(g)
	tr := Uniform(g)
	if _, err := e.SolvePPR(tr, -1, ForwardPushOptions{}); err == nil {
		t.Error("negative seed must error")
	}
	if _, err := e.SolvePPR(tr, 100, ForwardPushOptions{}); err == nil {
		t.Error("out-of-range seed must error")
	}
	if _, err := e.SolvePPR(tr, 0, ForwardPushOptions{Alpha: 1.5}); err == nil {
		t.Error("alpha ≥ 1 must error")
	}
	if _, err := e.SolvePPR(tr, 0, ForwardPushOptions{Epsilon: -1}); err == nil {
		t.Error("negative epsilon must error")
	}
	other := skewedGraph(10, 67)
	if _, err := e.SolvePPR(Uniform(other), 0, ForwardPushOptions{}); err == nil {
		t.Error("transition over a different graph must error")
	}
}

func TestEngineConnectionCached(t *testing.T) {
	// Weighted graph: the connection transition materializes per-arc
	// probabilities; the engine must build them once and share.
	g := graph.NewBuilder(graph.Undirected).Weighted().
		AddWeightedEdge(0, 1, 2).AddWeightedEdge(1, 2, 1).AddWeightedEdge(2, 0, 3).
		MustBuild()
	e := EngineFor(g)
	c1, c2 := e.Connection(), e.Connection()
	if c1 != c2 {
		t.Error("Connection must return the cached transition")
	}
	if err := c1.Validate(1e-12); err != nil {
		t.Error(err)
	}
}
