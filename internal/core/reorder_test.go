package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"d2pr/internal/graph"
)

// Tests for the locality relabeling (computeOrder) and its central contract:
// a relabeled engine is invisible — every solver returns bit-identical scores
// to an identity-ordered engine on the same graph.

func TestComputeOrderValidPermutation(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"skewed":   skewedGraph(300, 7),
		"powerlaw": powerLawGraph(t, 500, 6, 11),
	}
	// A disconnected graph with isolated and dangling nodes.
	b := graph.NewBuilder(graph.Directed).EnsureNodes(40)
	for i := int32(0); i < 15; i++ {
		b.AddEdge(i, (i+1)%15)
	}
	b.AddEdge(20, 21)
	b.AddEdge(22, 21)
	graphs["disconnected"] = b.MustBuild()

	for name, g := range graphs {
		origOf := computeOrder(g)
		if origOf == nil {
			continue // identity order is a valid outcome
		}
		n := g.NumNodes()
		if len(origOf) != n {
			t.Fatalf("%s: order has %d entries, want %d", name, len(origOf), n)
		}
		seen := make([]bool, n)
		for _, v := range origOf {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("%s: not a permutation: node %d repeated or out of range", name, v)
			}
			seen[v] = true
		}
	}
}

func TestComputeOrderDeterministic(t *testing.T) {
	g := powerLawGraph(t, 400, 7, 3)
	a := computeOrder(g)
	b := computeOrder(g)
	if (a == nil) != (b == nil) || len(a) != len(b) {
		t.Fatalf("repeat runs disagree: %d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeat runs disagree at position %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestComputeOrderHubsFront(t *testing.T) {
	// The hub-seeded BFS must pull high-degree nodes toward low permuted ids:
	// the top-degree decile's mean position must beat the global mean.
	g := skewedGraph(400, 13)
	origOf := computeOrder(g)
	if origOf == nil {
		t.Skip("identity order computed; nothing to check")
	}
	n := g.NumNodes()
	deg := make([]int, n)
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		deg[u] = int(hi - lo)
		for k := lo; k < hi; k++ {
			deg[g.ArcTarget(k)]++
		}
	}
	threshold := 0
	for _, d := range deg {
		if d > threshold {
			threshold = d
		}
	}
	threshold /= 2 // "hubs": within 2x of the max total degree
	var hubPos, hubCount float64
	for pos, v := range origOf {
		if deg[v] >= threshold {
			hubPos += float64(pos)
			hubCount++
		}
	}
	if hubCount == 0 {
		t.Fatal("no hubs found")
	}
	if mean := hubPos / hubCount; mean >= float64(n)/2 {
		t.Errorf("hub mean position %v not in front half of %d nodes", mean, n)
	}
}

// reorderTestGraphs are the topologies the invisibility tests sweep: hubs,
// dangling nodes, disconnected components, weighted arcs.
func reorderTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	gs := map[string]*graph.Graph{
		"skewed":   skewedGraph(250, 21),
		"powerlaw": powerLawGraph(t, 300, 5, 17),
		"weighted": randomWeighted(r, true),
	}
	b := graph.NewBuilder(graph.Directed).EnsureNodes(60)
	for i := int32(0); i < 40; i++ {
		if v := (i*7 + 3) % 40; v != i {
			b.AddEdge(i, v)
		}
		if i != 0 && (i*7+3)%40 != 0 {
			b.AddEdge(i, 0)
		}
	}
	b.AddEdge(50, 51) // 51 dangling, 52.. isolated
	gs["dangling"] = b.MustBuild()
	return gs
}

func TestReorderedEngineBitIdentical(t *testing.T) {
	// The tentpole invariant: relabeling is an internal layout choice. Power
	// iteration on a reordered engine must return byte-identical scores,
	// iteration counts, and convergence flags to the identity-ordered
	// engine, for the uniform, factored (D2PR), and per-arc transitions.
	for name, g := range reorderTestGraphs(t) {
		reordered := NewEngine(g)
		identity := newEngineIdentity(g)
		if reordered.origOf == nil {
			t.Logf("%s: order is identity; test degenerates", name)
		}
		transitions := map[string]*Transition{
			"uniform":  Uniform(g),
			"factored": DegreeDecoupled(g, 1.25),
			"arcprobs": ConnectionStrength(g),
		}
		if transitions["factored"].rowFactor == nil {
			t.Fatalf("%s: DegreeDecoupled(1.25) unexpectedly not factored", name)
		}
		for trName, tr := range transitions {
			opts := Options{Tol: 1e-12}
			a, err := reordered.Solve(tr, opts)
			if err != nil {
				t.Fatalf("%s/%s: reordered solve: %v", name, trName, err)
			}
			b, err := identity.Solve(tr, opts)
			if err != nil {
				t.Fatalf("%s/%s: identity solve: %v", name, trName, err)
			}
			if a.Iterations != b.Iterations || a.Converged != b.Converged {
				t.Fatalf("%s/%s: iterations %d/%v vs %d/%v", name, trName,
					a.Iterations, a.Converged, b.Iterations, b.Converged)
			}
			for i := range a.Scores {
				if a.Scores[i] != b.Scores[i] {
					t.Fatalf("%s/%s: score[%d] differs: %v vs %v", name, trName, i, a.Scores[i], b.Scores[i])
				}
			}
		}
	}
}

func TestReorderedGaussSeidelBitIdentical(t *testing.T) {
	// Gauss–Seidel's result depends on update order, so the permuted engine
	// sweeps through permOf in original id order — making it, too,
	// bit-identical to the identity engine.
	for name, g := range reorderTestGraphs(t) {
		reordered := NewEngine(g)
		identity := newEngineIdentity(g)
		tr := DegreeDecoupled(g, 0.75)
		opts := Options{Tol: 1e-12}
		ra := &Result{}
		rb := &Result{}
		fa, da := reordered.flowOf(tr)
		xa := make([]float64, g.NumNodes())
		sa := make([]float64, g.NumNodes())
		teleA := make([]float64, g.NumNodes())
		optsA, err := opts.withDefaults(g.NumNodes())
		if err != nil {
			t.Fatal(err)
		}
		teleportPermuted(optsA, teleA, reordered.permOf)
		copy(xa, teleA)
		if err := gsLoop(context.Background(), reordered, fa.probs, xa, sa, teleA, fa.rowFactor, fa.srcScale, optsA, ra, 1); err != nil {
			t.Fatal(err)
		}
		if da != nil {
			da()
		}
		fb, db := identity.flowOf(tr)
		xb := make([]float64, g.NumNodes())
		sb := make([]float64, g.NumNodes())
		teleB := make([]float64, g.NumNodes())
		teleportPermuted(optsA, teleB, identity.permOf)
		copy(xb, teleB)
		if err := gsLoop(context.Background(), identity, fb.probs, xb, sb, teleB, fb.rowFactor, fb.srcScale, optsA, rb, 1); err != nil {
			t.Fatal(err)
		}
		if db != nil {
			db()
		}
		if ra.Iterations != rb.Iterations {
			t.Fatalf("%s: sweeps %d vs %d", name, ra.Iterations, rb.Iterations)
		}
		sca := materializeScores(xa, reordered.permOf)
		scb := materializeScores(xb, identity.permOf)
		for i := range sca {
			if sca[i] != scb[i] {
				t.Fatalf("%s: score[%d] differs: %v vs %v", name, i, sca[i], scb[i])
			}
		}
	}
}

func TestReorderedTopKAndCacheKeyStable(t *testing.T) {
	// Downstream artifacts — rankings and cache keys — cannot depend on the
	// layout either. (Cache keys never see the engine, but the assertion
	// pins the contract the serving layer relies on.)
	g := skewedGraph(200, 5)
	tr := DegreeDecoupled(g, 1)
	opts := Options{Tol: 1e-12}
	a, err := NewEngine(g).Solve(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newEngineIdentity(g).Solve(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := topIndices(a.Scores, 10), topIndices(b.Scores, 10)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("top-k differs at %d: %d vs %d", i, ta[i], tb[i])
		}
	}
	if ka, kb := opts.CacheKey(), opts.CacheKey(); ka != kb {
		t.Fatalf("cache key unstable: %q vs %q", ka, kb)
	}
}

func topIndices(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] ||
				(scores[idx[j]] == scores[idx[best]] && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:min(k, len(idx))]
}

func TestFactoredMatchesArcProbsSolve(t *testing.T) {
	// The rank-1 factored D2PR kernel reassociates the per-row arithmetic
	// (factor[v]·Σ cur·scale vs Σ prob·cur), so it is tolerance-equal — not
	// bit-equal — to the per-arc path. Force the per-arc path by wrapping
	// the materialized probabilities in a plain transition.
	for name, g := range reorderTestGraphs(t) {
		for _, p := range []float64{-1.5, 0.5, 1, 2.5} {
			tr := DegreeDecoupled(g, p)
			if tr.rowFactor == nil {
				t.Fatalf("%s: p=%v not factored", name, p)
			}
			arcs := &Transition{g: g, probs: tr.arcProbs()}
			opts := Options{Tol: 1e-14}
			a, err := Solve(tr, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Solve(arcs, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Scores {
				if d := math.Abs(a.Scores[i] - b.Scores[i]); d > 1e-12 {
					t.Fatalf("%s p=%v: score[%d] differs by %v", name, p, i, d)
				}
			}
		}
	}
}

func TestFactoredFallbackExtremeP(t *testing.T) {
	// At extreme p the unshifted factor table under/overflows; the build
	// must fall back to the stable shifted per-arc form and still validate.
	g := skewedGraph(150, 31)
	for _, p := range []float64{400, -400} {
		tr := DegreeDecoupled(g, p)
		if tr.rowFactor != nil {
			t.Fatalf("p=%v: expected shifted fallback, got factored form", p)
		}
		if err := tr.Validate(1e-9); err != nil {
			t.Fatalf("p=%v: fallback transition invalid: %v", p, err)
		}
		if _, err := Solve(tr, Options{Tol: 1e-10}); err != nil {
			t.Fatalf("p=%v: solve: %v", p, err)
		}
	}
}

func TestFactoredLazyArcProbs(t *testing.T) {
	// A factored transition materializes per-arc probabilities only on
	// demand, and the materialized view must match the pre-factorization
	// (shifted) build bit for bit.
	g := skewedGraph(100, 9)
	tr := DegreeDecoupled(g, 1.5)
	if tr.rowFactor == nil {
		t.Fatal("not factored")
	}
	if tr.probs != nil {
		t.Fatal("probs materialized eagerly")
	}
	want := make([]float64, g.NumArcs())
	decoupledProbs(g, 1.5, logThetaTable(g), want)
	got := tr.arcProbs()
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("arc %d: %v != %v", k, got[k], want[k])
		}
	}
}
