// Package core implements the ranking algorithms of the reproduction: the
// power-iteration solver, classic and personalized PageRank, the paper's
// degree de-coupled PageRank (D2PR) in its undirected, directed, and weighted
// (β-blended) forms, the degree-biased-teleportation alternative from the
// related work, and the baseline significance measures (degree, HITS,
// closeness, betweenness, Monte-Carlo hitting time) the paper positions
// itself against.
//
// All algorithms operate on *graph.Graph CSR graphs and share one fixpoint:
//
//	r = α·T·r + (1-α)·t
//
// where T is a column-stochastic transition built by this package, t is the
// teleportation distribution, and α the residual probability. Dangling nodes
// (no out-arcs) re-distribute their walk mass to t, keeping Σr = 1 exactly.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"
)

// Default solver parameters. The paper's default residual probability is
// α = 0.85 (§4.1).
const (
	DefaultAlpha   = 0.85
	DefaultTol     = 1e-10
	DefaultMaxIter = 500
)

// Options configures the power-iteration solver shared by every ranker in
// this package. The zero value is usable: it means α=0.85, tol=1e-10,
// 500 iterations max, uniform teleportation, and sequential execution.
type Options struct {
	// Alpha is the residual probability (probability of following an edge
	// rather than teleporting). 0 means DefaultAlpha. Must lie in [0, 1).
	Alpha float64
	// Tol is the L1 convergence threshold. 0 means DefaultTol.
	Tol float64
	// MaxIter bounds the number of power iterations. 0 means DefaultMaxIter.
	MaxIter int
	// Teleport is the personalization distribution t. nil means uniform.
	// It must have one entry per node, all non-negative, summing to a
	// positive value (it is normalized internally).
	Teleport []float64
	// Workers sets the number of goroutines used for the edge sweep.
	// 0 means sequential; -1 means GOMAXPROCS.
	Workers int
	// Float32 selects the float32 score tier: score, teleport, and scratch
	// vectors are stored as float32, halving the memory bandwidth of every
	// per-node and per-arc stream. Residual norms and per-row accumulation
	// stay in float64, so the error versus the float64 tier is bounded by
	// storage rounding — ~1e-6 absolute per score in practice. Tol is
	// clamped up to Float32MinTol (the float32 residual floor); scores still
	// sum to 1 and the returned Result.Scores is always []float64. Opt-in:
	// serving workloads that rank by score order tolerate it, numerical
	// consumers should keep the default tier.
	Float32 bool
	// Hybrid enables the adaptive hybrid solver: iterations start as
	// parallel Jacobi power sweeps, and once the active-residual frontier —
	// the nodes still moving by more than Tol/n per iteration — shrinks
	// below n/8, the convergence tail switches to sequential Gauss–Seidel
	// sweeps, which propagate fresh values within a sweep and finish the
	// tail in far fewer passes. The solve converges to the same fixpoint
	// within Tol, so (like Workers) Hybrid does not participate in
	// Options.CacheKey. Result.HybridSwitch and Result.GSSweeps report
	// whether and when the switch happened.
	Hybrid bool
}

// Float32MinTol is the effective lower bound on Tol in Float32 mode: an L1
// residual below ~n·ε_f32 can never be observed from float32-stored iterates,
// so demanding the float64 default 1e-10 would spin to MaxIter.
const Float32MinTol = 1e-6

// withDefaults returns a copy of o with zero fields replaced by defaults and
// validates the result for a graph with n nodes.
func (o Options) withDefaults(n int) (Options, error) {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha < 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("core: alpha %v out of range [0, 1)", o.Alpha)
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.Tol < 0 {
		return o, fmt.Errorf("core: negative tolerance %v", o.Tol)
	}
	if o.Float32 && o.Tol < Float32MinTol {
		o.Tol = Float32MinTol
	}
	if o.MaxIter == 0 {
		o.MaxIter = DefaultMaxIter
	}
	if o.MaxIter < 0 {
		return o, fmt.Errorf("core: negative MaxIter %d", o.MaxIter)
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Teleport != nil {
		if len(o.Teleport) != n {
			return o, fmt.Errorf("core: teleport vector has %d entries for %d nodes", len(o.Teleport), n)
		}
		var s float64
		for i, v := range o.Teleport {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return o, fmt.Errorf("core: teleport[%d] = %v is invalid", i, v)
			}
			s += v
		}
		if s <= 0 {
			return o, errors.New("core: teleport vector sums to zero")
		}
	}
	return o, nil
}

// teleportInto writes the normalized teleport distribution into t (length n,
// caller-provided so the solver can recycle the buffer).
func (o Options) teleportInto(t []float64) {
	if o.Teleport == nil {
		u := 1 / float64(len(t))
		for i := range t {
			t[i] = u
		}
		return
	}
	var s float64
	for _, v := range o.Teleport {
		s += v
	}
	for i, v := range o.Teleport {
		t[i] = v / s
	}
}

// Result reports the outcome of a power-iteration solve.
type Result struct {
	// Scores is the stationary distribution; it sums to 1.
	Scores []float64
	// Iterations is the number of iterations performed.
	Iterations int
	// Converged reports whether the L1 residual dropped below Tol before
	// MaxIter was reached.
	Converged bool
	// Residual is the final L1 difference between successive iterates.
	Residual float64
	// Elapsed is the wall-clock time of the iteration loop, recorded by the
	// solver so serving-layer telemetry never needs to wrap a solve call in
	// its own timer.
	Elapsed time.Duration
	// HybridSwitch is the power iteration after which an Options.Hybrid
	// solve handed the tail to Gauss–Seidel; 0 when no switch happened.
	HybridSwitch int
	// GSSweeps counts Gauss–Seidel sweeps: all of them for SolveGaussSeidel,
	// the tail sweeps for a hybrid solve, 0 for pure power iteration.
	// Iterations always counts both kinds.
	GSSweeps int
}

// ErrEmptyGraph is returned when a ranker is asked to rank a graph with no
// nodes.
var ErrEmptyGraph = errors.New("core: graph has no nodes")
