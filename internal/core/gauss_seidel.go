package core

import "math"

// SolveGaussSeidel solves the same fixpoint as Solve with in-place
// Gauss–Seidel sweeps: each node update immediately uses the freshest scores
// of its in-neighbors. Whether that beats Jacobi power iteration depends on
// the node ordering relative to the graph: on the directed citation graphs
// in this module (arcs point to lower ids, so every in-neighbor is fresh by
// the time a node updates) it converges in a fraction of the sweeps, while
// on undirected hub-heavy graphs it can need more sweeps than Jacobi —
// `BenchmarkAblationGaussSeidel` measures both. It exists as the ablation
// partner for the solver choice, not as a default.
//
// The method is inherently sequential, so Options.Workers is ignored.
// Dangling-node handling and the teleport distribution match Solve exactly;
// both solvers converge to the same vector (within tolerance), which
// TestGaussSeidelMatchesPowerIteration asserts.
func SolveGaussSeidel(t *Transition, opts Options) (*Result, error) {
	n := t.g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	f := newFlow(t)
	tele := opts.teleportDist(n)

	x := make([]float64, n)
	copy(x, tele)
	res := &Result{}
	isDangling := make([]bool, n)
	for _, d := range f.dangling {
		isDangling[d] = true
	}
	// Track the dangling mass incrementally: recomputing it per node would
	// be O(n·|dangling|).
	var danglingMass float64
	for _, d := range f.dangling {
		danglingMass += x[d]
	}
	update := func(v int) float64 {
		lo, hi := f.offsets[v], f.offsets[v+1]
		var acc float64
		for k := lo; k < hi; k++ {
			acc += f.probs[k] * x[f.sources[k]]
		}
		nv := opts.Alpha*acc + (opts.Alpha*danglingMass+1-opts.Alpha)*tele[v]
		d := nv - x[v]
		if isDangling[v] {
			danglingMass += d
		}
		x[v] = nv
		return math.Abs(d)
	}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// Alternate the sweep direction: whichever way the graph's natural
		// ordering points (citation DAGs point at lower ids, BFS orders at
		// higher ones), every second sweep runs "with the grain" and uses
		// fresh in-neighbor values.
		var diff float64
		if iter%2 == 1 {
			for v := n - 1; v >= 0; v-- {
				diff += update(v)
			}
		} else {
			for v := 0; v < n; v++ {
				diff += update(v)
			}
		}
		res.Iterations = iter
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
	}
	// Gauss–Seidel sweeps do not preserve the L1 norm mid-stream;
	// renormalize exactly as Solve does.
	var sum float64
	for _, v := range x {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range x {
			x[i] *= inv
		}
	}
	res.Scores = x
	return res, nil
}
