package core

import (
	"context"
	"fmt"
	"math"
	"time"
)

// SolveGaussSeidel solves the same fixpoint as Solve with in-place
// Gauss–Seidel sweeps: each node update immediately uses the freshest scores
// of its in-neighbors. Whether that beats Jacobi power iteration depends on
// the node ordering relative to the graph: on the directed citation graphs
// in this module (arcs point to lower ids, so every in-neighbor is fresh by
// the time a node updates) it converges in a fraction of the sweeps, while
// on undirected hub-heavy graphs it can need more sweeps than Jacobi —
// `BenchmarkAblationGaussSeidel` measures both. It exists as the ablation
// partner for the solver choice, not as a default.
//
// The pull topology comes from the per-graph engine cache, the same one
// Solve and SweepSolver use, so alternating between solvers on one graph
// never re-transposes it; uniform transitions run off the cached 1/outdeg
// table with no per-arc probabilities.
//
// The method is inherently sequential, so Options.Workers is ignored.
// Dangling-node handling and the teleport distribution match Solve exactly;
// both solvers converge to the same vector (within tolerance), which
// TestGaussSeidelMatchesPowerIteration asserts.
func SolveGaussSeidel(t *Transition, opts Options) (*Result, error) {
	return SolveGaussSeidelContext(context.Background(), t, opts)
}

// SolveGaussSeidelContext is SolveGaussSeidel with cancellation: ctx is
// polled once per sweep, and a cancelled solve aborts with the context's
// error wrapped with sweep progress instead of running to convergence.
func SolveGaussSeidelContext(ctx context.Context, t *Transition, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := t.g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	e := EngineFor(t.g)

	var probs []float64
	var probsp *[]float64
	if !t.uniform {
		probsp = e.getM()
		probs = *probsp
		src := t.arcProbs()
		for k, pos := range e.perm {
			probs[pos] = src[k]
		}
	}
	telep := e.getN()
	tele := *telep
	opts.teleportInto(tele)

	x := make([]float64, n) // escapes as Result.Scores
	copy(x, tele)
	// For the implicit uniform transition, scaled mirrors x[u]/outdeg(u)
	// and is refreshed on every write to x.
	var scaled []float64
	var scaledp *[]float64
	if probs == nil {
		scaledp = e.getN()
		scaled = *scaledp
		for u := 0; u < n; u++ {
			scaled[u] = x[u] * e.invOut[u]
		}
	}

	res := &Result{}
	solveStart := time.Now()
	// Track the dangling mass incrementally: recomputing it per node would
	// be O(n·|dangling|). invOut[v] == 0 identifies dangling nodes.
	var danglingMass float64
	for _, d := range e.dangling {
		danglingMass += x[d]
	}
	update := func(v int) float64 {
		lo, hi := e.offsets[v], e.offsets[v+1]
		var acc float64
		if probs == nil {
			for k := lo; k < hi; k++ {
				acc += scaled[e.sources[k]]
			}
		} else {
			for k := lo; k < hi; k++ {
				acc += probs[k] * x[e.sources[k]]
			}
		}
		nv := opts.Alpha*acc + (opts.Alpha*danglingMass+1-opts.Alpha)*tele[v]
		d := nv - x[v]
		if e.invOut[v] == 0 {
			danglingMass += d
		} else if probs == nil {
			scaled[v] = nv * e.invOut[v]
		}
		x[v] = nv
		return math.Abs(d)
	}
	var cancelErr error
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			cancelErr = fmt.Errorf("core: gauss-seidel solve aborted after %d/%d sweeps: %w", res.Iterations, opts.MaxIter, err)
			break
		}
		// Alternate the sweep direction: whichever way the graph's natural
		// ordering points (citation DAGs point at lower ids, BFS orders at
		// higher ones), every second sweep runs "with the grain" and uses
		// fresh in-neighbor values.
		var diff float64
		if iter%2 == 1 {
			for v := n - 1; v >= 0; v-- {
				diff += update(v)
			}
		} else {
			for v := 0; v < n; v++ {
				diff += update(v)
			}
		}
		res.Iterations = iter
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.Elapsed = time.Since(solveStart)
	if cancelErr == nil {
		// Gauss–Seidel sweeps do not preserve the L1 norm mid-stream;
		// renormalize exactly as Solve does.
		var sum float64
		for _, v := range x {
			sum += v
		}
		if sum > 0 {
			inv := 1 / sum
			for i := range x {
				x[i] *= inv
			}
		}
		res.Scores = x
	}
	e.putN(telep)
	if scaledp != nil {
		e.putN(scaledp)
	}
	if probsp != nil {
		e.putM(probsp)
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return res, nil
}
