package core

import (
	"context"
	"fmt"
	"math"
	"time"
)

// SolveGaussSeidel solves the same fixpoint as Solve with in-place
// Gauss–Seidel sweeps: each node update immediately uses the freshest scores
// of its in-neighbors. Whether that beats Jacobi power iteration depends on
// the node ordering relative to the graph: when the sweep order runs "with
// the grain" of the arcs (so in-neighbors are fresh by the time a node
// updates) it converges in a fraction of the sweeps, while against the grain
// it can need more sweeps than Jacobi — `BenchmarkAblationGaussSeidel`
// measures both. It exists as the ablation partner for the solver choice and
// as the convergence tail of Options.Hybrid, not as a standalone default.
//
// Sweeps run in the engine's permuted (locality-relabeled) id space like
// every other solver here; because Gauss–Seidel's result depends on update
// order, its scores match Solve's only within Tol, not bit-for-bit — which
// has always been its contract (TestGaussSeidelMatchesPowerIteration).
//
// The pull topology comes from the per-graph engine cache, the same one
// Solve and SweepSolver use, so alternating between solvers on one graph
// never re-transposes it; uniform transitions run off the cached 1/outdeg
// table with no per-arc probabilities.
//
// The method is inherently sequential, so Options.Workers is ignored, and it
// always runs in the float64 tier (Options.Float32 is ignored too).
// Dangling-node handling and the teleport distribution match Solve exactly;
// both solvers converge to the same vector (within tolerance), which
// TestGaussSeidelMatchesPowerIteration asserts.
func SolveGaussSeidel(t *Transition, opts Options) (*Result, error) {
	return SolveGaussSeidelContext(context.Background(), t, opts)
}

// SolveGaussSeidelContext is SolveGaussSeidel with cancellation: ctx is
// polled once per sweep, and a cancelled solve aborts with the context's
// error wrapped with sweep progress instead of running to convergence.
func SolveGaussSeidelContext(ctx context.Context, t *Transition, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := t.g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	e := EngineFor(t.g)

	f, done := e.flowOf(t)
	telep := getNT[float64](e)
	tele := *telep
	teleportPermuted(opts, tele, e.permOf)

	xp := getNT[float64](e)
	x := *xp
	copy(x, tele)
	var scaled []float64
	var scaledp *[]float64
	if f.probs == nil {
		scaledp = getNT[float64](e)
		scaled = *scaledp
	}

	res := &Result{}
	solveStart := time.Now()
	cancelErr := gsLoop(ctx, e, f.probs, x, scaled, tele, f.rowFactor, f.srcScale, opts, res, 1)
	res.Elapsed = time.Since(solveStart)
	if cancelErr == nil {
		res.Scores = materializeScores(x, e.permOf)
	}
	putNT(e, telep)
	putNT(e, xp)
	if scaledp != nil {
		putNT(e, scaledp)
	}
	if done != nil {
		done()
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return res, nil
}

// gsLoop runs Gauss–Seidel sweeps over the engine's permuted pull CSR until
// convergence, MaxIter, or cancellation, updating res in place. x is the
// iterate (modified in place); with probs == nil the transition is per-node —
// rank-1 factored when rowFactor/srcScale (permuted space) are set, the
// implicit uniform one otherwise — and scaled (same length) is used as the
// x[u]·srcScale[u] mirror; gsLoop initializes it from x, so callers hand it
// over uninitialized. startIter numbers the first sweep, letting the hybrid
// solver continue the shared iteration budget where power iteration left off.
//
// Shared by SolveGaussSeidel (float64, startIter 1) and the Options.Hybrid
// convergence tail (either tier, resuming mid-solve).
func gsLoop[T float32or64](ctx context.Context, e *Engine, probs, x, scaled, tele []T, rowFactor, srcScale []float64, opts Options, res *Result, startIter int) error {
	n := e.n
	offsets, sources := e.pullOffsets, e.pullSources
	if srcScale == nil {
		srcScale = e.invOutP
	}
	// Track the dangling mass incrementally: recomputing it per node would
	// be O(n·|dangling|). srcScale[v] == 0 identifies dangling nodes (true
	// for the 1/outdeg table and the factored reciprocal sums alike).
	var danglingMass float64
	for _, d := range e.dangling {
		danglingMass += float64(x[d])
	}
	if probs == nil {
		for u := 0; u < n; u++ {
			scaled[u] = T(float64(x[u]) * srcScale[u])
		}
	}
	update := func(v int) float64 {
		lo, hi := offsets[v], offsets[v+1]
		var acc float64
		if probs == nil {
			for k := lo; k < hi; k++ {
				acc += float64(scaled[sources[k]])
			}
			if rowFactor != nil {
				acc *= rowFactor[v]
			}
		} else {
			for k := lo; k < hi; k++ {
				acc += float64(probs[k]) * float64(x[sources[k]])
			}
		}
		nv := opts.Alpha*acc + (opts.Alpha*danglingMass+1-opts.Alpha)*float64(tele[v])
		d := nv - float64(x[v])
		if srcScale[v] == 0 {
			danglingMass += d
		} else if probs == nil {
			scaled[v] = T(nv * srcScale[v])
		}
		x[v] = T(nv)
		return math.Abs(d)
	}
	for iter := startIter; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: gauss-seidel solve aborted after %d/%d sweeps: %w", res.Iterations, opts.MaxIter, err)
		}
		// Alternate the sweep direction: whichever way the graph's natural
		// ordering points (citation DAGs point at lower ids, BFS orders at
		// higher ones), every second sweep runs "with the grain" and uses
		// fresh in-neighbor values. Nodes are visited in ORIGINAL id order —
		// Gauss–Seidel's convergence rate and result both depend on update
		// order, so sweeping through permOf keeps the grain argument (and
		// the scores, bit for bit) identical to an unpermuted engine; the
		// per-node indirection is noise against the per-arc work.
		var diff float64
		permOf := e.permOf
		if iter%2 == 1 {
			if permOf == nil {
				for v := n - 1; v >= 0; v-- {
					diff += update(v)
				}
			} else {
				for i := n - 1; i >= 0; i-- {
					diff += update(int(permOf[i]))
				}
			}
		} else {
			if permOf == nil {
				for v := 0; v < n; v++ {
					diff += update(v)
				}
			} else {
				for i := 0; i < n; i++ {
					diff += update(int(permOf[i]))
				}
			}
		}
		res.Iterations = iter
		res.GSSweeps++
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
	}
	return nil
}
