package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"d2pr/internal/graph"
)

// Engine is the per-graph solver substrate: the pull-oriented transpose of
// the graph (offsets, sources, dangling set), the permutation mapping each
// forward-CSR arc to its pull position, and the per-node 1/outdeg table that
// lets uniform (p = 0) transitions run with no per-arc probability array at
// all. Building it costs one counting-sort transpose — the O(m) work the
// seed solver repeated on every Solve; an Engine pays it once and every
// subsequent solve over the same graph only fills (or skips) a probability
// buffer.
//
// The engine also owns the solve-time scratch: score/next/teleport/probability
// buffers are recycled through sync.Pools, so a warm solve allocates nothing
// proportional to the graph beyond the returned score vector, and the
// parallel sweep runs on a process-wide pool of persistent workers instead of
// spawning goroutines every iteration.
//
// An Engine is immutable after construction and safe for concurrent use.
type Engine struct {
	g *graph.Graph
	n int

	// buildTime is how long the counting-sort transpose took — the one-off
	// cost a cold graph pays before its first solve, surfaced through
	// telemetry so "first request on a graph is slow" is attributable.
	buildTime time.Duration

	// Pull topology: arcs into v are flow positions offsets[v]..offsets[v+1],
	// sources[pos] is the origin node, and perm[k] is the flow position of
	// forward-CSR arc k (so transition probabilities scatter in one pass).
	offsets  []int64
	sources  []int32
	dangling []int32
	perm     []int64

	// invOut[u] = 1/outdeg(u) (0 for dangling nodes): the implicit uniform
	// transition. invOut[u] == 0 also doubles as the dangling test.
	invOut []float64

	nbuf sync.Pool // *[]float64 of length n (scores, teleport, scaled)
	mbuf sync.Pool // *[]float64 of length NumArcs (flow-ordered probabilities)

	// pprbuf recycles *pprScratch (residuals, queue, membership bits) across
	// SolvePPR calls; see push.go.
	pprbuf sync.Pool

	// connOnce/conn lazily cache the graph's connection-strength transition
	// (= Uniform for unweighted graphs), so per-seed PPR requests never
	// rebuild the O(arcs) probability array.
	connOnce sync.Once
	conn     *Transition
}

// NewEngine builds the pull topology for g. Prefer EngineFor, which caches
// engines per graph; NewEngine exists for callers that manage the lifetime
// themselves.
func NewEngine(g *graph.Graph) *Engine {
	buildStart := time.Now()
	n := g.NumNodes()
	e := &Engine{
		g:       g,
		n:       n,
		offsets: make([]int64, n+1),
		sources: make([]int32, g.NumArcs()),
		perm:    make([]int64, g.NumArcs()),
		invOut:  make([]float64, n),
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			e.dangling = append(e.dangling, u)
			continue
		}
		e.invOut[u] = 1 / float64(hi-lo)
		for k := lo; k < hi; k++ {
			e.offsets[g.ArcTarget(k)+1]++
		}
	}
	for v := 0; v < n; v++ {
		e.offsets[v+1] += e.offsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, e.offsets[:n])
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		for k := lo; k < hi; k++ {
			v := g.ArcTarget(k)
			pos := cursor[v]
			cursor[v]++
			e.sources[pos] = u
			e.perm[k] = pos
		}
	}
	e.buildTime = time.Since(buildStart)
	return e
}

// Graph returns the graph the engine was built for.
func (e *Engine) Graph() *graph.Graph { return e.g }

// BuildTime returns how long the pull-topology transpose took at
// construction.
func (e *Engine) BuildTime() time.Duration { return e.buildTime }

// Connection returns the engine's cached connection-strength transition —
// conventional (weighted) PageRank's transition, the one per-seed PPR serves.
// For unweighted graphs it is the implicit Uniform transition and costs
// nothing; for weighted graphs the per-arc array is built once per engine.
func (e *Engine) Connection() *Transition {
	e.connOnce.Do(func() { e.conn = ConnectionStrength(e.g) })
	return e.conn
}

// engineCacheCap bounds the process-wide engine cache. Serving deployments
// keep engines alive through registry snapshots anyway; the global cache
// covers library callers (Solve, SolveGaussSeidel, NewSweepSolver) without
// pinning every graph a test run ever builds.
const engineCacheCap = 16

var (
	engineMu    sync.Mutex
	engineCache []*Engine // most-recently-used first
)

// EngineFor returns the cached engine for g, building one on first use.
// Identity is pointer identity on the graph — graphs are immutable, so one
// *graph.Graph has one topology. The cache keeps the engineCacheCap
// most-recently-used engines; long-lived callers that must never rebuild
// should hold the returned *Engine (the registry's snapshots do).
func EngineFor(g *graph.Graph) *Engine {
	engineMu.Lock()
	for i, e := range engineCache {
		if e.g == g {
			copy(engineCache[1:i+1], engineCache[:i])
			engineCache[0] = e
			engineMu.Unlock()
			return e
		}
	}
	engineMu.Unlock()
	// Build outside the lock: the transpose is O(m) and must not serialize
	// unrelated solves. Two racing builders may both build; one wins the
	// cache slot and the loser's engine still works.
	e := NewEngine(g)
	engineMu.Lock()
	defer engineMu.Unlock()
	for i, cached := range engineCache {
		if cached.g == g {
			copy(engineCache[1:i+1], engineCache[:i])
			engineCache[0] = cached
			return cached
		}
	}
	engineCache = append(engineCache, nil)
	copy(engineCache[1:], engineCache)
	engineCache[0] = e
	if len(engineCache) > engineCacheCap {
		engineCache[engineCacheCap] = nil // release the evicted engine
		engineCache = engineCache[:engineCacheCap]
	}
	return e
}

// Solve runs power iteration for t over the cached topology. t must be a
// transition over the engine's graph. Uniform transitions take the implicit
// 1/outdeg path: no per-arc probability array is read, written, or allocated.
func (e *Engine) Solve(t *Transition, opts Options) (*Result, error) {
	return e.SolveContext(context.Background(), t, opts)
}

// SolveContext is Solve with cancellation: ctx is checked once per iteration
// (between sweep barriers on the parallel path), and a cancelled or expired
// context aborts the solve with the context's error wrapped in iteration
// progress. The serving layer routes every interactive solve through this so
// a disconnected client or an expired request deadline stops burning cores
// within one iteration.
func (e *Engine) SolveContext(ctx context.Context, t *Transition, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.g != e.g {
		return nil, fmt.Errorf("core: transition over %v does not match engine graph %v", t.g, e.g)
	}
	if e.n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(e.n)
	if err != nil {
		return nil, err
	}
	if t.uniform {
		return e.power(ctx, nil, opts, true)
	}
	pp := e.getM()
	probs := *pp
	src := t.arcProbs()
	for k, pos := range e.perm {
		probs[pos] = src[k]
	}
	res, err := e.power(ctx, probs, opts, true)
	e.putM(pp)
	return res, err
}

// getN returns a pooled length-n buffer (contents unspecified).
func (e *Engine) getN() *[]float64 {
	if p, ok := e.nbuf.Get().(*[]float64); ok {
		return p
	}
	s := make([]float64, e.n)
	return &s
}

func (e *Engine) putN(p *[]float64) { e.nbuf.Put(p) }

// getM returns a pooled length-NumArcs buffer (contents unspecified).
func (e *Engine) getM() *[]float64 {
	if p, ok := e.mbuf.Get().(*[]float64); ok {
		return p
	}
	s := make([]float64, len(e.sources))
	return &s
}

func (e *Engine) putM(p *[]float64) { e.mbuf.Put(p) }

// power is the power-iteration core. probs holds the transition in flow
// order, or nil for the implicit uniform transition. opts must already have
// defaults applied. arcBalanced selects the parallel partitioning strategy
// (the node-balanced split is kept only as the benchmark baseline).
//
// ctx is polled once per iteration, before the sweep — on the parallel path
// that is the point right after the previous iteration's segment barrier, so
// no worker is ever abandoned mid-segment. The check is one atomic-free
// ctx.Err() call against an iteration that sweeps every arc; its cost on the
// warm path is measured by BenchmarkCoreSolveCancelOverhead (<1%).
func (e *Engine) power(ctx context.Context, probs []float64, opts Options, arcBalanced bool) (*Result, error) {
	n := e.n
	telep := e.getN()
	tele := *telep
	opts.teleportInto(tele)

	cur := make([]float64, n) // escapes as Result.Scores; everything else is pooled
	copy(cur, tele)
	nextp := e.getN()
	next := *nextp

	var scaled []float64
	var scaledp *[]float64
	if probs == nil {
		scaledp = e.getN()
		scaled = *scaledp
	}

	workers := opts.Workers
	if workers > n {
		workers = n
	}
	var st *sweepState
	if workers > 1 {
		var bounds []int32
		if arcBalanced {
			bounds = e.partitionArcs(workers)
		} else {
			bounds = partitionNodes(n, workers)
		}
		st = &sweepState{e: e, probs: probs, tele: tele, scaled: scaled, bounds: bounds}
	}

	res := &Result{}
	solveStart := time.Now()
	var cancelErr error
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			cancelErr = fmt.Errorf("core: solve aborted after %d/%d iterations: %w", res.Iterations, opts.MaxIter, err)
			break
		}
		// Mass on dangling nodes flows back through the teleport
		// distribution, keeping the chain stochastic.
		var dangling float64
		for _, d := range e.dangling {
			dangling += cur[d]
		}
		base := opts.Alpha * dangling // multiplied by tele[v] per node

		if probs == nil {
			// Implicit uniform transition: pre-scale once per iteration so
			// the sweep reads one float per arc instead of two.
			inv := e.invOut
			for u := 0; u < n; u++ {
				scaled[u] = cur[u] * inv[u]
			}
		}
		if st != nil {
			st.cur, st.next = cur, next
			st.alpha, st.base = opts.Alpha, base
			st.run()
		} else {
			e.sweepRange(probs, cur, scaled, next, tele, opts.Alpha, base, 0, n)
		}

		var diff float64
		for v := 0; v < n; v++ {
			diff += math.Abs(next[v] - cur[v])
		}
		cur, next = next, cur
		res.Iterations = iter
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
	}
	res.Elapsed = time.Since(solveStart)
	if cancelErr == nil {
		// Exact renormalization guards against drift over hundreds of
		// iterations.
		var sum float64
		for _, v := range cur {
			sum += v
		}
		if sum > 0 {
			inv := 1 / sum
			for i := range cur {
				cur[i] *= inv
			}
		}
		res.Scores = cur
	}
	// cur/next may have swapped an odd number of times; whichever length-n
	// buffer did not become the result goes back to the pool.
	*nextp = next
	e.putN(nextp)
	e.putN(telep)
	if scaledp != nil {
		*scaledp = scaled
		e.putN(scaledp)
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return res, nil
}

// sweepRange performs one pull sweep over destinations [lo, hi). With
// probs == nil the transition is the implicit uniform one and scaled must
// hold cur[u]/outdeg(u).
func (e *Engine) sweepRange(probs, cur, scaled, next, tele []float64, alpha, base float64, lo, hi int) {
	offsets, sources := e.offsets, e.sources
	if probs == nil {
		for v := lo; v < hi; v++ {
			alo, ahi := offsets[v], offsets[v+1]
			var acc float64
			for k := alo; k < ahi; k++ {
				acc += scaled[sources[k]]
			}
			next[v] = alpha*acc + (base+1-alpha)*tele[v]
		}
		return
	}
	for v := lo; v < hi; v++ {
		alo, ahi := offsets[v], offsets[v+1]
		var acc float64
		for k := alo; k < ahi; k++ {
			acc += probs[k] * cur[sources[k]]
		}
		next[v] = alpha*acc + (base+1-alpha)*tele[v]
	}
}

// partitionNodes splits [0, n) into ~equal node-count segments — the seed
// strategy, kept as the benchmark baseline for the arc-balanced split.
func partitionNodes(n, workers int) []int32 {
	bounds := make([]int32, workers+1)
	chunk := (n + workers - 1) / workers
	for w := 1; w < workers; w++ {
		b := w * chunk
		if b > n {
			b = n
		}
		bounds[w] = int32(b)
	}
	bounds[workers] = int32(n)
	return bounds
}

// partitionArcs splits the destination range so every segment owns roughly
// the same number of in-arcs (each node also counts 1, so arc-free stretches
// still spread). On hub-heavy power-law graphs this is what keeps one worker
// from drawing all the hub rows and becoming the straggler. Segments may be
// empty when a single node owns more than a worker's share of arcs.
func (e *Engine) partitionArcs(workers int) []int32 {
	bounds := make([]int32, workers+1)
	bounds[workers] = int32(e.n)
	total := e.offsets[e.n] + int64(e.n)
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		v := sort.Search(e.n, func(v int) bool {
			return e.offsets[v]+int64(v) >= target
		})
		bounds[w] = int32(v)
	}
	return bounds
}

// sweepState carries one parallel sweep's inputs to the worker pool. One
// sweepState lives for a whole solve; only the cur/next pair and the
// dangling base change between iterations.
type sweepState struct {
	e                       *Engine
	probs                   []float64
	cur, next, tele, scaled []float64
	alpha, base             float64
	bounds                  []int32
	wg                      sync.WaitGroup
}

// run executes one sweep: segments 1..k-1 go to the persistent pool, segment
// 0 runs on the calling goroutine (one fewer handoff, and the caller would
// only block in Wait anyway).
func (st *sweepState) run() {
	segs := len(st.bounds) - 1
	st.wg.Add(segs)
	for seg := 1; seg < segs; seg++ {
		sweepPool.submit(poolTask{st: st, seg: seg})
	}
	st.runSegment(0)
	st.wg.Wait()
}

func (st *sweepState) runSegment(seg int) {
	st.e.sweepRange(st.probs, st.cur, st.scaled, st.next, st.tele,
		st.alpha, st.base, int(st.bounds[seg]), int(st.bounds[seg+1]))
	st.wg.Done()
}

// poolTask is one segment of one sweep. Plain value: submitting allocates
// nothing.
type poolTask struct {
	st  *sweepState
	seg int
}

// workerPool runs sweep segments on persistent goroutines. Workers are
// spawned on demand up to the pool's cap and exit after workerIdleTimeout
// without a task, so an idle process keeps no goroutines and a server under
// load keeps them hot across iterations, solves, and requests.
type workerPool struct {
	tasks chan poolTask // unbuffered: a send succeeds only into a waiting worker
	sem   chan struct{} // counts live workers
}

const workerIdleTimeout = 30 * time.Second

// sweepPool is the process-wide pool shared by every engine. Its cap bounds
// total sweep parallelism across concurrent solves; segment 0 of each sweep
// runs on the submitting goroutine, so a single solve still uses
// opts.Workers cores when the pool is otherwise idle.
var sweepPool = newWorkerPool(64)

func newWorkerPool(maxWorkers int) *workerPool {
	return &workerPool{
		tasks: make(chan poolTask),
		sem:   make(chan struct{}, maxWorkers),
	}
}

func (p *workerPool) submit(t poolTask) {
	select {
	case p.tasks <- t: // an idle worker is waiting
		return
	default:
	}
	select {
	case p.tasks <- t:
	case p.sem <- struct{}{}:
		go p.worker(t)
	}
}

func (p *workerPool) worker(t poolTask) {
	t.st.runSegment(t.seg)
	idle := time.NewTimer(workerIdleTimeout)
	defer idle.Stop()
	for {
		select {
		case t := <-p.tasks:
			if !idle.Stop() {
				<-idle.C
			}
			t.st.runSegment(t.seg)
			idle.Reset(workerIdleTimeout)
		case <-idle.C:
			<-p.sem
			return
		}
	}
}
