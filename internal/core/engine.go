package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"d2pr/internal/graph"
)

// Engine is the per-graph solver substrate, built once per graph and shared
// by every solver (power iteration, Gauss–Seidel, the sweep batcher, and the
// PPR push path). It is organized around memory locality:
//
//   - Pull CSR: arcs into each destination are contiguous (pullOffsets +
//     pullSources), so a sweep is a streaming pass over destinations with
//     one gather per in-arc — never a scattered write.
//   - Locality relabeling: nodes are renamed at build time with a hub-seeded
//     BFS order (see computeOrder), so the gather working set — dominated by
//     hub sources every row touches — is compacted into a low-id prefix of
//     the score vectors. All sweeps run in the permuted id space; ids are
//     translated only at the edges (teleport in, scores out), with reductions
//     ordered so results stay bit-identical to an unpermuted solve.
//   - Cache-blocked sweeps: the destination range is pre-cut into blocks of
//     ~sweepBlockArcs arcs. Parallel sweeps schedule whole blocks work-
//     stealing style (one atomic per block), which both bounds each grab's
//     working set and load-balances hub rows without a static partition.
//   - perm maps each forward-CSR arc to its pull position, so non-uniform
//     transition probabilities scatter into pull order in one pass — and the
//     scatter result is memoized per Transition for repeat solves.
//
// The engine also owns the solve-time scratch: score/next/teleport/
// probability buffers (float64 and float32 tiers) are recycled through
// sync.Pools, so a warm solve allocates nothing proportional to the graph
// beyond the returned score vector, and the parallel sweep runs on a
// process-wide pool of persistent workers instead of spawning goroutines
// every iteration.
//
// An Engine is immutable after construction and safe for concurrent use.
type Engine struct {
	g *graph.Graph
	n int

	// buildTime is the full construction cost (transpose + relabeling + block
	// layout) a cold graph pays before its first solve; reorderTime is the
	// slice spent computing the locality order. Both are surfaced through
	// /v1/{graph}/info and telemetry so "first request on a graph is slow"
	// is attributable.
	buildTime   time.Duration
	reorderTime time.Duration

	// Locality relabeling: permOf[orig] = permuted id, origOf[permuted] =
	// orig id. Both are nil when the computed order is the identity, and
	// every translation site treats nil as "no translation".
	permOf []int32
	origOf []int32

	// Pull topology in permuted id space: arcs into permuted destination v
	// are pull positions pullOffsets[v]..pullOffsets[v+1], pullSources[pos]
	// is the (permuted) origin, and perm[k] is the pull position of forward-
	// CSR arc k. Within each destination row, arcs keep the original
	// source-scan order, so per-row accumulation is bit-identical to an
	// unpermuted engine's.
	pullOffsets []int64
	pullSources []int32
	perm        []int64

	// dangling holds the permuted ids of out-degree-0 nodes, listed in
	// original-id order so the dangling-mass reduction is bit-identical to
	// the unpermuted solve.
	dangling []int32

	// invOut[u] = 1/outdeg(u) in ORIGINAL id space (0 for dangling nodes) —
	// the implicit uniform transition for callers that walk the forward
	// graph (the PPR push path). invOutP is the same table in permuted
	// space, used by the sweep solvers; it aliases invOut when the
	// relabeling is the identity.
	invOut  []float64
	invOutP []float64

	// blocks are the destination block boundaries of the blocked sweep
	// schedule: each block covers ~sweepBlockArcs in-arcs.
	blocks []int32

	nbuf   sync.Pool // *[]float64 of length n
	nbuf32 sync.Pool // *[]float32 of length n
	mbuf   sync.Pool // *[]float64 of length NumArcs (pull-ordered probabilities)
	mbuf32 sync.Pool // *[]float32 of length NumArcs

	// pprbuf recycles *pprScratch (residuals, queue, membership bits) across
	// SolvePPR calls; see push.go.
	pprbuf sync.Pool

	// parts caches the static arc-balanced partition per worker count —
	// topology is immutable, so it never needs recomputing per solve.
	partMu sync.Mutex
	parts  map[int][]int32

	// Flow-probability memoization: repeat solves of the same *Transition
	// skip the O(m) scatter entirely. A transition is only promoted into the
	// cache on its second sighting (flowSeen ring), so one-shot transitions
	// — the serving layer builds a fresh Transition per request — keep using
	// pooled buffers and never churn owned allocations.
	flowMu      sync.Mutex
	flowSeen    [4]*Transition
	flowSeenPos int
	flowEntries [2]flowEntry

	// connOnce/conn lazily cache the graph's connection-strength transition
	// (= Uniform for unweighted graphs), so per-seed PPR requests never
	// rebuild the O(arcs) probability array.
	connOnce sync.Once
	conn     *Transition
}

type flowEntry struct {
	tr    *Transition
	probs []float64
	// Permuted factored tables for rank-1 transitions (probs nil then).
	rowFactor, srcScale []float64
}

// sweepBlockArcs is the target in-arc count per destination block: 8k arcs
// ≈ 64 KiB of pull-ordered probabilities plus the block's score slice, small
// enough that one block's streams live in L1/L2, large enough that the
// per-block atomic fetch is noise. It also sets the parallel work-stealing
// granularity (a 240k-arc graph yields ~30 blocks).
const sweepBlockArcs = 8192

// NewEngine builds the pull topology for g, including the locality
// relabeling. Prefer EngineFor, which caches engines per graph; NewEngine
// exists for callers that manage the lifetime themselves.
func NewEngine(g *graph.Graph) *Engine {
	return buildEngine(g, true)
}

// newEngineIdentity builds an engine with the identity node order — the
// ablation baseline the reordering invariant tests and benches compare
// against.
func newEngineIdentity(g *graph.Graph) *Engine {
	return buildEngine(g, false)
}

func buildEngine(g *graph.Graph, reorder bool) *Engine {
	buildStart := time.Now()
	n := g.NumNodes()
	m := g.NumArcs()
	e := &Engine{
		g:           g,
		n:           n,
		pullOffsets: make([]int64, n+1),
		pullSources: make([]int32, m),
		perm:        make([]int64, m),
		invOut:      make([]float64, n),
	}
	if reorder {
		reorderStart := time.Now()
		e.origOf = computeOrder(g)
		if e.origOf != nil {
			e.permOf = make([]int32, n)
			for p, orig := range e.origOf {
				e.permOf[orig] = int32(p)
			}
		}
		e.reorderTime = time.Since(reorderStart)
	}

	permOf := e.permOf
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		if lo == hi {
			pu := u
			if permOf != nil {
				pu = permOf[u]
			}
			e.dangling = append(e.dangling, pu)
			continue
		}
		e.invOut[u] = 1 / float64(hi-lo)
		for k := lo; k < hi; k++ {
			pv := g.ArcTarget(k)
			if permOf != nil {
				pv = permOf[pv]
			}
			e.pullOffsets[pv+1]++
		}
	}
	for v := 0; v < n; v++ {
		e.pullOffsets[v+1] += e.pullOffsets[v]
	}
	cursor := make([]int64, n)
	copy(cursor, e.pullOffsets[:n])
	// Sources are scanned in original id order, so each destination row
	// lists its in-arcs in the same sequence as an unpermuted engine —
	// the per-row accumulation stays bit-identical under relabeling.
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.ArcRange(u)
		pu := u
		if permOf != nil {
			pu = permOf[u]
		}
		for k := lo; k < hi; k++ {
			pv := g.ArcTarget(k)
			if permOf != nil {
				pv = permOf[pv]
			}
			pos := cursor[pv]
			cursor[pv]++
			e.pullSources[pos] = pu
			e.perm[k] = pos
		}
	}
	if permOf == nil {
		e.invOutP = e.invOut
	} else {
		e.invOutP = make([]float64, n)
		for u := 0; u < n; u++ {
			e.invOutP[permOf[u]] = e.invOut[u]
		}
	}
	e.blocks = blockBounds(e.pullOffsets, n)
	e.buildTime = time.Since(buildStart)
	return e
}

// blockBounds cuts [0, n) into destination blocks of ~sweepBlockArcs in-arcs
// (each destination also counts 1, so arc-free stretches still split).
func blockBounds(offsets []int64, n int) []int32 {
	bounds := make([]int32, 1, n/64+2)
	var w int64
	for v := 0; v < n; v++ {
		w += offsets[v+1] - offsets[v] + 1
		if w >= sweepBlockArcs {
			bounds = append(bounds, int32(v+1))
			w = 0
		}
	}
	if bounds[len(bounds)-1] != int32(n) {
		bounds = append(bounds, int32(n))
	}
	return bounds
}

// Graph returns the graph the engine was built for.
func (e *Engine) Graph() *graph.Graph { return e.g }

// BuildTime returns how long the engine construction (transpose, locality
// relabeling, block layout) took.
func (e *Engine) BuildTime() time.Duration { return e.buildTime }

// EngineStats describes the engine's memory layout and one-off build costs —
// the operator-facing answer to "which layout is this graph serving, and
// what did it cost to build".
type EngineStats struct {
	Nodes int `json:"nodes"`
	Arcs  int `json:"arcs"`
	// Layout names the topology layout the sweeps run on.
	Layout string `json:"layout"`
	// Reordered reports whether the locality relabeling is active (false
	// when the computed order was the identity).
	Reordered bool `json:"reordered"`
	// Blocks is the number of destination blocks of the blocked sweep
	// schedule; BlockTargetArcs the per-block arc budget.
	Blocks          int `json:"blocks"`
	BlockTargetArcs int `json:"block_target_arcs"`
	// BuildTime is the total engine construction time; ReorderTime the
	// slice spent computing the locality order.
	BuildTime   time.Duration `json:"-"`
	ReorderTime time.Duration `json:"-"`
	// BuildMs/ReorderMs are the JSON-facing millisecond forms.
	BuildMs   float64 `json:"build_ms"`
	ReorderMs float64 `json:"reorder_ms"`
}

// Stats returns the engine's layout and build statistics.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Nodes:           e.n,
		Arcs:            len(e.pullSources),
		Layout:          "pull-csr/blocked",
		Reordered:       e.origOf != nil,
		Blocks:          len(e.blocks) - 1,
		BlockTargetArcs: sweepBlockArcs,
		BuildTime:       e.buildTime,
		ReorderTime:     e.reorderTime,
		BuildMs:         float64(e.buildTime) / 1e6,
		ReorderMs:       float64(e.reorderTime) / 1e6,
	}
}

// Connection returns the engine's cached connection-strength transition —
// conventional (weighted) PageRank's transition, the one per-seed PPR serves.
// For unweighted graphs it is the implicit Uniform transition and costs
// nothing; for weighted graphs the per-arc array is built once per engine.
func (e *Engine) Connection() *Transition {
	e.connOnce.Do(func() { e.conn = ConnectionStrength(e.g) })
	return e.conn
}

// engineCacheCap bounds the process-wide engine cache. Serving deployments
// keep engines alive through registry snapshots anyway; the global cache
// covers library callers (Solve, SolveGaussSeidel, NewSweepSolver) without
// pinning every graph a test run ever builds.
const engineCacheCap = 16

var (
	engineMu    sync.Mutex
	engineCache []*Engine // most-recently-used first
)

// EngineFor returns the cached engine for g, building one on first use.
// Identity is pointer identity on the graph — graphs are immutable, so one
// *graph.Graph has one topology. The cache keeps the engineCacheCap
// most-recently-used engines; long-lived callers that must never rebuild
// should hold the returned *Engine (the registry's snapshots do).
func EngineFor(g *graph.Graph) *Engine {
	engineMu.Lock()
	for i, e := range engineCache {
		if e.g == g {
			copy(engineCache[1:i+1], engineCache[:i])
			engineCache[0] = e
			engineMu.Unlock()
			return e
		}
	}
	engineMu.Unlock()
	// Build outside the lock: the transpose is O(m) and must not serialize
	// unrelated solves. Two racing builders may both build; one wins the
	// cache slot and the loser's engine still works.
	e := NewEngine(g)
	engineMu.Lock()
	defer engineMu.Unlock()
	for i, cached := range engineCache {
		if cached.g == g {
			copy(engineCache[1:i+1], engineCache[:i])
			engineCache[0] = cached
			return cached
		}
	}
	engineCache = append(engineCache, nil)
	copy(engineCache[1:], engineCache)
	engineCache[0] = e
	if len(engineCache) > engineCacheCap {
		engineCache[engineCacheCap] = nil // release the evicted engine
		engineCache = engineCache[:engineCacheCap]
	}
	return e
}

// Solve runs power iteration for t over the cached topology. t must be a
// transition over the engine's graph. Uniform transitions take the implicit
// 1/outdeg path: no per-arc probability array is read, written, or allocated.
func (e *Engine) Solve(t *Transition, opts Options) (*Result, error) {
	return e.SolveContext(context.Background(), t, opts)
}

// SolveContext is Solve with cancellation: ctx is checked once per iteration
// (between sweep barriers on the parallel path), and a cancelled or expired
// context aborts the solve with the context's error wrapped in iteration
// progress. The serving layer routes every interactive solve through this so
// a disconnected client or an expired request deadline stops burning cores
// within one iteration.
func (e *Engine) SolveContext(ctx context.Context, t *Transition, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.g != e.g {
		return nil, fmt.Errorf("core: transition over %v does not match engine graph %v", t.g, e.g)
	}
	if e.n == 0 {
		return nil, ErrEmptyGraph
	}
	opts, err := opts.withDefaults(e.n)
	if err != nil {
		return nil, err
	}
	f, done := e.flowOf(t)
	res, err := e.power(ctx, f, opts, schedBlocked)
	if done != nil {
		done()
	}
	return res, err
}

// flow is the solver-facing representation of a transition, in the engine's
// permuted id space. Exactly one shape is populated:
//
//   - all nil: the implicit uniform transition (the cached 1/outdeg table),
//   - rowFactor+srcScale: a rank-1 factored transition (D2PR) — per-node
//     tables, no per-arc data at all,
//   - probs: per-arc probabilities in pull order.
type flow struct {
	probs     []float64
	rowFactor []float64
	srcScale  []float64
}

// flowOf returns t's flow representation; when the returned cleanup is
// non-nil the flow borrows pooled buffers and the caller must invoke it after
// the solve. Factored transitions cost at most one O(n) permuted copy per
// solve (nothing at all on an identity-ordered engine) — compare the O(arcs)
// scatter plus per-iteration O(arcs) stream the per-arc path pays — and even
// that copy is memoized away for repeat solves of the same *Transition: the
// scattered permute walk misses cache on most writes, which is measurable
// against a solve that otherwise streams.
func (e *Engine) flowOf(t *Transition) (flow, func()) {
	if t.uniform {
		return flow{}, nil
	}
	if t.rowFactor != nil {
		if e.permOf == nil {
			return flow{rowFactor: t.rowFactor, srcScale: t.srcScale}, nil
		}
		e.flowMu.Lock()
		for i := range e.flowEntries {
			if fe := e.flowEntries[i]; fe.tr == t {
				e.flowMu.Unlock()
				return flow{rowFactor: fe.rowFactor, srcScale: fe.srcScale}, nil
			}
		}
		seen := e.flowSeenLocked(t)
		e.flowMu.Unlock()
		if !seen {
			rfp, ssp := getNT[float64](e), getNT[float64](e)
			e.permuteFactors(*rfp, *ssp, t)
			return flow{rowFactor: *rfp, srcScale: *ssp}, func() { putNT(e, rfp); putNT(e, ssp) }
		}
		rf, ss := make([]float64, e.n), make([]float64, e.n)
		e.permuteFactors(rf, ss, t)
		e.flowMu.Lock()
		e.flowEntries[1] = e.flowEntries[0]
		e.flowEntries[0] = flowEntry{tr: t, rowFactor: rf, srcScale: ss}
		e.flowMu.Unlock()
		return flow{rowFactor: rf, srcScale: ss}, nil
	}
	probs, pooled := e.flowProbs(t)
	if pooled != nil {
		return flow{probs: probs}, func() { e.putM(pooled) }
	}
	return flow{probs: probs}, nil
}

// permuteFactors copies t's factored tables into the engine's permuted id
// space. Only called on relabeled engines.
func (e *Engine) permuteFactors(rf, ss []float64, t *Transition) {
	for v, pv := range e.permOf {
		rf[pv] = t.rowFactor[v]
		ss[pv] = t.srcScale[v]
	}
}

// flowSeenLocked records t in the seen ring and reports whether it was
// already there — the "second sighting" test that gates memo promotion.
// Caller holds flowMu.
func (e *Engine) flowSeenLocked(t *Transition) bool {
	for _, s := range e.flowSeen {
		if s == t {
			return true
		}
	}
	e.flowSeen[e.flowSeenPos] = t
	e.flowSeenPos = (e.flowSeenPos + 1) % len(e.flowSeen)
	return false
}

// flowProbs returns t's probabilities in pull order. Uniform transitions
// return (nil, nil): the solver runs off the cached 1/outdeg table. For
// explicit transitions the scatter result is memoized per *Transition —
// but only once a transition has been seen before, so long-lived transitions
// (benchmark loops, sweep solvers, the engine's own Connection) amortize the
// scatter to zero while per-request one-shot transitions stay on pooled
// buffers. When the second return is non-nil the caller owns the buffer and
// must putM it after the solve.
func (e *Engine) flowProbs(t *Transition) ([]float64, *[]float64) {
	if t.uniform {
		return nil, nil
	}
	e.flowMu.Lock()
	for i := range e.flowEntries {
		if fe := e.flowEntries[i]; fe.tr == t {
			e.flowMu.Unlock()
			return fe.probs, nil
		}
	}
	seen := e.flowSeenLocked(t)
	e.flowMu.Unlock()
	if !seen {
		pp := e.getM()
		e.scatterFlow(*pp, t.arcProbs())
		return *pp, pp
	}
	// Second sighting: build an owned copy and publish it. Racing builders
	// may both scatter; last insert wins and the loser's copy still solves
	// correctly.
	owned := make([]float64, len(e.pullSources))
	e.scatterFlow(owned, t.arcProbs())
	e.flowMu.Lock()
	e.flowEntries[1] = e.flowEntries[0]
	e.flowEntries[0] = flowEntry{tr: t, probs: owned}
	e.flowMu.Unlock()
	return owned, nil
}

// scatterFlow scatters forward-CSR-ordered probabilities into pull order.
func (e *Engine) scatterFlow(dst, src []float64) {
	for k, pos := range e.perm {
		dst[pos] = src[k]
	}
}

// Pool plumbing. The n-sized pools exist per tier; npoolOf picks by the
// kernel's element type.
func npoolOf[T float32or64](e *Engine) *sync.Pool {
	var z T
	if _, ok := any(z).(float32); ok {
		return &e.nbuf32
	}
	return &e.nbuf
}

// getNT returns a pooled length-n buffer of the tier's element type
// (contents unspecified).
func getNT[T float32or64](e *Engine) *[]T {
	if p, ok := npoolOf[T](e).Get().(*[]T); ok {
		return p
	}
	s := make([]T, e.n)
	return &s
}

func putNT[T float32or64](e *Engine, p *[]T) { npoolOf[T](e).Put(p) }

// getM returns a pooled length-NumArcs float64 buffer (contents unspecified).
func (e *Engine) getM() *[]float64 {
	if p, ok := e.mbuf.Get().(*[]float64); ok {
		return p
	}
	s := make([]float64, len(e.pullSources))
	return &s
}

func (e *Engine) putM(p *[]float64) { e.mbuf.Put(p) }

func (e *Engine) getM32() *[]float32 {
	if p, ok := e.mbuf32.Get().(*[]float32); ok {
		return p
	}
	s := make([]float32, len(e.pullSources))
	return &s
}

func (e *Engine) putM32(p *[]float32) { e.mbuf32.Put(p) }

// schedule selects the parallel sweep's work-distribution strategy. Blocked
// is the default; the static splits are kept as benchmark baselines (and the
// arc-balanced one as the partition-quality metric in BENCH_core.json).
type schedule int

const (
	schedBlocked schedule = iota
	schedArcStatic
	schedNodeStatic
)

// power runs the power-iteration core over a flow representation,
// dispatching to the tier selected by opts.Float32. opts must already have
// defaults applied. The factored tables stay float64 in both tiers — they
// are per-node, so narrowing them would save nothing that matters.
func (e *Engine) power(ctx context.Context, f flow, opts Options, sched schedule) (*Result, error) {
	if !opts.Float32 {
		return powerSolve[float64](ctx, e, f.probs, f.rowFactor, f.srcScale, opts, sched)
	}
	var p32 []float32
	var pp32 *[]float32
	if f.probs != nil {
		pp32 = e.getM32()
		p32 = *pp32
		for i, v := range f.probs {
			p32[i] = float32(v)
		}
	}
	res, err := powerSolve[float32](ctx, e, p32, f.rowFactor, f.srcScale, opts, sched)
	if pp32 != nil {
		e.putM32(pp32)
	}
	return res, err
}

// hybridFrontierDiv sets the adaptive-hybrid switch point: once fewer than
// n/hybridFrontierDiv nodes are still moving by more than their share of the
// L1 tolerance, the convergence tail leaves Jacobi power iteration for
// Gauss–Seidel sweeps (see Options.Hybrid).
const hybridFrontierDiv = 8

// powerSolve is the tier-generic power-iteration core. probs holds the
// transition in pull order; with probs nil the transition is per-node:
// rank-1 factored when rowFactor/srcScale (permuted space) are set, the
// implicit uniform one otherwise.
//
// ctx is polled once per iteration, before the sweep — on the parallel path
// that is the point right after the previous iteration's block barrier, so
// no worker is ever abandoned mid-block. The check is one atomic-free
// ctx.Err() call against an iteration that sweeps every arc; its cost on the
// warm path is measured by BenchmarkCoreSolveCancelOverhead (<1%).
func powerSolve[T float32or64](ctx context.Context, e *Engine, probs []T, rowFactor, srcScale []float64, opts Options, sched schedule) (*Result, error) {
	n := e.n
	telep := getNT[T](e)
	tele := *telep
	teleportPermuted(opts, tele, e.permOf)

	curp := getNT[T](e)
	cur := *curp
	copy(cur, tele)
	nextp := getNT[T](e)
	next := *nextp

	if srcScale == nil {
		srcScale = e.invOutP
	}
	// The per-node paths keep a scaled mirror (scaled[u] = cur[u]·srcScale[u])
	// so the sweep reads one value per arc instead of two. It is primed once
	// here; afterwards the sweep epilogue maintains the next iteration's
	// mirror in nextScaled, and the pair ping-pongs with cur/next.
	var scaled, nextScaled []T
	var scaledp, nextScaledp *[]T
	if probs == nil {
		scaledp, nextScaledp = getNT[T](e), getNT[T](e)
		scaled, nextScaled = *scaledp, *nextScaledp
		for u := 0; u < n; u++ {
			scaled[u] = T(float64(cur[u]) * srcScale[u])
		}
	}

	workers := opts.Workers
	if workers > n {
		workers = n
	}
	// Segment bounds double as the residual-reduction grouping: per-segment
	// partials are reduced in segment order, so the residual is deterministic
	// for a given schedule. The serial path walks the same blocks as the
	// parallel blocked schedule, making serial and parallel solves
	// bit-identical end to end.
	var bounds []int32
	dynamic := false
	switch {
	case sched == schedArcStatic && workers > 1:
		bounds = e.partitionArcs(workers)
	case sched == schedNodeStatic && workers > 1:
		bounds = partitionNodes(n, workers)
	default:
		bounds, dynamic = e.blocks, true
	}
	accs := make([]blockAcc, len(bounds)-1)
	activeTol := opts.Tol / float64(n)
	var st *sweepState[T]
	if workers > 1 {
		st = &sweepState[T]{
			e: e, probs: probs, tele: tele, rowFactor: rowFactor, srcScale: srcScale,
			alpha: opts.Alpha, activeTol: activeTol,
			bounds: bounds, dynamic: dynamic, workers: workers, accs: accs,
		}
	}

	res := &Result{}
	solveStart := time.Now()
	var cancelErr error
	hybridAt := 0
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			cancelErr = fmt.Errorf("core: solve aborted after %d/%d iterations: %w", res.Iterations, opts.MaxIter, err)
			break
		}
		// Mass on dangling nodes flows back through the teleport
		// distribution, keeping the chain stochastic.
		var dangling float64
		for _, d := range e.dangling {
			dangling += float64(cur[d])
		}
		base := opts.Alpha * dangling // multiplied by tele[v] per node

		if st != nil {
			st.cur, st.next = cur, next
			st.scaled, st.nextScaled = scaled, nextScaled
			st.base = base
			st.run()
		} else {
			for s := range accs {
				d, a := sweepRows(e.pullOffsets, e.pullSources, probs, cur, scaled, next, nextScaled, tele,
					rowFactor, srcScale, opts.Alpha, base, activeTol, int(bounds[s]), int(bounds[s+1]))
				accs[s] = blockAcc{diff: d, active: a}
			}
		}
		var diff float64
		var active int
		for _, a := range accs {
			diff += a.diff
			active += a.active
		}

		cur, next = next, cur
		scaled, nextScaled = nextScaled, scaled
		res.Iterations = iter
		res.Residual = diff
		if diff < opts.Tol {
			res.Converged = true
			break
		}
		// Adaptive hybrid: once the active frontier is small, the dense
		// Jacobi sweep wastes most of its work re-deriving settled nodes —
		// hand the tail to Gauss–Seidel, which propagates fresh values
		// within a sweep and converges it in far fewer passes.
		if opts.Hybrid && active*hybridFrontierDiv < n && iter < opts.MaxIter {
			hybridAt = iter
			break
		}
	}
	if cancelErr == nil && hybridAt > 0 && !res.Converged {
		res.HybridSwitch = hybridAt
		cancelErr = gsLoop(ctx, e, probs, cur, scaled, tele, rowFactor, srcScale, opts, res, hybridAt+1)
	}
	res.Elapsed = time.Since(solveStart)
	if cancelErr == nil {
		// Exact renormalization guards against drift over hundreds of
		// iterations; materialization also translates back to original ids.
		res.Scores = materializeScores(cur, e.permOf)
	}
	// The buffer pairs may have swapped an odd number of times; all are
	// pooled either way, only the materialized result escapes.
	*curp = cur
	*nextp = next
	putNT(e, curp)
	putNT(e, nextp)
	putNT(e, telep)
	if scaledp != nil {
		*scaledp = scaled
		*nextScaledp = nextScaled
		putNT(e, scaledp)
		putNT(e, nextScaledp)
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return res, nil
}

// partitionNodes splits [0, n) into ~equal node-count segments — the seed
// strategy, kept as the benchmark baseline for the arc-balanced split.
func partitionNodes(n, workers int) []int32 {
	bounds := make([]int32, workers+1)
	chunk := (n + workers - 1) / workers
	for w := 1; w < workers; w++ {
		b := w * chunk
		if b > n {
			b = n
		}
		bounds[w] = int32(b)
	}
	bounds[workers] = int32(n)
	return bounds
}

// partitionArcs returns the destination split where every segment owns
// roughly the same number of in-arcs (each node also counts 1, so arc-free
// stretches still spread). On hub-heavy power-law graphs this is what keeps
// one worker from drawing all the hub rows and becoming the straggler.
// Segments may be empty when a single node owns more than a worker's share
// of arcs. The split is cached per worker count — topology is immutable, so
// it is computed at most once per (engine, workers).
func (e *Engine) partitionArcs(workers int) []int32 {
	e.partMu.Lock()
	defer e.partMu.Unlock()
	if b, ok := e.parts[workers]; ok {
		return b
	}
	bounds := make([]int32, workers+1)
	bounds[workers] = int32(e.n)
	total := e.pullOffsets[e.n] + int64(e.n)
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		v := sort.Search(e.n, func(v int) bool {
			return e.pullOffsets[v]+int64(v) >= target
		})
		bounds[w] = int32(v)
	}
	if e.parts == nil {
		e.parts = make(map[int][]int32)
	}
	e.parts[workers] = bounds
	return bounds
}

// blockAcc is one segment's residual contribution; partials are reduced in
// segment order after the sweep barrier, so the residual is deterministic
// regardless of which worker computed which segment.
type blockAcc struct {
	diff   float64
	active int
}

// sweepState carries one parallel sweep's inputs to the worker pool. One
// sweepState lives for a whole solve; only the buffer pairs and the dangling
// base change between iterations.
type sweepState[T float32or64] struct {
	e                                   *Engine
	probs                               []T
	cur, next, scaled, nextScaled, tele []T
	rowFactor, srcScale                 []float64
	alpha, base, activeTol              float64
	// bounds are destination boundaries: block boundaries consumed work-
	// stealing style when dynamic, otherwise one static segment per worker.
	bounds  []int32
	dynamic bool
	workers int
	accs    []blockAcc
	cursor  atomic.Int64
	wg      sync.WaitGroup
}

// run executes one sweep. The calling goroutine always works too (one fewer
// handoff, and it would only block in Wait anyway); extra workers come from
// the persistent pool. Every destination row is computed by exactly one
// worker and rows are reduced independently, so results are identical across
// schedules and worker counts.
func (st *sweepState[T]) run() {
	if st.dynamic {
		st.cursor.Store(0)
		workers := st.workers
		if nb := len(st.bounds) - 1; workers > nb {
			workers = nb
		}
		st.wg.Add(workers)
		for w := 1; w < workers; w++ {
			sweepPool.submit(poolTask{r: st, seg: -1})
		}
		st.runSeg(-1)
	} else {
		segs := len(st.bounds) - 1
		st.wg.Add(segs)
		for seg := 1; seg < segs; seg++ {
			sweepPool.submit(poolTask{r: st, seg: seg})
		}
		st.runSeg(0)
	}
	st.wg.Wait()
}

// runSeg computes one static segment (seg ≥ 0) or loops grabbing dynamic
// blocks until none remain (seg < 0). Each segment's residual partial lands
// in accs at the segment's own index, so the post-barrier reduction order is
// independent of work-stealing interleavings.
func (st *sweepState[T]) runSeg(seg int) {
	e := st.e
	if seg >= 0 {
		d, a := sweepRows(e.pullOffsets, e.pullSources, st.probs, st.cur, st.scaled, st.next, st.nextScaled, st.tele,
			st.rowFactor, st.srcScale, st.alpha, st.base, st.activeTol, int(st.bounds[seg]), int(st.bounds[seg+1]))
		st.accs[seg] = blockAcc{diff: d, active: a}
		st.wg.Done()
		return
	}
	nb := int64(len(st.bounds) - 1)
	for {
		b := st.cursor.Add(1) - 1
		if b >= nb {
			break
		}
		d, a := sweepRows(e.pullOffsets, e.pullSources, st.probs, st.cur, st.scaled, st.next, st.nextScaled, st.tele,
			st.rowFactor, st.srcScale, st.alpha, st.base, st.activeTol, int(st.bounds[b]), int(st.bounds[b+1]))
		st.accs[b] = blockAcc{diff: d, active: a}
	}
	st.wg.Done()
}

// segRunner is the unit of work the pool executes; both sweep tiers
// implement it, so one pool serves float64 and float32 solves alike.
type segRunner interface {
	runSeg(seg int)
}

// poolTask is one segment (or one dynamic worker slot) of one sweep. Plain
// value: submitting allocates nothing — the interface word holds the
// *sweepState pointer directly.
type poolTask struct {
	r   segRunner
	seg int
}

// workerPool runs sweep segments on persistent goroutines. Workers are
// spawned on demand up to the pool's cap and exit after workerIdleTimeout
// without a task, so an idle process keeps no goroutines and a server under
// load keeps them hot across iterations, solves, and requests.
type workerPool struct {
	tasks chan poolTask // unbuffered: a send succeeds only into a waiting worker
	sem   chan struct{} // counts live workers
}

const workerIdleTimeout = 30 * time.Second

// sweepPool is the process-wide pool shared by every engine. Its cap bounds
// total sweep parallelism across concurrent solves; one worker slot of each
// sweep runs on the submitting goroutine, so a single solve still uses
// opts.Workers cores when the pool is otherwise idle.
var sweepPool = newWorkerPool(64)

func newWorkerPool(maxWorkers int) *workerPool {
	return &workerPool{
		tasks: make(chan poolTask),
		sem:   make(chan struct{}, maxWorkers),
	}
}

func (p *workerPool) submit(t poolTask) {
	select {
	case p.tasks <- t: // an idle worker is waiting
		return
	default:
	}
	select {
	case p.tasks <- t:
	case p.sem <- struct{}{}:
		go p.worker(t)
	}
}

func (p *workerPool) worker(t poolTask) {
	t.r.runSeg(t.seg)
	idle := time.NewTimer(workerIdleTimeout)
	defer idle.Stop()
	for {
		select {
		case t := <-p.tasks:
			if !idle.Stop() {
				<-idle.C
			}
			t.r.runSeg(t.seg)
			idle.Reset(workerIdleTimeout)
		case <-idle.C:
			<-p.sem
			return
		}
	}
}
