package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// CacheKey returns a canonical string identifying the solver configuration
// for result caching: two Options values that produce identical solver
// behavior map to the same key, regardless of whether defaults were spelled
// out or left zero. Workers and Hybrid are intentionally excluded — they
// change wall-clock time, never the fixpoint (within Tol). Float32 is
// included: it changes the scores beyond Tol-level noise.
//
// The teleport vector is folded in as an FNV-1a digest of its normalized
// entries, so personalized configurations get distinct keys without embedding
// n floats in the key string.
func (o Options) CacheKey() string {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.MaxIter == 0 {
		o.MaxIter = DefaultMaxIter
	}
	var b strings.Builder
	if o.Float32 && o.Tol < Float32MinTol {
		o.Tol = Float32MinTol // mirror the solver's clamp so keys canonicalize
	}
	fmt.Fprintf(&b, "alpha=%g|tol=%g|maxiter=%d", o.Alpha, o.Tol, o.MaxIter)
	if o.Float32 {
		b.WriteString("|f32")
	}
	if o.Teleport != nil {
		fmt.Fprintf(&b, "|tele=%016x", teleportDigest(o.Teleport))
	}
	return b.String()
}

// teleportDigest hashes the normalized teleport distribution so that scaled
// copies of the same distribution (which the solver normalizes anyway)
// collide on purpose.
func teleportDigest(t []float64) uint64 {
	var sum float64
	for _, v := range t {
		sum += v
	}
	inv := 1.0
	if sum > 0 {
		inv = 1 / sum
	}
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	var h uint64 = offset64
	var buf [8]byte
	for _, v := range t {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v*inv))
		for _, c := range buf {
			h ^= uint64(c)
			h *= prime64
		}
	}
	return h
}
