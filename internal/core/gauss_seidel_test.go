package core

import (
	"math"
	"testing"

	"d2pr/internal/graph"
)

func TestGaussSeidelMatchesPowerIteration(t *testing.T) {
	g := skewedGraph(300, 31)
	tr := DegreeDecoupled(g, 1.0)
	a, err := Solve(tr, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveGaussSeidel(tr, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-10 {
			t.Fatalf("node %d: power %v, gauss-seidel %v", i, a.Scores[i], b.Scores[i])
		}
	}
	if !b.Converged {
		t.Error("gauss-seidel did not converge")
	}
}

func TestGaussSeidelDanglingGraph(t *testing.T) {
	// Directed chain with a dangling tail and an isolated node.
	b := graph.NewBuilder(graph.Directed).EnsureNodes(5)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 2)
	g := b.MustBuild()
	tr := Uniform(g)
	a, err := Solve(tr, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := SolveGaussSeidel(tr, Options{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range gs.Scores {
		sum += gs.Scores[i]
		if math.Abs(a.Scores[i]-gs.Scores[i]) > 1e-9 {
			t.Fatalf("node %d: power %v, gs %v", i, a.Scores[i], gs.Scores[i])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %v, want 1", sum)
	}
}

func TestGaussSeidelIterationBehaviour(t *testing.T) {
	// On a citation-style DAG where every arc points to a lower id, a
	// forward sweep propagates mass through the whole graph in one pass:
	// Gauss–Seidel must need far fewer sweeps than Jacobi.
	b := graph.NewBuilder(graph.Directed).EnsureNodes(400)
	for u := int32(1); u < 400; u++ {
		b.AddEdge(u, u/2) // cite an older node
		if u >= 3 {
			b.AddEdge(u, u/3)
		}
	}
	dag := b.MustBuild()
	tr := Uniform(dag)
	power, err := Solve(tr, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := SolveGaussSeidel(tr, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Iterations*2 > power.Iterations {
		t.Errorf("gauss-seidel took %d sweeps, power %d — want ≤ half on a forward-ordered DAG",
			gs.Iterations, power.Iterations)
	}
	// On undirected hub graphs GS has no ordering advantage; it must still
	// converge within a comparable budget (empirically ~1.5× Jacobi here).
	und := skewedGraph(500, 33)
	trU := Uniform(und)
	powerU, err := Solve(trU, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	gsU, err := SolveGaussSeidel(trU, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if gsU.Iterations > 3*powerU.Iterations {
		t.Errorf("gauss-seidel took %d sweeps vs power's %d — unexpectedly divergent",
			gsU.Iterations, powerU.Iterations)
	}
}

func TestGaussSeidelValidation(t *testing.T) {
	empty := graph.NewBuilder(graph.Undirected).MustBuild()
	if _, err := SolveGaussSeidel(Uniform(empty), Options{}); err != ErrEmptyGraph {
		t.Errorf("err = %v, want ErrEmptyGraph", err)
	}
	g := skewedGraph(10, 35)
	if _, err := SolveGaussSeidel(Uniform(g), Options{Alpha: 2}); err == nil {
		t.Error("bad alpha must error")
	}
}

func TestGaussSeidelPersonalized(t *testing.T) {
	g := skewedGraph(100, 37)
	tr := Uniform(g)
	tele := make([]float64, g.NumNodes())
	tele[3] = 1
	a, err := Solve(tr, Options{Tol: 1e-13, Teleport: tele})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveGaussSeidel(tr, Options{Tol: 1e-13, Teleport: tele})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-10 {
			t.Fatalf("node %d differs", i)
		}
	}
}
