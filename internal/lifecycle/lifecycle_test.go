package lifecycle

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPermanentClassification(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must stay nil")
	}
	base := errors.New("parse error")
	p := Permanent(base)
	if !IsPermanent(p) {
		t.Error("wrapped error must classify permanent")
	}
	if !IsPermanent(fmt.Errorf("load failed: %w", p)) {
		t.Error("classification must survive further wrapping")
	}
	if !errors.Is(p, base) {
		t.Error("Permanent must preserve the error chain")
	}
	if IsPermanent(base) {
		t.Error("unwrapped errors are transient")
	}
}

func TestDelayBoundsAndGrowth(t *testing.T) {
	// Rand pinned to 0 gives the lower bound (d/2); to just-under-1 the
	// upper (d).
	lo := Config{Base: 100 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 0 }}
	hi := Config{Base: 100 * time.Millisecond, Max: time.Second, Rand: func() float64 { return 0.999999 }}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		want := 100 * time.Millisecond << (attempt - 1)
		if want > time.Second {
			want = time.Second
		}
		l, h := lo.Delay(attempt), hi.Delay(attempt)
		if l != want/2 {
			t.Errorf("attempt %d: lower bound = %v, want %v", attempt, l, want/2)
		}
		if h < l || h > want {
			t.Errorf("attempt %d: jittered delay %v outside [%v, %v]", attempt, h, l, want)
		}
		if l < prev {
			t.Errorf("attempt %d: delay lower bound shrank (%v < %v)", attempt, l, prev)
		}
		prev = l
	}
	// The cap holds for absurd attempt counts without overflow.
	if d := lo.Delay(500); d != time.Second/2 {
		t.Errorf("capped delay = %v, want %v", d, time.Second/2)
	}
}

func TestMachineTransitions(t *testing.T) {
	m := NewMachine(Config{Base: time.Minute, MaxRetries: 3})
	if m.State() != StateLoading {
		t.Fatalf("initial state = %s", m.State())
	}
	m.Succeed()
	if m.State() != StateReady || !m.RetryAt().IsZero() {
		t.Fatalf("after Succeed: %s retryAt %v", m.State(), m.RetryAt())
	}

	if st := m.Fail(errors.New("blip")); st != StateDegraded {
		t.Fatalf("transient failure → %s, want degraded", st)
	}
	if m.RetryAt().IsZero() || m.LastErr() == nil {
		t.Error("degraded machine must schedule a retry and keep the error")
	}
	if info := m.Info(); info.Failures != 1 || info.Error == "" || info.NextRetry.IsZero() {
		t.Errorf("info = %+v", info)
	}

	m.Fail(errors.New("blip 2"))
	if st := m.Fail(errors.New("blip 3")); st != StateQuarantined {
		t.Fatalf("exhausted budget → %s, want quarantined", st)
	}
	if !m.RetryAt().IsZero() {
		t.Error("quarantined machine must not schedule retries")
	}

	m.Rearm()
	if m.State() != StateLoading || m.Info().Failures != 0 || m.LastErr() != nil {
		t.Errorf("after Rearm: %+v", m.Info())
	}
}

func TestPermanentFailureQuarantinesImmediately(t *testing.T) {
	m := NewMachine(Config{})
	if st := m.Fail(Permanent(errors.New("corrupt"))); st != StateQuarantined {
		t.Fatalf("permanent failure → %s, want quarantined", st)
	}
}

func TestRearmLeavesReadyAlone(t *testing.T) {
	m := NewMachine(Config{})
	m.Succeed()
	m.Rearm()
	if m.State() != StateReady {
		t.Errorf("Rearm on ready machine → %s", m.State())
	}
}

func TestRetryForever(t *testing.T) {
	m := NewMachine(Config{Base: time.Nanosecond, MaxRetries: -1})
	for i := 0; i < 100; i++ {
		if st := m.Fail(errors.New("x")); st != StateDegraded {
			t.Fatalf("failure %d → %s, want degraded forever with MaxRetries<0", i, st)
		}
	}
}

func TestTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateLoading: false, StateReady: true, StateDegraded: false, StateQuarantined: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), want)
		}
	}
}
