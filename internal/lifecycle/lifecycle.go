// Package lifecycle is the state machine behind graph materialization in the
// serving layer: every registry entry owns a Machine that tracks whether its
// latest load attempt left the entry loading, ready, degraded (a retryable
// failure with a scheduled backoff), or quarantined (a permanent failure, or
// retries exhausted — no further automatic attempts). The machine never loads
// anything itself; the registry reports attempt outcomes with Succeed/Fail
// and asks RetryAt when to try again.
//
// Failure classification drives the transitions: a transiently unreadable
// file (ENOENT, EACCES, a network filesystem hiccup) lands in degraded and
// self-heals through capped exponential backoff with full jitter, while a
// corrupted file (parse or checksum failure, wrapped with Permanent by the
// loader) quarantines immediately — retrying a deterministic failure only
// burns disk bandwidth. A quarantined entry stays down until an operator
// re-arms it (Rearm), which a manual reload does implicitly.
package lifecycle

import (
	"errors"
	"math/rand/v2"
	"sync"
	"time"
)

// State is one lifecycle state of a registry entry.
type State string

const (
	// StateLoading: no load attempt has finished yet (or the entry was just
	// re-armed after quarantine).
	StateLoading State = "loading"
	// StateReady: the most recent load attempt succeeded.
	StateReady State = "ready"
	// StateDegraded: the most recent attempt failed retryably; a backoff
	// retry is scheduled. An entry with an older good snapshot keeps serving
	// it while degraded.
	StateDegraded State = "degraded"
	// StateQuarantined: the entry failed permanently (corrupt input) or
	// exhausted its retry budget. No automatic retries; only Rearm (a manual
	// reload) re-enters the loop.
	StateQuarantined State = "quarantined"
)

// Terminal reports whether the state schedules no further automatic work.
func (s State) Terminal() bool { return s == StateReady || s == StateQuarantined }

// permanentError marks a failure that retrying cannot fix.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Fail quarantines immediately instead of scheduling
// retries. Loaders use it for parse/checksum/validation failures — the bytes
// are readable but wrong, so the next read will fail identically. Wrapping
// nil returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Config tunes a Machine's retry policy. The zero value takes every default.
type Config struct {
	// Base is the first retry delay; each consecutive failure doubles it.
	// 0 means DefaultBase.
	Base time.Duration
	// Max caps the doubled delay. 0 means DefaultMax.
	Max time.Duration
	// MaxRetries is how many consecutive transient failures are tolerated
	// before the entry quarantines anyway (a "transient" error that never
	// stops happening is not transient). 0 means DefaultMaxRetries; negative
	// means retry forever.
	MaxRetries int
	// Rand returns a uniform float64 in [0, 1) for jitter. Nil means
	// math/rand/v2; tests inject a deterministic source.
	Rand func() float64
}

// Defaults for Config fields left zero.
const (
	DefaultBase       = 100 * time.Millisecond
	DefaultMax        = 30 * time.Second
	DefaultMaxRetries = 5
)

func (c Config) withDefaults() Config {
	if c.Base <= 0 {
		c.Base = DefaultBase
	}
	if c.Max <= 0 {
		c.Max = DefaultMax
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// Delay returns the backoff before retry number attempt (1-based): an
// exponential 2^(attempt-1)·Base capped at Max, with full jitter on the upper
// half — the canonical spread that keeps a fleet of entries failed by one
// event from retrying in lockstep.
func (c Config) Delay(attempt int) time.Duration {
	c = c.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := c.Base
	for i := 1; i < attempt && d < c.Max; i++ {
		d *= 2
	}
	if d > c.Max {
		d = c.Max
	}
	half := d / 2
	return half + time.Duration(c.Rand()*float64(half))
}

// Info is a point-in-time snapshot of a Machine, shaped for health surfaces
// (/readyz, /v1/graphs).
type Info struct {
	State State `json:"state"`
	// Failures counts consecutive failed attempts since the last success (or
	// re-arm).
	Failures int `json:"failures,omitempty"`
	// Error is the most recent attempt's failure, "" after a success.
	Error string `json:"error,omitempty"`
	// Since is when the machine entered its current state.
	Since time.Time `json:"since,omitzero"`
	// NextRetry is when the scheduled backoff retry becomes due (degraded
	// only).
	NextRetry time.Time `json:"next_retry,omitzero"`
}

// Machine tracks one entry's lifecycle. All methods are safe for concurrent
// use. The zero value is not usable; call NewMachine.
type Machine struct {
	mu        sync.Mutex
	cfg       Config
	state     State
	failures  int
	lastErr   error
	since     time.Time
	nextRetry time.Time
}

// NewMachine returns a Machine in StateLoading with cfg's retry policy.
func NewMachine(cfg Config) *Machine {
	return &Machine{cfg: cfg.withDefaults(), state: StateLoading, since: time.Now()}
}

// State returns the current state.
func (m *Machine) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// LastErr returns the most recent attempt's failure (nil after a success).
func (m *Machine) LastErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// RetryAt returns when the next automatic retry is due. The zero time means
// none is scheduled (the machine is not degraded).
func (m *Machine) RetryAt() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateDegraded {
		return time.Time{}
	}
	return m.nextRetry
}

// Info returns a snapshot for health surfaces.
func (m *Machine) Info() Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	info := Info{State: m.state, Failures: m.failures, Since: m.since}
	if m.lastErr != nil {
		info.Error = m.lastErr.Error()
	}
	if m.state == StateDegraded {
		info.NextRetry = m.nextRetry
	}
	return info
}

// Succeed records a successful load attempt: ready, failure streak cleared.
func (m *Machine) Succeed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = StateReady
	m.failures = 0
	m.lastErr = nil
	m.since = time.Now()
	m.nextRetry = time.Time{}
}

// Fail records a failed load attempt and returns the resulting state. A
// permanent error (see Permanent) or an exhausted retry budget quarantines;
// otherwise the machine degrades and schedules the next retry with
// exponential backoff and jitter.
func (m *Machine) Fail(err error) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures++
	m.lastErr = err
	m.since = time.Now()
	exhausted := m.cfg.MaxRetries >= 0 && m.failures >= m.cfg.MaxRetries
	if IsPermanent(err) || exhausted {
		m.state = StateQuarantined
		m.nextRetry = time.Time{}
		return m.state
	}
	m.state = StateDegraded
	m.nextRetry = time.Now().Add(m.cfg.Delay(m.failures))
	return m.state
}

// Rearm resets a quarantined (or degraded) machine to loading with a fresh
// retry budget — the manual-reload escape hatch. A ready machine is left
// untouched: re-arming it would misreport a healthy entry as loading.
func (m *Machine) Rearm() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateReady {
		return
	}
	m.state = StateLoading
	m.failures = 0
	m.lastErr = nil
	m.since = time.Now()
	m.nextRetry = time.Time{}
}
