package graph

import (
	"fmt"
	"sort"
)

// DupPolicy controls how the builder treats duplicate edges (same source and
// target added more than once).
type DupPolicy int

const (
	// DupSum merges duplicates, summing their weights. This is the default
	// and matches co-occurrence projections, where the weight of an edge is
	// the number of shared affiliations.
	DupSum DupPolicy = iota
	// DupKeepFirst merges duplicates, keeping the first weight.
	DupKeepFirst
	// DupError makes Build fail on the first duplicate.
	DupError
	// DupAllow keeps parallel edges as distinct arcs.
	DupAllow
)

// Builder accumulates edges and freezes them into an immutable Graph.
// The zero value is not usable; construct with NewBuilder.
type Builder struct {
	kind      Kind
	weighted  bool
	dup       DupPolicy
	selfLoops bool
	numNodes  int
	srcs      []int32
	dsts      []int32
	ws        []float64
	err       error
}

// NewBuilder returns a builder for a graph of the given kind. By default the
// graph is unweighted, duplicate edges are summed, and self-loops are
// rejected (none of the paper's co-occurrence graphs have them).
func NewBuilder(kind Kind) *Builder {
	return &Builder{kind: kind, dup: DupSum}
}

// Weighted declares that the graph carries edge weights. AddEdge weights are
// ignored (treated as 1) unless this is set.
func (b *Builder) Weighted() *Builder { b.weighted = true; return b }

// Duplicates sets the duplicate-edge policy.
func (b *Builder) Duplicates(p DupPolicy) *Builder { b.dup = p; return b }

// AllowSelfLoops permits edges u→u. A self-loop on an undirected graph is
// stored once (it contributes 1 to the node's degree).
func (b *Builder) AllowSelfLoops() *Builder { b.selfLoops = true; return b }

// EnsureNodes guarantees the built graph has at least n nodes, so isolated
// nodes (with no edges) can exist. Node ids are dense in [0, n).
func (b *Builder) EnsureNodes(n int) *Builder {
	if n > b.numNodes {
		b.numNodes = n
	}
	return b
}

// AddEdge records an edge u→v with weight 1.
func (b *Builder) AddEdge(u, v int32) *Builder { return b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records an edge u→v with the given weight. Weights must be
// positive and finite; the first violation is remembered and reported by
// Build.
func (b *Builder) AddWeightedEdge(u, v int32, w float64) *Builder {
	if b.err != nil {
		return b
	}
	if u < 0 || v < 0 {
		b.err = fmt.Errorf("graph: negative node id in edge %d→%d", u, v)
		return b
	}
	if u == v && !b.selfLoops {
		b.err = fmt.Errorf("graph: self-loop %d→%d (enable with AllowSelfLoops)", u, v)
		return b
	}
	if !(w > 0) { // catches NaN, 0, negatives
		b.err = fmt.Errorf("graph: edge %d→%d has non-positive weight %v", u, v, w)
		return b
	}
	if int(u)+1 > b.numNodes {
		b.numNodes = int(u) + 1
	}
	if int(v)+1 > b.numNodes {
		b.numNodes = int(v) + 1
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
	b.ws = append(b.ws, w)
	return b
}

// NumPendingEdges returns the number of edges added so far (before
// deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.srcs) }

// Build freezes the accumulated edges into an immutable Graph. The builder
// can be reused afterwards; it retains its accumulated edges.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	type arc struct {
		src, dst int32
		w        float64
	}
	// Materialize directed arcs: undirected edges get mirrored (self-loops
	// stored once).
	arcs := make([]arc, 0, len(b.srcs)*2)
	for i := range b.srcs {
		u, v, w := b.srcs[i], b.dsts[i], b.ws[i]
		arcs = append(arcs, arc{u, v, w})
		if b.kind == Undirected && u != v {
			arcs = append(arcs, arc{v, u, w})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].src != arcs[j].src {
			return arcs[i].src < arcs[j].src
		}
		return arcs[i].dst < arcs[j].dst
	})
	// Deduplicate.
	if b.dup != DupAllow {
		out := arcs[:0]
		for _, a := range arcs {
			if len(out) > 0 && out[len(out)-1].src == a.src && out[len(out)-1].dst == a.dst {
				switch b.dup {
				case DupSum:
					out[len(out)-1].w += a.w
				case DupKeepFirst:
					// keep existing
				case DupError:
					return nil, fmt.Errorf("graph: duplicate edge %d→%d", a.src, a.dst)
				}
				continue
			}
			out = append(out, a)
		}
		arcs = out
	}
	n := b.numNodes
	g := &Graph{
		kind:    b.kind,
		offsets: make([]int64, n+1),
		targets: make([]int32, len(arcs)),
	}
	if b.weighted {
		g.weights = make([]float64, len(arcs))
	}
	for i, a := range arcs {
		g.offsets[a.src+1]++
		g.targets[i] = a.dst
		if b.weighted {
			g.weights[i] = a.w
		}
	}
	for u := 0; u < n; u++ {
		g.offsets[u+1] += g.offsets[u]
	}
	// Logical edge count.
	if b.kind == Undirected {
		loops := 0
		for u := int32(0); int(u) < n; u++ {
			lo, hi := g.offsets[u], g.offsets[u+1]
			for k := lo; k < hi; k++ {
				if g.targets[k] == u {
					loops++
				}
			}
		}
		g.numEdges = (len(arcs)-loops)/2 + loops
	} else {
		g.numEdges = len(arcs)
	}
	return g, nil
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are known valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges is a convenience constructor for an unweighted graph from a flat
// edge list.
func FromEdges(kind Kind, edges [][2]int32) (*Graph, error) {
	b := NewBuilder(kind)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromWeightedEdges is a convenience constructor for a weighted graph.
type WeightedEdge struct {
	U, V int32
	W    float64
}

// FromWeighted builds a weighted graph from a flat weighted edge list.
func FromWeighted(kind Kind, edges []WeightedEdge) (*Graph, error) {
	b := NewBuilder(kind).Weighted()
	for _, e := range edges {
		b.AddWeightedEdge(e.U, e.V, e.W)
	}
	return b.Build()
}
