package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomDirected builds a random directed weighted graph from fuzz input.
func randomDirected(r *rand.Rand, n, m int) *Graph {
	b := NewBuilder(Directed).Weighted().EnsureNodes(n).AllowSelfLoops()
	for i := 0; i < m; i++ {
		b.AddWeightedEdge(int32(r.Intn(n)), int32(r.Intn(n)), 1+r.Float64()*9)
	}
	return b.MustBuild()
}

func TestTransposeInvolution(t *testing.T) {
	// Property: transpose(transpose(g)) has exactly g's edge multiset.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDirected(r, 2+r.Intn(30), r.Intn(120))
		tt := Transpose(Transpose(g))
		return reflect.DeepEqual(SortedEdges(g), SortedEdges(tt))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransposeReversesArcs(t *testing.T) {
	g := NewBuilder(Directed).Weighted().
		AddWeightedEdge(0, 1, 2).AddWeightedEdge(1, 2, 3).MustBuild()
	tr := Transpose(g)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) {
		t.Error("arcs not reversed")
	}
	if w, _ := tr.EdgeWeight(2, 1); w != 3 {
		t.Errorf("weight not carried: %v", w)
	}
	if tr.HasEdge(0, 1) {
		t.Error("original arc survived transpose")
	}
}

func TestTransposeDegreeConservation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomDirected(r, 40, 300)
	tr := Transpose(g)
	in := g.InDegrees()
	for u := 0; u < g.NumNodes(); u++ {
		if tr.Degree(int32(u)) != in[u] {
			t.Fatalf("node %d: transpose out-degree %d != in-degree %d", u, tr.Degree(int32(u)), in[u])
		}
	}
}

func TestAsUndirected(t *testing.T) {
	g := NewBuilder(Directed).Weighted().
		AddWeightedEdge(0, 1, 2).AddWeightedEdge(1, 0, 3). // reciprocal
		AddWeightedEdge(1, 2, 5).MustBuild()
	u := AsUndirected(g)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.Directed() {
		t.Fatal("result must be undirected")
	}
	if u.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (reciprocal pair merged)", u.NumEdges())
	}
	if w, _ := u.EdgeWeight(0, 1); w != 5 {
		t.Errorf("merged weight = %v, want 2+3=5", w)
	}
	// Undirected input returns the same graph.
	if AsUndirected(u) != u {
		t.Error("AsUndirected on undirected graph must be identity")
	}
}

func TestSubgraph(t *testing.T) {
	g := NewBuilder(Undirected).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 0).AddEdge(0, 2).MustBuild()
	sub, mapping := Subgraph(g, []int32{0, 2, 3})
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", sub.NumNodes())
	}
	want := []int32{0, 2, 3}
	if !reflect.DeepEqual(mapping, want) {
		t.Errorf("mapping = %v, want %v", mapping, want)
	}
	// Edges among {0,2,3}: 2-3, 3-0, 0-2 → 3 edges; 0-1 and 1-2 dropped.
	if sub.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", sub.NumEdges())
	}
}

func TestSubgraphDuplicateKeep(t *testing.T) {
	g := NewBuilder(Undirected).AddEdge(0, 1).MustBuild()
	sub, mapping := Subgraph(g, []int32{1, 1, 0})
	if sub.NumNodes() != 2 || len(mapping) != 2 {
		t.Fatalf("dedup failed: %d nodes, mapping %v", sub.NumNodes(), mapping)
	}
	if mapping[0] != 1 || mapping[1] != 0 {
		t.Errorf("mapping order = %v, want [1 0]", mapping)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewBuilder(Undirected).EnsureNodes(7).
		AddEdge(0, 1).AddEdge(1, 2).
		AddEdge(3, 4).MustBuild() // 5, 6 isolated
	comp, n := ConnectedComponents(g)
	if n != 4 {
		t.Fatalf("components = %d, want 4", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("nodes 0..2 must share a component")
	}
	if comp[3] != comp[4] {
		t.Error("nodes 3,4 must share a component")
	}
	if comp[5] == comp[6] {
		t.Error("isolated nodes must be distinct components")
	}
}

func TestConnectedComponentsDirectedWeak(t *testing.T) {
	// 0→1←2: weakly connected even though not strongly.
	g := NewBuilder(Directed).AddEdge(0, 1).AddEdge(2, 1).MustBuild()
	_, n := ConnectedComponents(g)
	if n != 1 {
		t.Errorf("weak components = %d, want 1", n)
	}
}

func TestLargestComponent(t *testing.T) {
	g := NewBuilder(Undirected).EnsureNodes(8).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3). // size 4
		AddEdge(5, 6).MustBuild()                  // size 2 (+ isolated 4, 7)
	lc, mapping := LargestComponent(g)
	if lc.NumNodes() != 4 {
		t.Fatalf("largest component size = %d, want 4", lc.NumNodes())
	}
	if !reflect.DeepEqual(mapping, []int32{0, 1, 2, 3}) {
		t.Errorf("mapping = %v", mapping)
	}
	// Single-component graph returns itself.
	tri := NewBuilder(Undirected).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2).MustBuild()
	same, _ := LargestComponent(tri)
	if same != tri {
		t.Error("single-component input should be returned as-is")
	}
}

func TestProjectBipartite(t *testing.T) {
	// Containers: {0,1,2}, {1,2}, {3}. Entity pairs: (0,1),(0,2),(1,2)x2.
	g, err := ProjectBipartite(5, [][]int32{{0, 1, 2}, {1, 2}, {3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
	if w, _ := g.EdgeWeight(1, 2); w != 2 {
		t.Errorf("weight(1,2) = %v, want 2 shared containers", w)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("weight(0,1) = %v, want 1", w)
	}
	if g.Degree(3) != 0 || g.Degree(4) != 0 {
		t.Error("singleton-container and absent entities must be isolated")
	}
}

func TestProjectBipartiteCap(t *testing.T) {
	big := []int32{0, 1, 2, 3, 4}
	g, err := ProjectBipartite(5, [][]int32{big, {0, 1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The size-5 container is skipped by the cap; only (0,1) remains.
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (capped)", g.NumEdges())
	}
}

func TestStripWeights(t *testing.T) {
	g := NewBuilder(Undirected).Weighted().AddWeightedEdge(0, 1, 5).MustBuild()
	u := StripWeights(g)
	if u.Weighted() {
		t.Fatal("stripped graph still weighted")
	}
	if u.NumEdges() != g.NumEdges() || u.NumNodes() != g.NumNodes() {
		t.Error("structure changed")
	}
	if u.ArcWeight(0) != 1 {
		t.Errorf("unweighted arc weight = %v, want 1", u.ArcWeight(0))
	}
	// Idempotent on unweighted graphs.
	if StripWeights(u) != u {
		t.Error("StripWeights on unweighted graph must be identity")
	}
}

func TestReweight(t *testing.T) {
	g := NewBuilder(Undirected).Weighted().
		AddWeightedEdge(0, 1, 2).AddWeightedEdge(1, 2, 3).MustBuild()
	r := Reweight(g, func(u, v int32, w float64) float64 { return w * 10 })
	if w, _ := r.EdgeWeight(0, 1); w != 20 {
		t.Errorf("reweighted = %v, want 20", w)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 2 {
		t.Errorf("original mutated: %v", w)
	}
}

func TestCommonNeighborWeights(t *testing.T) {
	// Triangle + pendant: edge (0,1) shares neighbor 2 → weight 2;
	// edge (2,3) shares none → weight 1.
	g := NewBuilder(Undirected).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2).AddEdge(2, 3).MustBuild()
	w := CommonNeighborWeights(g)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.EdgeWeight(0, 1); got != 2 {
		t.Errorf("weight(0,1) = %v, want 2 (one shared neighbor + 1)", got)
	}
	if got, _ := w.EdgeWeight(2, 3); got != 1 {
		t.Errorf("weight(2,3) = %v, want 1", got)
	}
	// Symmetry of the derived weights.
	a, _ := w.EdgeWeight(1, 0)
	b, _ := w.EdgeWeight(0, 1)
	if a != b {
		t.Errorf("asymmetric weights %v vs %v", a, b)
	}
}
