package graph

import (
	"math"
	"strings"
	"testing"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, NewBuilder(Undirected))
	if g.NumNodes() != 0 || g.NumEdges() != 0 || g.NumArcs() != 0 {
		t.Errorf("empty graph has n=%d m=%d arcs=%d", g.NumNodes(), g.NumEdges(), g.NumArcs())
	}
	var zero Graph
	if zero.NumNodes() != 0 {
		t.Errorf("zero value graph has %d nodes", zero.NumNodes())
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero value Validate: %v", err)
	}
}

func TestUndirectedTriangle(t *testing.T) {
	g := mustBuild(t, NewBuilder(Undirected).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2))
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
	if g.NumArcs() != 6 {
		t.Errorf("arcs = %d, want 6 (each edge mirrored)", g.NumArcs())
	}
	for u := int32(0); u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge must exist in both directions")
	}
	if g.HasEdge(0, 0) {
		t.Error("unexpected self-loop")
	}
}

func TestDirectedEdgesNotMirrored(t *testing.T) {
	g := mustBuild(t, NewBuilder(Directed).AddEdge(0, 1).AddEdge(1, 2))
	if g.NumEdges() != 2 || g.NumArcs() != 2 {
		t.Fatalf("edges=%d arcs=%d, want 2/2", g.NumEdges(), g.NumArcs())
	}
	if g.HasEdge(1, 0) {
		t.Error("directed graph must not mirror arcs")
	}
	in := g.InDegrees()
	if in[0] != 0 || in[1] != 1 || in[2] != 1 {
		t.Errorf("in-degrees = %v, want [0 1 1]", in)
	}
	if got := g.DanglingNodes(); len(got) != 1 || got[0] != 2 {
		t.Errorf("dangling = %v, want [2]", got)
	}
}

func TestDuplicatePolicies(t *testing.T) {
	t.Run("sum", func(t *testing.T) {
		g := mustBuild(t, NewBuilder(Directed).Weighted().
			AddWeightedEdge(0, 1, 2).AddWeightedEdge(0, 1, 3))
		w, ok := g.EdgeWeight(0, 1)
		if !ok || w != 5 {
			t.Errorf("weight = %v/%v, want 5/true", w, ok)
		}
		if g.NumEdges() != 1 {
			t.Errorf("edges = %d, want 1 after merge", g.NumEdges())
		}
	})
	t.Run("keep-first", func(t *testing.T) {
		g := mustBuild(t, NewBuilder(Directed).Weighted().Duplicates(DupKeepFirst).
			AddWeightedEdge(0, 1, 2).AddWeightedEdge(0, 1, 3))
		if w, _ := g.EdgeWeight(0, 1); w != 2 {
			t.Errorf("weight = %v, want 2", w)
		}
	})
	t.Run("error", func(t *testing.T) {
		_, err := NewBuilder(Directed).Duplicates(DupError).
			AddEdge(0, 1).AddEdge(0, 1).Build()
		if err == nil {
			t.Fatal("want duplicate error")
		}
	})
	t.Run("allow", func(t *testing.T) {
		g := mustBuild(t, NewBuilder(Directed).Duplicates(DupAllow).
			AddEdge(0, 1).AddEdge(0, 1))
		if g.NumArcs() != 2 {
			t.Errorf("arcs = %d, want 2 parallel", g.NumArcs())
		}
	})
}

func TestSelfLoops(t *testing.T) {
	if _, err := NewBuilder(Undirected).AddEdge(3, 3).Build(); err == nil {
		t.Fatal("self-loop must be rejected by default")
	}
	g := mustBuild(t, NewBuilder(Undirected).AllowSelfLoops().AddEdge(0, 0).AddEdge(0, 1))
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	// A self-loop on an undirected graph is stored once.
	if g.Degree(0) != 2 {
		t.Errorf("degree(0) = %d, want 2 (loop + edge)", g.Degree(0))
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
		want string
	}{
		{"negative-id", NewBuilder(Directed).AddEdge(-1, 0), "negative"},
		{"zero-weight", NewBuilder(Directed).Weighted().AddWeightedEdge(0, 1, 0), "non-positive"},
		{"nan-weight", NewBuilder(Directed).Weighted().AddWeightedEdge(0, 1, math.NaN()), "non-positive"},
		{"negative-weight", NewBuilder(Directed).Weighted().AddWeightedEdge(0, 1, -2), "non-positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.b.Build()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want contains %q", err, tc.want)
			}
		})
	}
}

func TestEnsureNodesIsolated(t *testing.T) {
	g := mustBuild(t, NewBuilder(Undirected).EnsureNodes(10).AddEdge(0, 1))
	if g.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", g.NumNodes())
	}
	if g.Degree(9) != 0 {
		t.Errorf("degree(9) = %d, want isolated", g.Degree(9))
	}
	if got := len(g.DanglingNodes()); got != 8 {
		t.Errorf("dangling count = %d, want 8", got)
	}
}

func TestWeightedDegreeTheta(t *testing.T) {
	g := mustBuild(t, NewBuilder(Directed).Weighted().
		AddWeightedEdge(0, 1, 2.5).AddWeightedEdge(0, 2, 1.5).AddWeightedEdge(1, 2, 4))
	if got := g.WeightedDegree(0); got != 4 {
		t.Errorf("Θ(0) = %v, want 4", got)
	}
	if got := g.WeightedDegree(2); got != 0 {
		t.Errorf("Θ(2) = %v, want 0 (sink)", got)
	}
	// Unweighted graphs: Θ == degree.
	u := mustBuild(t, NewBuilder(Undirected).AddEdge(0, 1).AddEdge(0, 2))
	if got := u.WeightedDegree(0); got != 2 {
		t.Errorf("unweighted Θ(0) = %v, want degree 2", got)
	}
}

func TestArcAccessors(t *testing.T) {
	g := mustBuild(t, NewBuilder(Directed).Weighted().
		AddWeightedEdge(0, 2, 7).AddWeightedEdge(0, 1, 3))
	lo, hi := g.ArcRange(0)
	if hi-lo != 2 {
		t.Fatalf("arc range size = %d, want 2", hi-lo)
	}
	// Arcs are sorted by destination.
	if g.ArcTarget(lo) != 1 || g.ArcTarget(lo+1) != 2 {
		t.Errorf("targets = %d,%d, want 1,2", g.ArcTarget(lo), g.ArcTarget(lo+1))
	}
	if g.ArcWeight(lo) != 3 || g.ArcWeight(lo+1) != 7 {
		t.Errorf("weights = %v,%v, want 3,7", g.ArcWeight(lo), g.ArcWeight(lo+1))
	}
	if g.TotalWeight() != 10 {
		t.Errorf("total weight = %v, want 10", g.TotalWeight())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustBuild(t, NewBuilder(Directed).
		AddEdge(0, 5).AddEdge(0, 2).AddEdge(0, 9).AddEdge(0, 1))
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
}

func TestStringSummary(t *testing.T) {
	g := mustBuild(t, NewBuilder(Undirected).AddEdge(0, 1))
	if got := g.String(); got != "undirected graph: 2 nodes, 1 edges" {
		t.Errorf("String() = %q", got)
	}
	if Directed.String() != "directed" || Undirected.String() != "undirected" {
		t.Error("Kind.String mismatch")
	}
}

func TestDegreesVectors(t *testing.T) {
	g := mustBuild(t, NewBuilder(Directed).AddEdge(0, 1).AddEdge(0, 2).AddEdge(2, 0))
	wantOut := []int{2, 0, 1}
	for i, w := range wantOut {
		if g.Degrees()[i] != w {
			t.Errorf("out degrees = %v, want %v", g.Degrees(), wantOut)
			break
		}
	}
	wantIn := []int{1, 1, 1}
	for i, w := range wantIn {
		if g.InDegrees()[i] != w {
			t.Errorf("in degrees = %v, want %v", g.InDegrees(), wantIn)
			break
		}
	}
}

func TestBuilderReuseAfterBuild(t *testing.T) {
	b := NewBuilder(Undirected).AddEdge(0, 1)
	g1 := mustBuild(t, b)
	b.AddEdge(1, 2)
	g2 := mustBuild(t, b)
	if g1.NumEdges() != 1 {
		t.Errorf("first build mutated: %d edges", g1.NumEdges())
	}
	if g2.NumEdges() != 2 {
		t.Errorf("second build edges = %d, want 2", g2.NumEdges())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on invalid input")
		}
	}()
	NewBuilder(Undirected).AddEdge(0, 0).MustBuild()
}
