package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts that arbitrary text input never panics the parser
// and that accepted inputs produce structurally valid graphs that survive a
// write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", true, false)
	f.Add("# comment\n3\t4\t2.5\n", false, true)
	f.Add("", true, false)
	f.Add("0 0\n", false, false)
	f.Add("9999999999 1\n", true, false)
	f.Add("1 2 NaN\n", false, true)
	f.Fuzz(func(t *testing.T, input string, directed, weighted bool) {
		kind := Undirected
		if directed {
			kind = Directed
		}
		g, err := ReadEdgeList(strings.NewReader(input), kind, weighted)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", err, input)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf, kind, weighted)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		a, b := SortedEdges(g), SortedEdges(g2)
		if len(a) != len(b) {
			t.Fatalf("round trip changed edge count: %d → %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed edge %d: %v → %v", i, a[i], b[i])
			}
		}
	})
}

// FuzzReadBinary asserts that arbitrary bytes never panic the binary loader
// — it must reject corruption gracefully (the checksum test covers targeted
// corruption; the fuzzer covers structural garbage).
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid snapshot and a few mutations of it.
	g := NewBuilder(Undirected).Weighted().
		AddWeightedEdge(0, 1, 2).AddWeightedEdge(1, 2, 3).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	truncated := valid[:len(valid)/2]
	f.Add(truncated)
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0x40
	f.Add(mutated)
	f.Add([]byte("D2PRGRF1 but then garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted binary graph fails validation: %v", err)
		}
	})
}

// FuzzReadScores asserts the significance parser never panics.
func FuzzReadScores(f *testing.F) {
	f.Add("0\t1.5\n1\t2\n")
	f.Add("")
	f.Add("# c\n5\t-3e8\n")
	f.Fuzz(func(t *testing.T, input string) {
		scores, err := ReadScores(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteScores(&buf, scores); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
	})
}
