package graph

// StripWeights returns an unweighted view of g: same nodes, same arcs, no
// weight array. The view shares the offsets/targets storage with g (both are
// immutable), so the call is O(1). It is how the paper's "unweighted graph"
// experiments reuse the weighted co-occurrence projections.
func StripWeights(g *Graph) *Graph {
	if g.weights == nil {
		return g
	}
	return &Graph{
		kind:     g.kind,
		offsets:  g.offsets,
		targets:  g.targets,
		weights:  nil,
		numEdges: g.numEdges,
	}
}

// Reweight returns a view of g whose arc weights are produced by fn, which
// receives (src, dst, oldWeight) for every stored arc. Offsets and targets
// are shared with g; the weight array is fresh. Callers must keep undirected
// weights symmetric: fn(u, v, w) should equal fn(v, u, w).
func Reweight(g *Graph, fn func(u, v int32, w float64) float64) *Graph {
	n := g.NumNodes()
	out := &Graph{
		kind:     g.kind,
		offsets:  g.offsets,
		targets:  g.targets,
		weights:  make([]float64, len(g.targets)),
		numEdges: g.numEdges,
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			out.weights[k] = fn(u, g.targets[k], g.ArcWeight(k))
		}
	}
	return out
}

// CommonNeighborWeights returns a weighted view of the (undirected) graph g
// where every edge {u,v} is weighted by |N(u) ∩ N(v)| + 1. This is how the
// paper derives the weighted listener-listener graph ("edge weights denote
// the number of shared friends"); the +1 keeps weights positive for edges
// whose endpoints share no neighbor.
func CommonNeighborWeights(g *Graph) *Graph {
	n := g.NumNodes()
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	out := &Graph{
		kind:     g.kind,
		offsets:  g.offsets,
		targets:  g.targets,
		weights:  make([]float64, len(g.targets)),
		numEdges: g.numEdges,
	}
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			mark[v] = u
		}
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			v := g.targets[k]
			shared := 0
			for _, w := range g.Neighbors(v) {
				if w != u && mark[w] == u {
					shared++
				}
			}
			out.weights[k] = float64(shared + 1)
		}
	}
	return out
}
