package graph

import (
	"math"
	"reflect"
	"testing"
)

func TestComputeStatsStar(t *testing.T) {
	// Star: center 0 with 4 leaves.
	b := NewBuilder(Undirected)
	for v := int32(1); v <= 4; v++ {
		b.AddEdge(0, v)
	}
	g := b.MustBuild()
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Fatalf("n=%d m=%d, want 5/4", s.Nodes, s.Edges)
	}
	if s.AvgDegree != 8.0/5 {
		t.Errorf("avg degree = %v, want 1.6", s.AvgDegree)
	}
	if s.MaxDegree != 4 || s.MinDegree != 1 {
		t.Errorf("min/max = %d/%d, want 1/4", s.MinDegree, s.MaxDegree)
	}
	// Degrees: [4 1 1 1 1]; mean 1.6; var = (4-1.6)² + 4(1-1.6)² over 5 = (5.76+1.44)/5.
	wantSD := math.Sqrt((5.76 + 4*0.36) / 5)
	if math.Abs(s.DegreeStdDev-wantSD) > 1e-12 {
		t.Errorf("degree sd = %v, want %v", s.DegreeStdDev, wantSD)
	}
	// Leaves see only the center (σ of {4} = 0); the center sees four
	// degree-1 leaves (σ = 0). Median of [0 0 0 0 0] = 0.
	if s.MedianNeighborDegStdDev != 0 {
		t.Errorf("median neighbor σ = %v, want 0", s.MedianNeighborDegStdDev)
	}
	if s.Dangling != 0 || s.SelfLoops != 0 {
		t.Errorf("dangling=%d loops=%d, want 0/0", s.Dangling, s.SelfLoops)
	}
}

func TestComputeStatsNeighborSpread(t *testing.T) {
	// Path 0-1-2-3: degrees [1 2 2 1].
	g := NewBuilder(Undirected).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustBuild()
	s := ComputeStats(g)
	// Neighbor degree lists: 0:{2}σ=0, 1:{1,2}σ=0.5, 2:{2,1}σ=0.5, 3:{2}σ=0.
	// Median of [0, 0, 0.5, 0.5] = 0.25.
	if math.Abs(s.MedianNeighborDegStdDev-0.25) > 1e-12 {
		t.Errorf("median neighbor σ = %v, want 0.25", s.MedianNeighborDegStdDev)
	}
}

func TestComputeStatsEmptyAndIsolated(t *testing.T) {
	s := ComputeStats(NewBuilder(Undirected).MustBuild())
	if s.Nodes != 0 || s.MinDegree != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	s = ComputeStats(NewBuilder(Undirected).EnsureNodes(3).MustBuild())
	if s.Dangling != 3 || s.AvgDegree != 0 {
		t.Errorf("isolated stats = %+v", s)
	}
}

func TestComputeStatsSelfLoops(t *testing.T) {
	g := NewBuilder(Directed).AllowSelfLoops().AddEdge(0, 0).AddEdge(0, 1).MustBuild()
	s := ComputeStats(g)
	if s.SelfLoops != 1 {
		t.Errorf("self loops = %d, want 1", s.SelfLoops)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range cases {
		if got := Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if !reflect.DeepEqual(in, []float64{3, 1, 2}) {
		t.Error("Median mutated its input")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewBuilder(Undirected).EnsureNodes(4).AddEdge(0, 1).AddEdge(0, 2).MustBuild()
	h := DegreeHistogram(g)
	want := map[int]int{2: 1, 1: 2, 0: 1}
	if !reflect.DeepEqual(h, want) {
		t.Errorf("histogram = %v, want %v", h, want)
	}
}

func TestTopBottomDegreeNodes(t *testing.T) {
	// Degrees: 0→3, 1→1, 2→2, 3→2, 4→0 (isolated).
	g := NewBuilder(Undirected).EnsureNodes(5).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).AddEdge(2, 3).MustBuild()
	top := TopDegreeNodes(g, 2)
	if !reflect.DeepEqual(top, []int32{0, 2}) {
		t.Errorf("top = %v, want [0 2] (ties by id)", top)
	}
	bottom := BottomDegreeNodes(g, 2)
	if !reflect.DeepEqual(bottom, []int32{1, 2}) {
		t.Errorf("bottom = %v, want [1 2] (isolated excluded, ties by id)", bottom)
	}
	if got := TopDegreeNodes(g, 100); len(got) != 5 {
		t.Errorf("overlong k must clamp, got %d", len(got))
	}
}
