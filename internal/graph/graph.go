// Package graph provides a compact compressed-sparse-row (CSR) graph store
// used by every random-walk computation in this module.
//
// A Graph is immutable once built. Construction goes through a Builder, which
// accepts edges in any order, deduplicates them if requested, and freezes the
// result into CSR arrays: one offsets array of length n+1 and one targets
// array of length m (plus a parallel weights array for weighted graphs).
// Immutability is what makes it safe to share one Graph between concurrently
// running rankers.
//
// Directedness is a property of the Graph value. For undirected graphs the
// builder stores each edge in both directions, so deg(v) (the paper's notion
// of the number of edges at v) equals the out-degree in the CSR arrays and no
// special casing is needed by the ranking code.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes directed from undirected graphs.
type Kind int

const (
	// Undirected graphs store every edge in both directions.
	Undirected Kind = iota
	// Directed graphs store edges exactly as added.
	Directed
)

// String returns "undirected" or "directed".
func (k Kind) String() string {
	if k == Directed {
		return "directed"
	}
	return "undirected"
}

// Graph is an immutable CSR graph. The zero value is an empty undirected
// graph with no nodes.
type Graph struct {
	kind Kind
	// offsets has length n+1; the out-neighbors of node u are
	// targets[offsets[u]:offsets[u+1]].
	offsets []int64
	targets []int32
	// weights is nil for unweighted graphs, otherwise parallel to targets.
	weights []float64
	// numEdges is the logical edge count: for undirected graphs this is
	// len(targets)/2 (plus self-loops which are stored once), for directed
	// graphs len(targets).
	numEdges int
}

// Kind reports whether the graph is directed or undirected.
func (g *Graph) Kind() Kind { return g.kind }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.kind == Directed }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of logical edges: each undirected edge counts
// once even though it is stored twice.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumArcs returns the number of stored arcs (directed adjacency entries).
// For undirected graphs NumArcs == 2*NumEdges - selfLoops.
func (g *Graph) NumArcs() int { return len(g.targets) }

// Degree returns the number of stored arcs leaving node u. For undirected
// graphs this is the degree in the paper's sense; for directed graphs it is
// the out-degree.
func (g *Graph) Degree(u int32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// OutDegree is a synonym for Degree that reads better on directed graphs.
func (g *Graph) OutDegree(u int32) int { return g.Degree(u) }

// Neighbors returns the out-neighbor slice of node u. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.targets[g.offsets[u]:g.offsets[u+1]]
}

// WeightsOf returns the weight slice parallel to Neighbors(u), or nil for
// unweighted graphs. The returned slice aliases internal storage and must not
// be modified.
func (g *Graph) WeightsOf(u int32) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[u]:g.offsets[u+1]]
}

// ArcRange returns the half-open range [lo, hi) of arc indices for node u.
// Arc indices index the flat Targets/Weights arrays; they are the natural
// key for per-edge transition probability tables.
func (g *Graph) ArcRange(u int32) (lo, hi int64) {
	return g.offsets[u], g.offsets[u+1]
}

// ArcTarget returns the destination of arc k.
func (g *Graph) ArcTarget(k int64) int32 { return g.targets[k] }

// ArcWeight returns the weight of arc k (1 for unweighted graphs).
func (g *Graph) ArcWeight(k int64) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[k]
}

// WeightedDegree returns Θ(u): the sum of weights of arcs leaving u. For
// unweighted graphs it equals the degree.
func (g *Graph) WeightedDegree(u int32) float64 {
	if g.weights == nil {
		return float64(g.Degree(u))
	}
	lo, hi := g.offsets[u], g.offsets[u+1]
	var s float64
	for _, w := range g.weights[lo:hi] {
		s += w
	}
	return s
}

// HasEdge reports whether an arc u→v is stored. Cost is O(deg(u)).
func (g *Graph) HasEdge(u, v int32) bool {
	for _, t := range g.Neighbors(u) {
		if t == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of arc u→v and whether it exists. Parallel
// edges (if the builder allowed them) report the first stored weight.
func (g *Graph) EdgeWeight(u, v int32) (float64, bool) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	for k := lo; k < hi; k++ {
		if g.targets[k] == v {
			return g.ArcWeight(k), true
		}
	}
	return 0, false
}

// Degrees returns a fresh slice with the (out-)degree of every node.
func (g *Graph) Degrees() []int {
	n := g.NumNodes()
	d := make([]int, n)
	for u := 0; u < n; u++ {
		d[u] = g.Degree(int32(u))
	}
	return d
}

// InDegrees returns a fresh slice with the in-degree of every node. For
// undirected graphs in-degree equals degree.
func (g *Graph) InDegrees() []int {
	n := g.NumNodes()
	d := make([]int, n)
	for _, t := range g.targets {
		d[t]++
	}
	return d
}

// DanglingNodes returns the nodes with no outgoing arcs, in ascending order.
// These are the nodes whose random-walk mass must be redistributed.
func (g *Graph) DanglingNodes() []int32 {
	var out []int32
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(int32(u)) == 0 {
			out = append(out, int32(u))
		}
	}
	return out
}

// TotalWeight returns the sum of all stored arc weights.
func (g *Graph) TotalWeight() float64 {
	if g.weights == nil {
		return float64(len(g.targets))
	}
	var s float64
	for _, w := range g.weights {
		s += w
	}
	return s
}

// String returns a short human-readable summary such as
// "undirected graph: 1892 nodes, 12717 edges".
func (g *Graph) String() string {
	return fmt.Sprintf("%s graph: %d nodes, %d edges", g.kind, g.NumNodes(), g.NumEdges())
}

// Validate checks internal consistency of the CSR arrays. It is primarily a
// testing aid; Builder.Build always produces a valid graph.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) == 0 {
		if len(g.targets) != 0 {
			return errors.New("graph: targets without offsets")
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for u := 0; u < n; u++ {
		if g.offsets[u+1] < g.offsets[u] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
	}
	if g.offsets[n] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.targets))
	}
	for k, t := range g.targets {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("graph: arc %d targets out-of-range node %d", k, t)
		}
	}
	if g.weights != nil {
		if len(g.weights) != len(g.targets) {
			return fmt.Errorf("graph: %d weights for %d arcs", len(g.weights), len(g.targets))
		}
		for k, w := range g.weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("graph: arc %d has invalid weight %v", k, w)
			}
		}
	}
	if g.kind == Undirected {
		// Every stored arc must have a mirror.
		in := g.InDegrees()
		for u := 0; u < n; u++ {
			if in[u] != g.Degree(int32(u)) {
				return fmt.Errorf("graph: undirected node %d has in-degree %d != degree %d", u, in[u], g.Degree(int32(u)))
			}
		}
	}
	return nil
}
