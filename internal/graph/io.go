package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Edge-list I/O.
//
// The on-disk format is a plain text edge list, one arc per line:
//
//	# comment lines start with '#'
//	<src> <dst> [<weight>]
//
// Fields are separated by tabs or spaces. Node ids are non-negative integers.
// This covers the formats the paper's datasets ship in (SNAP/hetrec-style
// TSV).

// WriteEdgeList writes g to w in edge-list form. Undirected edges are written
// once (u ≤ v). Weights are written only for weighted graphs, using %g.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s\n", g.String()); err != nil {
		return err
	}
	n := g.NumNodes()
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d kind=%s weighted=%v\n",
		n, g.NumEdges(), g.kind, g.Weighted()); err != nil {
		return err
	}
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			v := g.targets[k]
			if g.kind == Undirected && v < u {
				continue // mirrored arc; the u ≤ v copy is written elsewhere
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d\t%d\t%g\n", u, v, g.ArcWeight(k))
			} else {
				_, err = fmt.Fprintf(bw, "%d\t%d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge list written by WriteEdgeList or any compatible
// producer. kind and weighted describe how to interpret the lines; weight
// columns are required when weighted is true and ignored when false.
func ReadEdgeList(r io.Reader, kind Kind, weighted bool) (*Graph, error) {
	b := NewBuilder(kind).AllowSelfLoops()
	if weighted {
		b.Weighted()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		w := 1.0
		if weighted {
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: weighted graph but no weight column", lineNo)
			}
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		b.AddWeightedEdge(int32(u), int32(v), w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return b.Build()
}

// WriteScores writes a per-node float map (significances, ranks, scores) as
// "<node>\t<value>" lines sorted by node id.
func WriteScores(w io.Writer, scores []float64) error {
	bw := bufio.NewWriter(w)
	for i, s := range scores {
		if _, err := fmt.Fprintf(bw, "%d\t%.12g\n", i, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadScores parses the output of WriteScores. Node ids may appear in any
// order but must be dense in [0, n) for some n; missing ids default to 0.
func ReadScores(r io.Reader) ([]float64, error) {
	return readScores(r, -1)
}

// ReadScoresFor parses like ReadScores but rejects any node id ≥ numNodes.
// Callers that already know the graph size (the registry's .sig sidecar
// loader) get an exact allocation bound with no sparsity heuristic — a
// score file for an n-node graph can never demand more than n entries.
func ReadScoresFor(r io.Reader, numNodes int) ([]float64, error) {
	return readScores(r, numNodes)
}

// readScores implements ReadScores/ReadScoresFor; maxNodes < 0 means the
// graph size is unknown and the sparsity heuristic bounds the allocation.
func readScores(r io.Reader, maxNodes int) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	type kv struct {
		id int
		v  float64
	}
	var items []kv
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: scores line %d: want 2 fields, got %q", lineNo, line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("graph: scores line %d: bad node id %q", lineNo, fields[0])
		}
		if maxNodes >= 0 && id >= maxNodes {
			return nil, fmt.Errorf("graph: scores line %d: node id %d out of range for %d nodes", lineNo, id, maxNodes)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: scores line %d: bad value %q", lineNo, fields[1])
		}
		items = append(items, kv{id, v})
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read scores: %w", err)
	}
	// The ids densify into [0, maxID]; a near-empty file naming one huge id
	// would otherwise allocate maxID*8 bytes (a one-line file can demand
	// gigabytes, or overflow make entirely). With a known graph size the
	// per-line bound above is exact; without one, sparse files are still
	// legitimate — missing ids default to 0 — so only reject when the id
	// space is both large in absolute terms (≥ 2²⁴ entries, 128 MiB) and
	// wildly disproportionate to the entry count. Compare maxID itself,
	// not maxID+1, which overflows for maxID == MaxInt64.
	if maxNodes < 0 && maxID >= 1<<24 && maxID > 64*len(items)+1024 {
		return nil, fmt.Errorf("graph: scores too sparse: max id %d for %d entries", maxID, len(items))
	}
	out := make([]float64, maxID+1)
	for _, it := range items {
		out[it.id] = it.v
	}
	return out, nil
}

// SortedEdges returns all logical edges of g sorted by (u, v) with u ≤ v for
// undirected graphs. Primarily a test/serialization helper.
func SortedEdges(g *Graph) []WeightedEdge {
	var out []WeightedEdge
	n := g.NumNodes()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			v := g.targets[k]
			if g.kind == Undirected && v < u {
				continue
			}
			out = append(out, WeightedEdge{U: u, V: v, W: g.ArcWeight(k)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
