package graph

import (
	"math"
	"sort"
)

// Stats summarizes the structural quantities the paper reports in Table 3 for
// each data graph, plus a few extras used elsewhere in the evaluation.
type Stats struct {
	Nodes int
	// Edges is the logical edge count (undirected edges count once).
	Edges int
	// AvgDegree is the mean (out-)degree over all nodes.
	AvgDegree float64
	// DegreeStdDev is the population standard deviation of node degrees.
	DegreeStdDev float64
	// MedianNeighborDegStdDev is the median, over nodes with at least one
	// neighbor, of the population standard deviation of the degrees of the
	// node's neighbors. The paper uses this quantity ("median standard
	// deviation of neighbors' node degrees") to explain why Group-B graphs
	// are p-sensitive for p<0 while Group-C graphs are not.
	MedianNeighborDegStdDev float64
	MinDegree               int
	MaxDegree               int
	Dangling                int
	SelfLoops               int
}

// ComputeStats computes the Table-3 statistics for g.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges(), MinDegree: math.MaxInt}
	if n == 0 {
		s.MinDegree = 0
		return s
	}
	deg := g.Degrees()
	var sum, sumsq float64
	for u, d := range deg {
		sum += float64(d)
		sumsq += float64(d) * float64(d)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Dangling++
		}
		for _, t := range g.Neighbors(int32(u)) {
			if int(t) == u {
				s.SelfLoops++
			}
		}
	}
	if g.kind == Undirected {
		// Mirrored arcs mean a self-loop is stored once, so the count is
		// already correct; nothing to halve.
	}
	mean := sum / float64(n)
	s.AvgDegree = mean
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	s.DegreeStdDev = math.Sqrt(variance)
	s.MedianNeighborDegStdDev = medianNeighborDegStdDev(g, deg)
	return s
}

// medianNeighborDegStdDev computes, for every node with degree ≥ 1, the
// standard deviation of its neighbors' degrees, and returns the median of
// those values.
func medianNeighborDegStdDev(g *Graph, deg []int) float64 {
	n := g.NumNodes()
	sds := make([]float64, 0, n)
	for u := 0; u < n; u++ {
		nb := g.Neighbors(int32(u))
		if len(nb) == 0 {
			continue
		}
		var sum, sumsq float64
		for _, t := range nb {
			d := float64(deg[t])
			sum += d
			sumsq += d * d
		}
		m := sum / float64(len(nb))
		v := sumsq/float64(len(nb)) - m*m
		if v < 0 {
			v = 0
		}
		sds = append(sds, math.Sqrt(v))
	}
	return Median(sds)
}

// Median returns the median of xs (average of the two middle elements for
// even lengths). It returns 0 for an empty slice and does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// DegreeHistogram returns a map from degree value to the number of nodes with
// that degree.
func DegreeHistogram(g *Graph) map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.NumNodes(); u++ {
		h[g.Degree(int32(u))]++
	}
	return h
}

// TopDegreeNodes returns up to k node ids sorted by decreasing degree,
// breaking ties by ascending node id. It is used by the Table-2 experiment to
// pick the extreme-degree rows the paper shows.
func TopDegreeNodes(g *Graph, k int) []int32 {
	n := g.NumNodes()
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	if k > n {
		k = n
	}
	return ids[:k]
}

// BottomDegreeNodes returns up to k node ids with the smallest non-zero
// degree, sorted by ascending degree then ascending id.
func BottomDegreeNodes(g *Graph, k int) []int32 {
	n := g.NumNodes()
	ids := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if g.Degree(int32(i)) > 0 {
			ids = append(ids, int32(i))
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
