package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary CSR snapshot format.
//
// Text edge lists are convenient but parsing dominates load time for large
// graphs; the binary format dumps the CSR arrays directly and loads ~10×
// faster. Layout (all little-endian):
//
//	magic   [8]byte  "D2PRGRF1"
//	flags   uint32   bit0: directed, bit1: weighted
//	n       uint64   node count
//	arcs    uint64   stored arc count
//	edges   uint64   logical edge count
//	offsets [n+1]int64
//	targets [arcs]int32
//	weights [arcs]float64   (only when weighted)
//	check   uint64   FNV-1a of the preceding sections
var binaryMagic = [8]byte{'D', '2', 'P', 'R', 'G', 'R', 'F', '1'}

const (
	flagDirected = 1 << 0
	flagWeighted = 1 << 1
)

// fnv1a accumulates the checksum over raw bytes.
type fnv1a uint64

func newFNV() fnv1a { return 0xcbf29ce484222325 }

func (h fnv1a) update(p []byte) fnv1a {
	x := uint64(h)
	for _, b := range p {
		x ^= uint64(b)
		x *= 0x100000001b3
	}
	return fnv1a(x)
}

// checksumWriter tees writes into the checksum.
type checksumWriter struct {
	w   io.Writer
	sum fnv1a
}

func (cw *checksumWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum = cw.sum.update(p[:n])
	return n, err
}

// WriteBinary writes g in the binary CSR snapshot format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &checksumWriter{w: bw, sum: newFNV()}
	if _, err := cw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Directed() {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	header := []any{
		flags,
		uint64(g.NumNodes()),
		uint64(len(g.targets)),
		uint64(g.numEdges),
	}
	for _, v := range header {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.targets); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(cw, binary.LittleEndian, g.weights); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(cw.sum)); err != nil {
		return err
	}
	return bw.Flush()
}

// checksumReader tees reads into the checksum.
type checksumReader struct {
	r   io.Reader
	sum fnv1a
}

func (cr *checksumReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.sum = cr.sum.update(p[:n])
	return n, err
}

// ReadBinary loads a graph written by WriteBinary, verifying the checksum.
func ReadBinary(r io.Reader) (*Graph, error) {
	cr := &checksumReader{r: bufio.NewReaderSize(r, 1<<16), sum: newFNV()}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var flags uint32
	var n, arcs, edges uint64
	for _, dst := range []any{&flags, &n, &arcs, &edges} {
		if err := binary.Read(cr, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	const maxReasonable = 1 << 40
	if n > maxReasonable || arcs > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d arcs=%d", n, arcs)
	}
	g := &Graph{
		kind:     Undirected,
		offsets:  make([]int64, n+1),
		targets:  make([]int32, arcs),
		numEdges: int(edges),
	}
	if flags&flagDirected != 0 {
		g.kind = Directed
	}
	if err := binary.Read(cr, binary.LittleEndian, g.offsets); err != nil {
		return nil, fmt.Errorf("graph: binary offsets: %w", err)
	}
	if err := binary.Read(cr, binary.LittleEndian, g.targets); err != nil {
		return nil, fmt.Errorf("graph: binary targets: %w", err)
	}
	if flags&flagWeighted != 0 {
		g.weights = make([]float64, arcs)
		if err := binary.Read(cr, binary.LittleEndian, g.weights); err != nil {
			return nil, fmt.Errorf("graph: binary weights: %w", err)
		}
	}
	want := uint64(cr.sum)
	var got uint64
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("graph: binary checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("graph: checksum mismatch: file %x, computed %x", got, want)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	// Weights must be finite; Validate covers NaN/Inf/negative already via
	// the weight check, but zero weights are representable in the binary
	// format while the builder forbids them — reject for consistency.
	for k, w := range g.weights {
		if w <= 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("graph: binary arc %d has non-positive weight %v", k, w)
		}
	}
	return g, nil
}
