package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, directed, weighted bool) bool {
		r := rand.New(rand.NewSource(seed))
		kind := Undirected
		if directed {
			kind = Directed
		}
		n := 1 + r.Intn(30)
		b := NewBuilder(kind).EnsureNodes(n).AllowSelfLoops()
		if weighted {
			b.Weighted()
		}
		for i := 0; i < r.Intn(90); i++ {
			b.AddWeightedEdge(int32(r.Intn(n)), int32(r.Intn(n)), float64(1+r.Intn(9)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return g2.Kind() == g.Kind() &&
			g2.Weighted() == g.Weighted() &&
			g2.NumNodes() == g.NumNodes() &&
			g2.NumEdges() == g.NumEdges() &&
			reflect.DeepEqual(SortedEdges(g), SortedEdges(g2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBinaryPreservesIsolatedNodes(t *testing.T) {
	// Unlike the text format, the binary snapshot keeps trailing isolated
	// nodes.
	g := NewBuilder(Undirected).EnsureNodes(10).AddEdge(0, 1).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 10 {
		t.Errorf("nodes = %d, want 10", g2.NumNodes())
	}
}

func TestBinaryChecksumDetectsCorruption(t *testing.T) {
	g := NewBuilder(Undirected).Weighted().
		AddWeightedEdge(0, 1, 2).AddWeightedEdge(1, 2, 3).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the payload.
	data[len(data)/2] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("corrupted payload must fail the checksum")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC and then some longer content here........"),
	}
	for _, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("input %q: want error", data)
		}
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := NewBuilder(Directed).AddEdge(0, 1).AddEdge(1, 2).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, 20, len(data) - 4} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d: want error", cut)
		}
	}
}
