package graph

// Transpose returns the graph with every arc reversed. For undirected graphs
// it returns a structural copy (transposition is a no-op), built fresh so the
// caller may rely on the result not aliasing g.
func Transpose(g *Graph) *Graph {
	n := g.NumNodes()
	t := &Graph{
		kind:     g.kind,
		offsets:  make([]int64, n+1),
		targets:  make([]int32, len(g.targets)),
		numEdges: g.numEdges,
	}
	if g.weights != nil {
		t.weights = make([]float64, len(g.weights))
	}
	for _, dst := range g.targets {
		t.offsets[dst+1]++
	}
	for u := 0; u < n; u++ {
		t.offsets[u+1] += t.offsets[u]
	}
	cursor := make([]int64, n)
	copy(cursor, t.offsets[:n])
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			dst := g.targets[k]
			pos := cursor[dst]
			cursor[dst]++
			t.targets[pos] = u
			if t.weights != nil {
				t.weights[pos] = g.weights[k]
			}
		}
	}
	return t
}

// AsUndirected returns an undirected version of g: every directed arc u→v
// becomes an undirected edge {u,v}; duplicate edges arising from reciprocal
// arcs are merged with summed weights. If g is already undirected the result
// is g itself.
func AsUndirected(g *Graph) *Graph {
	if g.kind == Undirected {
		return g
	}
	b := NewBuilder(Undirected).EnsureNodes(g.NumNodes()).AllowSelfLoops()
	if g.weights != nil {
		b.Weighted()
	}
	n := g.NumNodes()
	for u := int32(0); int(u) < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for k := lo; k < hi; k++ {
			v := g.targets[k]
			// Add each unordered pair once per stored arc direction; DupSum
			// merges reciprocal arcs.
			if u <= v {
				b.AddWeightedEdge(u, v, g.ArcWeight(k))
			} else {
				b.AddWeightedEdge(v, u, g.ArcWeight(k))
			}
		}
	}
	return b.MustBuild()
}

// Subgraph returns the induced subgraph on the given nodes, together with the
// mapping from new node ids to original ids (newToOld). Nodes not present in
// keep are dropped along with their incident edges. The keep slice may be in
// any order; new ids follow its order after de-duplication.
func Subgraph(g *Graph, keep []int32) (*Graph, []int32) {
	oldToNew := make(map[int32]int32, len(keep))
	newToOld := make([]int32, 0, len(keep))
	for _, u := range keep {
		if _, ok := oldToNew[u]; ok {
			continue
		}
		oldToNew[u] = int32(len(newToOld))
		newToOld = append(newToOld, u)
	}
	b := NewBuilder(g.kind).EnsureNodes(len(newToOld)).AllowSelfLoops()
	if g.weights != nil {
		b.Weighted()
	}
	for newU, oldU := range newToOld {
		lo, hi := g.offsets[oldU], g.offsets[oldU+1]
		for k := lo; k < hi; k++ {
			oldV := g.targets[k]
			newV, ok := oldToNew[oldV]
			if !ok {
				continue
			}
			if g.kind == Undirected {
				// Each undirected edge appears twice in storage; emit once.
				if int32(newU) > newV {
					continue
				}
				if int32(newU) == newV {
					// self-loop stored once
					b.AddWeightedEdge(int32(newU), newV, g.ArcWeight(k))
					continue
				}
			}
			b.AddWeightedEdge(int32(newU), newV, g.ArcWeight(k))
		}
	}
	return b.MustBuild(), newToOld
}

// ConnectedComponents returns, for each node, the id of its weakly connected
// component, plus the number of components. Component ids are dense and
// assigned in order of the smallest node id in the component.
func ConnectedComponents(g *Graph) (comp []int32, count int) {
	n := g.NumNodes()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	// For directed graphs we need union over both directions; build the
	// transpose once.
	var rev *Graph
	if g.kind == Directed {
		rev = Transpose(g)
	}
	var stack []int32
	next := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := next
		next++
		count++
		comp[s] = id
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
			if rev != nil {
				for _, v := range rev.Neighbors(u) {
					if comp[v] == -1 {
						comp[v] = id
						stack = append(stack, v)
					}
				}
			}
		}
	}
	return comp, count
}

// LargestComponent returns the induced subgraph on the largest weakly
// connected component and the new→old id mapping. Ties are broken by the
// component containing the smallest node id.
func LargestComponent(g *Graph) (*Graph, []int32) {
	comp, count := ConnectedComponents(g)
	if count <= 1 {
		// Whole graph; still return an explicit mapping for a uniform API.
		ids := make([]int32, g.NumNodes())
		for i := range ids {
			ids[i] = int32(i)
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	keep := make([]int32, 0, sizes[best])
	for u, c := range comp {
		if int(c) == best {
			keep = append(keep, int32(u))
		}
	}
	return Subgraph(g, keep)
}

// ProjectBipartite builds the co-occurrence projection the paper's data
// graphs are made of. Input: membership lists, one per "container" (movie,
// article, product, ...), each listing the member entities (actors, authors,
// commenters, ...). Two entities are connected iff they share at least one
// container; the edge weight is the number of shared containers. numEntities
// fixes the node count (entities with no co-memberships become isolated
// nodes). The projection is undirected and weighted.
//
// Containers larger than maxContainer are skipped entirely when
// maxContainer > 0: enormous containers generate quadratically many edges and
// real pipelines routinely cap them; the paper's IMDB/DBLP projections do the
// equivalent by construction.
func ProjectBipartite(numEntities int, containers [][]int32, maxContainer int) (*Graph, error) {
	b := NewBuilder(Undirected).Weighted().EnsureNodes(numEntities)
	for _, members := range containers {
		if maxContainer > 0 && len(members) > maxContainer {
			continue
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				u, v := members[i], members[j]
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				b.AddWeightedEdge(u, v, 1)
			}
		}
	}
	return b.Build()
}
