package graph

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTripProperty(t *testing.T) {
	f := func(seed int64, directed bool, weighted bool) bool {
		r := rand.New(rand.NewSource(seed))
		kind := Undirected
		if directed {
			kind = Directed
		}
		n := 2 + r.Intn(20)
		b := NewBuilder(kind).EnsureNodes(n).AllowSelfLoops()
		if weighted {
			b.Weighted()
		}
		m := r.Intn(60)
		for i := 0; i < m; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			w := float64(1+r.Intn(9)) / 2
			b.AddWeightedEdge(u, v, w)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf, kind, weighted)
		if err != nil {
			return false
		}
		// Node count can shrink when trailing nodes are isolated (the text
		// format cannot express them); compare edge multisets instead.
		return reflect.DeepEqual(SortedEdges(g), SortedEdges(g2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n\n0 1\n1 2\t3.5\n"
	g, err := ReadEdgeList(strings.NewReader(in), Undirected, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	if g.Weighted() {
		t.Error("unweighted read must ignore weight column")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"one-field", "5\n"},
		{"bad-src", "x 1\n"},
		{"bad-dst", "1 y\n"},
		{"missing-weight", "0 1\n"},
		{"bad-weight", "0 1 z\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			weighted := tc.name == "missing-weight" || tc.name == "bad-weight"
			if _, err := ReadEdgeList(strings.NewReader(tc.input), Directed, weighted); err == nil {
				t.Errorf("input %q: want error", tc.input)
			}
		})
	}
}

func TestScoresRoundTrip(t *testing.T) {
	scores := []float64{0.25, 1e-12, 3.5, 0, 42}
	var buf bytes.Buffer
	if err := WriteScores(&buf, scores); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScores(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scores) {
		t.Fatalf("len = %d, want %d", len(got), len(scores))
	}
	for i := range scores {
		if math.Abs(got[i]-scores[i]) > 1e-15 {
			t.Errorf("scores[%d] = %v, want %v", i, got[i], scores[i])
		}
	}
}

func TestReadScoresSparse(t *testing.T) {
	got, err := ReadScores(strings.NewReader("3\t1.5\n0\t2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 0, 1.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReadScoresErrors(t *testing.T) {
	for _, in := range []string{"a b c\n", "-1 2\n", "0 x\n"} {
		if _, err := ReadScores(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

// TestReadScoresRejectsExtremeSparsity: one line naming a huge id must not
// densify into a multi-gigabyte vector, while legitimately sparse files
// (missing ids default to 0 — e.g. a significance file scoring a few nodes
// of a large graph) must keep loading.
func TestReadScoresRejectsExtremeSparsity(t *testing.T) {
	if _, err := ReadScores(strings.NewReader("99999999\t1\n")); err == nil {
		t.Error("extremely sparse scores must be rejected")
	}
	// MaxInt64 would overflow a naive maxID+1 bound check and panic in
	// make; it must be rejected like any other oversized id.
	if _, err := ReadScores(strings.NewReader("9223372036854775807\t1\n")); err == nil {
		t.Error("MaxInt64 id must be rejected")
	}
	// Sparse but plausibly real: one scored node near the end of a
	// million-node graph (the registry's length check needs maxID = n-1).
	if got, err := ReadScores(strings.NewReader("999999\t1\n")); err != nil {
		t.Errorf("million-node sparse scores rejected: %v", err)
	} else if len(got) != 1000000 {
		t.Errorf("len = %d, want 1000000", len(got))
	}
	if _, err := ReadScores(strings.NewReader("900\t1\n")); err != nil {
		t.Errorf("moderately sparse scores rejected: %v", err)
	}
}

// TestReadScoresFor: with a known graph size the bound is exact — any id
// in range loads (however sparse), any id at or past n is rejected before
// allocation.
func TestReadScoresFor(t *testing.T) {
	got, err := ReadScoresFor(strings.NewReader("99\t1\n"), 100)
	if err != nil || len(got) != 100 {
		t.Errorf("in-range sparse id: len=%d err=%v", len(got), err)
	}
	if _, err := ReadScoresFor(strings.NewReader("100\t1\n"), 100); err == nil {
		t.Error("id == n must be rejected")
	}
	if _, err := ReadScoresFor(strings.NewReader("9223372036854775807\t1\n"), 100); err == nil {
		t.Error("huge id must be rejected")
	}
}

func TestSortedEdgesUndirectedOnce(t *testing.T) {
	g := NewBuilder(Undirected).AddEdge(2, 0).AddEdge(0, 1).MustBuild()
	edges := SortedEdges(g)
	if len(edges) != 2 {
		t.Fatalf("edges = %v, want 2 entries", edges)
	}
	if edges[0].U != 0 || edges[0].V != 1 || edges[1].U != 0 || edges[1].V != 2 {
		t.Errorf("unexpected order: %v", edges)
	}
}
