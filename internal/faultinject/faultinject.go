// Package faultinject is the test-only fault registry behind the chaos
// suite: named injection points threaded through the serving stack (registry
// loads, engine builds, cache compute closures) that are inert in production
// and, when enabled by a test, return errors, inject latency, or panic on
// demand.
//
// The production cost is one atomic load per injection point: Fire returns
// immediately unless Enable was called, and nothing in the shipping binary
// calls Enable — only tests do (always paired with a deferred Disable).
// Faults are armed per (point, name) with "" as the any-name wildcard, and
// can be limited to a firing count so a test can script "fail twice, then
// succeed" recovery sequences.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site in the serving stack.
type Point string

// The injection points threaded through the codebase. The name passed to
// Fire is the graph name at every one of them.
const (
	// PointRegistryLoad fires inside a registry entry's materialization,
	// before the real loader runs.
	PointRegistryLoad Point = "registry/load"
	// PointEngineBuild fires inside Snapshot.Engine before the pull topology
	// is built. Err is meaningless here (Engine cannot fail); use Delay or
	// Panic.
	PointEngineBuild Point = "engine/build"
	// PointRankCompute fires inside the rank cache's compute closure, after
	// admission but before the solve.
	PointRankCompute Point = "rankcache/compute"
	// PointPPRCompute fires inside the PPR cache's compute closure.
	PointPPRCompute Point = "pprcache/compute"
)

// Fault describes what an armed injection point does when it fires. Delay
// applies first, then Panic, then Err — a single fault can model a slow
// failure.
type Fault struct {
	// Err is returned from Fire (injection sites propagate it as the
	// operation's failure). Wrap with lifecycle.Permanent to simulate
	// corrupt-input failures.
	Err error
	// Delay is slept before anything else — simulated slow I/O.
	Delay time.Duration
	// Panic, when non-nil, is raised with panic() — simulated compute bug.
	Panic any
	// Count limits how many times the fault fires before disarming itself.
	// 0 means unlimited.
	Count int
}

// armed is one registered fault plus its remaining-firings budget.
type armed struct {
	fault     Fault
	remaining int // <0 = unlimited
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	faults  map[string]*armed
	fired   map[Point]int
)

func key(p Point, name string) string { return string(p) + "\x00" + name }

// Enable turns the registry on. Tests call it once and defer Disable; the
// production binary never does, keeping Fire a single atomic load.
func Enable() {
	mu.Lock()
	if faults == nil {
		faults = map[string]*armed{}
		fired = map[Point]int{}
	}
	mu.Unlock()
	enabled.Store(true)
}

// Disable turns the registry off and clears every armed fault and counter.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	faults = map[string]*armed{}
	fired = map[Point]int{}
	mu.Unlock()
}

// Arm registers a fault at (point, name). name "" is a wildcard matched by
// every Fire at the point; a name-specific fault takes precedence over the
// wildcard. Re-arming the same (point, name) replaces the previous fault.
func Arm(p Point, name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = map[string]*armed{}
		fired = map[Point]int{}
	}
	a := &armed{fault: f, remaining: -1}
	if f.Count > 0 {
		a.remaining = f.Count
	}
	faults[key(p, name)] = a
}

// Disarm removes the fault at (point, name), if any.
func Disarm(p Point, name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(faults, key(p, name))
}

// Fired returns how many times faults at the point have fired since the last
// Disable — the chaos suite's assertion hook.
func Fired(p Point) int {
	mu.Lock()
	defer mu.Unlock()
	return fired[p]
}

// Fire is called at every injection site. Disabled (the production state) it
// costs one atomic load and returns nil. Enabled, it looks up the
// name-specific fault, falling back to the point's wildcard; an armed fault
// sleeps Delay, raises Panic, and/or returns Err, consuming one firing of a
// counted fault.
func Fire(p Point, name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	a, ok := faults[key(p, name)]
	if !ok {
		a, ok = faults[key(p, "")]
	}
	if !ok {
		mu.Unlock()
		return nil
	}
	if a.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if a.remaining > 0 {
		a.remaining--
	}
	fired[p]++
	f := a.fault
	mu.Unlock()

	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}
