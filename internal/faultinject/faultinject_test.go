package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Disable()
	Arm(PointRegistryLoad, "g", Fault{Err: errors.New("boom")})
	if err := Fire(PointRegistryLoad, "g"); err != nil {
		t.Errorf("disabled registry fired: %v", err)
	}
}

func TestNameAndWildcardMatching(t *testing.T) {
	Enable()
	defer Disable()
	boom := errors.New("boom")
	wild := errors.New("wildcard boom")
	Arm(PointRegistryLoad, "g", Fault{Err: boom})
	Arm(PointRegistryLoad, "", Fault{Err: wild})

	if err := Fire(PointRegistryLoad, "g"); !errors.Is(err, boom) {
		t.Errorf("name-specific fault must win over wildcard, got %v", err)
	}
	if err := Fire(PointRegistryLoad, "other"); !errors.Is(err, wild) {
		t.Errorf("wildcard must catch unmatched names, got %v", err)
	}
	if err := Fire(PointEngineBuild, "g"); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
	if got := Fired(PointRegistryLoad); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestCountedFaultExhausts(t *testing.T) {
	Enable()
	defer Disable()
	boom := errors.New("twice")
	Arm(PointRankCompute, "g", Fault{Err: boom, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Fire(PointRankCompute, "g"); !errors.Is(err, boom) {
			t.Fatalf("firing %d: %v", i, err)
		}
	}
	if err := Fire(PointRankCompute, "g"); err != nil {
		t.Errorf("exhausted fault still fires: %v", err)
	}
	if got := Fired(PointRankCompute); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestDisarmAndDisableClear(t *testing.T) {
	Enable()
	Arm(PointPPRCompute, "g", Fault{Err: errors.New("x")})
	Disarm(PointPPRCompute, "g")
	if err := Fire(PointPPRCompute, "g"); err != nil {
		t.Errorf("disarmed fault fired: %v", err)
	}
	Arm(PointPPRCompute, "g", Fault{Err: errors.New("x")})
	Disable()
	Enable()
	defer Disable()
	if err := Fire(PointPPRCompute, "g"); err != nil {
		t.Errorf("Disable must clear armed faults, got %v", err)
	}
	if got := Fired(PointPPRCompute); got != 0 {
		t.Errorf("Disable must clear counters, got %d", got)
	}
}

func TestPanicFault(t *testing.T) {
	Enable()
	defer Disable()
	Arm(PointEngineBuild, "g", Fault{Panic: "injected panic", Count: 1})
	func() {
		defer func() {
			if p := recover(); p != "injected panic" {
				t.Errorf("recover = %v", p)
			}
		}()
		_ = Fire(PointEngineBuild, "g")
		t.Error("armed panic fault must not return")
	}()
}

func TestDelayFault(t *testing.T) {
	Enable()
	defer Disable()
	Arm(PointRegistryLoad, "g", Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Fire(PointRegistryLoad, "g"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay fault slept %v, want ≥20ms", d)
	}
}
