package dataset

import (
	"math"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
)

// CitationConfig parameterizes the directed citation-network generator used
// to exercise the paper's §3.2.2 (directed unweighted D2PR). Papers arrive
// in order; each cites earlier papers. The paper's directed-graph semantics
// are planted directly:
//
//   - In-edges (citations received) "do not require effort from the node"
//     and indicate authority: high-quality papers attract citations
//     (preferentially, so in-degree also has a rich-get-richer component).
//   - Out-edges (the reference list) cost effort: a long reference list
//     signals a non-discerning survey of low per-reference effort when
//     OutDegreeCost > 0 — exactly the "non-discerning connection maker"
//     the paper describes — so out-degree anti-correlates with quality.
type CitationConfig struct {
	// Papers is the number of nodes.
	Papers int
	// MeanRefs is the average reference-list length.
	MeanRefs float64
	// OutDegreeCost ≥ 0 strengthens the inverse quality → reference-count
	// relation; 0 makes reference counts quality-independent.
	OutDegreeCost float64
	// Attachment ∈ [0, 1] is the preferential-attachment share of citation
	// targets; the rest are chosen by quality proximity.
	Attachment float64
	// Seed drives all randomness.
	Seed uint64
}

func (c CitationConfig) withDefaults() CitationConfig {
	if c.Papers == 0 {
		c.Papers = 2000
	}
	if c.MeanRefs == 0 {
		c.MeanRefs = 8
	}
	if c.Attachment == 0 {
		c.Attachment = 0.5
	}
	return c
}

// CitationNetwork is a generated directed citation graph plus its planted
// ground truth.
type CitationNetwork struct {
	// Graph is directed: an arc u→v means u cites v (v is older).
	Graph *graph.Graph
	// Quality is the latent per-paper quality in (0, 1).
	Quality []float64
	// Significance is the observable significance: the citation count each
	// paper accumulated (its in-degree), the standard bibliometric measure.
	Significance []float64
}

// GenerateCitations runs the citation process.
func GenerateCitations(cfg CitationConfig) *CitationNetwork {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	n := cfg.Papers
	quality := make([]float64, n)
	for i := range quality {
		quality[i] = (r.Float64() + r.Float64()) / 2
	}
	b := graph.NewBuilder(graph.Directed).EnsureNodes(n).Duplicates(graph.DupKeepFirst)
	// Citation endpoints list for preferential attachment (papers appear
	// once at birth plus once per citation received).
	endpoints := make([]int32, 0, n*4)
	for v := int32(0); int(v) < n; v++ {
		endpoints = append(endpoints, v)
	}
	inDeg := make([]int, n)
	for u := 1; u < n; u++ {
		// Reference-list length: shrinks with quality when OutDegreeCost>0.
		base := cfg.MeanRefs
		if cfg.OutDegreeCost > 0 {
			base *= math.Pow(1.1-quality[u], cfg.OutDegreeCost) / math.Pow(0.6, cfg.OutDegreeCost)
		}
		refs := 1 + r.Poisson(base*0.85)
		if refs > u {
			refs = u
		}
		cited := make(map[int32]struct{}, refs)
		attempts := 0
		for len(cited) < refs && attempts < refs*20 {
			attempts++
			var v int32
			if r.Float64() < cfg.Attachment {
				// Preferential: proportional to 1 + citations received,
				// restricted to older papers by rejection.
				v = endpoints[r.Intn(len(endpoints))]
				if int(v) >= u {
					continue
				}
			} else {
				// Quality-proximal among older papers, tilted toward high
				// quality (good papers get found).
				v = int32(r.Intn(u))
				accept := 0.25 + 0.75*quality[v]
				if r.Float64() > accept {
					continue
				}
			}
			if _, dup := cited[v]; dup {
				continue
			}
			cited[v] = struct{}{}
			b.AddEdge(int32(u), v)
			endpoints = append(endpoints, v)
			inDeg[v]++
		}
	}
	g := b.MustBuild()
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = float64(inDeg[i])
	}
	return &CitationNetwork{Graph: g, Quality: quality, Significance: sig}
}
