package dataset

import (
	"math"
	"testing"

	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

func TestAffiliationBasicInvariants(t *testing.T) {
	a := GenerateAffiliation(AffiliationConfig{
		Entities: 500, Containers: 300, Regime: BalancedRegime,
		MeanMemberships: 3, Seed: 1,
	})
	if len(a.EntityQuality) != 500 || len(a.ContainerQuality) != 300 {
		t.Fatal("quality vector sizes wrong")
	}
	for _, q := range a.EntityQuality {
		if q < 0 || q > 1 {
			t.Fatalf("entity quality %v out of (0,1)", q)
		}
	}
	total := 0
	for c, members := range a.Members {
		seen := map[int32]bool{}
		for _, e := range members {
			if e < 0 || int(e) >= 500 {
				t.Fatalf("container %d has bad member %d", c, e)
			}
			if seen[e] {
				t.Fatalf("container %d lists member %d twice", c, e)
			}
			seen[e] = true
		}
		total += len(members)
	}
	var declared int
	for _, m := range a.Memberships {
		declared += m
	}
	if total != declared {
		t.Errorf("membership bookkeeping: %d listed vs %d declared", total, declared)
	}
	mean := float64(total) / 500
	if mean < 1.5 || mean > 6 {
		t.Errorf("mean memberships = %v, want near 3", mean)
	}
}

func TestCostRegimeInverseQuality(t *testing.T) {
	a := GenerateAffiliation(AffiliationConfig{
		Entities: 2000, Containers: 1000, Regime: CostRegime,
		MeanMemberships: 4, CostExponent: 2, Seed: 2,
	})
	m := make([]float64, len(a.Memberships))
	for i, v := range a.Memberships {
		m[i] = float64(v)
	}
	rho := stats.Spearman(a.EntityQuality, m)
	if rho > -0.5 {
		t.Errorf("cost regime: corr(quality, memberships) = %v, want strongly negative", rho)
	}
}

func TestHubRegimeHeavyTail(t *testing.T) {
	a := GenerateAffiliation(AffiliationConfig{
		Entities: 2000, Containers: 1000, Regime: HubRegime,
		MeanMemberships: 6, ParetoAlpha: 1.6, Seed: 3,
	})
	max, sum := 0, 0
	for _, m := range a.Memberships {
		if m > max {
			max = m
		}
		sum += m
	}
	mean := float64(sum) / 2000
	if float64(max) < 8*mean {
		t.Errorf("hub regime: max %d vs mean %.1f — tail too light", max, mean)
	}
}

func TestBalancedRegimeConcentrated(t *testing.T) {
	a := GenerateAffiliation(AffiliationConfig{
		Entities: 2000, Containers: 2000, Regime: BalancedRegime,
		MeanMemberships: 4, Seed: 4,
	})
	var sum, sumsq float64
	for _, m := range a.Memberships {
		sum += float64(m)
		sumsq += float64(m) * float64(m)
	}
	mean := sum / 2000
	sd := math.Sqrt(sumsq/2000 - mean*mean)
	if sd > mean {
		t.Errorf("balanced regime: σ=%v exceeds mean=%v — not concentrated", sd, mean)
	}
}

func TestTailQualityBias(t *testing.T) {
	// With full bias, tail (≫ mean) entities must be predominantly low
	// quality.
	a := GenerateAffiliation(AffiliationConfig{
		Entities: 4000, Containers: 3000, Regime: BalancedRegime,
		MeanMemberships: 3, TailFraction: 0.1, TailAlpha: 1.2,
		TailQualityBias: 1.0, MaxMemberships: 100, Seed: 5,
	})
	var tailQ, tailN float64
	for i, m := range a.Memberships {
		if m > 12 {
			tailQ += a.EntityQuality[i]
			tailN++
		}
	}
	if tailN < 20 {
		t.Fatalf("only %v tail entities generated", tailN)
	}
	if avg := tailQ / tailN; avg > 0.45 {
		t.Errorf("tail mean quality = %v, want below population mean 0.5", avg)
	}
}

func TestContainerTailCreatesMegaContainers(t *testing.T) {
	cfg := AffiliationConfig{
		Entities: 3000, Containers: 2000, Regime: BalancedRegime,
		MeanMemberships: 3, ContainerTailFraction: 0.01, ContainerTailMix: 0.3,
		Seed: 6,
	}
	a := GenerateAffiliation(cfg)
	counts := a.ContainerMemberCounts()
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	noTail := GenerateAffiliation(AffiliationConfig{
		Entities: 3000, Containers: 2000, Regime: BalancedRegime,
		MeanMemberships: 3, Seed: 6,
	})
	maxPlain := 0
	for _, c := range noTail.ContainerMemberCounts() {
		if c > maxPlain {
			maxPlain = c
		}
	}
	if max < 3*maxPlain {
		t.Errorf("mega containers: max size %d vs plain %d — tail ineffective", max, maxPlain)
	}
}

func TestProjectionsConsistent(t *testing.T) {
	a := GenerateAffiliation(AffiliationConfig{
		Entities: 400, Containers: 300, Regime: BalancedRegime,
		MeanMemberships: 3, Seed: 7,
	})
	eg := a.EntityProjection(0)
	cg := a.ContainerProjection(0)
	if err := eg.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if eg.NumNodes() != 400 || cg.NumNodes() != 300 {
		t.Errorf("projection sizes %d/%d, want 400/300", eg.NumNodes(), cg.NumNodes())
	}
	// Spot-check one edge weight: pick a container with ≥2 members; its
	// first two members must be adjacent in the entity projection with
	// weight ≥ 1.
	for _, members := range a.Members {
		if len(members) >= 2 {
			u, v := members[0], members[1]
			w, ok := eg.EdgeWeight(u, v)
			if !ok || w < 1 {
				t.Errorf("co-members %d,%d not adjacent (w=%v ok=%v)", u, v, w, ok)
			}
			break
		}
	}
	// Total projection weight equals the co-membership pair count.
	var pairs float64
	for _, members := range a.Members {
		k := float64(len(members))
		pairs += k * (k - 1) / 2
	}
	if got := eg.TotalWeight() / 2; math.Abs(got-pairs) > 1e-9 { // arcs stored twice
		t.Errorf("entity projection total weight %v, want %v co-membership pairs", got, pairs)
	}
}

func TestGenerateAffiliationDeterminism(t *testing.T) {
	cfg := AffiliationConfig{
		Entities: 300, Containers: 200, Regime: CostRegime,
		MeanMemberships: 3, Seed: 8,
	}
	a := GenerateAffiliation(cfg)
	b := GenerateAffiliation(cfg)
	ea := graph.SortedEdges(a.EntityProjection(0))
	eb := graph.SortedEdges(b.EntityProjection(0))
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic projection size")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("nondeterministic edge %d", i)
		}
	}
}

func TestRegimeString(t *testing.T) {
	if CostRegime.String() != "cost" || BalancedRegime.String() != "balanced" || HubRegime.String() != "hub" {
		t.Error("regime names wrong")
	}
	if MembershipRegime(9).String() == "" {
		t.Error("unknown regime must still stringify")
	}
}

func TestSignificanceBlend(t *testing.T) {
	quality := []float64{0.1, 0.5, 0.9, 0.3}
	degrees := []int{10, 5, 1, 8}
	pureQ := SignificanceBlend{QualityWeight: 1, Seed: 1}.Synthesize(quality, degrees)
	if stats.Spearman(pureQ, quality) != 1 {
		t.Error("quality-only blend must be co-monotone with quality")
	}
	pureD := SignificanceBlend{DegreeWeight: 1, Seed: 1}.Synthesize(quality, degrees)
	df := []float64{10, 5, 1, 8}
	if stats.Spearman(pureD, df) != 1 {
		t.Error("degree-only blend must be co-monotone with degree")
	}
	negD := SignificanceBlend{DegreeWeight: -1, Seed: 1}.Synthesize(quality, degrees)
	if stats.Spearman(negD, df) != -1 {
		t.Error("negative degree blend must invert degree order")
	}
}

func TestSignificanceBlendMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths must panic")
		}
	}()
	SignificanceBlend{}.Synthesize([]float64{1}, []int{1, 2})
}

func TestRatingAndCountScales(t *testing.T) {
	s := []float64{-1, 0, 3}
	r := RatingScale(s, 1, 5)
	if r[0] != 1 || r[2] != 5 {
		t.Errorf("RatingScale endpoints = %v", r)
	}
	if r[1] <= r[0] || r[1] >= r[2] {
		t.Errorf("RatingScale not monotone: %v", r)
	}
	if stats.Spearman(s, r) != 1 {
		t.Error("RatingScale must preserve ranks")
	}
	c := CountScale(s, 100)
	if stats.Spearman(s, c) != 1 {
		t.Error("CountScale must preserve ranks")
	}
	for _, v := range c {
		if v < 0 {
			t.Errorf("negative count %v", v)
		}
	}
	const mid = 2.5
	constant := RatingScale([]float64{4, 4}, 0, 5)
	if constant[0] != mid || constant[1] != mid {
		t.Errorf("constant input must map to midpoint, got %v", constant)
	}
}
