package dataset

import (
	"math"

	"d2pr/internal/dataset/rng"
)

// SignificanceBlend defines how a node's application-specific significance is
// synthesized from its planted latent quality and its realized degree in the
// data graph:
//
//	s(v) = QualityWeight·z(quality_v) + DegreeWeight·z(log(1+deg_v)) + NoiseWeight·ε_v
//
// with ε ~ N(0,1) and z(·) the population z-score. The blend weights are the
// per-application levers of the reproduction:
//
//   - DegreeWeight < 0 plants the Group-A semantics ("many edges means low
//     per-edge effort, hence low significance"),
//   - DegreeWeight ≈ 0..small plants Group B,
//   - DegreeWeight ≫ 0 plants Group C ("popularity is significance").
//
// Spearman correlation is rank-invariant, so any monotone rescaling of s
// (to look like ratings, citation counts, listen counts) leaves every
// experiment unchanged; the experiments use s directly.
type SignificanceBlend struct {
	QualityWeight float64
	DegreeWeight  float64
	NoiseWeight   float64
	Seed          uint64
}

// Synthesize produces the significance vector for nodes with the given
// qualities and degrees.
func (b SignificanceBlend) Synthesize(quality []float64, degrees []int) []float64 {
	n := len(quality)
	if len(degrees) != n {
		panic("dataset: quality/degree length mismatch")
	}
	logDeg := make([]float64, n)
	for i, d := range degrees {
		logDeg[i] = math.Log1p(float64(d))
	}
	zq := zscores(quality)
	zd := zscores(logDeg)
	r := rng.New(b.Seed)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = b.QualityWeight*zq[i] + b.DegreeWeight*zd[i] + b.NoiseWeight*r.NormFloat64()
	}
	return out
}

// zscores standardizes xs to zero mean and unit population variance; a
// constant vector maps to all zeros.
func zscores(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var variance float64
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(n)
	if variance == 0 {
		return out
	}
	sd := math.Sqrt(variance)
	for i, x := range xs {
		out[i] = (x - mean) / sd
	}
	return out
}

// RatingScale maps a significance vector onto a bounded star-rating-like
// scale [lo, hi] by min-max scaling. Used by the examples to present
// synthetic scores as "average user ratings"; monotone, so rank experiments
// are unaffected.
func RatingScale(s []float64, lo, hi float64) []float64 {
	out := make([]float64, len(s))
	if len(s) == 0 {
		return out
	}
	mn, mx := s[0], s[0]
	for _, v := range s {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	span := mx - mn
	for i, v := range s {
		if span == 0 {
			out[i] = (lo + hi) / 2
			continue
		}
		out[i] = lo + (hi-lo)*(v-mn)/span
	}
	return out
}

// CountScale maps a significance vector onto non-negative integer-like
// counts via exp scaling (citation/listen-count presentation). Monotone.
func CountScale(s []float64, base float64) []float64 {
	z := zscores(s)
	out := make([]float64, len(s))
	for i, v := range z {
		out[i] = math.Round(base * math.Exp(v))
	}
	return out
}
