package dataset

import (
	"fmt"
	"math"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
)

// Group is the paper's application grouping by optimal de-coupling weight.
type Group string

const (
	// GroupA: degree penalization helps (optimal p > 0).
	GroupA Group = "A"
	// GroupB: conventional PageRank is ideal (optimal p = 0).
	GroupB Group = "B"
	// GroupC: degree boosting helps (optimal p < 0).
	GroupC Group = "C"
)

// DataGraph is one of the paper's eight evaluation graphs together with its
// application-specific node significances.
type DataGraph struct {
	// Name is the paper's identifier, e.g. "imdb-actor-actor".
	Name string
	// Dataset is the source dataset, e.g. "IMDB".
	Dataset string
	// Group is the application group the paper assigns this graph to.
	Group Group
	// Weighted is the undirected weighted data graph (co-occurrence counts
	// or shared-friend counts, per the paper).
	Weighted *graph.Graph
	// Significance is the application-specific node significance the
	// experiments correlate rankings against.
	Significance []float64
	// EdgeMeaning and SignificanceMeaning document the semantics, matching
	// the paper's figure captions.
	EdgeMeaning         string
	SignificanceMeaning string
}

// Unweighted returns the unweighted view of the data graph (O(1); shares
// storage). The paper's Figures 2–8 use unweighted graphs.
func (d *DataGraph) Unweighted() *graph.Graph { return graph.StripWeights(d.Weighted) }

// Config scales and seeds the synthetic data graphs.
type Config struct {
	// Scale multiplies every node-count constant; 0 means 1.0. Scale 1
	// produces graphs of a few thousand nodes and 10⁴–10⁵ edges — inside
	// the size range of the paper's own graphs (1.9k–191k nodes) while
	// keeping a full paper regeneration under a minute.
	Scale float64
	// Seed drives all randomness; 0 means 42.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// ptr returns a pointer to v; a tiny helper for optional config fields.
func ptr(v float64) *float64 { return &v }

func (c Config) size(base int) int {
	n := int(math.Round(float64(base) * c.Scale))
	if n < 16 {
		n = 16
	}
	return n
}

// Names of the eight paper graphs, in the order the paper's Table 3 lists
// them.
const (
	IMDBMovieMovie      = "imdb-movie-movie"
	IMDBActorActor      = "imdb-actor-actor"
	DBLPArticleArticle  = "dblp-article-article"
	DBLPAuthorAuthor    = "dblp-author-author"
	LastfmListener      = "lastfm-listener-listener"
	LastfmArtistArtist  = "lastfm-artist-artist"
	EpinionsCommenter   = "epinions-commenter-commenter"
	EpinionsProductProd = "epinions-product-product"
)

// GraphNames lists the eight graph names in Table-3 order.
func GraphNames() []string {
	return []string{
		IMDBMovieMovie, IMDBActorActor,
		DBLPArticleArticle, DBLPAuthorAuthor,
		LastfmListener, LastfmArtistArtist,
		EpinionsCommenter, EpinionsProductProd,
	}
}

// AllGraphs generates all eight paper graphs. The result is deterministic in
// cfg. Graphs from the same dataset share one underlying affiliation
// process, exactly as the paper's graph pairs share one dataset.
func AllGraphs(cfg Config) []*DataGraph {
	cfg = cfg.withDefaults()
	out := make([]*DataGraph, 0, 8)
	out = append(out, IMDBGraphs(cfg)...)
	out = append(out, DBLPGraphs(cfg)...)
	out = append(out, LastfmGraphs(cfg)...)
	out = append(out, EpinionsGraphs(cfg)...)
	return out
}

// GraphByName generates the single named paper graph (and its dataset
// sibling, discarded). It returns an error for unknown names.
func GraphByName(cfg Config, name string) (*DataGraph, error) {
	var batch []*DataGraph
	switch name {
	case IMDBMovieMovie, IMDBActorActor:
		batch = IMDBGraphs(cfg.withDefaults())
	case DBLPArticleArticle, DBLPAuthorAuthor:
		batch = DBLPGraphs(cfg.withDefaults())
	case LastfmListener, LastfmArtistArtist:
		batch = LastfmGraphs(cfg.withDefaults())
	case EpinionsCommenter, EpinionsProductProd:
		batch = EpinionsGraphs(cfg.withDefaults())
	default:
		return nil, fmt.Errorf("dataset: unknown graph %q (want one of %v)", name, GraphNames())
	}
	for _, d := range batch {
		if d.Name == name {
			return d, nil
		}
	}
	panic("dataset: batch missing its own graph " + name)
}

// IMDBGraphs builds the movie-movie (Group B) and actor-actor (Group A)
// graphs. Actors follow the cost regime — an actor's roles cost effort
// proportional to movie quality, so discriminating actors hold few roles —
// while high-quality movies attract more contributors (big-budget effect),
// giving the movie side its mild positive degree–significance link.
func IMDBGraphs(cfg Config) []*DataGraph {
	a := GenerateAffiliation(AffiliationConfig{
		Entities:        cfg.size(3200), // actors
		Containers:      cfg.size(2400), // movies
		Regime:          CostRegime,
		MeanMemberships: 4,
		CostExponent:    0.9,
		Assortativity:   0.22,
		PopularityBias:  3.0,
		Seed:            cfg.Seed*8 + 1,
	})
	actorG := a.EntityProjection(80)
	// The movie projection keeps only non-prolific shared contributors
	// (membership cap 8): prolific contributors are exactly the low-effort
	// ones, and dropping them leaves the big-budget movies — whose casts are
	// discriminating actors — the better-connected side, giving the movie
	// graph its mild positive degree–significance link (paper §4.3.2).
	movieG := a.ContainerProjection(8)
	actorSig := SignificanceBlend{
		QualityWeight: 1.0, DegreeWeight: -0.15, NoiseWeight: 3.0,
		Seed: cfg.Seed*8 + 101,
	}.Synthesize(a.EntityQuality, actorG.Degrees())
	movieSig := SignificanceBlend{
		QualityWeight: 0.6, DegreeWeight: 0.12, NoiseWeight: 2.2,
		Seed: cfg.Seed*8 + 102,
	}.Synthesize(a.ContainerQuality, movieG.Degrees())
	return []*DataGraph{
		{
			Name: IMDBMovieMovie, Dataset: "IMDB", Group: GroupB,
			Weighted: movieG, Significance: movieSig,
			EdgeMeaning:         "# of common actors",
			SignificanceMeaning: "average user rating of the movie",
		},
		{
			Name: IMDBActorActor, Dataset: "IMDB", Group: GroupA,
			Weighted: actorG, Significance: actorSig,
			EdgeMeaning:         "# of common movies",
			SignificanceMeaning: "average user rating of movies played in",
		},
	}
}

// DBLPGraphs builds the article-article (Group C) and author-author
// (Group B) graphs. Authors follow the balanced regime (publication counts
// rise mildly with quality and are Poisson-concentrated, so co-author
// degrees are homogeneous); articles inherit hub structure from prolific
// authors and their citation counts grow with visibility, i.e. with degree.
func DBLPGraphs(cfg Config) []*DataGraph {
	// Small teams (≈3 authors/article) with a rare super-prolific author
	// tail: the entity (author) side stays degree-homogeneous in the median
	// while the prolific authors turn their articles into hubs of the
	// article-article projection — the Table-3 asymmetry (author median
	// neighbor-degree σ 6.39 vs article 309.92) in miniature.
	a := GenerateAffiliation(AffiliationConfig{
		Entities:              cfg.size(3600), // authors
		Containers:            cfg.size(4200), // articles
		Regime:                BalancedRegime,
		QualityCoupling:       ptr(0.05),
		MeanMemberships:       3,
		MaxMemberships:        30,
		ContainerTailFraction: 0.008,
		ContainerTailMix:      0.12,
		Assortativity:         0.14,
		PopularityBias:        1.0,
		Seed:                  cfg.Seed*8 + 2,
	})
	authorG := a.EntityProjection(25)
	articleG := a.ContainerProjection(0)
	authorSig := SignificanceBlend{
		QualityWeight: 0.35, DegreeWeight: 0.15, NoiseWeight: 1.6,
		Seed: cfg.Seed*8 + 201,
	}.Synthesize(a.EntityQuality, authorG.Degrees())
	articleSig := SignificanceBlend{
		QualityWeight: 0.2, DegreeWeight: 1.0, NoiseWeight: 2.4,
		Seed: cfg.Seed*8 + 202,
	}.Synthesize(a.ContainerQuality, articleG.Degrees())
	return []*DataGraph{
		{
			Name: DBLPArticleArticle, Dataset: "DBLP", Group: GroupC,
			Weighted: articleG, Significance: articleSig,
			EdgeMeaning:         "# of shared co-authors",
			SignificanceMeaning: "number of citations to the article",
		},
		{
			Name: DBLPAuthorAuthor, Dataset: "DBLP", Group: GroupB,
			Weighted: authorG, Significance: authorSig,
			EdgeMeaning:         "# of co-authored papers",
			SignificanceMeaning: "average citations to the author's papers",
		},
	}
}

// LastfmGraphs builds the listener-listener friendship graph and the
// artist-artist shared-listener graph, both Group C: listening activity and
// play counts are popularity-driven, so degree boosting helps. Friendship
// degrees are heavy-tailed (Chung–Lu with Pareto fitness), giving every
// node a dominant hub neighbor — the paper's explanation for why Group-C
// correlations are stable for p < 0.
func LastfmGraphs(cfg Config) []*DataGraph {
	nListeners := cfg.size(1900)
	nArtists := cfg.size(1600)
	seed := cfg.Seed*8 + 3

	// Listening affiliation: hub-regime listeners (a few listeners play
	// enormously more than others) biased toward popular artists.
	a := GenerateAffiliation(AffiliationConfig{
		Entities:        nListeners,
		Containers:      nArtists,
		Regime:          HubRegime,
		MeanMemberships: 7,
		ParetoAlpha:     1.7,
		MaxMemberships:  120,
		Assortativity:   0.25,
		PopularityBias:  2.0,
		Seed:            seed,
	})
	artistG := a.ContainerProjection(90)
	artistSig := SignificanceBlend{
		QualityWeight: 0.2, DegreeWeight: 0.8, NoiseWeight: 2.2,
		Seed: cfg.Seed*8 + 301,
	}.Synthesize(a.ContainerQuality, artistG.Degrees())

	// Friendship graph over the same listeners: Chung–Lu with quality-scaled
	// heavy-tailed fitness, so active listeners are also social hubs.
	r := rng.New(cfg.Seed*8 + 4)
	fitness := make([]float64, nListeners)
	for i := range fitness {
		fitness[i] = r.Pareto(1, 1.9) * (0.4 + 1.2*a.EntityQuality[i])
	}
	// Scale fitness so the mean expected degree is ≈ 13 (the paper's
	// listener-listener graph has 13.44); the Chung–Lu expected degree of a
	// node equals its weight, with some loss from min(1, ·) clipping at the
	// hubs, compensated by the 1.15 factor.
	var sum float64
	for _, f := range fitness {
		sum += f
	}
	scale := 13.0 * 1.15 * float64(nListeners) / sum
	for i := range fitness {
		fitness[i] *= scale
	}
	listenerG0 := ChungLu(fitness, cfg.Seed*8+5)
	listenerG := graph.CommonNeighborWeights(listenerG0)
	listenerSig := SignificanceBlend{
		QualityWeight: 0.2, DegreeWeight: 0.8, NoiseWeight: 2.2,
		Seed: cfg.Seed*8 + 302,
	}.Synthesize(a.EntityQuality, listenerG.Degrees())

	return []*DataGraph{
		{
			Name: LastfmListener, Dataset: "Last.fm", Group: GroupC,
			Weighted: listenerG, Significance: listenerSig,
			EdgeMeaning:         "# of shared friends (friendship edges)",
			SignificanceMeaning: "total listening activity of the listener",
		},
		{
			Name: LastfmArtistArtist, Dataset: "Last.fm", Group: GroupC,
			Weighted: artistG, Significance: artistSig,
			EdgeMeaning:         "# of shared listeners",
			SignificanceMeaning: "number of times the artist has been listened",
		},
	}
}

// EpinionsGraphs builds the commenter-commenter and product-product graphs,
// both Group A. Commenters follow the cost regime (writing many comments
// means low per-comment effort); the negative popularity bias makes
// low-quality products accumulate the most comments — the paper's own
// observation that "the larger the number of comments a product has, the
// more likely it is that the comments are negative" — which is why the
// product graph has the strongest negative degree–significance coupling and
// its correlation plateaus rather than degrades as p grows.
func EpinionsGraphs(cfg Config) []*DataGraph {
	a := GenerateAffiliation(AffiliationConfig{
		Entities:        cfg.size(2800), // commenters
		Containers:      cfg.size(2200), // products
		Regime:          CostRegime,
		MeanMemberships: 5,
		CostExponent:    1.0,
		Assortativity:   0.25,
		PopularityBias:  -2.5,
		Seed:            cfg.Seed*8 + 6,
	})
	commenterG := a.EntityProjection(90)
	productG := a.ContainerProjection(70)
	commenterSig := SignificanceBlend{
		QualityWeight: 1.0, DegreeWeight: -0.15, NoiseWeight: 2.8,
		Seed: cfg.Seed*8 + 601,
	}.Synthesize(a.EntityQuality, commenterG.Degrees())
	productSig := SignificanceBlend{
		QualityWeight: 0.5, DegreeWeight: -0.35, NoiseWeight: 2.4,
		Seed: cfg.Seed*8 + 602,
	}.Synthesize(a.ContainerQuality, productG.Degrees())
	return []*DataGraph{
		{
			Name: EpinionsCommenter, Dataset: "Epinions", Group: GroupA,
			Weighted: commenterG, Significance: commenterSig,
			EdgeMeaning:         "# of shared products commented on",
			SignificanceMeaning: "number of trusts the commenter received",
		},
		{
			Name: EpinionsProductProd, Dataset: "Epinions", Group: GroupA,
			Weighted: productG, Significance: productSig,
			EdgeMeaning:         "# of shared commenters",
			SignificanceMeaning: "average rating of the product",
		},
	}
}
