// Package dataset generates the synthetic data graphs used throughout the
// reproduction. The paper evaluates on four real datasets (IMDB+MovieLens,
// DBLP, Last.fm, Epinions), none of which can be downloaded in this offline
// module; the substitution — documented in DESIGN.md §3 — is a
// planted-quality affiliation model that implements the paper's own causal
// story for why node degree and node significance relate differently across
// applications.
//
// The package also provides the classic random-graph models (Erdős–Rényi,
// Barabási–Albert, Watts–Strogatz, Chung–Lu) used as substrates in tests and
// benchmarks.
package dataset

import (
	"fmt"
	"math"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
)

// ErdosRenyi returns a G(n, m) undirected random graph with exactly m
// distinct edges (no self-loops, no duplicates). It panics if m exceeds the
// number of possible edges.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("dataset: ErdosRenyi(%d, %d): at most %d edges possible", n, m, maxEdges))
	}
	r := rng.New(seed)
	b := graph.NewBuilder(graph.Undirected).EnsureNodes(n).Duplicates(graph.DupError)
	seen := make(map[uint64]struct{}, m)
	for added := 0; added < m; {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
		added++
	}
	return b.MustBuild()
}

// BarabasiAlbert returns an undirected preferential-attachment graph: nodes
// arrive one at a time and connect to k existing nodes chosen proportionally
// to their current degree. The resulting degree distribution is a power law
// — the hub-dominated regime of the paper's Group-C graphs.
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("dataset: BarabasiAlbert(%d, %d): need n > k ≥ 1", n, k))
	}
	r := rng.New(seed)
	b := graph.NewBuilder(graph.Undirected).EnsureNodes(n)
	// repeated-endpoints list implements preferential attachment in O(1).
	endpoints := make([]int32, 0, 2*n*k)
	// seed clique on the first k+1 nodes
	for u := int32(0); int(u) <= k; u++ {
		for v := u + 1; int(v) <= k; v++ {
			b.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	chosen := make(map[int32]struct{}, k)
	picks := make([]int32, 0, k)
	for u := int32(k + 1); int(u) < n; u++ {
		for id := range chosen {
			delete(chosen, id)
		}
		picks = picks[:0]
		// Collect picks in draw order (map iteration order is randomized
		// and would break seed determinism).
		for len(picks) < k {
			v := endpoints[r.Intn(len(endpoints))]
			if _, dup := chosen[v]; dup {
				continue
			}
			chosen[v] = struct{}{}
			picks = append(picks, v)
		}
		for _, v := range picks {
			b.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return b.MustBuild()
}

// WattsStrogatz returns a small-world ring lattice over n nodes where each
// node connects to its k nearest neighbors on each side and every edge is
// rewired with probability beta. Degrees are nearly homogeneous — the
// comparable-neighbor-degree regime of the paper's Group-B graphs.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k < 1 || n < 2*k+1 {
		panic(fmt.Sprintf("dataset: WattsStrogatz(%d, %d): need n > 2k", n, k))
	}
	r := rng.New(seed)
	type edge struct{ u, v int32 }
	seen := make(map[edge]struct{}, n*k)
	addKey := func(u, v int32) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edges := make([]edge, 0, n*k)
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			e := addKey(int32(u), int32(v))
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				edges = append(edges, e)
			}
		}
	}
	// Rewire.
	for i := range edges {
		if r.Float64() >= beta {
			continue
		}
		u := edges[i].u
		for tries := 0; tries < 32; tries++ {
			w := int32(r.Intn(n))
			if w == u {
				continue
			}
			e := addKey(u, w)
			if _, dup := seen[e]; dup {
				continue
			}
			delete(seen, addKey(edges[i].u, edges[i].v))
			seen[e] = struct{}{}
			edges[i] = e
			break
		}
	}
	b := graph.NewBuilder(graph.Undirected).EnsureNodes(n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.MustBuild()
}

// ChungLu returns an undirected random graph whose expected degrees follow
// the given weights: edge {u,v} exists with probability
// min(1, w_u·w_v / Σw). Heavy-tailed weight vectors produce hub-dominated
// graphs with tunable degree–identity coupling, which is how the Last.fm
// friendship graph is generated.
//
// The implementation sorts nodes by weight and uses the standard O(n+m)
// skipping algorithm (Miller–Hagberg) rather than the O(n²) naive loop.
func ChungLu(weights []float64, seed uint64) *graph.Graph {
	n := len(weights)
	r := rng.New(seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// sort by weight descending
	sortByWeightDesc(idx, weights)
	var total float64
	for _, w := range weights {
		total += w
	}
	b := graph.NewBuilder(graph.Undirected).EnsureNodes(n)
	if total <= 0 {
		return b.MustBuild()
	}
	for i := 0; i < n-1; i++ {
		wi := weights[idx[i]]
		if wi <= 0 {
			break
		}
		j := i + 1
		p := math.Min(1, wi*weights[idx[j]]/total)
		for j < n && p > 0 {
			if p < 1 {
				// geometric skip
				u := r.Float64()
				skip := int(math.Floor(math.Log(u) / math.Log(1-p)))
				if skip < 0 {
					skip = 0
				}
				j += skip
			}
			if j >= n {
				break
			}
			q := math.Min(1, wi*weights[idx[j]]/total)
			if r.Float64() < q/p {
				b.AddEdge(int32(idx[i]), int32(idx[j]))
			}
			p = q
			j++
		}
	}
	return b.MustBuild()
}

func sortByWeightDesc(idx []int, weights []float64) {
	// insertion of sort.Slice kept local to avoid importing sort twice
	quickSort(idx, func(a, b int) bool { return weights[a] > weights[b] })
}
