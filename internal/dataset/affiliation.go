package dataset

import (
	"fmt"
	"math"
	"sort"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
)

func quickSort(idx []int, less func(a, b int) bool) {
	sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
}

// MembershipRegime selects how an entity's number of affiliations depends on
// its latent quality. This is the paper's §1.2.1 effort-budget story made
// executable.
type MembershipRegime int

const (
	// CostRegime: each affiliation costs effort proportional to quality, and
	// every entity has the same budget — so high-quality entities hold few
	// affiliations ("A-movie actors play in few movies"). Degree is
	// inversely related to quality. Paper Group A.
	CostRegime MembershipRegime = iota
	// BalancedRegime: affiliation counts rise mildly with quality and are
	// Poisson-concentrated, so degrees are homogeneous. Paper Group B.
	BalancedRegime
	// HubRegime: affiliation counts are heavy-tailed (Pareto) and scale with
	// quality, producing dominant hubs. Paper Group C.
	HubRegime
)

// String returns the regime name.
func (m MembershipRegime) String() string {
	switch m {
	case CostRegime:
		return "cost"
	case BalancedRegime:
		return "balanced"
	case HubRegime:
		return "hub"
	}
	return fmt.Sprintf("MembershipRegime(%d)", int(m))
}

// AffiliationConfig parameterizes one synthetic bipartite dataset
// (entities × containers: actors × movies, authors × articles,
// commenters × products, listeners × artists).
type AffiliationConfig struct {
	// Entities and Containers are the two side sizes.
	Entities   int
	Containers int
	// Regime selects the membership-count model for entities.
	Regime MembershipRegime
	// MeanMemberships is the target mean number of affiliations per entity.
	MeanMemberships float64
	// CostExponent sharpens the inverse quality→memberships relation in
	// CostRegime (γ in m ∝ (1.1−q)^γ). Ignored elsewhere. 0 means 2.
	CostExponent float64
	// ParetoAlpha is the tail exponent for HubRegime. 0 means 1.6.
	ParetoAlpha float64
	// MaxMemberships caps any entity's affiliation count. 0 means 4× mean
	// for non-hub regimes and 40× mean for HubRegime.
	MaxMemberships int
	// Assortativity controls how tightly entities pick containers of
	// matching quality: the chosen container's quality rank is the entity's
	// quality rank plus Normal(0, Assortativity·Containers) noise. Smaller
	// is tighter. 0 means 0.15.
	Assortativity float64
	// PopularityBias tilts container choice by container quality:
	// probability ∝ exp(PopularityBias·Q). Positive means high-quality
	// containers attract more members (big-budget movies); negative means
	// low-quality containers do (much-complained-about products); zero is
	// neutral.
	PopularityBias float64
	// TailFraction adds a heavy-tail mixture to the membership counts: with
	// this probability an entity's count is multiplied by a Pareto(1,
	// TailAlpha) draw. It models the rare super-prolific participants (DBLP
	// authors with hundreds of papers) whose container projections become
	// hub-dominated while the entity side stays homogeneous in the median.
	TailFraction float64
	// TailAlpha is the Pareto tail exponent of the mixture. 0 means 1.2.
	TailAlpha float64
	// TailQualityBias skews which entities fall in the heavy tail: 0 keeps
	// it quality-independent; 1 makes the tail probability ∝ 2(1−q), i.e.
	// low-quality entities are the prolific ones (volume dilutes quality).
	// Values in between interpolate linearly.
	TailQualityBias float64
	// QualityCoupling scales how strongly membership counts depend on
	// quality in BalancedRegime: 1 is the regime default, 0 makes counts
	// quality-independent (degree becomes pure structure, the Group-B
	// setting where no walk can beat conventional PageRank). Negative values
	// are clamped to 0; nil means 1.
	QualityCoupling *float64
	// ContainerTailFraction designates this fraction of containers as
	// "mega" containers with Pareto(1, 1.2)-distributed attractiveness —
	// the 100-author physics papers of DBLP. Entities route a
	// ContainerTailMix share of their affiliations to the mega set
	// (proportionally to attractiveness) instead of choosing
	// assortatively. Entity-side projections typically exclude mega
	// containers via their container-size cap, so the mega tail creates
	// hubs only in the container projection.
	ContainerTailFraction float64
	// ContainerTailMix is the probability that one affiliation choice goes
	// to the mega set. Ignored when ContainerTailFraction is 0.
	ContainerTailMix float64
	// Seed drives all randomness.
	Seed uint64
}

func (c AffiliationConfig) withDefaults() AffiliationConfig {
	if c.CostExponent == 0 {
		c.CostExponent = 2
	}
	if c.ParetoAlpha == 0 {
		c.ParetoAlpha = 1.6
	}
	if c.Assortativity == 0 {
		c.Assortativity = 0.15
	}
	if c.TailAlpha == 0 {
		c.TailAlpha = 1.2
	}
	if c.MaxMemberships == 0 {
		mult := 4.0
		if c.Regime == HubRegime || c.TailFraction > 0 {
			mult = 40
		}
		c.MaxMemberships = int(math.Ceil(c.MeanMemberships * mult))
		if c.MaxMemberships < 2 {
			c.MaxMemberships = 2
		}
	}
	return c
}

// Affiliation is a generated bipartite dataset: latent qualities on both
// sides plus the affiliation lists.
type Affiliation struct {
	Config AffiliationConfig
	// megaIDs and megaAlias drive mega-container selection (nil when
	// ContainerTailFraction is 0).
	megaIDs   []int32
	megaAlias *rng.Alias
	// EntityQuality and ContainerQuality are the planted latent qualities in
	// (0, 1); application significances are noisy observations of these.
	EntityQuality    []float64
	ContainerQuality []float64
	// Members[c] lists the entities affiliated with container c (each entity
	// at most once per container).
	Members [][]int32
	// Memberships[e] is the number of containers entity e joined.
	Memberships []int
}

// GenerateAffiliation runs the planted-quality affiliation process.
func GenerateAffiliation(cfg AffiliationConfig) *Affiliation {
	cfg = cfg.withDefaults()
	if cfg.Entities <= 0 || cfg.Containers <= 0 {
		panic(fmt.Sprintf("dataset: affiliation needs positive sizes, got %d×%d", cfg.Entities, cfg.Containers))
	}
	r := rng.New(cfg.Seed)
	a := &Affiliation{
		Config:           cfg,
		EntityQuality:    make([]float64, cfg.Entities),
		ContainerQuality: make([]float64, cfg.Containers),
		Members:          make([][]int32, cfg.Containers),
		Memberships:      make([]int, cfg.Entities),
	}
	for i := range a.EntityQuality {
		// Beta(2,2)-shaped: interior-concentrated qualities.
		a.EntityQuality[i] = (r.Float64() + r.Float64()) / 2
	}
	for i := range a.ContainerQuality {
		a.ContainerQuality[i] = (r.Float64() + r.Float64()) / 2
	}
	// Containers sorted by quality for rank-assortative selection.
	byQ := make([]int32, cfg.Containers)
	for i := range byQ {
		byQ[i] = int32(i)
	}
	sort.Slice(byQ, func(i, j int) bool {
		return a.ContainerQuality[byQ[i]] < a.ContainerQuality[byQ[j]]
	})
	// Designate mega containers and their attractiveness weights.
	if cfg.ContainerTailFraction > 0 {
		nMega := int(math.Ceil(cfg.ContainerTailFraction * float64(cfg.Containers)))
		perm := r.Perm(cfg.Containers)
		weights := make([]float64, 0, nMega)
		for _, c := range perm[:nMega] {
			a.megaIDs = append(a.megaIDs, int32(c))
			weights = append(weights, r.Pareto(1, 1.2))
		}
		a.megaAlias = rng.NewAlias(weights)
	}

	chosen := make(map[int32]struct{}, 16)
	for e := 0; e < cfg.Entities; e++ {
		q := a.EntityQuality[e]
		m := a.membershipCount(q, r)
		a.Memberships[e] = m
		for id := range chosen {
			delete(chosen, id)
		}
		for len(chosen) < m {
			c := a.pickContainer(q, byQ, r)
			if _, dup := chosen[c]; dup {
				// Collision: small container pools make duplicates likely;
				// resample a bounded number of times then give up on this
				// slot to avoid pathological loops.
				c2 := a.pickContainer(q, byQ, r)
				if _, dup2 := chosen[c2]; dup2 {
					a.Memberships[e]--
					m--
					continue
				}
				c = c2
			}
			chosen[c] = struct{}{}
			a.Members[c] = append(a.Members[c], int32(e))
		}
	}
	return a
}

// membershipCount draws the number of affiliations for an entity of quality
// q under the configured regime.
func (a *Affiliation) membershipCount(q float64, r *rng.RNG) int {
	cfg := a.Config
	var m int
	switch cfg.Regime {
	case CostRegime:
		// Budget B, per-affiliation cost ∝ q^γ-ish: memberships fall as
		// quality rises. Scaled so the population mean is MeanMemberships.
		// E[(1.1-q)^γ] over Beta(2,2)-ish q ≈ (0.6)^γ at γ=2 → calibrate by
		// the mid-quality value.
		base := math.Pow(1.1-q, cfg.CostExponent) / math.Pow(0.6, cfg.CostExponent)
		m = 1 + r.Poisson(cfg.MeanMemberships*base*0.85)
	case BalancedRegime:
		// Mildly increasing with quality, Poisson-concentrated. The coupling
		// is gentle on purpose: degree must carry only a weak quality
		// signal, so that boosting it (p < 0) amplifies noise instead of
		// signal — the paper's Group-B behaviour.
		c := 1.0
		if cfg.QualityCoupling != nil {
			c = *cfg.QualityCoupling
			if c < 0 {
				c = 0
			}
		}
		m = 1 + r.Poisson(cfg.MeanMemberships*(1+0.6*c*(q-0.5))*0.85)
	case HubRegime:
		// Heavy-tailed and quality-scaled.
		raw := r.Pareto(1, cfg.ParetoAlpha) * (0.4 + 1.2*q)
		scale := cfg.MeanMemberships / (1.0 * cfg.ParetoAlpha / (cfg.ParetoAlpha - 1))
		m = int(math.Ceil(raw * scale))
		if m < 1 {
			m = 1
		}
	default:
		panic(fmt.Sprintf("dataset: unknown regime %v", cfg.Regime))
	}
	if cfg.TailFraction > 0 {
		tp := cfg.TailFraction * (1 - cfg.TailQualityBias + cfg.TailQualityBias*2*(1-q))
		if r.Float64() < tp {
			m = int(math.Ceil(float64(m) * r.Pareto(1, cfg.TailAlpha)))
		}
	}
	if m > cfg.MaxMemberships {
		m = cfg.MaxMemberships
	}
	if m > cfg.Containers {
		m = cfg.Containers
	}
	return m
}

// pickContainer selects a container for an entity of quality q:
// rank-assortative around the entity's quality with Gaussian spread, then
// tilted by the popularity bias via rejection.
func (a *Affiliation) pickContainer(q float64, byQ []int32, r *rng.RNG) int32 {
	cfg := a.Config
	nC := len(byQ)
	if a.megaAlias != nil && cfg.ContainerTailMix > 0 && r.Float64() < cfg.ContainerTailMix {
		return a.megaIDs[a.megaAlias.Draw(r)]
	}
	for {
		target := q + cfg.Assortativity*r.NormFloat64()
		pos := int(target * float64(nC))
		if pos < 0 || pos >= nC {
			continue
		}
		c := byQ[pos]
		if cfg.PopularityBias != 0 {
			// Accept with probability ∝ exp(bias·(Q-1)) ≤ 1 for bias>0,
			// ∝ exp(bias·Q) ≤ 1 for bias<0.
			Q := a.ContainerQuality[c]
			var accept float64
			if cfg.PopularityBias > 0 {
				accept = math.Exp(cfg.PopularityBias * (Q - 1))
			} else {
				accept = math.Exp(cfg.PopularityBias * Q)
			}
			if r.Float64() >= accept {
				continue
			}
		}
		return c
	}
}

// EntityProjection returns the entity–entity co-occurrence graph: entities
// are adjacent iff they share a container, weighted by the number of shared
// containers. Containers larger than maxContainer are skipped (0 = no cap).
func (a *Affiliation) EntityProjection(maxContainer int) *graph.Graph {
	g, err := graph.ProjectBipartite(a.Config.Entities, a.Members, maxContainer)
	if err != nil {
		panic(fmt.Sprintf("dataset: entity projection: %v", err))
	}
	return g
}

// ContainerProjection returns the container–container co-occurrence graph:
// containers are adjacent iff they share an entity, weighted by the number
// of shared entities. Entities with more than maxMemberships affiliations
// are skipped (0 = no cap); prolific entities otherwise generate
// quadratically many edges.
func (a *Affiliation) ContainerProjection(maxMemberships int) *graph.Graph {
	// Invert the membership lists.
	byEntity := make([][]int32, a.Config.Entities)
	for c, members := range a.Members {
		for _, e := range members {
			byEntity[e] = append(byEntity[e], int32(c))
		}
	}
	g, err := graph.ProjectBipartite(a.Config.Containers, byEntity, maxMemberships)
	if err != nil {
		panic(fmt.Sprintf("dataset: container projection: %v", err))
	}
	return g
}

// ContainerMemberCounts returns, for each container, how many entities chose
// it (its bipartite degree).
func (a *Affiliation) ContainerMemberCounts() []int {
	out := make([]int, a.Config.Containers)
	for c, members := range a.Members {
		out[c] = len(members)
	}
	return out
}
