package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical draws of 64", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams should differ")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 0.05*n/7 {
			t.Errorf("Intn bucket %d count %d, want ≈%d", v, c, n/7)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ≈1", mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(17)
	const n = 100000
	over2 := 0
	for i := 0; i < n; i++ {
		x := r.Pareto(1, 2)
		if x < 1 {
			t.Fatalf("Pareto(1,2) = %v < xm", x)
		}
		if x > 2 {
			over2++
		}
	}
	// P(X > 2) = (1/2)^2 = 0.25.
	if frac := float64(over2) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("P(X>2) = %v, want 0.25", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, lambda := range []float64{0.5, 4, 80} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		if mean := sum / n; math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive λ must yield 0")
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(23)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {500, 0.1}} {
		var sum float64
		const trials = 20000
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial out of range: %d", k)
			}
			sum += float64(k)
		}
		want := float64(tc.n) * tc.p
		if mean := sum / trials; math.Abs(mean-want) > 0.05*want {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", tc.n, tc.p, mean, want)
		}
	}
	if r.Binomial(5, 0) != 0 || r.Binomial(5, 1) != 5 || r.Binomial(0, 0.5) != 0 {
		t.Error("binomial edge cases wrong")
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	if frac := float64(counts[2]) / n; math.Abs(frac-0.75) > 0.02 {
		t.Errorf("weight-3 fraction = %v, want 0.75", frac)
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{5, 1, 0, 4}
	a := NewAlias(weights)
	r := New(31)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[a.Draw(r)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias index %d: frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasZeroSumUniform(t *testing.T) {
	a := NewAlias([]float64{0, 0, 0})
	r := New(37)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.Draw(r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Errorf("zero-sum alias index %d count %d, want ≈10000", i, c)
		}
	}
}

func TestAliasEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Draw from empty alias must panic")
		}
	}()
	NewAlias(nil).Draw(New(1))
}

func TestShuffle(t *testing.T) {
	r := New(41)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}
