// Package rng provides a small, fast, deterministic random number generator
// used by every stochastic component in this module (graph generators,
// sampled centralities, Monte-Carlo walks).
//
// It is a splitmix64-seeded xoshiro256** generator. We implement it directly
// rather than using math/rand so that (a) every experiment is reproducible
// bit-for-bit from its seed across Go releases, and (b) independent
// sub-streams can be forked cheaply for parallel generation.
package rng

import "math"

// RNG is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; fork independent streams with Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output; it is the
// recommended seeding procedure for xoshiro.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.s0 = splitmix64(&seed)
	r.s1 = splitmix64(&seed)
	r.s2 = splitmix64(&seed)
	r.s3 = splitmix64(&seed)
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split forks an independent generator stream from r. The fork is seeded
// from r's output, so Split advances r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t & mask
	hi1 := t >> 32
	lo1 += a0 * b1
	hi = a1*b1 + hi1 + (lo1 >> 32)
	lo = a * b
	return hi, lo
}

// Int31n returns a uniform int32 in [0, n).
func (r *RNG) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha). Heavy-tailed
// degrees in the Group-C generators come from here.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm * math.Pow(u, -1/alpha)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. Knuth's method for small λ,
// normal approximation with continuity correction for large λ.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	x := math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64())
	if x < 0 {
		return 0
	}
	return int(x)
}

// Binomial returns a Binomial(n, p) variate by inversion for small n and a
// normal approximation otherwise.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	x := math.Round(mean + sd*r.NormFloat64())
	if x < 0 {
		x = 0
	}
	if x > float64(n) {
		x = float64(n)
	}
	return int(x)
}

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to weights, which must be non-negative with a positive sum. O(n); use
// NewAlias for repeated draws from the same distribution.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Alias is Walker's alias table: O(1) sampling from a fixed discrete
// distribution after O(n) setup.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights.
// A zero-sum weight vector yields the uniform distribution.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	if n == 0 {
		return a
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	scaled := make([]float64, n)
	if total <= 0 {
		for i := range scaled {
			scaled[i] = 1
		}
	} else {
		for i, w := range weights {
			scaled[i] = w / total * float64(n)
		}
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// Draw samples an index from the alias table using r.
func (a *Alias) Draw(r *RNG) int {
	if len(a.prob) == 0 {
		panic("rng: Draw from empty alias table")
	}
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
