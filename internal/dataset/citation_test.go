package dataset

import (
	"testing"

	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

func TestCitationBasics(t *testing.T) {
	net := GenerateCitations(CitationConfig{Papers: 1500, MeanRefs: 6, Seed: 1})
	g := net.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("citation graph must be directed")
	}
	if g.NumNodes() != 1500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Arcs must always point backward in time (u cites older v).
	n := g.NumNodes()
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v >= u {
				t.Fatalf("forward citation %d→%d", u, v)
			}
		}
	}
	// Significance is exactly the in-degree.
	in := g.InDegrees()
	for i := range in {
		if net.Significance[i] != float64(in[i]) {
			t.Fatalf("significance[%d] = %v, in-degree %d", i, net.Significance[i], in[i])
		}
	}
}

func TestCitationOutDegreeCost(t *testing.T) {
	// With cost: out-degree anti-correlates with quality. Without: not.
	costly := GenerateCitations(CitationConfig{Papers: 3000, MeanRefs: 8, OutDegreeCost: 2, Seed: 2})
	free := GenerateCitations(CitationConfig{Papers: 3000, MeanRefs: 8, OutDegreeCost: 0, Seed: 2})
	outDeg := func(g *graph.Graph) []float64 {
		out := make([]float64, g.NumNodes())
		for i := range out {
			out[i] = float64(g.OutDegree(int32(i)))
		}
		return out
	}
	rhoCostly := stats.Spearman(outDeg(costly.Graph), costly.Quality)
	rhoFree := stats.Spearman(outDeg(free.Graph), free.Quality)
	if rhoCostly > -0.3 {
		t.Errorf("costly: corr(outdeg, quality) = %v, want strongly negative", rhoCostly)
	}
	if rhoFree < -0.1 {
		t.Errorf("free: corr(outdeg, quality) = %v, want ≈0", rhoFree)
	}
}

func TestCitationQualityAttractsCitations(t *testing.T) {
	net := GenerateCitations(CitationConfig{Papers: 3000, MeanRefs: 8, Attachment: 0.3, Seed: 3})
	// Restrict to the older half so age effects don't dominate.
	half := 1500
	q := net.Quality[:half]
	s := net.Significance[:half]
	if rho := stats.Spearman(q, s); rho < 0.15 {
		t.Errorf("corr(quality, citations) = %v, want positive", rho)
	}
}

func TestCitationDeterminism(t *testing.T) {
	a := GenerateCitations(CitationConfig{Papers: 500, Seed: 9})
	b := GenerateCitations(CitationConfig{Papers: 500, Seed: 9})
	ea, eb := graph.SortedEdges(a.Graph), graph.SortedEdges(b.Graph)
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic citation graph")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
