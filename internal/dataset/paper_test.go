package dataset

import (
	"testing"

	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// smallCfg keeps generation fast in tests.
var smallCfg = Config{Scale: 0.25, Seed: 42}

func TestAllGraphsComplete(t *testing.T) {
	all := AllGraphs(smallCfg)
	if len(all) != 8 {
		t.Fatalf("got %d graphs, want 8", len(all))
	}
	names := map[string]bool{}
	for _, d := range all {
		names[d.Name] = true
		if d.Weighted == nil {
			t.Fatalf("%s: nil graph", d.Name)
		}
		if err := d.Weighted.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if !d.Weighted.Weighted() {
			t.Errorf("%s: data graphs must be weighted", d.Name)
		}
		if d.Weighted.Directed() {
			t.Errorf("%s: paper data graphs are undirected", d.Name)
		}
		if len(d.Significance) != d.Weighted.NumNodes() {
			t.Errorf("%s: %d significances for %d nodes", d.Name, len(d.Significance), d.Weighted.NumNodes())
		}
		if d.Group != GroupA && d.Group != GroupB && d.Group != GroupC {
			t.Errorf("%s: bad group %q", d.Name, d.Group)
		}
		if d.EdgeMeaning == "" || d.SignificanceMeaning == "" || d.Dataset == "" {
			t.Errorf("%s: missing documentation fields", d.Name)
		}
		u := d.Unweighted()
		if u.Weighted() {
			t.Errorf("%s: Unweighted() still weighted", d.Name)
		}
		if u.NumEdges() != d.Weighted.NumEdges() {
			t.Errorf("%s: unweighted view changed structure", d.Name)
		}
	}
	for _, want := range GraphNames() {
		if !names[want] {
			t.Errorf("missing graph %s", want)
		}
	}
}

func TestGroupAssignmentsMatchPaper(t *testing.T) {
	want := map[string]Group{
		IMDBMovieMovie:      GroupB,
		IMDBActorActor:      GroupA,
		DBLPArticleArticle:  GroupC,
		DBLPAuthorAuthor:    GroupB,
		LastfmListener:      GroupC,
		LastfmArtistArtist:  GroupC,
		EpinionsCommenter:   GroupA,
		EpinionsProductProd: GroupA,
	}
	for _, d := range AllGraphs(smallCfg) {
		if d.Group != want[d.Name] {
			t.Errorf("%s: group %s, want %s", d.Name, d.Group, want[d.Name])
		}
	}
}

func TestGraphByName(t *testing.T) {
	d, err := GraphByName(smallCfg, IMDBActorActor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != IMDBActorActor {
		t.Errorf("got %s", d.Name)
	}
	if _, err := GraphByName(smallCfg, "no-such-graph"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestDataGraphDeterminism(t *testing.T) {
	a, err := GraphByName(smallCfg, EpinionsProductProd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GraphByName(smallCfg, EpinionsProductProd)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := graph.SortedEdges(a.Weighted), graph.SortedEdges(b.Weighted)
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edges")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range a.Significance {
		if a.Significance[i] != b.Significance[i] {
			t.Fatalf("significance %d differs", i)
		}
	}
	// A different seed must actually change the data.
	c, err := GraphByName(Config{Scale: 0.25, Seed: 99}, EpinionsProductProd)
	if err != nil {
		t.Fatal(err)
	}
	if len(graph.SortedEdges(c.Weighted)) == len(ea) {
		same := true
		ec := graph.SortedEdges(c.Weighted)
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	small, err := GraphByName(Config{Scale: 0.2, Seed: 1}, DBLPAuthorAuthor)
	if err != nil {
		t.Fatal(err)
	}
	big, err := GraphByName(Config{Scale: 0.6, Seed: 1}, DBLPAuthorAuthor)
	if err != nil {
		t.Fatal(err)
	}
	if big.Weighted.NumNodes() <= small.Weighted.NumNodes() {
		t.Errorf("scale 0.6 nodes %d !> scale 0.2 nodes %d",
			big.Weighted.NumNodes(), small.Weighted.NumNodes())
	}
}

func TestPlantedDegreeSignificanceSigns(t *testing.T) {
	// The Figure-5 sign pattern is the contract the case studies rest on:
	// Group-A graphs negative, Group-C positive.
	for _, d := range AllGraphs(Config{Scale: 0.5, Seed: 42}) {
		g := d.Unweighted()
		deg := make([]float64, g.NumNodes())
		for i := range deg {
			deg[i] = float64(g.Degree(int32(i)))
		}
		rho := stats.Spearman(deg, d.Significance)
		switch d.Group {
		case GroupA:
			if rho >= 0 {
				t.Errorf("%s (A): corr(deg, sig) = %v, want negative", d.Name, rho)
			}
		case GroupC:
			if rho <= 0.1 {
				t.Errorf("%s (C): corr(deg, sig) = %v, want clearly positive", d.Name, rho)
			}
		case GroupB:
			if rho < -0.15 || rho > 0.4 {
				t.Errorf("%s (B): corr(deg, sig) = %v, want mild", d.Name, rho)
			}
		}
	}
}

func TestTable3Asymmetry(t *testing.T) {
	// The author/article contrast of Table 3: the article graph's median
	// neighbor-degree stddev must far exceed the author graph's.
	author, err := GraphByName(Config{Seed: 42}, DBLPAuthorAuthor)
	if err != nil {
		t.Fatal(err)
	}
	article, err := GraphByName(Config{Seed: 42}, DBLPArticleArticle)
	if err != nil {
		t.Fatal(err)
	}
	sa := graph.ComputeStats(author.Unweighted())
	sr := graph.ComputeStats(article.Unweighted())
	if sr.MedianNeighborDegStdDev < 3*sa.MedianNeighborDegStdDev {
		t.Errorf("article median neighbor σ %v vs author %v: want ≥ 3×",
			sr.MedianNeighborDegStdDev, sa.MedianNeighborDegStdDev)
	}
}
