package dataset

import (
	"math"
	"testing"

	"d2pr/internal/dataset/rng"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 || g.NumEdges() != 300 {
		t.Errorf("n=%d m=%d, want 100/300", g.NumNodes(), g.NumEdges())
	}
	// Determinism.
	h := ErdosRenyi(100, 300, 1)
	if stats.Spearman(floats(g.Degrees()), floats(h.Degrees())) != 1 {
		t.Error("same seed must reproduce the same graph")
	}
	defer func() {
		if recover() == nil {
			t.Error("impossible edge count must panic")
		}
	}()
	ErdosRenyi(3, 10, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every late node adds exactly k edges: m = C(k+1,2) + (n-k-1)k.
	wantEdges := 3*4/2 + (500-4)*3
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Heavy tail: max degree far above mean.
	s := graph.ComputeStats(g)
	if float64(s.MaxDegree) < 4*s.AvgDegree {
		t.Errorf("BA max degree %d vs mean %.1f: no hub structure", s.MaxDegree, s.AvgDegree)
	}
	defer func() {
		if recover() == nil {
			t.Error("n ≤ k must panic")
		}
	}()
	BarabasiAlbert(3, 3, 1)
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 600 {
		t.Errorf("edges = %d, want nk=600", g.NumEdges())
	}
	// Degrees nearly homogeneous.
	s := graph.ComputeStats(g)
	if s.DegreeStdDev > 1.5 {
		t.Errorf("WS degree σ = %v, want small", s.DegreeStdDev)
	}
	// β=0 is the pure ring lattice: all degrees exactly 2k.
	ring := WattsStrogatz(50, 2, 0, 1)
	for u := 0; u < 50; u++ {
		if ring.Degree(int32(u)) != 4 {
			t.Fatalf("ring degree(%d) = %d, want 4", u, ring.Degree(int32(u)))
		}
	}
}

func TestChungLuExpectedDegrees(t *testing.T) {
	// Homogeneous weights w: expected degree ≈ w.
	n := 1000
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 10
	}
	g := ChungLu(weights, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if math.Abs(s.AvgDegree-10) > 1 {
		t.Errorf("ChungLu avg degree = %v, want ≈10", s.AvgDegree)
	}
	// Degree must track weight: give the first 10 nodes weight 50.
	for i := 0; i < 10; i++ {
		weights[i] = 50
	}
	g = ChungLu(weights, 6)
	var hubAvg float64
	for i := 0; i < 10; i++ {
		hubAvg += float64(g.Degree(int32(i)))
	}
	hubAvg /= 10
	if hubAvg < 30 {
		t.Errorf("weight-50 nodes average degree %v, want ≈50", hubAvg)
	}
}

func TestChungLuEmptyAndZeroWeights(t *testing.T) {
	g := ChungLu(nil, 1)
	if g.NumNodes() != 0 {
		t.Error("nil weights must give empty graph")
	}
	g = ChungLu(make([]float64, 5), 1)
	if g.NumEdges() != 0 {
		t.Error("zero weights must give no edges")
	}
}

func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

func TestModelsDeterminism(t *testing.T) {
	a := BarabasiAlbert(200, 2, 77)
	b := BarabasiAlbert(200, 2, 77)
	ea, eb := graph.SortedEdges(a), graph.SortedEdges(b)
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic BA edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("nondeterministic BA at edge %d", i)
		}
	}
	_ = rng.New(0) // keep the import for clarity of provenance
}
