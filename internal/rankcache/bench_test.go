// Benchmarks backing the serving-layer acceptance criteria: a warm-cache
// repeat of a rank request must be orders of magnitude (≥10×) faster than
// the cold power-iteration solve it memoizes.
//
//	go test ./internal/rankcache -bench=. -benchmem
package rankcache

import (
	"context"
	"testing"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
)

// coldSolve is the computation the cache fronts in the serving layer: a full
// blended-transition build plus power-iteration solve.
func coldSolve(b *testing.B) ([]float64, ComputeFunc) {
	b.Helper()
	d, err := dataset.GraphByName(dataset.Config{Scale: 0.5, Seed: 7}, dataset.IMDBActorActor)
	if err != nil {
		b.Fatal(err)
	}
	g := d.Weighted
	compute := func(context.Context) ([]float64, error) {
		t, err := core.Blended(g, 0.5, 0)
		if err != nil {
			return nil, err
		}
		res, err := core.Solve(t, core.Options{})
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	}
	scores, err := compute(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return scores, compute
}

// BenchmarkColdSolve times the uncached path: every iteration pays the full
// transition build + solve.
func BenchmarkColdSolve(b *testing.B) {
	_, compute := coldSolve(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compute(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmCacheHit times the cached path for the identical
// configuration: one lock + map lookup + LRU bump. Compare against
// BenchmarkColdSolve — the ratio is the serving-layer speedup for repeat
// /v1/{graph}/rank requests (≥10× required, typically ≥10⁴×).
func BenchmarkWarmCacheHit(b *testing.B) {
	_, compute := coldSolve(b)
	c := New(4)
	key := NewKey("imdb-actor-actor", "d2pr", 0.5, 0, core.Options{}.CacheKey())
	if _, _, err := c.Get(context.Background(), key, compute); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(context.Background(), key, compute); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.Misses != 1 {
		b.Fatalf("benchmark accidentally measured %d cold solves", st.Misses)
	}
}
