package rankcache

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStressSingleflightNoEviction hammers a cache whose capacity covers the
// whole key space with many goroutines: single-flight deduplication must
// collapse every burst of concurrent misses into exactly one compute per
// distinct key, ever, and the counters must account for every request.
// (Run under -race in CI; the interleaved computes also exercise the
// inflight bookkeeping.)
func TestStressSingleflightNoEviction(t *testing.T) {
	const (
		keySpace   = 8
		goroutines = 32
		iters      = 300
	)
	c := New(keySpace) // capacity == key space: nothing ever evicts
	var computes [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(keySpace)
				key := NewKey("stress", "algo", float64(k), 0, "")
				val, _, err := c.Get(context.Background(), key, func(context.Context) ([]float64, error) {
					computes[k].Add(1)
					// Widen the race window so concurrent misses overlap.
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					return []float64{float64(k)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(val) != 1 || val[0] != float64(k) {
					t.Errorf("key %d returned %v", k, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for k := 0; k < keySpace; k++ {
		if n := computes[k].Load(); n > 1 {
			t.Errorf("key %d computed %d times, want at most 1", k, n)
		}
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Errorf("evictions = %d with capacity == key space", st.Evictions)
	}
	if total := st.Hits + st.Misses + st.Shared; total != goroutines*iters {
		t.Errorf("hits+misses+shared = %d, want %d", total, goroutines*iters)
	}
	if st.Misses != uint64(c.Len()) {
		t.Errorf("misses = %d but %d resident entries", st.Misses, c.Len())
	}
}

// TestStressSingleflightWithEvictions shrinks the capacity far below the key
// space so the LRU churns constantly. A key may now be computed more than
// once (recompute after eviction is correct behavior), but two computes for
// the same key must never overlap in time — the inflight table, not
// residency, is what serializes them. Values must stay correct throughout.
func TestStressSingleflightWithEvictions(t *testing.T) {
	const (
		keySpace   = 16
		capacity   = 3
		goroutines = 24
		iters      = 200
	)
	c := New(capacity)
	var inflight [keySpace]atomic.Int64
	var overlaps atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(keySpace)
				key := NewKey("evict", "algo", float64(k), 0, "")
				val, _, err := c.Get(context.Background(), key, func(context.Context) ([]float64, error) {
					if inflight[k].Add(1) != 1 {
						overlaps.Add(1)
					}
					time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
					inflight[k].Add(-1)
					return []float64{float64(k)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(val) != 1 || val[0] != float64(k) {
					t.Errorf("key %d returned %v", k, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if n := overlaps.Load(); n != 0 {
		t.Errorf("%d overlapping computes for one key (single-flight broken)", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions despite capacity %d < key space %d: %+v", capacity, keySpace, st)
	}
	if c.Len() > capacity {
		t.Errorf("resident %d > capacity %d", c.Len(), capacity)
	}
	if total := st.Hits + st.Misses + st.Shared; total != goroutines*iters {
		t.Errorf("hits+misses+shared = %d, want %d", total, goroutines*iters)
	}
}

// TestStressErrorsDoNotPoison mixes failing computes into the hammering:
// errors must propagate to exactly the requests that joined the failing
// flight, must not be cached, and must not wedge later Gets for the key.
func TestStressErrorsDoNotPoison(t *testing.T) {
	const (
		keySpace   = 4
		goroutines = 16
		iters      = 100
	)
	c := New(keySpace)
	var flips [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(keySpace)
				key := NewKey("err", "algo", float64(k), 0, "")
				val, _, err := c.Get(context.Background(), key, func(context.Context) ([]float64, error) {
					// Fail the first few computes of every key, then succeed.
					if flips[k].Add(1) <= 2 {
						return nil, fmt.Errorf("transient failure for %d", k)
					}
					return []float64{float64(k)}, nil
				})
				if err == nil && (len(val) != 1 || val[0] != float64(k)) {
					t.Errorf("key %d returned %v", k, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// After the dust settles every key must be computable.
	for k := 0; k < keySpace; k++ {
		key := NewKey("err", "algo", float64(k), 0, "")
		val, _, err := c.Get(context.Background(), key, func(context.Context) ([]float64, error) {
			return []float64{float64(k)}, nil
		})
		if err != nil || val[0] != float64(k) {
			t.Errorf("key %d unusable after transient errors: %v %v", k, val, err)
		}
	}
}
