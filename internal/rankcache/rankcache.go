// Package rankcache is the serving layer's result cache: an LRU over
// computed score vectors keyed by the full ranking configuration
// (graph, algorithm/transition kind, p, β, solver options), with
// single-flight deduplication so that N concurrent identical requests cost
// one power-iteration solve, and optional background warming of a
// configured parameter sweep.
//
// A cached value is an immutable []float64 shared by every reader; callers
// must not modify it.
package rankcache

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
)

// Key identifies one ranking configuration. Build it with NewKey so the
// component order (and therefore cache identity) stays canonical.
type Key string

// NewKey derives the canonical cache key for a ranking configuration.
// graphName names the registry entry, algo the transition/algorithm kind
// (e.g. "d2pr", "pagerank"), p and beta the de-coupling parameters, and
// optsKey the solver-option component (core.Options.CacheKey()). Algorithms
// that ignore p/β (degree, hits) should pass zeros so equivalent requests
// collide.
func NewKey(graphName, algo string, p, beta float64, optsKey string) Key {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|p=%g|beta=%g|%s", graphName, algo, p, beta, optsKey)
	return Key(b.String())
}

// ComputeFunc produces the score vector for a key on a cache miss.
type ComputeFunc func() ([]float64, error)

// call is an in-flight computation shared by concurrent requesters.
type call struct {
	done chan struct{}
	val  []float64
	err  error
}

// cacheEntry is one resident LRU slot.
type cacheEntry struct {
	key Key
	val []float64
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Shared counts requests that piggybacked on another request's
	// in-flight solve (single-flight deduplication).
	Shared uint64 `json:"shared"`
	Len    int    `json:"len"`
	Cap    int    `json:"cap"`
}

// Cache is a concurrency-safe LRU of score vectors with single-flight
// computation. The zero value is not usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	index    map[Key]*list.Element
	inflight map[Key]*call
	stats    Stats
}

// DefaultCapacity is the cache size used when New is given a non-positive
// capacity. Score vectors are 8 bytes per node, so 256 resident vectors on a
// million-node graph is ~2 GiB — size the cache to the deployment.
const DefaultCapacity = 256

// New returns a Cache holding at most capacity score vectors.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		index:    map[Key]*list.Element{},
		inflight: map[Key]*call{},
	}
}

// Lookup returns the cached scores for key without computing anything. It
// counts as a use for LRU purposes but does not touch hit/miss counters.
func (c *Cache) Lookup(key Key) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Get returns the scores for key, computing them with compute on a miss.
// Concurrent Gets for the same key share one compute call (single-flight);
// the piggybacking callers block until the leader finishes. Errors are not
// cached — a later Get retries the computation.
func (c *Cache) Get(key Key, compute ComputeFunc) ([]float64, error) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Shared++
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	// A panicking compute must not poison the key: waiters are parked on
	// cl.done and future Gets would block on the stale inflight entry
	// forever. Convert the panic into an error for the waiters, release
	// them, then re-panic in the leader.
	defer func() {
		if r := recover(); r != nil {
			cl.err = fmt.Errorf("rankcache: compute for %q panicked: %v", key, r)
			c.finish(key, cl)
			panic(r)
		}
	}()
	cl.val, cl.err = compute()
	c.finish(key, cl)
	return cl.val, cl.err
}

// finish publishes a completed in-flight call: stores the value on success,
// releases the waiters, and retires the inflight entry.
func (c *Cache) finish(key Key, cl *call) {
	c.mu.Lock()
	delete(c.inflight, key)
	if cl.err == nil {
		c.insert(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
}

// insert adds a computed value and evicts from the LRU tail past capacity.
// Callers hold c.mu.
func (c *Cache) insert(key Key, val []float64) {
	if el, ok := c.index[key]; ok {
		// A concurrent leader for the same key already inserted; refresh.
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.index[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.index, tail.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of resident score vectors.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Keys returns the resident keys from most to least recently used.
// Primarily a testing and introspection aid.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Len = c.lru.Len()
	st.Cap = c.capacity
	return st
}

// Job is one warming unit: a key and how to compute it.
type Job struct {
	Key     Key
	Compute ComputeFunc
}

// Warm computes the given jobs in the background with the given parallelism
// (min 1) and returns a channel that closes when the sweep finishes. Jobs
// whose keys are already resident are skipped; individual job errors are
// dropped — warming is best-effort by design, a failed entry simply stays
// cold.
func (c *Cache) Warm(jobs []Job, parallelism int) <-chan struct{} {
	if parallelism < 1 {
		parallelism = 1
	}
	done := make(chan struct{})
	work := make(chan Job)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for j := range work {
				if _, ok := c.Lookup(j.Key); ok {
					continue
				}
				_, _ = c.Get(j.Key, j.Compute)
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			work <- j
		}
		close(work)
		wg.Wait()
		close(done)
	}()
	return done
}
