// Package rankcache is the serving layer's result cache: an LRU over
// computed score vectors keyed by the full ranking configuration
// (graph, algorithm/transition kind, p, β, solver options), with
// single-flight deduplication so that N concurrent identical requests cost
// one power-iteration solve, and optional background warming of a
// configured parameter sweep.
//
// A cached value is an immutable []float64 shared by every reader; callers
// must not modify it.
package rankcache

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
)

// Key identifies one ranking configuration. Build it with NewKey so the
// component order (and therefore cache identity) stays canonical.
type Key string

// NewKey derives the canonical cache key for a ranking configuration.
// graphName names the registry entry, algo the transition/algorithm kind
// (e.g. "d2pr", "pagerank"), p and beta the de-coupling parameters, and
// optsKey the solver-option component (core.Options.CacheKey()). Algorithms
// that ignore p/β (degree, hits) should pass zeros so equivalent requests
// collide.
func NewKey(graphName, algo string, p, beta float64, optsKey string) Key {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|p=%g|beta=%g|%s", graphName, algo, p, beta, optsKey)
	return Key(b.String())
}

// ComputeFunc produces the score vector for a key on a cache miss. The
// context is the solve context: detached from any single requester's
// lifetime, cancelled only when every waiter for the key has abandoned the
// flight (see Get).
type ComputeFunc func(ctx context.Context) ([]float64, error)

// call is an in-flight computation shared by concurrent requesters. waiters
// counts the requests currently parked on done (guarded by Cache.mu); the
// last waiter to abandon cancels the detached solve via cancel.
type call struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	val     []float64
	err     error
}

// cacheEntry is one resident LRU slot.
type cacheEntry struct {
	key Key
	val []float64
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Shared counts requests that piggybacked on another request's
	// in-flight solve (single-flight deduplication).
	Shared uint64 `json:"shared"`
	// Abandoned counts in-flight solves cancelled because every waiter gave
	// up (request cancellation / deadline) before the solve finished.
	Abandoned uint64 `json:"abandoned"`
	// StaleHits counts requests served from the stale tier — evicted
	// vectors retained for degraded service under load shedding.
	StaleHits uint64 `json:"stale_hits"`
	Len       int    `json:"len"`
	Cap       int    `json:"cap"`
	StaleLen  int    `json:"stale_len"`
}

// Cache is a concurrency-safe LRU of score vectors with single-flight
// computation and a stale tier: vectors evicted from the resident LRU are
// retained in a second bounded LRU so the serving layer can prefer a
// slightly-old score over shedding a request when the compute budget is
// exhausted (see LookupStale). The zero value is not usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *cacheEntry
	index    map[Key]*list.Element
	stale    *list.List // evicted-but-retained vectors, same discipline
	staleIdx map[Key]*list.Element
	inflight map[Key]*call
	stats    Stats
	// onPanic, when set, observes the recovered value whenever a compute
	// closure panics (before the panic is converted into the flight's error).
	onPanic func(recovered any)
}

// SetOnPanic installs a hook observing recovered compute panics — the
// serving layer points it at its panic telemetry counter. Set it before the
// cache serves traffic; it is not synchronized against concurrent Gets.
func (c *Cache) SetOnPanic(fn func(recovered any)) { c.onPanic = fn }

// DefaultCapacity is the cache size used when New is given a non-positive
// capacity. Score vectors are 8 bytes per node, so 256 resident vectors on a
// million-node graph is ~2 GiB — size the cache to the deployment.
const DefaultCapacity = 256

// New returns a Cache holding at most capacity score vectors.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		index:    map[Key]*list.Element{},
		stale:    list.New(),
		staleIdx: map[Key]*list.Element{},
		inflight: map[Key]*call{},
	}
}

// Lookup returns the cached scores for key without computing anything. It
// counts as a use for LRU purposes but does not touch hit/miss counters.
func (c *Cache) Lookup(key Key) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Get returns the scores for key, computing them with compute on a miss.
// Concurrent Gets for the same key share one compute call (single-flight);
// the piggybacking callers block until the flight finishes. The second
// return reports whether the value was served without running compute in
// this request (resident hit or piggyback) — the serving layer's
// cache-status header. Errors are not cached; a later Get retries.
//
// Cancellation semantics: ctx bounds this request's wait, not the solve.
// The compute runs in its own goroutine under a context detached from every
// requester (context.WithoutCancel), so one cancelled waiter abandons its
// wait with ctx.Err() while the solve keeps running for the others — and
// the finished vector is still cached for future requests. Only when the
// last waiter abandons is the detached solve context cancelled, letting the
// solver's per-iteration poll stop work nobody is waiting for.
func (c *Cache) Get(ctx context.Context, key Key, compute ComputeFunc) ([]float64, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		cl.waiters++
		c.stats.Shared++
		c.mu.Unlock()
		return c.wait(ctx, key, cl, true)
	}
	solveCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	cl := &call{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		// A panicking compute must not poison the key: waiters are parked
		// on cl.done and future Gets would block on the stale inflight
		// entry forever. The panic becomes an error delivered to every
		// waiter (it cannot re-raise on a requester's stack — the leader
		// may already be gone).
		defer func() {
			if r := recover(); r != nil {
				cl.err = fmt.Errorf("rankcache: compute for %q panicked: %v", key, r)
				if c.onPanic != nil {
					c.onPanic(r)
				}
			}
			c.finish(key, cl)
		}()
		cl.val, cl.err = compute(solveCtx)
	}()
	return c.wait(ctx, key, cl, false)
}

// wait parks one requester on an in-flight call until the solve finishes or
// the requester's own context is done, whichever is first.
func (c *Cache) wait(ctx context.Context, key Key, cl *call, piggyback bool) ([]float64, bool, error) {
	select {
	case <-cl.done:
		return cl.val, piggyback, cl.err
	case <-ctx.Done():
		c.abandon(key, cl)
		return nil, false, ctx.Err()
	}
}

// abandon drops one waiter from an in-flight call. The last waiter out
// cancels the detached solve and retires the inflight entry so a later Get
// starts fresh instead of joining a doomed flight.
func (c *Cache) abandon(key Key, cl *call) {
	c.mu.Lock()
	cl.waiters--
	if cl.waiters == 0 && c.inflight[key] == cl {
		delete(c.inflight, key)
		c.stats.Abandoned++
		cl.cancel()
	}
	c.mu.Unlock()
}

// finish publishes a completed in-flight call: stores the value on success,
// releases the waiters, and retires the inflight entry. The identity check
// guards against a fully-abandoned flight whose slot has already been
// retired (and possibly re-occupied by a fresh call for the same key).
func (c *Cache) finish(key Key, cl *call) {
	c.mu.Lock()
	if c.inflight[key] == cl {
		delete(c.inflight, key)
	}
	if cl.err == nil {
		c.insert(key, cl.val)
	}
	c.mu.Unlock()
	cl.cancel()
	close(cl.done)
}

// insert adds a computed value and evicts from the LRU tail past capacity.
// Evicted entries demote to the stale tier instead of vanishing. Callers
// hold c.mu.
func (c *Cache) insert(key Key, val []float64) {
	// A fresh value supersedes any stale copy of the same key.
	if el, ok := c.staleIdx[key]; ok {
		c.stale.Remove(el)
		delete(c.staleIdx, key)
	}
	if el, ok := c.index[key]; ok {
		// A concurrent leader for the same key already inserted; refresh.
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.index[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		ent := tail.Value.(*cacheEntry)
		delete(c.index, ent.key)
		c.stats.Evictions++
		c.demote(ent)
	}
}

// demote retains an evicted entry in the bounded stale tier. Callers hold
// c.mu.
func (c *Cache) demote(ent *cacheEntry) {
	if el, ok := c.staleIdx[ent.key]; ok {
		c.stale.MoveToFront(el)
		el.Value.(*cacheEntry).val = ent.val
		return
	}
	c.staleIdx[ent.key] = c.stale.PushFront(ent)
	for c.stale.Len() > c.capacity {
		tail := c.stale.Back()
		c.stale.Remove(tail)
		delete(c.staleIdx, tail.Value.(*cacheEntry).key)
	}
}

// LookupStale returns the retained copy of a vector that has been evicted
// from the resident tier. The serving layer consults it only when admission
// control would otherwise shed the request: a slightly-old score beats a
// 429. It never computes and never touches the resident LRU.
func (c *Cache) LookupStale(key Key) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.staleIdx[key]; ok {
		c.stale.MoveToFront(el)
		c.stats.StaleHits++
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Len returns the number of resident score vectors.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Keys returns the resident keys from most to least recently used.
// Primarily a testing and introspection aid.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Len = c.lru.Len()
	st.Cap = c.capacity
	st.StaleLen = c.stale.Len()
	return st
}

// Job is one warming unit: a key and how to compute it.
type Job struct {
	Key     Key
	Compute ComputeFunc
}

// Warm computes the given jobs in the background with the given parallelism
// (min 1) and returns a channel that closes when the sweep finishes. Jobs
// whose keys are already resident are skipped; individual job errors are
// dropped — warming is best-effort by design, a failed entry simply stays
// cold.
func (c *Cache) Warm(jobs []Job, parallelism int) <-chan struct{} {
	if parallelism < 1 {
		parallelism = 1
	}
	done := make(chan struct{})
	work := make(chan Job)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for i := 0; i < parallelism; i++ {
		go func() {
			defer wg.Done()
			for j := range work {
				if _, ok := c.Lookup(j.Key); ok {
					continue
				}
				_, _, _ = c.Get(context.Background(), j.Key, j.Compute)
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			work <- j
		}
		close(work)
		wg.Wait()
		close(done)
	}()
	return done
}
