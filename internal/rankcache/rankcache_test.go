package rankcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func constant(v float64) ComputeFunc {
	return func() ([]float64, error) { return []float64{v}, nil }
}

func TestNewKeyCanonical(t *testing.T) {
	a := NewKey("g", "d2pr", 0.5, 0, "alpha=0.85")
	b := NewKey("g", "d2pr", 0.5, 0, "alpha=0.85")
	if a != b {
		t.Errorf("identical configs → different keys: %q vs %q", a, b)
	}
	for _, other := range []Key{
		NewKey("h", "d2pr", 0.5, 0, "alpha=0.85"),
		NewKey("g", "pagerank", 0.5, 0, "alpha=0.85"),
		NewKey("g", "d2pr", 1.5, 0, "alpha=0.85"),
		NewKey("g", "d2pr", 0.5, 1, "alpha=0.85"),
		NewKey("g", "d2pr", 0.5, 0, "alpha=0.9"),
	} {
		if a == other {
			t.Errorf("distinct configs collide on %q", a)
		}
	}
}

func TestGetComputesOnceAndCaches(t *testing.T) {
	c := New(4)
	var calls int32
	compute := func() ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return []float64{42}, nil
	}
	for i := 0; i < 5; i++ {
		v, err := c.Get("k", compute)
		if err != nil || v[0] != 42 {
			t.Fatalf("get: %v %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3)
	for i := 1; i <= 3; i++ {
		c.Get(Key(fmt.Sprintf("k%d", i)), constant(float64(i)))
	}
	// Touch k1 so k2 becomes the least recently used.
	if _, ok := c.Lookup("k1"); !ok {
		t.Fatal("k1 must be resident")
	}
	c.Get("k4", constant(4)) // evicts k2
	if _, ok := c.Lookup("k2"); ok {
		t.Error("k2 must have been evicted (LRU)")
	}
	for _, k := range []Key{"k1", "k3", "k4"} {
		if _, ok := c.Lookup(k); !ok {
			t.Errorf("%s must be resident", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// Keys() reports MRU → LRU.
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "k4" {
		t.Errorf("keys = %v, want k4 first", keys)
	}
}

func TestEvictedKeyRecomputes(t *testing.T) {
	c := New(1)
	var calls int32
	compute := func() ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return []float64{1}, nil
	}
	c.Get("a", compute)
	c.Get("b", constant(2)) // evicts a
	c.Get("a", compute)
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (recompute after eviction)", calls)
	}
}

// TestSingleFlight: concurrent identical requests must share one compute.
func TestSingleFlight(t *testing.T) {
	c := New(4)
	var calls int32
	release := make(chan struct{})
	compute := func() ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		<-release // hold every concurrent caller in flight
		return []float64{7}, nil
	}

	const n = 32
	var wg sync.WaitGroup
	results := make([][]float64, n)
	wg.Add(n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, err := c.Get("hot", compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Errorf("compute ran %d times under concurrency, want 1", calls)
	}
	for i := 1; i < n; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatal("waiters must share the leader's slice")
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	// Every non-leader either piggybacked on the in-flight solve or (if it
	// reached Get after the leader stored) scored a plain hit.
	if st.Shared+st.Hits != n-1 {
		t.Errorf("shared %d + hits %d != %d", st.Shared, st.Hits, n-1)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	var calls int32
	failing := func() ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return nil, boom
	}
	if _, err := c.Get("k", failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Get("k", failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("failed compute must retry, ran %d times", calls)
	}
	if c.Len() != 0 {
		t.Errorf("errors must not occupy cache slots, len = %d", c.Len())
	}
}

// TestPanicDoesNotPoisonKey: a panicking compute must release waiters and
// leave the key retryable — not park every future Get on a dead in-flight
// entry.
func TestPanicDoesNotPoisonKey(t *testing.T) {
	c := New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader must re-panic")
			}
		}()
		c.Get("k", func() ([]float64, error) { panic("kaboom") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.Get("k", constant(1))
		if err != nil || v[0] != 1 {
			t.Errorf("retry after panic: %v %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked on a poisoned key")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestWarm(t *testing.T) {
	c := New(16)
	var calls int32
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{
			Key: Key(fmt.Sprintf("w%d", i)),
			Compute: func() ([]float64, error) {
				atomic.AddInt32(&calls, 1)
				return []float64{1}, nil
			},
		})
	}
	// Duplicate job for an already-warm key must be skipped.
	c.Get("w0", constant(0))
	<-c.Warm(jobs, 3)
	if calls != 7 {
		t.Errorf("warm computed %d entries, want 7 (w0 already resident)", calls)
	}
	if c.Len() != 8 {
		t.Errorf("len = %d, want 8", c.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	if got := c.Stats().Cap; got != DefaultCapacity {
		t.Errorf("cap = %d, want %d", got, DefaultCapacity)
	}
}
