package rankcache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func constant(v float64) ComputeFunc {
	return func(context.Context) ([]float64, error) { return []float64{v}, nil }
}

// get is the test shorthand for the common case: background context, cached
// flag ignored.
func get(c *Cache, key Key, compute ComputeFunc) ([]float64, error) {
	v, _, err := c.Get(context.Background(), key, compute)
	return v, err
}

func TestNewKeyCanonical(t *testing.T) {
	a := NewKey("g", "d2pr", 0.5, 0, "alpha=0.85")
	b := NewKey("g", "d2pr", 0.5, 0, "alpha=0.85")
	if a != b {
		t.Errorf("identical configs → different keys: %q vs %q", a, b)
	}
	for _, other := range []Key{
		NewKey("h", "d2pr", 0.5, 0, "alpha=0.85"),
		NewKey("g", "pagerank", 0.5, 0, "alpha=0.85"),
		NewKey("g", "d2pr", 1.5, 0, "alpha=0.85"),
		NewKey("g", "d2pr", 0.5, 1, "alpha=0.85"),
		NewKey("g", "d2pr", 0.5, 0, "alpha=0.9"),
	} {
		if a == other {
			t.Errorf("distinct configs collide on %q", a)
		}
	}
}

func TestGetComputesOnceAndCaches(t *testing.T) {
	c := New(4)
	var calls int32
	compute := func(context.Context) ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return []float64{42}, nil
	}
	for i := 0; i < 5; i++ {
		v, cached, err := c.Get(context.Background(), "k", compute)
		if err != nil || v[0] != 42 {
			t.Fatalf("get: %v %v", v, err)
		}
		if cached != (i > 0) {
			t.Errorf("get %d: cached = %v", i, cached)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3)
	for i := 1; i <= 3; i++ {
		get(c, Key(fmt.Sprintf("k%d", i)), constant(float64(i)))
	}
	// Touch k1 so k2 becomes the least recently used.
	if _, ok := c.Lookup("k1"); !ok {
		t.Fatal("k1 must be resident")
	}
	get(c, "k4", constant(4)) // evicts k2
	if _, ok := c.Lookup("k2"); ok {
		t.Error("k2 must have been evicted (LRU)")
	}
	for _, k := range []Key{"k1", "k3", "k4"} {
		if _, ok := c.Lookup(k); !ok {
			t.Errorf("%s must be resident", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// Keys() reports MRU → LRU.
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "k4" {
		t.Errorf("keys = %v, want k4 first", keys)
	}
}

func TestEvictedKeyRecomputes(t *testing.T) {
	c := New(1)
	var calls int32
	compute := func(context.Context) ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return []float64{1}, nil
	}
	get(c, "a", compute)
	get(c, "b", constant(2)) // evicts a
	get(c, "a", compute)
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (recompute after eviction)", calls)
	}
}

// TestStaleTierServesEvicted: an evicted entry is demoted to the stale tier
// and stays retrievable via LookupStale until the key is refreshed or the
// stale tier itself overflows.
func TestStaleTierServesEvicted(t *testing.T) {
	c := New(1)
	get(c, "a", constant(1))
	get(c, "b", constant(2)) // evicts a → stale tier
	if v, ok := c.LookupStale("a"); !ok || v[0] != 1 {
		t.Fatalf("evicted key not in stale tier: %v %v", v, ok)
	}
	if _, ok := c.LookupStale("b"); ok {
		t.Error("resident key must not be stale")
	}
	// A fresh recompute of "a" drops the stale copy.
	get(c, "a", constant(10))
	if _, ok := c.LookupStale("a"); ok {
		t.Error("fresh insert must remove the stale copy")
	}
	st := c.Stats()
	if st.StaleHits != 1 {
		t.Errorf("stale hits = %d, want 1", st.StaleHits)
	}
	// The stale tier is bounded at the cache capacity: churning many keys
	// through a capacity-1 cache leaves at most one stale entry.
	for i := 0; i < 8; i++ {
		get(c, Key(fmt.Sprintf("churn%d", i)), constant(float64(i)))
	}
	if st := c.Stats(); st.StaleLen > 1 {
		t.Errorf("stale tier grew past capacity: %+v", st)
	}
}

// TestSingleFlight: concurrent identical requests must share one compute.
func TestSingleFlight(t *testing.T) {
	c := New(4)
	var calls int32
	release := make(chan struct{})
	compute := func(context.Context) ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		<-release // hold every concurrent caller in flight
		return []float64{7}, nil
	}

	const n = 32
	var wg sync.WaitGroup
	results := make([][]float64, n)
	wg.Add(n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			v, err := get(c, "hot", compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Errorf("compute ran %d times under concurrency, want 1", calls)
	}
	for i := 1; i < n; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatal("waiters must share the leader's slice")
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	// Every non-leader either piggybacked on the in-flight solve or (if it
	// reached Get after the leader stored) scored a plain hit.
	if st.Shared+st.Hits != n-1 {
		t.Errorf("shared %d + hits %d != %d", st.Shared, st.Hits, n-1)
	}
}

// TestCancelledWaiterDoesNotFailSiblings: one requester abandoning an
// in-flight solve gets its own ctx error, while the solve keeps running and
// delivers the result to the remaining waiters.
func TestCancelledWaiterDoesNotFailSiblings(t *testing.T) {
	c := New(4)
	entered := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool
	compute := func(ctx context.Context) ([]float64, error) {
		close(entered)
		<-release
		if ctx.Err() != nil {
			sawCancel.Store(true)
			return nil, ctx.Err()
		}
		return []float64{7}, nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Get(leaderCtx, "k", compute)
		leaderErr <- err
	}()
	<-entered

	// A second requester piggybacks with its own, never-cancelled context.
	siblingVal := make(chan []float64, 1)
	siblingErr := make(chan error, 1)
	go func() {
		v, _, err := c.Get(context.Background(), "k", compute)
		siblingVal <- v
		siblingErr <- err
	}()
	waitForStat(t, c, func(st Stats) bool { return st.Shared == 1 })

	// The leader walks away; its Get must fail with Canceled promptly...
	cancelLeader()
	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter: want Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}

	// ...while the solve is still pending for the sibling.
	close(release)
	if err := <-siblingErr; err != nil {
		t.Fatalf("sibling must get the result, got error %v", err)
	}
	if v := <-siblingVal; len(v) != 1 || v[0] != 7 {
		t.Fatalf("sibling value = %v", v)
	}
	if sawCancel.Load() {
		t.Error("solve context was cancelled while a waiter remained")
	}
	// The flight itself was never abandoned — the sibling stayed on it.
	if st := c.Stats(); st.Abandoned != 0 {
		t.Errorf("abandoned = %d, want 0", st.Abandoned)
	}
	// The finished result is cached for future requests.
	if v, ok := c.Lookup("k"); !ok || v[0] != 7 {
		t.Errorf("result not cached after waiter churn: %v %v", v, ok)
	}
}

// TestAllWaitersGoneCancelsSolve: once every requester has abandoned the
// flight, the detached solve context is cancelled so the solver can stop.
func TestAllWaitersGoneCancelsSolve(t *testing.T) {
	c := New(4)
	entered := make(chan struct{})
	solveCancelled := make(chan struct{})
	compute := func(ctx context.Context) ([]float64, error) {
		close(entered)
		<-ctx.Done()
		close(solveCancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Get(ctx, "k", compute)
		errCh <- err
	}()
	<-entered
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	select {
	case <-solveCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("solve context never cancelled after the last waiter left")
	}
	if st := c.Stats(); st.Abandoned != 1 {
		t.Errorf("abandoned flights = %d, want 1", st.Abandoned)
	}
	// The key is immediately retryable.
	if v, err := get(c, "k", constant(3)); err != nil || v[0] != 3 {
		t.Fatalf("retry after abandon: %v %v", v, err)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	var calls int32
	failing := func(context.Context) ([]float64, error) {
		atomic.AddInt32(&calls, 1)
		return nil, boom
	}
	if _, err := get(c, "k", failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := get(c, "k", failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("failed compute must retry, ran %d times", calls)
	}
	if c.Len() != 0 {
		t.Errorf("errors must not occupy cache slots, len = %d", c.Len())
	}
}

// TestPanicDoesNotPoisonKey: a panicking compute must surface as an error to
// every waiter and leave the key retryable — not park every future Get on a
// dead in-flight entry. (The compute runs detached from any single requester,
// so the panic cannot be re-raised on a caller's goroutine; it is delivered
// as an error instead.)
func TestPanicDoesNotPoisonKey(t *testing.T) {
	c := New(4)
	_, err := get(c, "k", func(context.Context) ([]float64, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic must surface as an error, got %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := get(c, "k", constant(1))
		if err != nil || v[0] != 1 {
			t.Errorf("retry after panic: %v %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked on a poisoned key")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestWarm(t *testing.T) {
	c := New(16)
	var calls int32
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{
			Key: Key(fmt.Sprintf("w%d", i)),
			Compute: func(context.Context) ([]float64, error) {
				atomic.AddInt32(&calls, 1)
				return []float64{1}, nil
			},
		})
	}
	// Duplicate job for an already-warm key must be skipped.
	get(c, "w0", constant(0))
	<-c.Warm(jobs, 3)
	if calls != 7 {
		t.Errorf("warm computed %d entries, want 7 (w0 already resident)", calls)
	}
	if c.Len() != 8 {
		t.Errorf("len = %d, want 8", c.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	if got := c.Stats().Cap; got != DefaultCapacity {
		t.Errorf("cap = %d, want %d", got, DefaultCapacity)
	}
}

func waitForStat(t *testing.T, c *Cache, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(c.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
