package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"d2pr/internal/faultinject"
	"d2pr/internal/jobs"
	"d2pr/internal/pprcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
	"d2pr/internal/telemetry"
)

// pprCacheHeader reports whether a /ppr response was served from the
// personalized cache ("hit" — resident entry or a piggybacked in-flight
// solve) or cost a fresh forward push ("miss").
const pprCacheHeader = "X-PPR-Cache"

// PPRResponse is the GET/POST /v1/{graph}/ppr response body.
type PPRResponse struct {
	Graph  string `json:"graph"`
	Config string `json:"config"`
	Seed   int32  `json:"seed"`
	// Cached mirrors the X-PPR-Cache header.
	Cached bool        `json:"cached"`
	Top    []RankEntry `json:"top"`
}

// parsePPRQuery extracts and validates the personalized-ranking parameters
// from the URL query. seed is required; alpha, eps, and k default to the
// server's serving configuration. Malformed values are plain errors (400);
// an out-of-range seed is reported via errSeedRange so the caller can 404
// it, matching /v1/{graph}/node/{id}.
func (s *Server) parsePPRQuery(r *http.Request, snap *registry.Snapshot) (rankspec.PPRSpec, error) {
	vals := r.URL.Query()
	seedStr := vals.Get("seed")
	if seedStr == "" {
		return rankspec.PPRSpec{}, fmt.Errorf("missing seed")
	}
	seed, err := strconv.Atoi(seedStr)
	if err != nil {
		return rankspec.PPRSpec{}, fmt.Errorf("bad seed %q", seedStr)
	}
	spec := rankspec.NewPPR(snap.Name, int32(seed))
	spec.Epsilon = s.pprEps
	if v := vals.Get("alpha"); v != "" {
		if spec.Alpha, err = strconv.ParseFloat(v, 64); err != nil {
			return spec, fmt.Errorf("bad alpha %q", v)
		}
	}
	if v := vals.Get("eps"); v != "" {
		if spec.Epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			return spec, fmt.Errorf("bad eps %q", v)
		}
	}
	if v := vals.Get("k"); v != "" {
		if spec.K, err = strconv.Atoi(v); err != nil {
			return spec, fmt.Errorf("bad k %q", v)
		}
	}
	return spec, s.checkPPRSpec(spec, snap)
}

// errSeedRange marks a structurally valid seed that does not exist on the
// graph — a 404 (unknown resource), not a 400 (malformed request).
var errSeedRange = errors.New("seed out of range")

// checkPPRSpec validates a spec against the materialized graph, folding the
// out-of-range seed case into errSeedRange.
func (s *Server) checkPPRSpec(spec rankspec.PPRSpec, snap *registry.Snapshot) error {
	n := snap.Graph.NumNodes()
	if spec.Seed < 0 || int(spec.Seed) >= n {
		return fmt.Errorf("%w: %d not in [0, %d)", errSeedRange, spec.Seed, n)
	}
	return spec.Validate(n)
}

// servePPR resolves one personalized request through the PPR cache and
// writes the response. A warm request touches no solver state: the cached
// compact rows are expanded to k response entries and encoded — O(k) work
// and allocation end to end. Cold requests run under the request deadline
// and the graph's admission budget (hits and piggybacks are exempt, like
// /rank); a saturated budget sheds with 429 + Retry-After — the per-seed
// cache has no stale tier, so there is no degraded fallback here.
func (s *Server) servePPR(w http.ResponseWriter, r *http.Request, snap *registry.Snapshot, spec rankspec.PPRSpec) {
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	// probe follows the same discipline as Server.scores: written inside the
	// closure, read only on the leader-success path.
	var probe telemetry.SolveStats
	rows, cached, err := s.ppr.Get(ctx, spec.CacheKeyFor(snap), func(solveCtx context.Context) ([]pprcache.Entry, error) {
		waitStart := time.Now()
		release, aerr := s.adm.Acquire(solveCtx, snap.Name)
		wait := time.Since(waitStart)
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		if err := faultinject.Fire(faultinject.PointPPRCompute, snap.Name); err != nil {
			return nil, err
		}
		if s.hookSolve != nil {
			s.hookSolve(snap.Name)
		}
		entries, st, cerr := spec.ComputeStats(solveCtx, snap)
		if cerr != nil {
			s.tel.RecordSolveError(snap.Name)
			return nil, cerr
		}
		st.AdmissionWait = wait
		s.tel.RecordSolve(snap.Name, st)
		probe = st
		return entries, nil
	})
	if err != nil {
		s.writeComputeError(w, snap.Name, err)
		return
	}
	status := "miss"
	var st *telemetry.SolveStats
	if cached {
		status = "hit"
	} else {
		cp := probe
		st = &cp
	}
	w.Header().Set(pprCacheHeader, status)
	noteCompute(w, r, snap.Name, status, st)
	writeJSON(w, http.StatusOK, PPRResponse{
		Graph:  snap.Name,
		Config: string(spec.CacheKey()),
		Seed:   spec.Seed,
		Cached: cached,
		Top:    rankspec.PPREntries(snap.Graph, rows),
	})
}

// writePPRSpecError maps spec validation failures to their HTTP status:
// out-of-range seeds are 404 (the node does not exist, matching
// /v1/{graph}/node/{id}), everything else 400.
func writePPRSpecError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, errSeedRange) {
		status = http.StatusNotFound
	}
	writeError(w, status, err)
}

func (s *Server) handlePPRGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	spec, err := s.parsePPRQuery(r, snap)
	if err != nil {
		writePPRSpecError(w, err)
		return
	}
	s.servePPR(w, r, snap, spec)
}

// pprBody is the POST /v1/{graph}/ppr request body. Zero-valued parameters
// take the serving defaults, exactly like the query-parameter form.
type pprBody struct {
	Seed    *int32  `json:"seed"`
	Alpha   float64 `json:"alpha,omitempty"`
	Epsilon float64 `json:"eps,omitempty"`
	K       int     `json:"k,omitempty"`
}

func (s *Server) handlePPRPost(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	var body pprBody
	if err := decodeStrictJSON(w, r, &body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body.Seed == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing seed"))
		return
	}
	spec := rankspec.NewPPR(snap.Name, *body.Seed)
	spec.Epsilon = s.pprEps
	if body.Alpha != 0 {
		spec.Alpha = body.Alpha
	}
	if body.Epsilon != 0 {
		spec.Epsilon = body.Epsilon
	}
	if body.K != 0 {
		spec.K = body.K
	}
	if err := s.checkPPRSpec(spec, snap); err != nil {
		writePPRSpecError(w, err)
		return
	}
	s.servePPR(w, r, snap, spec)
}

// handlePPRBatch submits a seed cohort as an asynchronous job: the response
// is 202 + job status, and progress, cancellation, results, and NDJSON
// streaming ride the /v1/jobs routes. Duplicate and out-of-range seeds are
// rejected here with a 400 — the full seed list is validated against the
// materialized graph before anything is queued, so a cohort never partially
// executes on bad input.
func (s *Server) handlePPRBatch(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	var spec jobs.PPRBatchSpec
	if err := decodeStrictJSON(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Graph != "" && spec.Graph != snap.Name {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cohort names graph %q but was posted to %q", spec.Graph, snap.Name))
		return
	}
	spec.Graph = snap.Name
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := spec.ValidateWith(snap); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.jobs.SubmitPPRTraced(spec, requestIDFrom(r))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, jobs.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, JobSubmitted{Job: st})
}

// decodeStrictJSON parses a bounded request body strictly: unknown fields
// and trailing content are rejected so a typo'd parameter fails loudly
// instead of silently taking a default.
func decodeStrictJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("bad request body: trailing data after JSON body")
	}
	return nil
}
