package server

import (
	"bytes"
	"net/http"
	"strings"
	"time"

	"d2pr/internal/admission"
	"d2pr/internal/core"
	"d2pr/internal/jobs"
	"d2pr/internal/pprcache"
	"d2pr/internal/rankcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/telemetry"
)

// RouteCount is one per-route row of the /metrics JSON response: the request
// count plus error count and latency percentiles from the route's histogram.
// It aliases telemetry.RouteSummary so callers that only read Route/Count see
// the pre-telemetry shape unchanged.
type RouteCount = telemetry.RouteSummary

// MetricsResponse is the /metrics JSON response body.
type MetricsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      uint64       `json:"requests"`
	Errors        uint64       `json:"errors"`
	AvgLatencyMs  float64      `json:"avg_latency_ms"`
	Routes        []RouteCount `json:"routes"`
	// DeadlineExceeded counts compute requests that ran out of deadline
	// (504s); ClientClosed counts requests whose client disconnected first
	// (499s) — a 499 is not an error, so it gets its own counter. Admission
	// carries the shed/queue-depth counters of the per-graph budgets.
	DeadlineExceeded uint64                   `json:"deadline_exceeded"`
	ClientClosed     uint64                   `json:"client_closed"`
	Solves           []telemetry.GraphSummary `json:"solves,omitempty"`
	Admission        admission.Stats          `json:"admission"`
	Cache            rankcache.Stats          `json:"cache"`
	PPRCache         pprcache.Stats           `json:"ppr_cache"`
	Jobs             jobs.Stats               `json:"jobs"`
	GraphsLoaded     int                      `json:"graphs_loaded"`
	GraphsRegistry   int                      `json:"graphs_registered"`
	// Panics counts recovered panics (handler, job, and compute recoveries
	// all feed it); Reloads counts graph reload attempts by outcome;
	// GraphStates tallies registry entries per lifecycle state.
	Panics        uint64         `json:"panics"`
	ReloadsOK     uint64         `json:"reloads_ok"`
	ReloadsFailed uint64         `json:"reloads_failed"`
	GraphStates   map[string]int `json:"graph_states"`
}

// promContentType is the Prometheus text exposition format version this
// server emits.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// wantsPrometheus decides which exposition /metrics serves. The ?format=
// query parameter wins when present (prometheus/openmetrics vs. json);
// otherwise a text/plain or openmetrics Accept header — what a Prometheus
// scraper sends — selects the text format, and everything else (browsers,
// curl without headers) keeps the historical JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "openmetrics":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics-text")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.writeMetricsProm(w)
		return
	}
	tel := s.tel
	resp := MetricsResponse{
		UptimeSeconds:    time.Since(tel.Start()).Seconds(),
		Requests:         tel.Requests(),
		Errors:           tel.Errors(),
		AvgLatencyMs:     tel.AvgLatencyMs(),
		Routes:           tel.RouteSummaries(),
		DeadlineExceeded: tel.Deadlines(),
		ClientClosed:     tel.ClientClosed(),
		Solves:           tel.GraphSummaries(),
	}
	resp.Admission = s.adm.Stats()
	resp.Cache = s.cache.Stats()
	resp.PPRCache = s.ppr.Stats()
	resp.Jobs = s.jobs.Stats()
	resp.Panics = tel.Panics()
	resp.ReloadsOK, resp.ReloadsFailed = tel.Reloads()
	resp.GraphStates = map[string]int{}
	for _, st := range s.reg.Statuses() {
		resp.GraphsRegistry++
		resp.GraphStates[string(st.State)]++
		if st.Loaded {
			resp.GraphsLoaded++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeMetricsProm renders the full Prometheus exposition: the telemetry
// registry's request/solve/runtime families plus the server-level gauges
// (caches, admission, jobs, registry) that live outside the registry. The
// payload is staged in a buffer so an encoding error (impossible for a
// bytes.Buffer, but checked anyway) never yields a half-written 200.
func (s *Server) writeMetricsProm(w http.ResponseWriter) {
	var buf bytes.Buffer
	p := telemetry.NewPromWriter(&buf)
	s.tel.WritePrometheus(p)
	s.writeServerFamilies(p)
	if err := p.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// writeServerFamilies emits the cache/admission/jobs/registry gauges and
// counters — serving-layer state the telemetry registry doesn't own.
func (s *Server) writeServerFamilies(p *telemetry.PromWriter) {
	cs := s.cache.Stats()
	p.Family("d2pr_rankcache_hits_total", "counter", "Rank cache hits.")
	p.Sample("d2pr_rankcache_hits_total", nil, float64(cs.Hits))
	p.Family("d2pr_rankcache_misses_total", "counter", "Rank cache misses.")
	p.Sample("d2pr_rankcache_misses_total", nil, float64(cs.Misses))
	p.Family("d2pr_rankcache_evictions_total", "counter", "Rank cache evictions.")
	p.Sample("d2pr_rankcache_evictions_total", nil, float64(cs.Evictions))
	p.Family("d2pr_rankcache_shared_total", "counter", "Requests that piggybacked on an in-flight solve.")
	p.Sample("d2pr_rankcache_shared_total", nil, float64(cs.Shared))
	p.Family("d2pr_rankcache_stale_hits_total", "counter", "Requests served from the stale tier.")
	p.Sample("d2pr_rankcache_stale_hits_total", nil, float64(cs.StaleHits))
	p.Family("d2pr_rankcache_entries", "gauge", "Rank cache resident entries.")
	p.Sample("d2pr_rankcache_entries", nil, float64(cs.Len))
	p.Family("d2pr_rankcache_capacity", "gauge", "Rank cache capacity.")
	p.Sample("d2pr_rankcache_capacity", nil, float64(cs.Cap))

	ps := s.ppr.Stats()
	p.Family("d2pr_pprcache_hits_total", "counter", "PPR cache hits.")
	p.Sample("d2pr_pprcache_hits_total", nil, float64(ps.Hits))
	p.Family("d2pr_pprcache_misses_total", "counter", "PPR cache misses.")
	p.Sample("d2pr_pprcache_misses_total", nil, float64(ps.Misses))
	p.Family("d2pr_pprcache_evictions_total", "counter", "PPR cache evictions.")
	p.Sample("d2pr_pprcache_evictions_total", nil, float64(ps.Evictions))
	p.Family("d2pr_pprcache_entries", "gauge", "PPR cache resident entries.")
	p.Sample("d2pr_pprcache_entries", nil, float64(ps.Len))

	as := s.adm.Stats()
	p.Family("d2pr_admission_admitted_total", "counter", "Compute requests granted a solve slot.")
	p.Sample("d2pr_admission_admitted_total", nil, float64(as.Admitted))
	p.Family("d2pr_admission_shed_total", "counter", "Compute requests rejected with a full queue.")
	p.Sample("d2pr_admission_shed_total", nil, float64(as.Shed))
	p.Family("d2pr_admission_abandoned_total", "counter", "Queued compute requests whose context ended while waiting.")
	p.Sample("d2pr_admission_abandoned_total", nil, float64(as.Abandoned))
	p.Family("d2pr_admission_running", "gauge", "Compute requests currently holding a solve slot.")
	p.Sample("d2pr_admission_running", nil, float64(as.Running))
	p.Family("d2pr_admission_queue_depth", "gauge", "Compute requests currently queued for a slot.")
	p.Sample("d2pr_admission_queue_depth", nil, float64(as.QueueDepth))

	js := s.jobs.Stats()
	p.Family("d2pr_jobs_submitted_total", "counter", "Background jobs accepted.")
	p.Sample("d2pr_jobs_submitted_total", nil, float64(js.Submitted))
	p.Family("d2pr_jobs_done_total", "counter", "Background jobs finished successfully.")
	p.Sample("d2pr_jobs_done_total", nil, float64(js.Done))
	p.Family("d2pr_jobs_failed_total", "counter", "Background jobs finished with an error.")
	p.Sample("d2pr_jobs_failed_total", nil, float64(js.Failed))
	p.Family("d2pr_jobs_cancelled_total", "counter", "Background jobs cancelled.")
	p.Sample("d2pr_jobs_cancelled_total", nil, float64(js.Cancelled))
	p.Family("d2pr_jobs_active", "gauge", "Background jobs not yet in a terminal state.")
	p.Sample("d2pr_jobs_active", nil, float64(js.Active))

	var loaded, registered int
	statuses := s.reg.Statuses()
	for _, st := range statuses {
		registered++
		if st.Loaded {
			loaded++
		}
	}
	p.Family("d2pr_graphs_registered", "gauge", "Graphs known to the registry.")
	p.Sample("d2pr_graphs_registered", nil, float64(registered))
	p.Family("d2pr_graphs_loaded", "gauge", "Graphs currently materialized in memory.")
	p.Sample("d2pr_graphs_loaded", nil, float64(loaded))

	// Engine layout/build families, one sample per graph whose engine exists
	// (reporting never triggers a build — see Snapshot.EngineIfBuilt). Stats
	// are gathered up front because samples of one family must stay
	// contiguous in the exposition.
	type engineRow struct {
		lbl   []telemetry.Label
		stats core.EngineStats
	}
	var engines []engineRow
	for _, st := range statuses {
		if !st.Loaded {
			continue
		}
		snap := s.reg.SnapshotIfLoaded(st.Name)
		if snap == nil {
			continue
		}
		eng := snap.EngineIfBuilt()
		if eng == nil {
			continue
		}
		engines = append(engines, engineRow{
			lbl:   []telemetry.Label{{Name: "graph", Value: st.Name}},
			stats: eng.Stats(),
		})
	}
	p.Family("d2pr_engine_layout_build_seconds", "gauge", "Engine construction time: transpose, locality relabeling, block layout.")
	for _, row := range engines {
		p.Sample("d2pr_engine_layout_build_seconds", row.lbl, row.stats.BuildTime.Seconds())
	}
	p.Family("d2pr_engine_reorder_seconds", "gauge", "Slice of the engine build spent computing the locality order.")
	for _, row := range engines {
		p.Sample("d2pr_engine_reorder_seconds", row.lbl, row.stats.ReorderTime.Seconds())
	}
	p.Family("d2pr_engine_reordered", "gauge", "Whether the locality relabeling is active (1) or the identity (0).")
	for _, row := range engines {
		reordered := 0.0
		if row.stats.Reordered {
			reordered = 1
		}
		p.Sample("d2pr_engine_reordered", row.lbl, reordered)
	}
	p.Family("d2pr_engine_blocks", "gauge", "Destination blocks of the cache-blocked sweep schedule.")
	for _, row := range engines {
		p.Sample("d2pr_engine_blocks", row.lbl, float64(row.stats.Blocks))
	}
	p.Family("d2pr_float32_mode", "gauge", "Whether the float32 score tier is active for power-iteration serving (d2pr-server -float32).")
	f32 := 0.0
	if rankspec.Float32Mode() {
		f32 = 1
	}
	p.Sample("d2pr_float32_mode", nil, f32)

	p.Family("d2pr_panics_total", "counter", "Recovered panics across handlers, jobs, and compute closures.")
	p.Sample("d2pr_panics_total", nil, float64(s.tel.Panics()))
	ok, failed := s.tel.Reloads()
	p.Family("d2pr_graph_reloads_total", "counter", "Graph reload attempts by outcome.")
	p.Sample("d2pr_graph_reloads_total", []telemetry.Label{{Name: "result", Value: "ok"}}, float64(ok))
	p.Sample("d2pr_graph_reloads_total", []telemetry.Label{{Name: "result", Value: "failed"}}, float64(failed))
	p.Family("d2pr_graph_state", "gauge", "Graph lifecycle state (1 = the graph is in this state).")
	for _, st := range statuses {
		for _, state := range []string{"loading", "ready", "degraded", "quarantined"} {
			v := 0.0
			if string(st.State) == state {
				v = 1
			}
			p.Sample("d2pr_graph_state", []telemetry.Label{{Name: "graph", Value: st.Name}, {Name: "state", Value: state}}, v)
		}
	}
}
