// Serving-layer benchmarks for the ISSUE-1 acceptance criteria:
//
//	BenchmarkRankRequestCold vs. BenchmarkRankRequestWarm — a repeat
//	/v1/{graph}/rank request served from the rank cache must be ≥10×
//	faster than the cold solve (in practice the gap is 10³–10⁵×).
//
//	go test ./internal/server -bench=BenchmarkRankRequest -benchmem
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"d2pr/internal/dataset"
	"d2pr/internal/registry"
)

func benchHandler(b *testing.B) http.Handler {
	b.Helper()
	reg := registry.New()
	if err := reg.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.5, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	s, err := NewMulti(reg, Config{CacheSize: 4})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	// Force the lazy graph load outside the timed region.
	warm := httptest.NewRequest("GET", "/v1/imdb-actor-actor/info", nil)
	h.ServeHTTP(httptest.NewRecorder(), warm)
	return h
}

// BenchmarkRankRequestCold varies p every iteration so each request misses
// the cache and pays the full transition build + power iteration.
func BenchmarkRankRequestCold(b *testing.B) {
	h := benchHandler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("/v1/imdb-actor-actor/topk?k=10&p=%g", 0.25+float64(i)*1e-9)
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkRankRequestWarm repeats one configuration; after the first
// request every iteration is a cache hit plus top-k extraction.
func BenchmarkRankRequestWarm(b *testing.B) {
	h := benchHandler(b)
	req := httptest.NewRequest("GET", "/v1/imdb-actor-actor/topk?k=10&p=0.25", nil)
	h.ServeHTTP(httptest.NewRecorder(), req) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/imdb-actor-actor/topk?k=10&p=0.25", nil))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
