// Serving-layer benchmarks for the ISSUE-1 and ISSUE-2 acceptance criteria:
//
//	BenchmarkRankRequestCold vs. BenchmarkRankRequestWarm — a repeat
//	/v1/{graph}/rank request served from the rank cache must be ≥10×
//	faster than the cold solve (in practice the gap is 10³–10⁵×).
//
//	BenchmarkSweep20Sequential vs. BenchmarkSweep20Batch — a 20-point
//	p-sweep as one /v1/{graph}/rank/batch request (one snapshot, one CSR,
//	request-local worker pool) must measurably beat 20 sequential cold
//	/v1/{graph}/rank round trips.
//
//	BenchmarkMiddlewareRecord — the per-request observability overhead
//	(request-ID handling, trace context, telemetry record, status
//	recorder) around a no-op handler, run in parallel; the ISSUE-8 budget
//	is <2% of a warm request.
//
//	go test ./internal/server -bench='BenchmarkRankRequest|BenchmarkSweep20|BenchmarkPPRRequest|BenchmarkMiddleware'
//
// scripts/bench.sh runs exactly these and emits BENCH_serve.json for the
// perf trajectory across PRs.
package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"d2pr/internal/dataset"
	"d2pr/internal/jobs"
	"d2pr/internal/rankcache"
	"d2pr/internal/registry"
)

func benchHandler(b *testing.B) http.Handler {
	b.Helper()
	reg := registry.New()
	if err := reg.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.5, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	s, err := NewMulti(reg, Config{CacheSize: 4})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	// Force the lazy graph load outside the timed region.
	warm := httptest.NewRequest("GET", "/v1/imdb-actor-actor/info", nil)
	h.ServeHTTP(httptest.NewRecorder(), warm)
	return h
}

// BenchmarkRankRequestCold varies p every iteration so each request misses
// the cache and pays the full transition build + power iteration.
func BenchmarkRankRequestCold(b *testing.B) {
	h := benchHandler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("/v1/imdb-actor-actor/topk?k=10&p=%g", 0.25+float64(i)*1e-9)
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// sweepPs returns 20 distinct de-coupling weights, offset per benchmark
// iteration so every configuration misses the cache and pays a full solve.
func sweepPs(iter int) []float64 {
	ps := make([]float64, 20)
	for i := range ps {
		ps[i] = 0.05*float64(i) + float64(iter)*1e-9
	}
	return ps
}

// BenchmarkSweep20Sequential runs a 20-point p-sweep the pre-jobs way: 20
// sequential /v1/{graph}/rank round trips, each resolving the graph and
// solving cold.
func BenchmarkSweep20Sequential(b *testing.B) {
	h := benchHandler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range sweepPs(i) {
			url := fmt.Sprintf("/v1/imdb-actor-actor/rank?top=10&p=%g", p)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
}

// BenchmarkSweep20Batch runs the same sweep as one /rank/batch request: one
// registry snapshot, one CSR, configurations solved concurrently on the
// request-local worker pool.
func BenchmarkSweep20Batch(b *testing.B) {
	h := benchHandler(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := make([]string, 0, 20)
		for _, p := range sweepPs(i) {
			parts = append(parts, fmt.Sprintf("%g", p))
		}
		body := fmt.Sprintf(`{"ps": [%s], "top_k": 10}`, strings.Join(parts, ","))
		req := httptest.NewRequest("POST", "/v1/imdb-actor-actor/rank/batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkSweep20BatchSerial runs the batch execution path with a
// one-worker pool, isolating the SweepSolver amortization (shared log Θ̂
// table, β-blend partner, flow transpose, per-node factor table) from the
// concurrency win the default pool adds on multi-core hosts. Compare
// against BenchmarkSweep20Sequential for the pure amortization effect.
func BenchmarkSweep20BatchSerial(b *testing.B) {
	reg := registry.New()
	if err := reg.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.5, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	snap, err := reg.Get(dataset.IMDBActorActor)
	if err != nil {
		b.Fatal(err)
	}
	cache := rankcache.New(4)
	serialSem := make(chan struct{}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := jobs.SweepSpec{Graph: snap.Name, Ps: sweepPs(i), TopK: 10}
		results := jobs.RunSync(context.Background(), snap, sw, cache, serialSem)
		for _, row := range results {
			if row.Error != "" {
				b.Fatal(row.Error)
			}
		}
	}
}

// BenchmarkRankRequestWarm repeats one configuration; after the first
// request every iteration is a cache hit plus top-k extraction.
func BenchmarkRankRequestWarm(b *testing.B) {
	h := benchHandler(b)
	req := httptest.NewRequest("GET", "/v1/imdb-actor-actor/topk?k=10&p=0.25", nil)
	h.ServeHTTP(httptest.NewRecorder(), req) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/imdb-actor-actor/topk?k=10&p=0.25", nil))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkPPRRequestWarm repeats one personalized query; after the first
// request every iteration is a PPR-cache hit.
func BenchmarkPPRRequestWarm(b *testing.B) {
	h := benchHandler(b)
	req := httptest.NewRequest("GET", "/v1/imdb-actor-actor/ppr?seed=0&k=10", nil)
	h.ServeHTTP(httptest.NewRecorder(), req) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/imdb-actor-actor/ppr?seed=0&k=10", nil))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkMiddlewareRecord isolates the observability wrapper: instrument()
// around a no-op handler, driven from all cores at once. This is the per-
// request cost of request-ID validation, the trace context, the status
// recorder, and the lock-free telemetry record (logging disabled, as under
// -quiet). Histogram and counter updates are atomics, so throughput should
// scale with cores rather than serialize on a registry lock.
func BenchmarkMiddlewareRecord(b *testing.B) {
	reg := registry.New()
	if err := reg.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.1, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	s, err := NewMulti(reg, Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest("GET", "/bench", nil)
		req.Header.Set("X-Request-ID", "bench-fixed-id")
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
		}
	})
}
