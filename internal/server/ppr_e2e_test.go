// End-to-end coverage of the personalized-ranking serving path: the
// synchronous /v1/{graph}/ppr endpoint (query and JSON-body forms, cache
// header, error contract), the asynchronous seed-cohort batch (submit →
// progress → NDJSON results → TTL expiry), and a race hammer proving the
// cache's single-flight dedup under concurrent overlapping seeds.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"d2pr/internal/jobs"
	"d2pr/internal/registry"
)

// postJSON posts a JSON body and decodes the response, returning the status
// code and the X-PPR-Cache header (empty when absent).
func postJSON(t *testing.T, url, body string, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get(pprCacheHeader)
}

// getPPR issues a GET and returns status, cache header, and the decoded body.
func getPPR(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode, resp.Header.Get(pprCacheHeader)
}

func TestE2EPPRServing(t *testing.T) {
	s, ts := e2eServer(t)

	// --- Happy path: first request is a miss and computes.
	var pr PPRResponse
	code, hdr := getPPR(t, ts.URL+"/v1/web/ppr?seed=0&k=5", &pr)
	if code != 200 || hdr != "miss" {
		t.Fatalf("cold ppr: code %d header %q", code, hdr)
	}
	if pr.Graph != "web" || pr.Seed != 0 || pr.Cached || len(pr.Top) == 0 || len(pr.Top) > 5 {
		t.Fatalf("cold ppr body: %+v", pr)
	}
	for i, e := range pr.Top {
		if e.Rank != i+1 || e.Score <= 0 {
			t.Fatalf("row %d malformed: %+v", i, e)
		}
		if i > 0 && e.Score > pr.Top[i-1].Score {
			t.Fatalf("rows out of rank order: %+v", pr.Top)
		}
	}

	// --- Identical request: cache hit, identical payload.
	var warm PPRResponse
	code, hdr = getPPR(t, ts.URL+"/v1/web/ppr?seed=0&k=5", &warm)
	if code != 200 || hdr != "hit" || !warm.Cached {
		t.Fatalf("warm ppr: code %d header %q cached %v", code, hdr, warm.Cached)
	}
	if warm.Config != pr.Config || len(warm.Top) != len(pr.Top) || warm.Top[0] != pr.Top[0] {
		t.Fatalf("warm payload drifted: %+v vs %+v", warm, pr)
	}

	// --- POST body form shares the GET form's cache identity.
	var posted PPRResponse
	code, hdr = postJSON(t, ts.URL+"/v1/web/ppr", `{"seed": 0, "k": 5}`, &posted)
	if code != 200 || hdr != "hit" || posted.Config != pr.Config {
		t.Fatalf("post ppr: code %d header %q config %q (want %q)", code, hdr, posted.Config, pr.Config)
	}

	// --- Different parameters are different cache entries.
	var other PPRResponse
	if code, hdr = getPPR(t, ts.URL+"/v1/web/ppr?seed=0&k=5&alpha=0.5", &other); code != 200 || hdr != "miss" {
		t.Fatalf("alpha variant: code %d header %q", code, hdr)
	}
	if other.Config == pr.Config {
		t.Fatal("alpha variant shares a cache key with the default")
	}

	// --- Error contract.
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/web/ppr", 400},                  // missing seed
		{"/v1/web/ppr?seed=abc", 400},         // malformed seed
		{"/v1/web/ppr?seed=99", 404},          // seed beyond the 12-node graph
		{"/v1/web/ppr?seed=-3", 404},          // negative seed: no such node
		{"/v1/web/ppr?seed=0&eps=0.5", 400},   // eps out of range
		{"/v1/web/ppr?seed=0&eps=bogus", 400}, // malformed eps
		{"/v1/web/ppr?seed=0&k=0", 400},       // k out of range
		{"/v1/web/ppr?seed=0&k=999999", 400},  // k over MaxPPRK
		{"/v1/web/ppr?seed=0&alpha=2", 400},   // alpha out of range
		{"/v1/nosuch/ppr?seed=0", 404},        // unknown graph
	} {
		var body struct {
			Error string `json:"error"`
		}
		if code, _ := getPPR(t, ts.URL+tc.url, &body); code != tc.want {
			t.Errorf("%s: code %d, want %d", tc.url, code, tc.want)
		} else if body.Error == "" {
			t.Errorf("%s: %d response carries no JSON error", tc.url, tc.want)
		}
	}
	// Malformed POST bodies: unknown field, wrong type, missing seed.
	for _, body := range []string{
		`{"seed": 0, "bogus": 1}`,
		`{"seed": "zero"}`,
		`{"k": 5}`,
		`{"seed": 0}{"seed": 1}`,
	} {
		var eb struct {
			Error string `json:"error"`
		}
		if code, _ := postJSON(t, ts.URL+"/v1/web/ppr", body, &eb); code != 400 || eb.Error == "" {
			t.Errorf("POST %s: code %d error %q, want 400 + JSON error", body, code, eb.Error)
		}
	}

	// --- Metrics: the ppr routes and cache counters are visible.
	var mr MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &mr); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if mr.PPRCache.Misses == 0 || mr.PPRCache.Hits == 0 || mr.PPRCache.Len == 0 {
		t.Errorf("ppr cache counters idle: %+v", mr.PPRCache)
	}
	found := false
	for _, rc := range mr.Routes {
		if strings.Contains(rc.Route, "/ppr") && rc.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no /ppr route counter in %+v", mr.Routes)
	}
	_ = s
}

func TestE2EPPRBatchLifecycle(t *testing.T) {
	_, ts := e2eServer(t)

	// --- Input guard: bad cohorts are rejected before anything queues.
	for _, tc := range []struct {
		body string
		hint string
	}{
		{`{"seeds": []}`, "no seeds"},
		{`{"seeds": [1, 2, 1]}`, "duplicate seed 1"},
		{`{"seeds": [0, -2]}`, "negative"},
		{`{"seeds": [0, 99]}`, "out of range"},
		{`{"seeds": [0], "alpha": 7}`, "alpha"},
		{`{"seeds": [0], "bogus": true}`, "bogus"},
		{`{"graph": "mem", "seeds": [0]}`, "posted to"},
	} {
		var eb struct {
			Error string `json:"error"`
		}
		code, _ := postJSON(t, ts.URL+"/v1/web/ppr/batch", tc.body, &eb)
		if code != 400 {
			t.Errorf("batch %s: code %d, want 400", tc.body, code)
			continue
		}
		if !strings.Contains(eb.Error, tc.hint) {
			t.Errorf("batch %s: error %q does not mention %q", tc.body, eb.Error, tc.hint)
		}
	}

	// --- Submit a cohort and follow it to completion.
	var sub JobSubmitted
	code, _ := postJSON(t, ts.URL+"/v1/web/ppr/batch", `{"seeds": [0, 3, 7, 11], "k": 4}`, &sub)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	if sub.Job.Algo != jobs.AlgoPPR || sub.Job.Total != 4 {
		t.Fatalf("submitted job %+v", sub.Job)
	}
	st := pollJob(t, ts.URL, sub.Job.ID)
	if st.State != jobs.StateDone || st.Completed != 4 || st.Failed != 0 {
		t.Fatalf("terminal job %+v", st)
	}

	// --- JSON results: one row per seed, each carrying its seed and spec.
	var jr JobResultsResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.Job.ID+"/results", &jr); code != 200 {
		t.Fatalf("results: %d", code)
	}
	if len(jr.Results) != 4 {
		t.Fatalf("results rows = %d", len(jr.Results))
	}
	seeds := map[int32]bool{}
	for _, row := range jr.Results {
		if row.Seed == nil || row.PPRSpec == nil {
			t.Fatalf("row missing seed/ppr_spec: %+v", row)
		}
		seeds[*row.Seed] = true
		if len(row.Top) == 0 {
			t.Errorf("seed %d: empty top", *row.Seed)
		}
	}
	if len(seeds) != 4 {
		t.Errorf("rows cover seeds %v, want 4 distinct", seeds)
	}

	// --- NDJSON stream: rows then a terminal status line.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/results?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var rows, statusLines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, ok := probe["job"]; ok {
			statusLines++
			continue
		}
		rows++
	}
	if rows != 4 || statusLines != 1 {
		t.Fatalf("stream delivered %d rows, %d status lines", rows, statusLines)
	}

	// --- The cohort warmed the synchronous path: same spec, cache hit.
	var pr PPRResponse
	if code, hdr := getPPR(t, ts.URL+"/v1/web/ppr?seed=7&k=4", &pr); code != 200 || hdr != "hit" {
		t.Fatalf("post-cohort GET: code %d header %q", code, hdr)
	}
}

// TestE2EPPRBatchTTLExpiry: finished cohort jobs expire from the job table
// after the TTL; their cache entries outlive them.
func TestE2EPPRBatchTTLExpiry(t *testing.T) {
	reg := registry.New()
	if err := reg.AddGraph("mem", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	s, err := NewMulti(reg, Config{JobWorkers: 2, JobTTL: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var sub JobSubmitted
	if code, _ := postJSON(t, ts.URL+"/v1/mem/ppr/batch", `{"seeds": [0, 5]}`, &sub); code != 202 {
		t.Fatalf("submit: %d", code)
	}
	pollJob(t, ts.URL, sub.Job.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.Job.ID, nil); code == 404 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The PPR cache is unaffected by job expiry: the seeds still serve hot.
	if code, hdr := getPPR(t, ts.URL+"/v1/mem/ppr?seed=5", nil); code != 200 || hdr != "hit" {
		t.Fatalf("post-expiry GET: code %d header %q", code, hdr)
	}
}

// TestPPRConcurrentSingleflight is the race hammer: many goroutines request
// overlapping seeds concurrently; single-flight dedup means the number of
// push solves (cache misses) never exceeds the number of distinct
// configurations, no matter the interleaving. Run with -race in CI.
func TestPPRConcurrentSingleflight(t *testing.T) {
	s, ts := multiServer(t)

	const (
		goroutines = 24
		perWorker  = 30
		seedSpace  = 6 // "alpha" graph has 6 nodes → 6 distinct configs
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := (w + i) % seedSpace
				resp, err := http.Get(fmt.Sprintf("%s/v1/alpha/ppr?seed=%d&k=4", ts.URL, seed))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("seed %d: status %d", seed, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.PPRCache().Stats()
	total := st.Hits + st.Misses + st.Shared
	if want := uint64(goroutines * perWorker); total != want {
		t.Fatalf("cache saw %d requests, want %d (stats %+v)", total, want, st)
	}
	if st.Misses > seedSpace {
		t.Errorf("%d computes for %d distinct seeds — single-flight failed (stats %+v)", st.Misses, seedSpace, st)
	}
	if st.Hits == 0 {
		t.Errorf("no cache hits under hammer (stats %+v)", st)
	}
}
