// End-to-end tests for the admission layer: per-graph solve budgets shedding
// with 429 + Retry-After while cached requests keep serving, the stale-score
// fallback, request deadlines (?timeout= → 504), and non-finite spec
// parameters bouncing with 400 before they reach the cache.
package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"d2pr/internal/registry"
)

// admServer builds a one-graph server with an explicit admission/cache
// configuration and returns it alongside its test listener.
func admServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	reg := registry.New()
	if err := reg.AddGraph("mem", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	s, err := NewMulti(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getRank issues a GET and returns the response with the body decoded into a
// RankResponse when the status is 200.
func getRank(t *testing.T, url string) (*http.Response, RankResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body RankResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp, body
}

// blockSolves installs a hook that parks every admitted solve until the
// returned release func runs. The signal channel reports each solve reaching
// the hook (i.e. holding an admission slot).
func blockSolves(t *testing.T, s *Server) (signal chan string, release func()) {
	t.Helper()
	block := make(chan struct{})
	signal = make(chan string, 16)
	s.hookSolve = func(graph string) {
		signal <- graph
		<-block
	}
	var released bool
	release = func() {
		if !released {
			released = true
			close(block)
		}
	}
	t.Cleanup(release)
	return signal, release
}

// TestAdmissionShedsAndServesCached: with the graph's one solve slot held and
// no queue, a cold request is shed with 429 + Retry-After while a cached
// configuration still serves — hits never touch the budget.
func TestAdmissionShedsAndServesCached(t *testing.T) {
	s, ts := admServer(t, Config{CacheSize: 8, MaxConcurrent: 1, MaxQueue: -1})

	// Warm one configuration before installing the blocking hook.
	if resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0"); resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("warm request: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	signal, release := blockSolves(t, s)
	holderDone := make(chan *http.Response, 1)
	go func() {
		resp, _ := http.Get(ts.URL + "/v1/mem/rank?p=0.5")
		holderDone <- resp
	}()
	<-signal // the cold solve now owns the graph's only slot

	// A different cold configuration is shed immediately.
	resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0.9")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated cold request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}

	// The warm configuration still serves from cache.
	resp, _ = getRank(t, ts.URL+"/v1/mem/rank?p=0")
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("cached request under saturation: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	release()
	holder := <-holderDone
	if holder.StatusCode != 200 {
		t.Fatalf("slot holder finished with %d", holder.StatusCode)
	}
	holder.Body.Close()

	var m MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Admission.Shed != 1 {
		t.Errorf("admission.shed = %d, want 1", m.Admission.Shed)
	}
	if m.Admission.Running != 0 {
		t.Errorf("admission.running = %d after drain", m.Admission.Running)
	}
}

// TestStaleScoreBeatsShedding: a configuration evicted from the resident
// cache is served from the stale tier (X-Cache: stale) instead of a 429 when
// the graph's budget is saturated.
func TestStaleScoreBeatsShedding(t *testing.T) {
	s, ts := admServer(t, Config{CacheSize: 1, MaxConcurrent: 1, MaxQueue: -1})

	resp, fresh := getRank(t, ts.URL+"/v1/mem/rank?p=0")
	if resp.StatusCode != 200 {
		t.Fatalf("first solve: %d", resp.StatusCode)
	}
	// A second configuration evicts p=0 into the stale tier.
	if resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0.5"); resp.StatusCode != 200 {
		t.Fatalf("evicting solve: %d", resp.StatusCode)
	}

	signal, release := blockSolves(t, s)
	defer release()
	go http.Get(ts.URL + "/v1/mem/rank?p=0.9") //nolint:errcheck // drained via release
	<-signal

	// p=0 is no longer resident; its recompute would shed — the stale copy
	// serves instead, byte-identical to the original solve.
	resp, stale := getRank(t, ts.URL+"/v1/mem/rank?p=0")
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "stale" {
		t.Fatalf("stale fallback: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !reflect.DeepEqual(fresh.Scores, stale.Scores) {
		t.Error("stale scores differ from the original solve")
	}

	// A configuration with no stale copy still sheds.
	if resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0.25"); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("never-solved config: %d, want 429", resp.StatusCode)
	}
}

// TestRequestTimeout: ?timeout= puts a deadline on the request; a solve that
// cannot finish in time comes back 504 and is counted in /metrics. Malformed
// timeouts are 400.
func TestRequestTimeout(t *testing.T) {
	s, ts := admServer(t, Config{CacheSize: 8})
	if resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0.5&timeout=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: %d, want 400", resp.StatusCode)
	}
	if resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0.5&timeout=-1s"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout: %d, want 400", resp.StatusCode)
	}

	_, release := blockSolves(t, s)
	defer release()
	start := time.Now()
	resp, _ := getRank(t, ts.URL+"/v1/mem/rank?p=0.5&timeout=50ms")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out solve: %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("504 took %s; deadline did not propagate", elapsed)
	}
	var m MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.DeadlineExceeded != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", m.DeadlineExceeded)
	}
}

// TestNonFiniteParamsRejected: NaN/Inf solver parameters are a 400 at the
// parse/validate step on both /rank and /ppr — they must never reach the
// caches or cost a solve.
func TestNonFiniteParamsRejected(t *testing.T) {
	_, ts := admServer(t, Config{CacheSize: 8})
	for _, url := range []string{
		"/v1/mem/rank?alpha=NaN",
		"/v1/mem/rank?alpha=Inf",
		"/v1/mem/rank?beta=NaN",
		"/v1/mem/rank?p=NaN",
		"/v1/mem/rank?p=-Inf",
		"/v1/mem/ppr?seed=0&eps=NaN",
		"/v1/mem/ppr?seed=0&alpha=Inf",
		"/v1/mem/ppr?seed=0&alpha=NaN",
	} {
		if code := getJSON(t, ts.URL+url, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, code)
		}
	}
	var m MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Cache.Misses != 0 || m.Cache.Hits != 0 {
		t.Errorf("rank cache touched by invalid specs: %+v", m.Cache)
	}
	if m.PPRCache.Misses != 0 || m.PPRCache.Hits != 0 {
		t.Errorf("ppr cache touched by invalid specs: %+v", m.PPRCache)
	}
}

// TestPPRShedsWhenSaturated: the /ppr route shares the same per-graph budget
// and sheds cold pushes with 429 + Retry-After (no stale tier there).
func TestPPRShedsWhenSaturated(t *testing.T) {
	s, ts := admServer(t, Config{CacheSize: 8, MaxConcurrent: 1, MaxQueue: -1})
	// Warm one seed.
	if code := getJSON(t, ts.URL+"/v1/mem/ppr?seed=0", nil); code != 200 {
		t.Fatalf("warm ppr: %d", code)
	}
	signal, release := blockSolves(t, s)
	defer release()
	go http.Get(ts.URL + "/v1/mem/ppr?seed=1") //nolint:errcheck // drained via release
	<-signal

	resp, err := http.Get(ts.URL + "/v1/mem/ppr?seed=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("saturated ppr: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// The warm seed still serves from cache.
	resp, err = http.Get(ts.URL + "/v1/mem/ppr?seed=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-PPR-Cache") != "hit" {
		t.Errorf("warm seed under saturation: %d %q", resp.StatusCode, resp.Header.Get("X-PPR-Cache"))
	}
}
