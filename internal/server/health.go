package server

import (
	"errors"
	"net/http"

	"d2pr/internal/lifecycle"
	"d2pr/internal/registry"
)

// ReadyzResponse is the GET /readyz response body: the per-graph lifecycle
// picture plus admission saturation — what a load balancer needs to decide
// whether to keep sending traffic, and what an operator needs to see first
// when it stops.
type ReadyzResponse struct {
	// Status is "ok" (every graph healthy), "degraded" (some graphs sick but
	// at least one servable), or "unavailable" (nothing servable; the
	// response is a 503 and the instance should be drained).
	Status string `json:"status"`
	// StateCounts tallies graphs per lifecycle state.
	StateCounts map[string]int `json:"state_counts"`
	// Degraded and Quarantined list the sick graphs by name — the first
	// thing a runbook asks for.
	Degraded    []string `json:"degraded,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	// Graphs is the full registry status (same shape as /v1/graphs).
	Graphs []registry.Status `json:"graphs"`
	// AdmissionSaturation is queued waiters per configured queue slot across
	// all graphs, in [0, 1] — 1.0 means every new solve is being shed.
	AdmissionSaturation float64 `json:"admission_saturation"`
}

// handleReadyz reports readiness. The instance is unready (503) only when no
// graph can serve at all: every entry is either quarantined or has failed
// without a prior good snapshot. A degraded graph that still serves its last
// good snapshot keeps the instance ready — draining it would turn graceful
// degradation into an outage.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	statuses := s.reg.Statuses()
	resp := ReadyzResponse{
		Status:      "ok",
		StateCounts: map[string]int{},
		Graphs:      statuses,
	}
	servable := 0
	for _, st := range statuses {
		resp.StateCounts[string(st.State)]++
		// Loaded entries serve their snapshot whatever the lifecycle says;
		// loading entries will materialize on first request.
		if st.Loaded || st.State == lifecycle.StateLoading {
			servable++
		}
		switch st.State {
		case lifecycle.StateDegraded:
			resp.Degraded = append(resp.Degraded, st.Name)
		case lifecycle.StateQuarantined:
			resp.Quarantined = append(resp.Quarantined, st.Name)
		}
	}
	as := s.adm.Stats()
	if q := as.MaxQueue * max(1, len(statuses)); q > 0 {
		resp.AdmissionSaturation = float64(as.QueueDepth) / float64(q)
	}
	code := http.StatusOK
	if len(resp.Degraded)+len(resp.Quarantined) > 0 {
		resp.Status = "degraded"
	}
	if servable == 0 {
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// ReloadResponse is the POST /v1/graphs/{graph}/reload response body: the
// entry's post-attempt status. On failure the same shape rides a 502 with the
// error and lifecycle state filled in — the old snapshot (if any) is still
// serving, which Status.Loaded reports.
type ReloadResponse struct {
	Graph  string          `json:"graph"`
	Status registry.Status `json:"status"`
}

// handleReload is the operator-facing hot-reload endpoint. The shadow load
// runs on this request's goroutine — off the serving path, which keeps
// resolving the old snapshot until the atomic swap. Reloading a quarantined
// graph re-arms it (this is the documented way out of quarantine). A failed
// materialization is 502: the request itself was valid, the data wasn't.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("graph")
	st, err := s.reg.ReloadContext(r.Context(), name)
	if err != nil {
		if errors.Is(err, registry.ErrUnknownGraph) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.tel.RecordReload(false)
		writeJSON(w, http.StatusBadGateway, struct {
			ReloadResponse
			errorBody
		}{
			ReloadResponse{Graph: name, Status: st},
			errorBody{Error: err.Error(), State: string(st.State)},
		})
		return
	}
	s.tel.RecordReload(true)
	writeJSON(w, http.StatusOK, ReloadResponse{Graph: name, Status: st})
}
