// Package server exposes the ranking library as a small JSON-over-HTTP
// service: load a graph once, answer ranking queries for any (algorithm, p,
// β, α, seeds) configuration. It is the deployment shape a recommendation
// backend would actually use — rank vectors are cached per configuration so
// repeated top-k queries cost one map lookup.
//
// Endpoints:
//
//	GET /v1/graph                 → graph summary + Table-3 statistics
//	GET /v1/rank?algo=d2pr&p=0.5&top=10
//	                              → ranking (full scores or top-k)
//	GET /v1/node/{id}?p=0.5       → one node's score, rank, degree
//	GET /v1/correlate?p=0.5       → Spearman correlation with the loaded
//	                                significance vector (if any)
//	GET /healthz                  → liveness
//
// All handlers are safe for concurrent use.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"d2pr/internal/core"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

// Server serves ranking queries over one immutable graph.
type Server struct {
	g   *graph.Graph
	sig []float64 // optional significance vector (may be nil)

	mu    sync.Mutex
	cache map[string][]float64 // config key → scores
}

// New creates a Server for the given graph. significance may be nil; it
// enables /v1/correlate when present (length must then match the node
// count).
func New(g *graph.Graph, significance []float64) (*Server, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("server: graph is empty")
	}
	if significance != nil && len(significance) != g.NumNodes() {
		return nil, fmt.Errorf("server: %d significances for %d nodes", len(significance), g.NumNodes())
	}
	return &Server{g: g, sig: significance, cache: map[string][]float64{}}, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/graph", s.handleGraph)
	mux.HandleFunc("/v1/rank", s.handleRank)
	mux.HandleFunc("/v1/node/", s.handleNode)
	mux.HandleFunc("/v1/correlate", s.handleCorrelate)
	return mux
}

// rankQuery is the parsed, canonicalized query configuration.
type rankQuery struct {
	Algo  string
	P     float64
	Beta  float64
	Alpha float64
	Seeds []int32
}

func (q rankQuery) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|p=%g|beta=%g|alpha=%g|seeds=", q.Algo, q.P, q.Beta, q.Alpha)
	for i, s := range q.Seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	return b.String()
}

// parseRankQuery extracts and validates the ranking parameters.
func (s *Server) parseRankQuery(r *http.Request) (rankQuery, error) {
	q := rankQuery{Algo: "d2pr", Alpha: core.DefaultAlpha}
	vals := r.URL.Query()
	if a := vals.Get("algo"); a != "" {
		q.Algo = a
	}
	var err error
	parseF := func(name string, dst *float64) error {
		if v := vals.Get(name); v != "" {
			*dst, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s %q", name, v)
			}
		}
		return nil
	}
	if err := parseF("p", &q.P); err != nil {
		return q, err
	}
	if err := parseF("beta", &q.Beta); err != nil {
		return q, err
	}
	if err := parseF("alpha", &q.Alpha); err != nil {
		return q, err
	}
	if q.Alpha <= 0 || q.Alpha >= 1 {
		return q, fmt.Errorf("alpha %v out of (0, 1)", q.Alpha)
	}
	if q.Beta < 0 || q.Beta > 1 {
		return q, fmt.Errorf("beta %v out of [0, 1]", q.Beta)
	}
	if seeds := vals.Get("seeds"); seeds != "" {
		for _, part := range strings.Split(seeds, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= s.g.NumNodes() {
				return q, fmt.Errorf("bad seed %q", part)
			}
			q.Seeds = append(q.Seeds, int32(id))
		}
	}
	switch q.Algo {
	case "d2pr", "pagerank", "hits", "degree":
	default:
		return q, fmt.Errorf("unknown algo %q (want d2pr|pagerank|hits|degree)", q.Algo)
	}
	return q, nil
}

// scores computes (or returns cached) scores for a configuration.
func (s *Server) scores(q rankQuery) ([]float64, error) {
	key := q.key()
	s.mu.Lock()
	if cached, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return cached, nil
	}
	s.mu.Unlock()

	opts := core.Options{Alpha: q.Alpha}
	if len(q.Seeds) > 0 {
		tele := make([]float64, s.g.NumNodes())
		for _, sd := range q.Seeds {
			tele[sd] = 1
		}
		opts.Teleport = tele
	}
	var out []float64
	switch q.Algo {
	case "d2pr":
		t, err := core.Blended(s.g, q.P, q.Beta)
		if err != nil {
			return nil, err
		}
		res, err := core.Solve(t, opts)
		if err != nil {
			return nil, err
		}
		out = res.Scores
	case "pagerank":
		res, err := core.PageRank(s.g, opts)
		if err != nil {
			return nil, err
		}
		out = res.Scores
	case "hits":
		res, err := core.HITS(s.g, opts)
		if err != nil {
			return nil, err
		}
		out = res.Authorities
	case "degree":
		out = core.DegreeCentrality(s.g)
	}
	s.mu.Lock()
	s.cache[key] = out
	s.mu.Unlock()
	return out, nil
}

// GraphInfo is the /v1/graph response body.
type GraphInfo struct {
	Kind            string  `json:"kind"`
	Weighted        bool    `json:"weighted"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	AvgDegree       float64 `json:"avg_degree"`
	DegreeStdDev    float64 `json:"degree_stddev"`
	MedianNbrStdDev float64 `json:"median_neighbor_degree_stddev"`
	HasSignificance bool    `json:"has_significance"`
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	st := graph.ComputeStats(s.g)
	writeJSON(w, http.StatusOK, GraphInfo{
		Kind:            s.g.Kind().String(),
		Weighted:        s.g.Weighted(),
		Nodes:           st.Nodes,
		Edges:           st.Edges,
		AvgDegree:       st.AvgDegree,
		DegreeStdDev:    st.DegreeStdDev,
		MedianNbrStdDev: st.MedianNeighborDegStdDev,
		HasSignificance: s.sig != nil,
	})
}

// RankEntry is one row of a top-k response.
type RankEntry struct {
	Rank   int     `json:"rank"`
	Node   int32   `json:"node"`
	Degree int     `json:"degree"`
	Score  float64 `json:"score"`
}

// RankResponse is the /v1/rank response body.
type RankResponse struct {
	Config string      `json:"config"`
	Top    []RankEntry `json:"top,omitempty"`
	Scores []float64   `json:"scores,omitempty"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	q, err := s.parseRankQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.scores(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := RankResponse{Config: q.key()}
	if topStr := r.URL.Query().Get("top"); topStr != "" {
		k, err := strconv.Atoi(topStr)
		if err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", topStr))
			return
		}
		for i, u := range stats.TopK(scores, k) {
			resp.Top = append(resp.Top, RankEntry{
				Rank: i + 1, Node: int32(u), Degree: s.g.Degree(int32(u)), Score: scores[u],
			})
		}
	} else {
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

// NodeResponse is the /v1/node/{id} response body.
type NodeResponse struct {
	Node   int32   `json:"node"`
	Degree int     `json:"degree"`
	Score  float64 `json:"score"`
	Rank   int     `json:"rank"`
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/node/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= s.g.NumNodes() {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown node %q", idStr))
		return
	}
	q, err := s.parseRankQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.scores(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, NodeResponse{
		Node:   int32(id),
		Degree: s.g.Degree(int32(id)),
		Score:  scores[id],
		Rank:   stats.RankOf(scores, id),
	})
}

// CorrelateResponse is the /v1/correlate response body.
type CorrelateResponse struct {
	Config   string  `json:"config"`
	Spearman float64 `json:"spearman"`
	DegreeR  float64 `json:"degree_spearman"`
}

func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	if s.sig == nil {
		writeError(w, http.StatusNotFound, errors.New("no significance vector loaded"))
		return
	}
	q, err := s.parseRankQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.scores(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	deg := make([]float64, s.g.NumNodes())
	for i := range deg {
		deg[i] = float64(s.g.Degree(int32(i)))
	}
	writeJSON(w, http.StatusOK, CorrelateResponse{
		Config:   q.key(),
		Spearman: stats.Spearman(scores, s.sig),
		DegreeR:  stats.Spearman(scores, deg),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Too late to change the status; nothing useful to do.
		_ = err
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
