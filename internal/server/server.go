// Package server exposes the ranking library as a JSON-over-HTTP service
// over a registry of named graphs. Graphs load lazily on first request;
// score vectors are cached in an LRU keyed by the full ranking configuration
// with single-flight deduplication, so repeated queries cost one map lookup
// and concurrent identical queries share one solve.
//
// Endpoints (see docs/server-api.md for the full contract):
//
//	GET /healthz                        → liveness
//	GET /metrics                        → request counters + cache stats
//	GET /v1/graphs                      → registered graphs + load state
//	GET /v1/{graph}/info                → graph summary + Table-3 statistics
//	GET /v1/{graph}/rank                → full scores or top-k rows
//	GET /v1/{graph}/topk?k=10           → top-k rows via bounded-heap select
//	GET /v1/{graph}/node/{id}           → one node's score, rank, degree
//	GET /v1/{graph}/correlate           → Spearman vs. the graph's
//	                                      significance vector (if any)
//
// Ranking parameters (rank, topk, node, correlate): algo=d2pr|pagerank|
// hits|degree, p, beta, alpha, seeds=3,17 (personalized teleport).
//
// All handlers are safe for concurrent use.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"d2pr/internal/core"
	"d2pr/internal/graph"
	"d2pr/internal/rankcache"
	"d2pr/internal/registry"
	"d2pr/internal/stats"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// CacheSize bounds the number of resident score vectors.
	// 0 means rankcache.DefaultCapacity.
	CacheSize int
	// Logger receives one line per request when non-nil.
	Logger *log.Logger
}

// Server serves ranking queries over a registry of named graphs.
type Server struct {
	reg     *registry.Registry
	cache   *rankcache.Cache
	logger  *log.Logger
	metrics *metrics
}

// NewMulti creates a Server over a registry. The registry may keep gaining
// entries after the server starts; it must not be nil or empty.
func NewMulti(reg *registry.Registry, cfg Config) (*Server, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, errors.New("server: registry is empty")
	}
	return &Server{
		reg:     reg,
		cache:   rankcache.New(cfg.CacheSize),
		logger:  cfg.Logger,
		metrics: newMetrics(),
	}, nil
}

// New creates a single-graph Server, registering g under the name "default".
// significance may be nil; it enables /v1/default/correlate when present.
// Kept as the convenience constructor for tests and embedders.
func New(g *graph.Graph, significance []float64) (*Server, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("server: graph is empty")
	}
	reg := registry.New()
	if err := reg.AddGraph("default", g, significance); err != nil {
		return nil, err
	}
	return NewMulti(reg, Config{})
}

// Cache exposes the result cache (for warming and stats).
func (s *Server) Cache() *rankcache.Cache { return s.cache }

// Handler returns the HTTP handler tree wrapped in the logging/metrics
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/{graph}/info", s.handleInfo)
	mux.HandleFunc("GET /v1/{graph}/rank", s.handleRank)
	mux.HandleFunc("GET /v1/{graph}/topk", s.handleTopK)
	mux.HandleFunc("GET /v1/{graph}/node/{id}", s.handleNode)
	mux.HandleFunc("GET /v1/{graph}/correlate", s.handleCorrelate)
	return s.instrument(mux)
}

// Warm precomputes d2pr scores for every registered graph at each
// de-coupling weight in ps (β = beta, default solver options), loading
// graphs as needed. It runs in the background with the given parallelism and
// returns a channel that closes when the sweep completes.
func (s *Server) Warm(ps []float64, beta float64, parallelism int) <-chan struct{} {
	var jobs []rankcache.Job
	for _, name := range s.reg.Names() {
		for _, p := range ps {
			q := rankQuery{Graph: name, Algo: "d2pr", P: p, Beta: beta, Alpha: core.DefaultAlpha}
			jobs = append(jobs, rankcache.Job{
				Key: q.cacheKey(),
				Compute: func() ([]float64, error) {
					snap, err := s.reg.Get(q.Graph)
					if err != nil {
						return nil, err
					}
					return computeScores(snap, q)
				},
			})
		}
	}
	return s.cache.Warm(jobs, parallelism)
}

// rankQuery is the parsed, canonicalized query configuration.
type rankQuery struct {
	Graph string
	Algo  string
	P     float64
	Beta  float64
	Alpha float64
	Seeds []int32
}

// opts returns the solver options for the query (teleport built over n
// nodes).
func (q rankQuery) opts(n int) core.Options {
	o := core.Options{Alpha: q.Alpha}
	if len(q.Seeds) > 0 {
		tele := make([]float64, n)
		for _, sd := range q.Seeds {
			tele[sd] = 1
		}
		o.Teleport = tele
	}
	return o
}

// cacheKey derives the rankcache key, canonicalizing parameters each
// algorithm ignores so equivalent configurations share one cache slot:
// p/β for everything but d2pr, alpha and seeds additionally for HITS (which
// only reads Tol/MaxIter), and every solver option for degree centrality.
// The teleport component of Options.CacheKey depends on n, which is unknown
// before the graph loads; seeds are appended verbatim instead, which is
// strictly finer and therefore still correct.
func (q rankQuery) cacheKey() rankcache.Key {
	p, beta, alpha, seeds := q.P, q.Beta, q.Alpha, q.Seeds
	switch q.Algo {
	case "degree":
		return rankcache.NewKey(q.Graph, q.Algo, 0, 0, "")
	case "hits":
		p, beta, alpha, seeds = 0, 0, core.DefaultAlpha, nil
	case "pagerank":
		p, beta = 0, 0
	}
	optsKey := core.Options{Alpha: alpha}.CacheKey()
	if len(seeds) > 0 {
		parts := make([]string, len(seeds))
		for i, sd := range seeds {
			parts[i] = strconv.Itoa(int(sd))
		}
		optsKey += "|seeds=" + strings.Join(parts, ",")
	}
	return rankcache.NewKey(q.Graph, q.Algo, p, beta, optsKey)
}

// parseRankQuery extracts and validates the ranking parameters. Seed bounds
// are checked against the materialized graph.
func parseRankQuery(r *http.Request, snap *registry.Snapshot) (rankQuery, error) {
	q := rankQuery{Graph: snap.Name, Algo: "d2pr", Alpha: core.DefaultAlpha}
	vals := r.URL.Query()
	if a := vals.Get("algo"); a != "" {
		q.Algo = a
	}
	parseF := func(name string, dst *float64) error {
		if v := vals.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s %q", name, v)
			}
			*dst = f
		}
		return nil
	}
	if err := parseF("p", &q.P); err != nil {
		return q, err
	}
	if err := parseF("beta", &q.Beta); err != nil {
		return q, err
	}
	if err := parseF("alpha", &q.Alpha); err != nil {
		return q, err
	}
	if q.Alpha <= 0 || q.Alpha >= 1 {
		return q, fmt.Errorf("alpha %v out of (0, 1)", q.Alpha)
	}
	if q.Beta < 0 || q.Beta > 1 {
		return q, fmt.Errorf("beta %v out of [0, 1]", q.Beta)
	}
	if seeds := vals.Get("seeds"); seeds != "" {
		for _, part := range strings.Split(seeds, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= snap.Graph.NumNodes() {
				return q, fmt.Errorf("bad seed %q", part)
			}
			q.Seeds = append(q.Seeds, int32(id))
		}
	}
	switch q.Algo {
	case "d2pr", "pagerank", "hits", "degree":
	default:
		return q, fmt.Errorf("unknown algo %q (want d2pr|pagerank|hits|degree)", q.Algo)
	}
	return q, nil
}

// computeScores runs the configured algorithm on the snapshot's graph.
func computeScores(snap *registry.Snapshot, q rankQuery) ([]float64, error) {
	g := snap.Graph
	opts := q.opts(g.NumNodes())
	switch q.Algo {
	case "d2pr":
		t, err := core.Blended(g, q.P, q.Beta)
		if err != nil {
			return nil, err
		}
		res, err := core.Solve(t, opts)
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	case "pagerank":
		res, err := core.PageRank(g, opts)
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	case "hits":
		res, err := core.HITS(g, opts)
		if err != nil {
			return nil, err
		}
		return res.Authorities, nil
	case "degree":
		return core.DegreeCentrality(g), nil
	}
	return nil, fmt.Errorf("unknown algo %q", q.Algo)
}

// scores returns the (cached) score vector for a query. Concurrent identical
// requests share one solve via the cache's single-flight path.
func (s *Server) scores(snap *registry.Snapshot, q rankQuery) ([]float64, error) {
	return s.cache.Get(q.cacheKey(), func() ([]float64, error) {
		return computeScores(snap, q)
	})
}

// snapshot resolves the {graph} path component against the registry.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) (*registry.Snapshot, bool) {
	name := r.PathValue("graph")
	snap, err := s.reg.Get(name)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, registry.ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return nil, false
	}
	return snap, true
}

// GraphsResponse is the /v1/graphs response body.
type GraphsResponse struct {
	Graphs []registry.Status `json:"graphs"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, GraphsResponse{Graphs: s.reg.Statuses()})
}

// GraphInfo is the /v1/{graph}/info response body.
type GraphInfo struct {
	Name            string  `json:"name"`
	Source          string  `json:"source"`
	Kind            string  `json:"kind"`
	Weighted        bool    `json:"weighted"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	AvgDegree       float64 `json:"avg_degree"`
	DegreeStdDev    float64 `json:"degree_stddev"`
	MedianNbrStdDev float64 `json:"median_neighbor_degree_stddev"`
	HasSignificance bool    `json:"has_significance"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	st := graph.ComputeStats(snap.Graph)
	writeJSON(w, http.StatusOK, GraphInfo{
		Name:            snap.Name,
		Source:          snap.Source,
		Kind:            snap.Graph.Kind().String(),
		Weighted:        snap.Graph.Weighted(),
		Nodes:           st.Nodes,
		Edges:           st.Edges,
		AvgDegree:       st.AvgDegree,
		DegreeStdDev:    st.DegreeStdDev,
		MedianNbrStdDev: st.MedianNeighborDegStdDev,
		HasSignificance: snap.Significance != nil,
	})
}

// RankEntry is one row of a top-k response.
type RankEntry struct {
	Rank   int     `json:"rank"`
	Node   int32   `json:"node"`
	Degree int     `json:"degree"`
	Score  float64 `json:"score"`
}

// RankResponse is the /v1/{graph}/rank and /v1/{graph}/topk response body.
type RankResponse struct {
	Graph  string      `json:"graph"`
	Config string      `json:"config"`
	Top    []RankEntry `json:"top,omitempty"`
	Scores []float64   `json:"scores,omitempty"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	q, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Validate top before solving: a malformed request must not cost a
	// cold solve (or a cache slot).
	top := 0
	if topStr := r.URL.Query().Get("top"); topStr != "" {
		top, err = strconv.Atoi(topStr)
		if err != nil || top <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", topStr))
			return
		}
	}
	scores, err := s.scores(snap, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := RankResponse{Graph: snap.Name, Config: string(q.cacheKey())}
	if top > 0 {
		resp.Top = topEntries(snap.Graph, scores, top)
	} else {
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	q, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if kStr := r.URL.Query().Get("k"); kStr != "" {
		k, err = strconv.Atoi(kStr)
		if err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", kStr))
			return
		}
	}
	scores, err := s.scores(snap, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, RankResponse{
		Graph:  snap.Name,
		Config: string(q.cacheKey()),
		Top:    topEntries(snap.Graph, scores, k),
	})
}

// topEntries extracts the k best rows with the bounded-heap selector — the
// full score vector is never sorted, so k ≪ n queries stay O(n log k).
func topEntries(g *graph.Graph, scores []float64, k int) []RankEntry {
	idx := stats.TopKHeap(scores, k)
	out := make([]RankEntry, len(idx))
	for i, u := range idx {
		out[i] = RankEntry{
			Rank: i + 1, Node: int32(u), Degree: g.Degree(int32(u)), Score: scores[u],
		}
	}
	return out
}

// NodeResponse is the /v1/{graph}/node/{id} response body.
type NodeResponse struct {
	Graph  string  `json:"graph"`
	Node   int32   `json:"node"`
	Degree int     `json:"degree"`
	Score  float64 `json:"score"`
	Rank   int     `json:"rank"`
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	idStr := r.PathValue("id")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= snap.Graph.NumNodes() {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown node %q", idStr))
		return
	}
	q, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.scores(snap, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, NodeResponse{
		Graph:  snap.Name,
		Node:   int32(id),
		Degree: snap.Graph.Degree(int32(id)),
		Score:  scores[id],
		Rank:   stats.RankOf(scores, id),
	})
}

// CorrelateResponse is the /v1/{graph}/correlate response body.
type CorrelateResponse struct {
	Graph    string  `json:"graph"`
	Config   string  `json:"config"`
	Spearman float64 `json:"spearman"`
	DegreeR  float64 `json:"degree_spearman"`
}

func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	if snap.Significance == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q has no significance vector", snap.Name))
		return
	}
	q, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, err := s.scores(snap, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	deg := make([]float64, snap.Graph.NumNodes())
	for i := range deg {
		deg[i] = float64(snap.Graph.Degree(int32(i)))
	}
	writeJSON(w, http.StatusOK, CorrelateResponse{
		Graph:    snap.Name,
		Config:   string(q.cacheKey()),
		Spearman: stats.Spearman(scores, snap.Significance),
		DegreeR:  stats.Spearman(scores, deg),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Too late to change the status; nothing useful to do.
		_ = err
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
