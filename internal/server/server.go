// Package server exposes the ranking library as a JSON-over-HTTP service
// over a registry of named graphs. Graphs load lazily on first request;
// score vectors are cached in an LRU keyed by the full ranking configuration
// with single-flight deduplication, so repeated queries cost one map lookup
// and concurrent identical queries share one solve. Parameter sweeps run as
// asynchronous jobs (internal/jobs) on a bounded worker pool, or
// synchronously in one batch request for small grids.
//
// Endpoints (see docs/server-api.md for the full contract):
//
//	GET    /healthz                     → liveness
//	GET    /metrics                     → request counters + cache/job stats
//	GET    /v1/graphs                   → registered graphs + load state
//	GET    /v1/{graph}/info             → graph summary + Table-3 statistics
//	GET    /v1/{graph}/rank             → full scores or top-k rows
//	POST   /v1/{graph}/rank/batch       → synchronous small-grid sweep
//	GET    /v1/{graph}/ppr?seed=3       → personalized top-k (forward push)
//	POST   /v1/{graph}/ppr              → same, JSON body
//	POST   /v1/{graph}/ppr/batch        → async per-seed cohort job
//	GET    /v1/{graph}/topk?k=10        → top-k rows via bounded-heap select
//	GET    /v1/{graph}/node/{id}        → one node's score, rank, degree
//	GET    /v1/{graph}/correlate        → Spearman vs. the graph's
//	                                      significance vector (if any)
//	POST   /v1/jobs                     → submit an async sweep job
//	GET    /v1/jobs                     → list jobs
//	GET    /v1/jobs/{id}                → job status + progress
//	DELETE /v1/jobs/{id}                → cancel a job
//	GET    /v1/jobs/{id}/results        → results (JSON or streamed NDJSON)
//
// "jobs" is a reserved path segment: a registry graph named "jobs" would be
// shadowed by the job routes and is rejected at construction. (Entries
// added to the registry under that name after construction are silently
// shadowed — don't.)
//
// Ranking parameters (rank, topk, node, correlate): algo=d2pr|pagerank|
// hits|degree, p, beta, alpha, seeds=3,17 (personalized teleport).
//
// All handlers are safe for concurrent use.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"d2pr/internal/admission"
	"d2pr/internal/core"
	"d2pr/internal/faultinject"
	"d2pr/internal/graph"
	"d2pr/internal/jobs"
	"d2pr/internal/pprcache"
	"d2pr/internal/rankcache"
	"d2pr/internal/rankspec"
	"d2pr/internal/registry"
	"d2pr/internal/stats"
	"d2pr/internal/telemetry"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// CacheSize bounds the number of resident score vectors.
	// 0 means rankcache.DefaultCapacity.
	CacheSize int
	// JobWorkers bounds concurrently-executing sweep configurations across
	// all jobs. 0 means jobs.DefaultWorkers.
	JobWorkers int
	// JobTTL is how long finished job results stay retrievable.
	// 0 means jobs.DefaultTTL.
	JobTTL time.Duration
	// PPRCacheSize bounds the number of resident personalized top-k results.
	// 0 means pprcache.DefaultCapacity.
	PPRCacheSize int
	// PPREps is the forward-push residual threshold applied when a PPR
	// request omits eps. 0 means core.DefaultPPREpsilon.
	PPREps float64
	// MaxConcurrent bounds concurrently-running interactive solves per
	// graph (admission control; cache hits and piggybacks are exempt).
	// 0 means admission.DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueue bounds how many interactive solves may wait for a slot per
	// graph; past it requests are shed with 429. 0 means
	// admission.DefaultMaxQueue; negative means no waiting.
	MaxQueue int
	// RequestTimeout is the deadline applied to interactive compute
	// requests that carry no timeout parameter. 0 means no default
	// deadline.
	RequestTimeout time.Duration
	// MaxRequestTimeout caps per-request timeout overrides. 0 means
	// admission.DefaultMaxTimeout.
	MaxRequestTimeout time.Duration
	// Logger receives one structured record per request when non-nil.
	Logger *slog.Logger
	// SlowRequestThreshold, when positive, promotes requests at or above
	// this wall-clock duration to a WARN "slow request" record carrying the
	// full solver-stage breakdown (queue/engine/solve, iterations,
	// residual). 0 disables outlier promotion.
	SlowRequestThreshold time.Duration
}

// Server serves ranking queries over a registry of named graphs.
type Server struct {
	reg    *registry.Registry
	cache  *rankcache.Cache
	ppr    *pprcache.Cache
	pprEps float64
	jobs   *jobs.Manager
	adm    *admission.Controller
	tel    *telemetry.Registry

	logger        *slog.Logger
	slowThreshold time.Duration

	// hookSolve, when non-nil, runs inside the compute closure after the
	// admission slot is acquired and before the solve — a test seam for
	// deterministic budget-saturation tests.
	hookSolve func(graph string)
}

// NewMulti creates a Server over a registry. The registry may keep gaining
// entries after the server starts; it must not be nil or empty, and must not
// contain a graph named "jobs" (reserved for the job routes).
func NewMulti(reg *registry.Registry, cfg Config) (*Server, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, errors.New("server: registry is empty")
	}
	if reg.Has("jobs") {
		return nil, errors.New(`server: graph name "jobs" is reserved for the job routes`)
	}
	if cfg.PPREps == 0 {
		cfg.PPREps = core.DefaultPPREpsilon
	}
	if cfg.PPREps < 0 || cfg.PPREps > 1e-2 {
		return nil, fmt.Errorf("server: ppr eps %v out of (0, 1e-2]", cfg.PPREps)
	}
	s := &Server{
		reg:    reg,
		cache:  rankcache.New(cfg.CacheSize),
		ppr:    pprcache.New(cfg.PPRCacheSize, 0),
		pprEps: cfg.PPREps,
		adm: admission.New(admission.Config{
			MaxConcurrent: cfg.MaxConcurrent,
			MaxQueue:      cfg.MaxQueue,
			Timeout:       cfg.RequestTimeout,
			MaxTimeout:    cfg.MaxRequestTimeout,
		}),
		tel:           telemetry.NewRegistry(),
		logger:        cfg.Logger,
		slowThreshold: cfg.SlowRequestThreshold,
	}
	// Compute panics are recovered inside the caches (the flight fails, the
	// key is not poisoned); the hooks make every such recovery visible as
	// d2pr_panics_total.
	s.cache.SetOnPanic(func(any) { s.tel.RecordPanic() })
	s.ppr.SetOnPanic(func(any) { s.tel.RecordPanic() })
	mgr, err := jobs.New(jobs.Options{
		Workers:   cfg.JobWorkers,
		TTL:       cfg.JobTTL,
		Resolve:   reg.Get,
		Cache:     s.cache,
		PPRCache:  s.ppr,
		Telemetry: s.tel,
	})
	if err != nil {
		return nil, err
	}
	s.jobs = mgr
	return s, nil
}

// New creates a single-graph Server, registering g under the name "default".
// significance may be nil; it enables /v1/default/correlate when present.
// Kept as the convenience constructor for tests and embedders.
func New(g *graph.Graph, significance []float64) (*Server, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("server: graph is empty")
	}
	reg := registry.New()
	if err := reg.AddGraph("default", g, significance); err != nil {
		return nil, err
	}
	return NewMulti(reg, Config{})
}

// Cache exposes the result cache (for warming and stats).
func (s *Server) Cache() *rankcache.Cache { return s.cache }

// PPRCache exposes the personalized-ranking result cache.
func (s *Server) PPRCache() *pprcache.Cache { return s.ppr }

// Jobs exposes the sweep-job manager.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Telemetry exposes the request/solve telemetry registry (for tests and
// embedders that scrape programmatically).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Close drains the job subsystem: no new jobs are accepted and running jobs
// finish. If ctx expires first, remaining jobs are cancelled (in-flight
// solves still complete) and ctx's error is returned.
func (s *Server) Close(ctx context.Context) error {
	return s.jobs.Close(ctx)
}

// Handler returns the HTTP handler tree wrapped in the logging/metrics
// middleware. The job routes live on their own mux dispatched by path
// prefix: "/v1/jobs/{id}" and "/v1/{graph}/info" would otherwise be
// conflicting ServeMux patterns (neither is more specific).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("POST /v1/graphs/{graph}/reload", s.handleReload)
	mux.HandleFunc("GET /v1/{graph}/info", s.handleInfo)
	mux.HandleFunc("GET /v1/{graph}/rank", s.handleRank)
	mux.HandleFunc("POST /v1/{graph}/rank/batch", s.handleRankBatch)
	mux.HandleFunc("GET /v1/{graph}/ppr", s.handlePPRGet)
	mux.HandleFunc("POST /v1/{graph}/ppr", s.handlePPRPost)
	mux.HandleFunc("POST /v1/{graph}/ppr/batch", s.handlePPRBatch)
	mux.HandleFunc("GET /v1/{graph}/topk", s.handleTopK)
	mux.HandleFunc("GET /v1/{graph}/node/{id}", s.handleNode)
	mux.HandleFunc("GET /v1/{graph}/correlate", s.handleCorrelate)

	jobsMux := http.NewServeMux()
	jobsMux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	jobsMux.HandleFunc("GET /v1/jobs", s.handleJobList)
	jobsMux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	jobsMux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	jobsMux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)

	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs" || strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			jobsMux.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
	return s.instrument(root)
}

// Warm precomputes d2pr scores for every registered graph at each
// de-coupling weight in ps (β = beta, default solver options), loading
// graphs as needed. It runs in the background with the given parallelism and
// returns a channel that closes when the sweep completes. Each compute goes
// through the snapshot's cached engine, so warming also pre-builds the pull
// topology later live requests reuse.
func (s *Server) Warm(ps []float64, beta float64, parallelism int) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Warming is best-effort infrastructure: a panic here (a corrupt
		// graph tripping the solver, say) must not kill the process, and a
		// graph that fails to load is simply skipped — it will load, or
		// degrade, on its first live request.
		defer func() {
			if p := recover(); p != nil {
				s.tel.RecordPanic()
				if s.logger != nil {
					s.logger.Error("warm panic", "panic", fmt.Sprint(p))
				}
			}
		}()
		var warmJobs []rankcache.Job
		for _, name := range s.reg.Names() {
			snap, err := s.reg.Get(name)
			if err != nil {
				continue
			}
			for _, p := range ps {
				spec := rankspec.New(name)
				spec.P, spec.Beta = p, beta
				warmJobs = append(warmJobs, rankcache.Job{
					Key: spec.CacheKeyFor(snap),
					Compute: func(ctx context.Context) ([]float64, error) {
						scores, st, err := spec.ComputeStats(ctx, snap)
						if err != nil {
							s.tel.RecordSolveError(snap.Name)
							return nil, err
						}
						s.tel.RecordSolve(snap.Name, st)
						return scores, nil
					},
				})
			}
		}
		<-s.cache.Warm(warmJobs, parallelism)
	}()
	return done
}

// parseRankQuery extracts and validates the ranking parameters. Seed bounds
// are checked against the materialized graph.
func parseRankQuery(r *http.Request, snap *registry.Snapshot) (rankspec.Spec, error) {
	spec := rankspec.New(snap.Name)
	vals := r.URL.Query()
	if a := vals.Get("algo"); a != "" {
		spec.Algo = a
	}
	parseF := func(name string, dst *float64) error {
		if v := vals.Get(name); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s %q", name, v)
			}
			*dst = f
		}
		return nil
	}
	if err := parseF("p", &spec.P); err != nil {
		return spec, err
	}
	if err := parseF("beta", &spec.Beta); err != nil {
		return spec, err
	}
	if err := parseF("alpha", &spec.Alpha); err != nil {
		return spec, err
	}
	if seeds := vals.Get("seeds"); seeds != "" {
		for _, part := range strings.Split(seeds, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || id < 0 || id >= snap.Graph.NumNodes() {
				return spec, fmt.Errorf("bad seed %q", part)
			}
			spec.Seeds = append(spec.Seeds, int32(id))
		}
	}
	if err := spec.Validate(snap.Graph.NumNodes()); err != nil {
		return spec, err
	}
	return spec, nil
}

// cacheHeader reports how a ranking response was served: "hit" (resident
// entry or a piggybacked in-flight solve), "miss" (fresh solve), or "stale"
// (an evicted copy served in place of shedding the request).
const cacheHeader = "X-Cache"

// requestCtx derives a compute request's context: the client's context plus
// the admission deadline — the -request-timeout default, overridable with a
// ?timeout= Go duration, capped at -max-request-timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	var override time.Duration
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive duration, e.g. 500ms)", v)
		}
		override = d
	}
	ctx, cancel := s.adm.Deadline(r.Context(), override)
	return ctx, cancel, nil
}

// scores returns the score vector for a spec together with its cache status
// ("hit", "miss", or "stale") and, for a miss, the solve-stage stats.
// Concurrent identical requests share one solve via the cache's single-flight
// path; only an actual solve claims one of the graph's admission slots — hits
// and piggybacks never queue. The slot is acquired under the detached solve
// context, so queue waiting is abandoned only when every requester for the
// key is gone. When the budget sheds and an evicted copy of the vector
// exists, the stale copy is served instead of the error.
//
// probe is written inside the compute closure and read only on the
// leader-success path (err == nil && !cached): the cache's done-channel close
// establishes the happens-before, and on every other outcome the closure may
// still be running on an abandoned solve, so the probe is never touched.
func (s *Server) scores(ctx context.Context, snap *registry.Snapshot, spec rankspec.Spec) ([]float64, string, *telemetry.SolveStats, error) {
	key := spec.CacheKeyFor(snap)
	var probe telemetry.SolveStats
	val, cached, err := s.cache.Get(ctx, key, func(solveCtx context.Context) ([]float64, error) {
		waitStart := time.Now()
		release, aerr := s.adm.Acquire(solveCtx, snap.Name)
		wait := time.Since(waitStart)
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		if err := faultinject.Fire(faultinject.PointRankCompute, snap.Name); err != nil {
			return nil, err
		}
		if s.hookSolve != nil {
			s.hookSolve(snap.Name)
		}
		scores, st, cerr := spec.ComputeStats(solveCtx, snap)
		if cerr != nil {
			s.tel.RecordSolveError(snap.Name)
			return nil, cerr
		}
		st.AdmissionWait = wait
		s.tel.RecordSolve(snap.Name, st)
		probe = st
		return scores, nil
	})
	switch {
	case err == nil && cached:
		return val, "hit", nil, nil
	case err == nil:
		st := probe
		return val, "miss", &st, nil
	case errors.Is(err, admission.ErrQueueFull):
		if stale, ok := s.cache.LookupStale(key); ok {
			return stale, "stale", nil, nil
		}
		// The cache may still hold the vector under the previous epoch's key:
		// a reload happened since it was computed. Slightly-old scores beat
		// shedding — the stale tier's whole purpose — so probe one epoch back
		// (resident, then stale) before giving up.
		if snap.Epoch > 1 {
			prev := spec.CacheKey() + rankcache.Key("|epoch="+strconv.FormatUint(snap.Epoch-1, 10))
			if stale, ok := s.cache.Lookup(prev); ok {
				return stale, "stale", nil, nil
			}
			if stale, ok := s.cache.LookupStale(prev); ok {
				return stale, "stale", nil, nil
			}
		}
	}
	return nil, "", nil, err
}

// rankScores runs the full interactive compute path for a ranking handler:
// derive the request context, resolve the scores through cache + admission,
// and map failures to their HTTP status. On success the cache-status header
// is set and the scores returned; on failure the response has been written.
func (s *Server) rankScores(w http.ResponseWriter, r *http.Request, snap *registry.Snapshot, spec rankspec.Spec) ([]float64, bool) {
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	defer cancel()
	scores, status, st, err := s.scores(ctx, snap, spec)
	if err != nil {
		s.writeComputeError(w, snap.Name, err)
		return nil, false
	}
	w.Header().Set(cacheHeader, status)
	noteCompute(w, r, snap.Name, status, st)
	return scores, true
}

// snapshot resolves the {graph} path component against the registry.
// Unknown names are 404 on every /v1/{graph}/... route. A known-but-sick
// graph (degraded inside its backoff window, or quarantined, with no prior
// good snapshot to serve) is 503 with the lifecycle state in the body —
// clients and load balancers can tell "doesn't exist" from "exists, come
// back later". Anything else is 500.
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) (*registry.Snapshot, bool) {
	name := r.PathValue("graph")
	snap, err := s.reg.GetContext(r.Context(), name)
	if err != nil {
		var serr *registry.StateError
		switch {
		case errors.Is(err, registry.ErrUnknownGraph):
			writeError(w, http.StatusNotFound, err)
		case errors.As(err, &serr):
			if secs := int(time.Until(serr.RetryAt).Seconds()) + 1; !serr.RetryAt.IsZero() && secs > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
			writeJSON(w, http.StatusServiceUnavailable,
				errorBody{Error: err.Error(), State: string(serr.State)})
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return nil, false
	}
	return snap, true
}

// GraphsResponse is the /v1/graphs response body.
type GraphsResponse struct {
	Graphs []registry.Status `json:"graphs"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, GraphsResponse{Graphs: s.reg.Statuses()})
}

// GraphInfo is the /v1/{graph}/info response body.
type GraphInfo struct {
	Name            string  `json:"name"`
	Source          string  `json:"source"`
	Kind            string  `json:"kind"`
	Weighted        bool    `json:"weighted"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	AvgDegree       float64 `json:"avg_degree"`
	DegreeStdDev    float64 `json:"degree_stddev"`
	MedianNbrStdDev float64 `json:"median_neighbor_degree_stddev"`
	HasSignificance bool    `json:"has_significance"`
	// Engine reports the solver engine's memory layout and build costs —
	// present only once some solve has built the engine (reporting never
	// triggers the build itself). Float32Mode is the process-wide score
	// tier the power-iteration algorithms serve with (-float32).
	Engine      *core.EngineStats `json:"engine,omitempty"`
	Float32Mode bool              `json:"float32_mode"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	st := graph.ComputeStats(snap.Graph)
	info := GraphInfo{
		Name:            snap.Name,
		Source:          snap.Source,
		Kind:            snap.Graph.Kind().String(),
		Weighted:        snap.Graph.Weighted(),
		Nodes:           st.Nodes,
		Edges:           st.Edges,
		AvgDegree:       st.AvgDegree,
		DegreeStdDev:    st.DegreeStdDev,
		MedianNbrStdDev: st.MedianNeighborDegStdDev,
		HasSignificance: snap.Significance != nil,
		Float32Mode:     rankspec.Float32Mode(),
	}
	if eng := snap.EngineIfBuilt(); eng != nil {
		es := eng.Stats()
		info.Engine = &es
	}
	writeJSON(w, http.StatusOK, info)
}

// RankEntry is one row of a top-k response.
type RankEntry = rankspec.Entry

// RankResponse is the /v1/{graph}/rank and /v1/{graph}/topk response body.
type RankResponse struct {
	Graph  string      `json:"graph"`
	Config string      `json:"config"`
	Top    []RankEntry `json:"top,omitempty"`
	Scores []float64   `json:"scores,omitempty"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	spec, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Validate top before solving: a malformed request must not cost a
	// cold solve (or a cache slot).
	top := 0
	if topStr := r.URL.Query().Get("top"); topStr != "" {
		top, err = strconv.Atoi(topStr)
		if err != nil || top <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", topStr))
			return
		}
	}
	scores, ok := s.rankScores(w, r, snap, spec)
	if !ok {
		return
	}
	resp := RankResponse{Graph: snap.Name, Config: string(spec.CacheKey())}
	if top > 0 {
		resp.Top = rankspec.TopEntries(snap.Graph, scores, top)
	} else {
		resp.Scores = scores
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	spec, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if kStr := r.URL.Query().Get("k"); kStr != "" {
		k, err = strconv.Atoi(kStr)
		if err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", kStr))
			return
		}
	}
	scores, ok := s.rankScores(w, r, snap, spec)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, RankResponse{
		Graph:  snap.Name,
		Config: string(spec.CacheKey()),
		Top:    rankspec.TopEntries(snap.Graph, scores, k),
	})
}

// NodeResponse is the /v1/{graph}/node/{id} response body.
type NodeResponse struct {
	Graph  string  `json:"graph"`
	Node   int32   `json:"node"`
	Degree int     `json:"degree"`
	Score  float64 `json:"score"`
	Rank   int     `json:"rank"`
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	idStr := r.PathValue("id")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= snap.Graph.NumNodes() {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown node %q", idStr))
		return
	}
	spec, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, ok := s.rankScores(w, r, snap, spec)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, NodeResponse{
		Graph:  snap.Name,
		Node:   int32(id),
		Degree: snap.Graph.Degree(int32(id)),
		Score:  scores[id],
		Rank:   stats.RankOf(scores, id),
	})
}

// CorrelateResponse is the /v1/{graph}/correlate response body.
type CorrelateResponse struct {
	Graph    string  `json:"graph"`
	Config   string  `json:"config"`
	Spearman float64 `json:"spearman"`
	DegreeR  float64 `json:"degree_spearman"`
}

func (s *Server) handleCorrelate(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	if snap.Significance == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("graph %q has no significance vector", snap.Name))
		return
	}
	spec, err := parseRankQuery(r, snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scores, ok := s.rankScores(w, r, snap, spec)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, CorrelateResponse{
		Graph:    snap.Name,
		Config:   string(spec.CacheKey()),
		Spearman: stats.Spearman(scores, snap.Significance),
		DegreeR:  stats.Spearman(scores, rankspec.DegreeVector(snap.Graph)),
	})
}
