// Chaos suite: fault-injection tests for the zero-downtime lifecycle. Every
// test here runs against the real HTTP surface with faults armed through
// internal/faultinject, and the headline test drives concurrent rank/PPR
// traffic through back-to-back hot reloads asserting the acceptance
// properties: zero 5xx for healthy graphs, zero dropped in-flight requests,
// and a goroutine count that returns to baseline when the dust settles.
//
// Run with -race; the CI chaos job runs this file's tests with -count=2 and
// uploads goroutine dumps (written when CHAOS_ARTIFACT_DIR is set) on
// failure.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"d2pr/internal/faultinject"
	"d2pr/internal/graph"
	"d2pr/internal/lifecycle"
	"d2pr/internal/registry"
)

// chaosBackoff keeps degraded-retry windows far below test timescales.
var chaosBackoff = lifecycle.Config{
	Base:       time.Millisecond,
	Max:        4 * time.Millisecond,
	MaxRetries: 3,
}

// writeChaosGraph writes a small weighted graph atomically (temp + rename) so
// a shadow reload never observes a partial file. gen perturbs the weights so
// successive versions are distinguishable by checksum.
func writeChaosGraph(t *testing.T, path string, gen int) {
	t.Helper()
	var b strings.Builder
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5}, {3, 5}, {1, 5}}
	for i, e := range edges {
		fmt.Fprintf(&b, "%d %d %g\n", e[0], e[1], 1.0+float64((i+gen)%5)/10)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// chaosServer builds a server over a fast-backoff registry with one
// file-backed graph ("web", reloadable) and one memory graph ("mem",
// always-healthy control). Admission is sized so healthy traffic is never
// shed — a 429 in these tests would be a bug, not load shedding.
func chaosServer(t *testing.T) (*Server, *httptest.Server, *registry.Registry, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "web.tsv")
	writeChaosGraph(t, path, 0)

	reg := registry.NewWith(registry.Options{Backoff: chaosBackoff})
	if err := reg.AddFile("web", path, graph.Undirected, true, ""); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGraph("mem", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	s, err := NewMulti(reg, Config{
		CacheSize:     256,
		MaxConcurrent: 8,
		MaxQueue:      4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, reg, path
}

// dumpChaosArtifact writes diagnostic bytes where the CI chaos job collects
// artifacts from (CHAOS_ARTIFACT_DIR); without the env var the dump lands in
// the test log instead.
func dumpChaosArtifact(t *testing.T, name string, data []byte) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		t.Logf("%s:\n%s", name, data)
		return
	}
	_ = os.MkdirAll(dir, 0o755)
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.txt", t.Name(), name))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("artifact write failed (%v); %s:\n%s", err, name, data)
		return
	}
	t.Logf("wrote artifact %s", path)
}

// goroutineBaseline snapshots the goroutine count and returns a check that
// polls (up to 5s) for the count to return to baseline + slack. Register the
// returned func with t.Cleanup BEFORE building servers so it runs after
// their cleanups have torn everything down.
func goroutineBaseline(t *testing.T) func() {
	t.Helper()
	runtime.GC()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		n := runtime.NumGoroutine()
		for n > base+3 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > base+3 {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			dumpChaosArtifact(t, "goroutines", buf)
			t.Errorf("goroutine leak: baseline %d, settled at %d", base, n)
		}
	}
}

// TestChaosReloadUnderLoad is the acceptance test: 100 concurrent workers
// alternating rank and PPR requests against both graphs while the file graph
// is rewritten and hot-reloaded 10 times back to back. Every request must
// complete 200 — reloads swap snapshots atomically underneath in-flight
// traffic, never through an error window — and the goroutine count must
// return to baseline afterwards.
func TestChaosReloadUnderLoad(t *testing.T) {
	t.Cleanup(goroutineBaseline(t))
	_, ts, reg, path := chaosServer(t)

	if _, err := reg.Get("web"); err != nil {
		t.Fatal(err)
	}

	const workers = 100
	const perWorker = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan string, workers*perWorker)
	urls := []string{
		ts.URL + "/v1/web/rank?p=1&alpha=0.85",
		ts.URL + "/v1/web/ppr?seed=0&k=3",
		ts.URL + "/v1/mem/rank?p=0.5",
		ts.URL + "/v1/mem/ppr?seed=1&k=2",
	}
	client := &http.Client{Timeout: 10 * time.Second}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := urls[(w+i)%len(urls)]
				resp, err := client.Get(url)
				if err != nil {
					errCh <- fmt.Sprintf("GET %s: %v", url, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Sprintf("GET %s: status %d", url, resp.StatusCode)
				}
			}
		}(w)
	}

	// 10 back-to-back reloads, each over a freshly rewritten file.
	for gen := 1; gen <= 10; gen++ {
		writeChaosGraph(t, path, gen)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/web/reload", nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("reload %d: %v", gen, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d", gen, resp.StatusCode)
		}
	}

	wg.Wait()
	close(stop)
	close(errCh)
	failures := 0
	for msg := range errCh {
		failures++
		if failures <= 10 {
			t.Error(msg)
		}
	}
	if failures > 10 {
		t.Errorf("... and %d more request failures", failures-10)
	}

	st, err := reg.Status("web")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != lifecycle.StateReady {
		t.Errorf("web state after reload storm = %s, want ready", st.State)
	}
	if st.Epoch != 11 {
		t.Errorf("web epoch = %d, want 11 (initial load + 10 reloads)", st.Epoch)
	}
}

// TestChaosTransientFailureDegradesThenHeals injects two load failures on a
// never-materialized graph: the first requests see 503 + state "degraded" +
// Retry-After, and once the fault budget is spent a request past the backoff
// window heals the graph to ready.
func TestChaosTransientFailureDegradesThenHeals(t *testing.T) {
	faultinject.Enable()
	t.Cleanup(faultinject.Disable)
	_, ts, reg, _ := chaosServer(t)

	faultinject.Arm(faultinject.PointRegistryLoad, "web", faultinject.Fault{
		Err:   errors.New("injected transient load failure"),
		Count: 2,
	})

	resp, err := http.Get(ts.URL + "/v1/web/rank")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
		State string `json:"state"`
	}
	code := decodeBody(t, resp, &body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("first request: status %d, want 503", code)
	}
	if body.State != string(lifecycle.StateDegraded) {
		t.Errorf("first request state = %q, want degraded", body.State)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 missing Retry-After")
	}
	if !strings.Contains(body.Error, "injected transient") {
		t.Errorf("error body %q does not carry the load error", body.Error)
	}

	// The fault fires twice; with millisecond backoff the graph must heal
	// within the polling window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/web/rank")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("graph did not heal; last status %d", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, err := reg.Status("web")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != lifecycle.StateReady || !st.Loaded {
		t.Errorf("healed status = %+v, want ready+loaded", st)
	}
	if got := faultinject.Fired(faultinject.PointRegistryLoad); got != 2 {
		t.Errorf("load fault fired %d times, want 2", got)
	}
}

// TestChaosPersistentFailureQuarantines keeps the load fault armed past the
// retry budget: the graph lands in quarantine, requests fail fast with 503 +
// state "quarantined", the healthy control graph keeps serving, and /readyz
// reports "degraded" (not unavailable — one graph is still servable).
func TestChaosPersistentFailureQuarantines(t *testing.T) {
	faultinject.Enable()
	t.Cleanup(faultinject.Disable)
	_, ts, reg, _ := chaosServer(t)

	faultinject.Arm(faultinject.PointRegistryLoad, "web", faultinject.Fault{
		Err: errors.New("injected persistent load failure"),
	})

	// Drive Gets until the retry budget (MaxRetries=3) quarantines the entry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/web/rank")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		st, err := reg.Status("web")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == lifecycle.StateQuarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("graph never quarantined; state %s after %d retries", st.State, st.Retries)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Quarantined: fail-fast 503 with the state named in the body, so a
	// client can tell it from a 404 (unknown graph) and a transient 503.
	resp, err := http.Get(ts.URL + "/v1/web/rank")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
		State string `json:"state"`
	}
	if code := decodeBody(t, resp, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined request: status %d, want 503", code)
	}
	if body.State != string(lifecycle.StateQuarantined) {
		t.Errorf("state = %q, want quarantined", body.State)
	}

	// The healthy graph is untouched.
	if code := getJSON(t, ts.URL+"/v1/mem/rank", nil); code != http.StatusOK {
		t.Errorf("healthy graph returned %d during quarantine", code)
	}

	// Readiness: degraded (a graph is sick) but 200 (mem still serves).
	var rz ReadyzResponse
	if code := getJSON(t, ts.URL+"/readyz", &rz); code != http.StatusOK {
		t.Fatalf("readyz status %d, want 200", code)
	}
	if rz.Status != "degraded" {
		t.Errorf("readyz status = %q, want degraded", rz.Status)
	}
	if len(rz.Quarantined) != 1 || rz.Quarantined[0] != "web" {
		t.Errorf("readyz quarantined = %v, want [web]", rz.Quarantined)
	}

	// Manual reload re-arms quarantine; with the fault disarmed it heals.
	faultinject.Disarm(faultinject.PointRegistryLoad, "web")
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/web/reload", nil)
	reloadResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	if code := decodeBody(t, reloadResp, &rr); code != http.StatusOK {
		t.Fatalf("reload after disarm: status %d", code)
	}
	if rr.Status.State != lifecycle.StateReady {
		t.Errorf("post-reload state = %s, want ready", rr.Status.State)
	}
	if code := getJSON(t, ts.URL+"/v1/web/rank", nil); code != http.StatusOK {
		t.Errorf("healed graph returned %d", code)
	}
}

// TestChaosReloadFailureKeepsServing materializes the graph, then arms a
// persistent load fault and reloads until quarantine: every reload fails with
// 502, but the previous good snapshot keeps serving 200 throughout and after.
func TestChaosReloadFailureKeepsServing(t *testing.T) {
	faultinject.Enable()
	t.Cleanup(faultinject.Disable)
	_, ts, reg, _ := chaosServer(t)

	if _, err := reg.Get("web"); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.PointRegistryLoad, "web", faultinject.Fault{
		Err: errors.New("injected reload failure"),
	})

	// Each manual reload re-arms the machine, fails once, and degrades; the
	// old snapshot must serve through every one of them.
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/web/reload", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var rr struct {
			Status registry.Status `json:"status"`
			Error  string          `json:"error"`
			State  string          `json:"state"`
		}
		if code := decodeBody(t, resp, &rr); code != http.StatusBadGateway {
			t.Fatalf("reload %d: status %d, want 502", i, code)
		}
		if !rr.Status.Loaded || rr.Status.Epoch != 1 {
			t.Errorf("reload %d: status %+v, want loaded epoch-1 snapshot retained", i, rr.Status)
		}
		if code := getJSON(t, ts.URL+"/v1/web/rank", nil); code != http.StatusOK {
			t.Errorf("serving gap after failed reload %d: status %d", i, code)
		}
	}

	// Recovery: disarm, reload, epoch advances.
	faultinject.Disarm(faultinject.PointRegistryLoad, "web")
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/web/reload", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	if code := decodeBody(t, resp, &rr); code != http.StatusOK {
		t.Fatalf("recovery reload: status %d", code)
	}
	if rr.Status.Epoch != 2 || rr.Status.State != lifecycle.StateReady {
		t.Errorf("recovery status = %+v, want ready epoch 2", rr.Status)
	}
}

// TestChaosPanickingComputeContained arms panics inside the rank and PPR
// compute closures: the requests fail 500 (not a crashed process), the panic
// counter climbs, and once disarmed the same requests serve 200.
func TestChaosPanickingComputeContained(t *testing.T) {
	t.Cleanup(goroutineBaseline(t))
	faultinject.Enable()
	t.Cleanup(faultinject.Disable)
	s, ts, _, _ := chaosServer(t)

	faultinject.Arm(faultinject.PointRankCompute, "web", faultinject.Fault{
		Panic: "injected rank panic", Count: 1,
	})
	faultinject.Arm(faultinject.PointPPRCompute, "web", faultinject.Fault{
		Panic: "injected ppr panic", Count: 1,
	})

	if code := getJSON(t, ts.URL+"/v1/web/rank", nil); code != http.StatusInternalServerError {
		t.Errorf("panicking rank compute: status %d, want 500", code)
	}
	if code := getJSON(t, ts.URL+"/v1/web/ppr?seed=0", nil); code != http.StatusInternalServerError {
		t.Errorf("panicking ppr compute: status %d, want 500", code)
	}
	if got := s.tel.Panics(); got < 2 {
		t.Errorf("panics counter = %d, want >= 2", got)
	}

	// Faults were Count:1 — the same requests now succeed.
	if code := getJSON(t, ts.URL+"/v1/web/rank", nil); code != http.StatusOK {
		t.Errorf("rank after panic: status %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/v1/web/ppr?seed=0", nil); code != http.StatusOK {
		t.Errorf("ppr after panic: status %d, want 200", code)
	}

	// The counter is on the metrics surface in both expositions.
	var mr MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &mr); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if mr.Panics < 2 {
		t.Errorf("metrics panics = %d, want >= 2", mr.Panics)
	}
}

// TestChaosHandlerPanicRecovered drives a panic through the instrument
// middleware directly: the response is a JSON 500, the process survives, and
// the panic is counted.
func TestChaosHandlerPanicRecovered(t *testing.T) {
	s, err := New(testGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("injected handler panic")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	if code := decodeBody(t, resp, &body); code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	if !strings.Contains(body.Error, "panic") {
		t.Errorf("error body %q does not mention the panic", body.Error)
	}
	if got := s.tel.Panics(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
}

// TestChaosMidSolveCancellation cancels clients mid-solve during a reload:
// neither the abandoned solves nor the reload may leak goroutines or wedge
// the admission budget.
func TestChaosMidSolveCancellation(t *testing.T) {
	t.Cleanup(goroutineBaseline(t))
	faultinject.Enable()
	t.Cleanup(faultinject.Disable)
	_, ts, reg, path := chaosServer(t)

	if _, err := reg.Get("web"); err != nil {
		t.Fatal(err)
	}
	// Slow every rank solve down so client timeouts fire mid-compute.
	faultinject.Arm(faultinject.PointRankCompute, "web", faultinject.Fault{
		Delay: 50 * time.Millisecond,
	})

	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Millisecond}
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct alphas defeat request coalescing: each hits the solve path.
			resp, err := client.Get(fmt.Sprintf("%s/v1/web/rank?alpha=0.%02d", ts.URL, 50+i))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	// Reload concurrently with the abandoned solves.
	writeChaosGraph(t, path, 99)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/web/reload", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload during cancellations: status %d", resp.StatusCode)
	}
	wg.Wait()

	faultinject.Disarm(faultinject.PointRankCompute, "web")
	// The budget must not be wedged: a fresh request completes promptly.
	if code := getJSON(t, ts.URL+"/v1/web/rank", nil); code != http.StatusOK {
		t.Errorf("post-cancellation rank: status %d, want 200", code)
	}
}

// decodeBody decodes a JSON response body and returns the status code,
// closing the body.
func decodeBody(t *testing.T, resp *http.Response, out any) int {
	t.Helper()
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}
