// End-to-end HTTP integration test: one server over a registry mixing all
// three source kinds (memory, file, dataset), driven through the full route
// surface over real TCP — graphs listing, ranking, top-k, node lookup,
// correlation, metrics, the synchronous batch sweep, and the asynchronous
// job lifecycle (submit, poll, stream NDJSON results, cancel). The job
// section also proves the tentpole acceptance property: results computed by
// a job are later served to /rank as cache hits.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"d2pr/internal/dataset"
	"d2pr/internal/jobs"
	"d2pr/internal/registry"
)

// e2eFileGraph is a 12-node weighted undirected graph written to disk so the
// registry's file loader (weight sniffing + .sig sidecar discovery) is on
// the tested path.
const e2eFileGraph = `# e2e test graph: hub 0, ring 1..11 with chords
0 1 1.0
0 2 2.0
0 3 1.5
0 4 1.0
1 2 1.0
2 3 0.5
3 4 2.5
4 5 1.0
5 6 1.0
6 7 3.0
7 8 1.0
8 9 1.0
9 10 1.5
10 11 1.0
11 1 2.0
5 9 1.0
`

func e2eServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "web.tsv"), []byte(e2eFileGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	var sig strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sig, "%d\t%g\n", i, float64((i*7)%12)/12)
	}
	if err := os.WriteFile(filepath.Join(dir, "web.sig"), []byte(sig.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := registry.New()
	if n, err := reg.LoadDir(dir); err != nil || n != 1 {
		t.Fatalf("LoadDir: %d graphs, err %v", n, err)
	}
	if err := reg.AddGraph("mem", testGraph(t), []float64{0.1, 0.9, 0.4, 0.8, 0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.5, Seed: 7}); err != nil {
		t.Fatal(err)
	}

	s, err := NewMulti(reg, Config{CacheSize: 128, JobWorkers: 4, JobTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// pollJob polls the status route until the job is terminal.
func pollJob(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != 200 {
			t.Fatalf("poll status %d", code)
		}
		switch st.State {
		case jobs.StateDone, jobs.StateFailed, jobs.StateCancelled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state")
	return jobs.Status{}
}

func TestE2EServing(t *testing.T) {
	s, ts := e2eServer(t)

	// --- Graph listing: all three source kinds registered, none loaded.
	var gl GraphsResponse
	if code := getJSON(t, ts.URL+"/v1/graphs", &gl); code != 200 {
		t.Fatalf("graphs: %d", code)
	}
	if len(gl.Graphs) != 3 {
		t.Fatalf("graphs = %+v", gl.Graphs)
	}
	kinds := map[string]bool{}
	for _, g := range gl.Graphs {
		if g.Loaded {
			t.Errorf("graph %s loaded before first request", g.Name)
		}
		kinds[strings.SplitN(g.Source, ":", 2)[0]] = true
	}
	for _, want := range []string{"memory", "file", "dataset"} {
		if !kinds[want] {
			t.Errorf("missing source kind %q in %+v", want, gl.Graphs)
		}
	}

	// --- Info on the file graph: sniffed weighted, sidecar significance.
	var info GraphInfo
	if code := getJSON(t, ts.URL+"/v1/web/info", &info); code != 200 {
		t.Fatalf("info: %d", code)
	}
	if info.Nodes != 12 || !info.Weighted || !info.HasSignificance {
		t.Fatalf("info = %+v", info)
	}

	// --- Rank / topk / node / correlate across the three graphs.
	var rank RankResponse
	if code := getJSON(t, ts.URL+"/v1/web/rank?p=0.5&beta=0.5&top=5", &rank); code != 200 {
		t.Fatalf("rank: %d", code)
	}
	if len(rank.Top) != 5 || rank.Top[0].Rank != 1 {
		t.Fatalf("rank top = %+v", rank.Top)
	}
	var topk RankResponse
	if code := getJSON(t, ts.URL+"/v1/mem/topk?k=3", &topk); code != 200 {
		t.Fatalf("topk: %d", code)
	}
	if len(topk.Top) != 3 {
		t.Fatalf("topk = %+v", topk)
	}
	var node NodeResponse
	if code := getJSON(t, ts.URL+"/v1/web/node/0?p=0.5&beta=0.5", &node); code != 200 {
		t.Fatalf("node: %d", code)
	}
	if node.Node != 0 || node.Degree != 4 || node.Rank < 1 {
		t.Fatalf("node = %+v", node)
	}
	var corr CorrelateResponse
	if code := getJSON(t, ts.URL+"/v1/web/correlate?p=1", &corr); code != 200 {
		t.Fatalf("correlate: %d", code)
	}
	if corr.Spearman < -1 || corr.Spearman > 1 {
		t.Fatalf("correlate = %+v", corr)
	}
	var ds RankResponse
	if code := getJSON(t, ts.URL+"/v1/"+dataset.IMDBActorActor+"/topk?k=5", &ds); code != 200 {
		t.Fatalf("dataset topk: %d", code)
	}
	if len(ds.Top) != 5 {
		t.Fatalf("dataset topk = %+v", ds.Top)
	}

	// --- Metrics reflect the traffic so far.
	var m MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Requests < 7 || m.GraphsLoaded != 3 || m.GraphsRegistry != 3 {
		t.Fatalf("metrics = %+v", m)
	}

	// --- Jobs lifecycle: submit a 20-point p-sweep with correlation.
	ps := make([]string, 20)
	for i := range ps {
		ps[i] = fmt.Sprintf("%g", float64(i)*0.1)
	}
	sweep := fmt.Sprintf(`{"graph": "web", "ps": [%s], "betas": [0.5], "top_k": 3, "correlate": true}`,
		strings.Join(ps, ","))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var sub JobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Job.ID == "" || sub.Job.Total != 20 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub.Job)
	}

	// The job shows up in the listing.
	var jl JobListResponse
	if code := getJSON(t, ts.URL+"/v1/jobs", &jl); code != 200 || len(jl.Jobs) == 0 {
		t.Fatalf("job list: %d %+v", code, jl)
	}

	st := pollJob(t, ts.URL, sub.Job.ID)
	if st.State != jobs.StateDone || st.Completed != 20 || st.Failed != 0 {
		t.Fatalf("job finished as %+v", st)
	}

	// JSON results: 20 rows, each correlated, each with its cache config.
	var jr JobResultsResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/"+sub.Job.ID+"/results", &jr); code != 200 {
		t.Fatalf("results: %d", code)
	}
	if len(jr.Results) != 20 {
		t.Fatalf("results = %d rows", len(jr.Results))
	}
	for _, row := range jr.Results {
		if row.Error != "" || row.Spearman == nil || len(row.Top) != 3 {
			t.Fatalf("row = %+v", row)
		}
	}

	// NDJSON streaming: one line per row plus a terminal status line.
	nresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Job.ID + "/results?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	if ct := nresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson content type %q", ct)
	}
	sc := bufio.NewScanner(nresp.Body)
	rows, sawStatus := 0, false
	for sc.Scan() {
		line := sc.Bytes()
		var row jobs.ConfigResult
		if err := json.Unmarshal(line, &row); err == nil && row.Config != "" {
			rows++
			continue
		}
		var tail JobSubmitted
		if err := json.Unmarshal(line, &tail); err == nil && tail.Job.State == jobs.StateDone {
			sawStatus = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 20 || !sawStatus {
		t.Fatalf("ndjson: %d rows, status line %v", rows, sawStatus)
	}

	// --- Acceptance: the job's solves now serve /rank as cache hits.
	// (Results arrive in completion order; pick one row and re-request its
	// exact configuration.)
	row := jr.Results[13]
	hitsBefore := s.Cache().Stats().Hits
	var warm RankResponse
	warmURL := fmt.Sprintf("%s/v1/web/rank?p=%g&beta=%g&top=3", ts.URL, row.Spec.P, row.Spec.Beta)
	if code := getJSON(t, warmURL, &warm); code != 200 {
		t.Fatalf("warm rank: %d", code)
	}
	if hitsAfter := s.Cache().Stats().Hits; hitsAfter <= hitsBefore {
		t.Errorf("swept configuration was not served from cache (hits %d → %d)", hitsBefore, hitsAfter)
	}
	if warm.Config != row.Config {
		t.Errorf("config mismatch: rank %q vs job row %q", warm.Config, row.Config)
	}

	// --- Cancellation: a worst-case-size sweep on the big dataset graph is
	// cancelled right after submit; it must stop early. (If cancellation
	// broke, the poll below would grind through the full 4096-solve grid.)
	bigPs := make([]string, 0, jobs.MaxGridSize)
	for i := 0; i < jobs.MaxGridSize; i++ {
		bigPs = append(bigPs, fmt.Sprintf("%g", 2+float64(i)*1e-6))
	}
	cancelSweep := fmt.Sprintf(`{"graph": %q, "ps": [%s]}`, dataset.IMDBActorActor, strings.Join(bigPs, ","))
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(cancelSweep))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 JobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub2.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 200 {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	final := pollJob(t, ts.URL, sub2.Job.ID)
	if final.State != jobs.StateCancelled {
		t.Fatalf("cancelled job finished as %s (%d/%d)", final.State, final.Completed, final.Total)
	}
	if final.Completed >= final.Total {
		t.Errorf("cancellation did not stop the grid (%d/%d)", final.Completed, final.Total)
	}

	// --- Metrics now carry job counters.
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Jobs.Submitted != 2 || m.Jobs.Done != 1 || m.Jobs.Cancelled != 1 {
		t.Errorf("job metrics = %+v", m.Jobs)
	}
}

// TestE2EStreamFollowsRunningJob submits a sweep and opens the NDJSON stream
// while it runs: rows must arrive incrementally and the stream must end with
// the terminal status — the single-request "submit and consume" pattern.
func TestE2EStreamFollowsRunningJob(t *testing.T) {
	_, ts := e2eServer(t)
	ps := make([]string, 30)
	for i := range ps {
		ps[i] = fmt.Sprintf("%g", float64(i)*0.05)
	}
	sweep := fmt.Sprintf(`{"graph": %q, "ps": [%s]}`, dataset.IMDBActorActor, strings.Join(ps, ","))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	var sub JobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+sub.Job.ID+"/results?format=ndjson", nil)
	if err != nil {
		t.Fatal(err)
	}
	nresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer nresp.Body.Close()
	sc := bufio.NewScanner(nresp.Body)
	rows, sawStatus := 0, false
	for sc.Scan() {
		var row jobs.ConfigResult
		if err := json.Unmarshal(sc.Bytes(), &row); err == nil && row.Config != "" {
			rows++
			continue
		}
		var tail JobSubmitted
		if err := json.Unmarshal(sc.Bytes(), &tail); err == nil {
			sawStatus = tail.Job.State == jobs.StateDone
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 30 || !sawStatus {
		t.Fatalf("followed stream: %d rows, done status %v", rows, sawStatus)
	}
}
