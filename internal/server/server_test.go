package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"d2pr/internal/graph"
)

func testServer(t *testing.T, withSig bool) *httptest.Server {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sig []float64
	if withSig {
		sig = []float64{0.1, 0.9, 0.4, 0.8, 0.3, 0.7}
	}
	s, err := New(g, sig)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts := testServer(t, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestGraphEndpoint(t *testing.T) {
	ts := testServer(t, true)
	var info GraphInfo
	if code := getJSON(t, ts.URL+"/v1/graph", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if info.Nodes != 6 || info.Edges != 6 || info.Kind != "undirected" {
		t.Errorf("info = %+v", info)
	}
	if !info.HasSignificance {
		t.Error("significance flag missing")
	}
}

func TestRankTopK(t *testing.T) {
	ts := testServer(t, false)
	var resp RankResponse
	if code := getJSON(t, ts.URL+"/v1/rank?algo=d2pr&p=2&top=3", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Top) != 3 {
		t.Fatalf("top entries = %d", len(resp.Top))
	}
	if resp.Top[0].Rank != 1 || resp.Top[0].Score < resp.Top[2].Score {
		t.Errorf("top-k not ordered: %+v", resp.Top)
	}
	if len(resp.Scores) != 0 {
		t.Error("full scores must be omitted with top")
	}
}

func TestRankFullScores(t *testing.T) {
	ts := testServer(t, false)
	var resp RankResponse
	if code := getJSON(t, ts.URL+"/v1/rank", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Scores) != 6 {
		t.Fatalf("scores = %d", len(resp.Scores))
	}
	var sum float64
	for _, s := range resp.Scores {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("score sum = %v", sum)
	}
}

func TestRankAlgorithms(t *testing.T) {
	ts := testServer(t, false)
	for _, algo := range []string{"d2pr", "pagerank", "hits", "degree"} {
		var resp RankResponse
		if code := getJSON(t, fmt.Sprintf("%s/v1/rank?algo=%s", ts.URL, algo), &resp); code != 200 {
			t.Errorf("%s: status %d", algo, code)
		}
	}
}

func TestRankSeeds(t *testing.T) {
	ts := testServer(t, false)
	var seeded, plain RankResponse
	getJSON(t, ts.URL+"/v1/rank?seeds=5", &seeded)
	getJSON(t, ts.URL+"/v1/rank", &plain)
	if seeded.Scores[5] <= plain.Scores[5] {
		t.Error("seeding node 5 must raise its score")
	}
}

func TestRankBadInputs(t *testing.T) {
	ts := testServer(t, false)
	for _, q := range []string{
		"algo=bogus", "p=x", "alpha=2", "beta=-1", "seeds=99", "seeds=zz", "top=0", "top=x",
	} {
		if code := getJSON(t, ts.URL+"/v1/rank?"+q, nil); code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, code)
		}
	}
}

func TestNodeEndpoint(t *testing.T) {
	ts := testServer(t, false)
	var resp NodeResponse
	if code := getJSON(t, ts.URL+"/v1/node/0?p=0", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Node != 0 || resp.Degree != 3 || resp.Rank < 1 {
		t.Errorf("node response = %+v", resp)
	}
	if code := getJSON(t, ts.URL+"/v1/node/99", nil); code != http.StatusNotFound {
		t.Errorf("unknown node: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/node/xyz", nil); code != http.StatusNotFound {
		t.Errorf("bad node id: status %d, want 404", code)
	}
}

func TestCorrelateEndpoint(t *testing.T) {
	withSig := testServer(t, true)
	var resp CorrelateResponse
	if code := getJSON(t, withSig.URL+"/v1/correlate?p=1", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Spearman < -1 || resp.Spearman > 1 || resp.DegreeR < -1 || resp.DegreeR > 1 {
		t.Errorf("correlations out of range: %+v", resp)
	}
	noSig := testServer(t, false)
	if code := getJSON(t, noSig.URL+"/v1/correlate", nil); code != http.StatusNotFound {
		t.Errorf("no significance: status %d, want 404", code)
	}
}

func TestCacheStability(t *testing.T) {
	ts := testServer(t, false)
	var a, b RankResponse
	getJSON(t, ts.URL+"/v1/rank?p=1.5", &a)
	getJSON(t, ts.URL+"/v1/rank?p=1.5", &b)
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatal("cached result differs")
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t, true)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			url := fmt.Sprintf("%s/v1/rank?p=%d&top=3", ts.URL, i%4)
			resp, err := http.Get(url)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != 200 {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil graph must error")
	}
	g, _ := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}})
	if _, err := New(g, []float64{1}); err == nil {
		t.Error("significance length mismatch must error")
	}
}
