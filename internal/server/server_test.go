package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"d2pr/internal/graph"
	"d2pr/internal/registry"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testServer(t *testing.T, withSig bool) *httptest.Server {
	t.Helper()
	var sig []float64
	if withSig {
		sig = []float64{0.1, 0.9, 0.4, 0.8, 0.3, 0.7}
	}
	s, err := New(testGraph(t), sig)
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// closeServer drains the job subsystem when the test ends (stops the TTL
// janitor goroutine).
func closeServer(t *testing.T, s *Server) {
	t.Helper()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
}

// multiServer builds a two-graph server: "alpha" (with significance) and
// "beta" (without).
func multiServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := registry.New()
	if err := reg.AddGraph("alpha", testGraph(t), []float64{0.1, 0.9, 0.4, 0.8, 0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGraph("beta", g2, nil); err != nil {
		t.Fatal(err)
	}
	s, err := NewMulti(reg, Config{CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts := testServer(t, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestGraphsEndpoint(t *testing.T) {
	_, ts := multiServer(t)
	var resp GraphsResponse
	if code := getJSON(t, ts.URL+"/v1/graphs", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Graphs) != 2 {
		t.Fatalf("graphs = %+v", resp.Graphs)
	}
	if resp.Graphs[0].Name != "alpha" || resp.Graphs[1].Name != "beta" {
		t.Errorf("names not sorted: %+v", resp.Graphs)
	}
	// In-memory graphs materialize on first Get; none touched yet means the
	// listing must not force loads. (AddGraph entries still report unloaded
	// until first use.)
	for _, g := range resp.Graphs {
		if g.Loaded {
			t.Errorf("graph %s loaded before first request", g.Name)
		}
	}
}

func TestInfoEndpoint(t *testing.T) {
	ts := testServer(t, true)
	var info GraphInfo
	if code := getJSON(t, ts.URL+"/v1/default/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if info.Nodes != 6 || info.Edges != 6 || info.Kind != "undirected" {
		t.Errorf("info = %+v", info)
	}
	if !info.HasSignificance {
		t.Error("significance flag missing")
	}
}

func TestUnknownGraph(t *testing.T) {
	ts := testServer(t, false)
	for _, path := range []string{"/v1/nosuch/info", "/v1/nosuch/rank", "/v1/nosuch/topk", "/v1/nosuch/node/0", "/v1/nosuch/correlate"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, code)
		}
	}
}

func TestRankTopK(t *testing.T) {
	ts := testServer(t, false)
	var resp RankResponse
	if code := getJSON(t, ts.URL+"/v1/default/rank?algo=d2pr&p=2&top=3", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Top) != 3 {
		t.Fatalf("top entries = %d", len(resp.Top))
	}
	if resp.Top[0].Rank != 1 || resp.Top[0].Score < resp.Top[2].Score {
		t.Errorf("top-k not ordered: %+v", resp.Top)
	}
	if len(resp.Scores) != 0 {
		t.Error("full scores must be omitted with top")
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts := testServer(t, false)
	var resp RankResponse
	if code := getJSON(t, ts.URL+"/v1/default/topk?k=3&p=1", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Top) != 3 || len(resp.Scores) != 0 {
		t.Fatalf("topk response = %+v", resp)
	}
	for i := 1; i < len(resp.Top); i++ {
		if resp.Top[i].Score > resp.Top[i-1].Score {
			t.Errorf("topk not sorted: %+v", resp.Top)
		}
	}
	// Default k is 10, clamped to n=6.
	var dflt RankResponse
	if code := getJSON(t, ts.URL+"/v1/default/topk", &dflt); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(dflt.Top) != 6 {
		t.Errorf("default topk entries = %d, want all 6", len(dflt.Top))
	}
	if code := getJSON(t, ts.URL+"/v1/default/topk?k=0", nil); code != http.StatusBadRequest {
		t.Errorf("k=0: status %d, want 400", code)
	}
}

func TestRankFullScores(t *testing.T) {
	ts := testServer(t, false)
	var resp RankResponse
	if code := getJSON(t, ts.URL+"/v1/default/rank", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Scores) != 6 {
		t.Fatalf("scores = %d", len(resp.Scores))
	}
	var sum float64
	for _, s := range resp.Scores {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("score sum = %v", sum)
	}
}

func TestRankAlgorithms(t *testing.T) {
	ts := testServer(t, false)
	for _, algo := range []string{"d2pr", "pagerank", "hits", "degree"} {
		var resp RankResponse
		if code := getJSON(t, fmt.Sprintf("%s/v1/default/rank?algo=%s", ts.URL, algo), &resp); code != 200 {
			t.Errorf("%s: status %d", algo, code)
		}
	}
}

func TestRankSeeds(t *testing.T) {
	ts := testServer(t, false)
	var seeded, plain RankResponse
	getJSON(t, ts.URL+"/v1/default/rank?seeds=5", &seeded)
	getJSON(t, ts.URL+"/v1/default/rank", &plain)
	if seeded.Scores[5] <= plain.Scores[5] {
		t.Error("seeding node 5 must raise its score")
	}
}

func TestRankBadInputs(t *testing.T) {
	ts := testServer(t, false)
	for _, q := range []string{
		"algo=bogus", "p=x", "alpha=2", "beta=-1", "seeds=99", "seeds=zz", "top=0", "top=x",
	} {
		if code := getJSON(t, ts.URL+"/v1/default/rank?"+q, nil); code != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, code)
		}
	}
}

func TestNodeEndpoint(t *testing.T) {
	ts := testServer(t, false)
	var resp NodeResponse
	if code := getJSON(t, ts.URL+"/v1/default/node/0?p=0", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Node != 0 || resp.Degree != 3 || resp.Rank < 1 {
		t.Errorf("node response = %+v", resp)
	}
	if code := getJSON(t, ts.URL+"/v1/default/node/99", nil); code != http.StatusNotFound {
		t.Errorf("unknown node: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/default/node/xyz", nil); code != http.StatusNotFound {
		t.Errorf("bad node id: status %d, want 404", code)
	}
}

func TestCorrelateEndpoint(t *testing.T) {
	_, ts := multiServer(t)
	var resp CorrelateResponse
	if code := getJSON(t, ts.URL+"/v1/alpha/correlate?p=1", &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Spearman < -1 || resp.Spearman > 1 || resp.DegreeR < -1 || resp.DegreeR > 1 {
		t.Errorf("correlations out of range: %+v", resp)
	}
	if code := getJSON(t, ts.URL+"/v1/beta/correlate", nil); code != http.StatusNotFound {
		t.Errorf("no significance: status %d, want 404", code)
	}
}

func TestCacheStability(t *testing.T) {
	ts := testServer(t, false)
	var a, b RankResponse
	getJSON(t, ts.URL+"/v1/default/rank?p=1.5", &a)
	getJSON(t, ts.URL+"/v1/default/rank?p=1.5", &b)
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatal("cached result differs")
		}
	}
}

// TestCacheSharedAcrossGraphs verifies cache isolation: identical parameters
// on different graphs must not collide.
func TestCacheIsolationAcrossGraphs(t *testing.T) {
	_, ts := multiServer(t)
	var a, b RankResponse
	getJSON(t, ts.URL+"/v1/alpha/rank?p=1", &a)
	getJSON(t, ts.URL+"/v1/beta/rank?p=1", &b)
	if len(a.Scores) == len(b.Scores) {
		t.Fatalf("test graphs must differ in size")
	}
	if a.Config == b.Config {
		t.Errorf("cache keys collide across graphs: %q", a.Config)
	}
}

// TestEquivalentConfigsShareCacheSlot: algorithms that ignore p/β must map
// equivalent requests to one cache entry.
func TestEquivalentConfigsShareCacheSlot(t *testing.T) {
	s, ts := multiServer(t)
	getJSON(t, ts.URL+"/v1/alpha/rank?algo=pagerank&p=1", nil)
	getJSON(t, ts.URL+"/v1/alpha/rank?algo=pagerank&p=2", nil)
	st := s.Cache().Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit (p ignored by pagerank)", st)
	}
	// degree ignores every solver option; hits ignores alpha and seeds.
	getJSON(t, ts.URL+"/v1/alpha/rank?algo=degree&alpha=0.5&seeds=1", nil)
	getJSON(t, ts.URL+"/v1/alpha/rank?algo=degree", nil)
	getJSON(t, ts.URL+"/v1/alpha/rank?algo=hits&alpha=0.5&seeds=1", nil)
	getJSON(t, ts.URL+"/v1/alpha/rank?algo=hits", nil)
	st = s.Cache().Stats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Errorf("stats = %+v, want 3 misses + 3 hits after degree/hits dedup", st)
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, ts := multiServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "alpha"
			if i%2 == 0 {
				name = "beta"
			}
			url := fmt.Sprintf("%s/v1/%s/rank?p=%d&top=3", ts.URL, name, i%4)
			resp, err := http.Get(url)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != 200 {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := multiServer(t)
	getJSON(t, ts.URL+"/v1/alpha/rank?p=1", nil)
	getJSON(t, ts.URL+"/v1/alpha/rank?p=1", nil)
	getJSON(t, ts.URL+"/v1/nosuch/rank", nil)
	var m MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("status %d", code)
	}
	if m.Requests != 3 {
		t.Errorf("requests = %d, want 3", m.Requests)
	}
	if m.Errors != 1 {
		t.Errorf("errors = %d, want 1", m.Errors)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", m.Cache)
	}
	found := false
	for _, rc := range m.Routes {
		if rc.Route == "GET /v1/{graph}/rank" && rc.Count == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("per-route counters = %+v", m.Routes)
	}
	if m.GraphsRegistry != 2 || m.GraphsLoaded != 1 {
		t.Errorf("graph counts = %d registered / %d loaded, want 2/1", m.GraphsRegistry, m.GraphsLoaded)
	}
}

func TestWarm(t *testing.T) {
	s, _ := multiServer(t)
	<-s.Warm([]float64{0, 0.5, 1}, 0, 2)
	if got := s.Cache().Len(); got != 6 {
		t.Errorf("cache len after warm = %d, want 6 (2 graphs × 3 p)", got)
	}
	// A request matching a warmed configuration must be a pure cache hit.
	before := s.Cache().Stats().Hits
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/v1/alpha/rank?p=0.5", nil); code != 200 {
		t.Fatalf("status %d", code)
	}
	if after := s.Cache().Stats().Hits; after != before+1 {
		t.Errorf("warmed config was not served from cache (hits %d → %d)", before, after)
	}
}

// TestStatusCodesAndErrorShape is the table-driven contract test for the
// error surface: every error response (including the mux's own unmatched-
// route and method-mismatch fallbacks) must carry the right status code and
// a JSON body with Content-Type: application/json. Unknown graph names are
// 404 — never 400 — on every /v1/{graph}/... route.
func TestStatusCodesAndErrorShape(t *testing.T) {
	_, ts := multiServer(t)
	cases := []struct {
		method string
		path   string
		body   string
		want   int
	}{
		// Unknown graph → 404 on every graph-scoped route.
		{"GET", "/v1/nosuch/info", "", 404},
		{"GET", "/v1/nosuch/rank", "", 404},
		{"GET", "/v1/nosuch/topk", "", 404},
		{"GET", "/v1/nosuch/node/0", "", 404},
		{"GET", "/v1/nosuch/correlate", "", 404},
		{"POST", "/v1/nosuch/rank/batch", "{}", 404},
		// Malformed parameters → 400.
		{"GET", "/v1/alpha/rank?algo=bogus", "", 400},
		{"GET", "/v1/alpha/rank?alpha=2", "", 400},
		{"GET", "/v1/alpha/rank?top=0", "", 400},
		{"GET", "/v1/alpha/topk?k=-1", "", 400},
		// Unknown node → 404; missing significance → 404.
		{"GET", "/v1/alpha/node/999", "", 404},
		{"GET", "/v1/beta/correlate", "", 404},
		// Batch: bad body / oversized grid / graph mismatch → 400.
		{"POST", "/v1/alpha/rank/batch", "{not json", 400},
		{"POST", "/v1/alpha/rank/batch", `{"unknown_field": 1}`, 400},
		{"POST", "/v1/alpha/rank/batch", `{"graph": "beta"}`, 400},
		// Correlating a graph without significance → 404 (matches
		// /correlate); a seed error must stay 400 even when the spec also
		// has the correlate problem (first validation failure wins).
		{"POST", "/v1/beta/rank/batch", `{"correlate": true}`, 404},
		{"POST", "/v1/beta/rank/batch", `{"seeds": [999], "correlate": true}`, 400},
		// Jobs: unknown id → 404 everywhere; bad submissions → 400/404.
		{"GET", "/v1/jobs/job-999999", "", 404},
		{"DELETE", "/v1/jobs/job-999999", "", 404},
		{"GET", "/v1/jobs/job-999999/results", "", 404},
		{"POST", "/v1/jobs", "{not json", 400},
		{"POST", "/v1/jobs", `{"graph": "alpha"}{"correlate": true}`, 400}, // trailing JSON
		{"POST", "/v1/jobs", `{"ps": [0.5]}`, 400},                         // missing graph is malformed, not unknown
		{"POST", "/v1/jobs", `{"graph": "nosuch"}`, 404},
		{"POST", "/v1/jobs", `{"graph": "alpha", "algo": "bogus"}`, 400},
		// Unmatched routes → JSON 404 (not the mux's text/plain default).
		{"GET", "/nope", "", 404},
		{"GET", "/v1", "", 404},
		{"GET", "/v1/alpha/bogus", "", 404},
		{"GET", "/v1/jobs/job-000001/bogus", "", 404},
		// Method mismatches → JSON 405.
		{"POST", "/v1/graphs", "", 405},
		{"DELETE", "/v1/alpha/rank", "", 405},
		{"PUT", "/v1/jobs", "", 405},
	}
	for _, tc := range cases {
		name := tc.method + " " + tc.path
		var body *strings.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		} else {
			body = strings.NewReader("")
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", name, ct)
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Errorf("%s: body is not an error JSON: %v", name, err)
		} else if eb.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
		resp.Body.Close()
	}
}

// TestBatchEndpoint: a small synchronous sweep shares one snapshot, returns
// a row per configuration, and leaves the cache warm for /rank.
func TestBatchEndpoint(t *testing.T) {
	s, ts := multiServer(t)
	body := `{"ps": [0, 0.5, 1], "betas": [0], "top_k": 2, "correlate": true}`
	resp, err := http.Post(ts.URL+"/v1/alpha/rank/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 3 || len(br.Results) != 3 {
		t.Fatalf("batch = %+v", br)
	}
	for _, row := range br.Results {
		if row.Error != "" || row.Cached || len(row.Top) != 2 || row.Spearman == nil {
			t.Errorf("row = %+v", row)
		}
	}
	if got := s.Cache().Len(); got != 3 {
		t.Errorf("cache len after batch = %d, want 3", got)
	}
	// The batch solves now serve synchronous requests as cache hits.
	before := s.Cache().Stats().Hits
	var rr RankResponse
	if code := getJSON(t, ts.URL+"/v1/alpha/rank?p=0.5", &rr); code != 200 {
		t.Fatalf("rank after batch: %d", code)
	}
	if after := s.Cache().Stats().Hits; after != before+1 {
		t.Errorf("batch result not hit by /rank (hits %d → %d)", before, after)
	}
	if rr.Config != br.Results[1].Config {
		t.Errorf("config mismatch: rank %q vs batch %q", rr.Config, br.Results[1].Config)
	}
	// Oversized grids are rejected with a pointer to the async route.
	big := fmt.Sprintf(`{"ps": %s}`, floatsJSON(MaxSyncGrid+1))
	resp2, err := http.Post(ts.URL+"/v1/alpha/rank/batch", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Errorf("oversized grid: status %d, want 400", resp2.StatusCode)
	}
}

// floatsJSON renders a JSON array of n distinct floats.
func floatsJSON(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("%g", float64(i)/100)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// TestReservedJobsGraphName: a registry containing a graph named "jobs"
// would be shadowed by the job routes and must be rejected at construction.
func TestReservedJobsGraphName(t *testing.T) {
	reg := registry.New()
	if err := reg.AddGraph("jobs", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMulti(reg, Config{}); err == nil {
		t.Error(`graph named "jobs" must be rejected`)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil graph must error")
	}
	if _, err := NewMulti(nil, Config{}); err == nil {
		t.Error("nil registry must error")
	}
	if _, err := NewMulti(registry.New(), Config{}); err == nil {
		t.Error("empty registry must error")
	}
	g, _ := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}})
	if _, err := New(g, []float64{1}); err == nil {
		t.Error("significance length mismatch must error")
	}
}
