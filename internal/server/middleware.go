package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"d2pr/internal/admission"
	"d2pr/internal/telemetry"
)

// requestIDHeader carries the per-request correlation ID. Inbound values are
// echoed when well-formed; otherwise (including when absent) the server
// generates one. The ID appears on the response, in every access-log line,
// and on job records created by the request.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds an inbound request ID. Anything longer (or carrying
// non-printable bytes) is replaced with a generated ID rather than echoed —
// the header is reflected into responses and logs, so it is validated like
// any other untrusted input.
const maxRequestIDLen = 128

func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// newRequestID returns 16 hex characters of process-local randomness —
// collision-safe for log correlation, which needs uniqueness per retention
// window, not cryptographic unguessability.
func newRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// requestTrace accumulates per-request observability state as the request
// descends through the handler tree: the correlation ID (set by the
// middleware) and, for compute endpoints, the cache tier and solve-stage
// stats (set by the handler). It is written by the handler goroutine and
// read by the middleware after the handler returns — same goroutine, no
// synchronization needed.
type requestTrace struct {
	id    string
	graph string
	tier  string
	solve *telemetry.SolveStats
}

type traceKey struct{}

// traceFrom returns the request's trace, or nil outside the middleware
// (direct handler tests).
func traceFrom(ctx context.Context) *requestTrace {
	tr, _ := ctx.Value(traceKey{}).(*requestTrace)
	return tr
}

// requestIDFrom returns the request's correlation ID, or "" outside the
// middleware.
func requestIDFrom(r *http.Request) string {
	if tr := traceFrom(r.Context()); tr != nil {
		return tr.id
	}
	return ""
}

// statusRecorder captures the response status for logging/metrics and
// rewrites the mux's built-in plain-text 404/405 fallbacks into the JSON
// error shape every other response uses. The mux records the matched pattern
// on the request before invoking a handler, so an empty pattern at
// WriteHeader time means the response is coming from the mux itself (no
// route matched, or the path matched under a different method) — exactly the
// responses whose bodies we replace.
type statusRecorder struct {
	http.ResponseWriter
	req     *http.Request
	status  int
	rewrote bool
	// wrote tracks whether the response has started — the panic-recovery
	// path may only write its 500 while the wire is still untouched.
	wrote bool
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.wrote = true
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		sr.req.Pattern == "" && !sr.rewrote {
		sr.rewrote = true
		sr.status = status
		h := sr.Header()
		h.Set("Content-Type", "application/json")
		sr.ResponseWriter.WriteHeader(status)
		msg := "no such route"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		_ = json.NewEncoder(sr.ResponseWriter).Encode(errorBody{Error: msg})
		return
	}
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// Write swallows the default text body after a rewrite; everything else
// passes through.
func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	if sr.rewrote {
		return len(b), nil
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (NDJSON job
// results) still flush through the middleware.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the handler tree with request-ID propagation, telemetry
// recording, and structured logging. Metrics are bucketed by the matched
// route pattern (not the raw path), so per-graph traffic aggregates under
// one series per endpoint. The recording path is mutex-free: one
// telemetry.Record call, all atomics.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		tr := &requestTrace{id: id}
		// WithContext copies the request; the mux mutates Pattern on the
		// pointer it is handed, so everything below (the recorder's rewrite
		// probe, the post-handler pattern read) must reference the copy.
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, tr))
		w.Header().Set(requestIDHeader, id)
		rec := &statusRecorder{ResponseWriter: w, req: r, status: http.StatusOK}
		func() {
			// Panic isolation: a bug in any handler kills the request, not the
			// process. The stack is logged, the panic counted, and — when the
			// response hasn't started — a JSON 500 goes out. Running inside
			// instrument means the 500 lands in the telemetry like any other.
			defer func() {
				if p := recover(); p != nil {
					s.tel.RecordPanic()
					if s.logger != nil {
						s.logger.Error("handler panic",
							"panic", fmt.Sprint(p),
							"method", r.Method,
							"path", r.URL.RequestURI(),
							"request_id", id,
							"stack", string(debug.Stack()),
						)
					}
					if !rec.wrote {
						writeError(rec, http.StatusInternalServerError,
							fmt.Errorf("internal error (panic recovered)"))
					} else {
						rec.status = http.StatusInternalServerError
					}
				}
			}()
			next.ServeHTTP(rec, r)
		}()
		elapsed := time.Since(started)
		// The mux records the matched pattern on the request itself;
		// unmatched paths and method mismatches leave it empty.
		pattern := r.Pattern
		if pattern == "" {
			pattern = "(no route)"
		}
		s.tel.Record(pattern, rec.status, elapsed)
		if s.logger == nil {
			return
		}
		attrs := make([]any, 0, 16)
		attrs = append(attrs,
			"method", r.Method,
			"path", r.URL.RequestURI(),
			"status", rec.status,
			"elapsed_ms", float64(elapsed)/1e6,
			"request_id", id,
		)
		if tr.tier != "" {
			attrs = append(attrs, "cache", tr.tier)
		}
		if tr.graph != "" {
			attrs = append(attrs, "graph", tr.graph)
		}
		if s.slowThreshold > 0 && elapsed >= s.slowThreshold {
			// Outlier: log the full stage breakdown so "why was this slow"
			// is answerable from the log line alone.
			if st := tr.solve; st != nil {
				attrs = append(attrs,
					"queue_ms", float64(st.AdmissionWait)/1e6,
					"engine_ms", float64(st.EngineBuild)/1e6,
					"solve_ms", float64(st.Solve)/1e6,
					"algo", st.Algo,
					"iterations", st.Iterations,
					"residual", st.Residual,
				)
				if st.Pushes > 0 {
					attrs = append(attrs, "pushes", st.Pushes)
				}
			}
			s.logger.Warn("slow request", attrs...)
			return
		}
		s.logger.Info("request", attrs...)
	})
}

// setServerTiming writes the stage breakdown as a Server-Timing header:
// the cache tier plus, for fresh solves, queue/engine/solve durations in
// milliseconds. Browsers surface these in devtools; curl users get the same
// numbers the slow-request log line carries.
func setServerTiming(w http.ResponseWriter, tier string, st *telemetry.SolveStats) {
	var b strings.Builder
	b.WriteString("cache;desc=")
	b.WriteString(tier)
	if st != nil {
		fmt.Fprintf(&b, ", queue;dur=%.3f", float64(st.AdmissionWait)/1e6)
		fmt.Fprintf(&b, ", engine;dur=%.3f", float64(st.EngineBuild)/1e6)
		fmt.Fprintf(&b, ", solve;dur=%.3f", float64(st.Solve)/1e6)
	}
	w.Header().Set("Server-Timing", b.String())
}

// noteCompute records a compute endpoint's outcome on the request trace (for
// the access log) and emits the Server-Timing header.
func noteCompute(w http.ResponseWriter, r *http.Request, graph, tier string, st *telemetry.SolveStats) {
	setServerTiming(w, tier, st)
	if tr := traceFrom(r.Context()); tr != nil {
		tr.graph = graph
		tr.tier = tier
		tr.solve = st
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Too late to change the status; nothing useful to do.
		_ = err
	}
}

type errorBody struct {
	Error string `json:"error"`
	// State distinguishes a sick-but-known graph (503, lifecycle state
	// "degraded"/"quarantined") from an unknown one (404, no state).
	State string `json:"state,omitempty"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusClientClosedRequest is nginx's convention for "the client went away
// before the response was ready" — nobody reads the body, but the status
// keeps access logs and metrics honest about why the work stopped. The
// telemetry registry counts 499s in their own client_closed series, not as
// errors.
const statusClientClosedRequest = 499

// retryAfterFor derives the Retry-After hint for a shed (429) response from
// the graph's current queue depth: solves finish in milliseconds-to-seconds,
// so an empty queue warrants the minimum 1s backoff, and each MaxConcurrent
// waiters already in line push the hint out by roughly one more drain cycle.
func (s *Server) retryAfterFor(graph string) string {
	depth := s.adm.QueueDepth(graph)
	per := s.adm.Stats().MaxConcurrent
	if per < 1 {
		per = 1
	}
	return strconv.Itoa(1 + depth/per)
}

// writeComputeError maps a compute-path failure to its HTTP status: a full
// admission queue is 429 + Retry-After (the stale-serve fallback has
// already been tried by scores), an expired deadline 504, a client gone 499,
// anything else 500. Deadline and disconnect counters derive from the status
// inside telemetry.Record — no counter is touched here.
func (s *Server) writeComputeError(w http.ResponseWriter, graph string, err error) {
	switch {
	case errors.Is(err, admission.ErrQueueFull):
		w.Header().Set("Retry-After", s.retryAfterFor(graph))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}
