package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"d2pr/internal/admission"
	"d2pr/internal/jobs"
	"d2pr/internal/pprcache"
	"d2pr/internal/rankcache"
)

// metrics collects per-route request counters and aggregate latency. All
// methods are safe for concurrent use.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	requests  uint64
	errors    uint64 // responses with status >= 400
	deadlines uint64 // compute requests that hit their deadline (504s)
	byPattern map[string]uint64
	totalWait time.Duration
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), byPattern: map[string]uint64{}}
}

func (m *metrics) record(pattern string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if status >= 400 {
		m.errors++
	}
	m.byPattern[pattern]++
	m.totalWait += elapsed
}

// RouteCount is one per-route counter row of the /metrics response.
type RouteCount struct {
	Route string `json:"route"`
	Count uint64 `json:"count"`
}

// MetricsResponse is the /metrics response body.
type MetricsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      uint64       `json:"requests"`
	Errors        uint64       `json:"errors"`
	AvgLatencyMs  float64      `json:"avg_latency_ms"`
	Routes        []RouteCount `json:"routes"`
	// DeadlineExceeded counts compute requests that ran out of deadline
	// (504s); Admission carries the shed/queue-depth counters of the
	// per-graph budgets.
	DeadlineExceeded uint64          `json:"deadline_exceeded"`
	Admission        admission.Stats `json:"admission"`
	Cache            rankcache.Stats `json:"cache"`
	PPRCache         pprcache.Stats  `json:"ppr_cache"`
	Jobs             jobs.Stats      `json:"jobs"`
	GraphsLoaded     int             `json:"graphs_loaded"`
	GraphsRegistry   int             `json:"graphs_registered"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	m.mu.Lock()
	resp := MetricsResponse{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Requests:         m.requests,
		Errors:           m.errors,
		DeadlineExceeded: m.deadlines,
	}
	if m.requests > 0 {
		resp.AvgLatencyMs = m.totalWait.Seconds() * 1000 / float64(m.requests)
	}
	for route, n := range m.byPattern {
		resp.Routes = append(resp.Routes, RouteCount{Route: route, Count: n})
	}
	m.mu.Unlock()
	sort.Slice(resp.Routes, func(a, b int) bool { return resp.Routes[a].Route < resp.Routes[b].Route })
	resp.Admission = s.adm.Stats()
	resp.Cache = s.cache.Stats()
	resp.PPRCache = s.ppr.Stats()
	resp.Jobs = s.jobs.Stats()
	for _, st := range s.reg.Statuses() {
		resp.GraphsRegistry++
		if st.Loaded {
			resp.GraphsLoaded++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusRecorder captures the response status for logging/metrics and
// rewrites the mux's built-in plain-text 404/405 fallbacks into the JSON
// error shape every other response uses. The mux records the matched pattern
// on the request before invoking a handler, so an empty pattern at
// WriteHeader time means the response is coming from the mux itself (no
// route matched, or the path matched under a different method) — exactly the
// responses whose bodies we replace.
type statusRecorder struct {
	http.ResponseWriter
	req     *http.Request
	status  int
	rewrote bool
}

func (sr *statusRecorder) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		sr.req.Pattern == "" && !sr.rewrote {
		sr.rewrote = true
		sr.status = status
		h := sr.Header()
		h.Set("Content-Type", "application/json")
		sr.ResponseWriter.WriteHeader(status)
		msg := "no such route"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		_ = json.NewEncoder(sr.ResponseWriter).Encode(errorBody{Error: msg})
		return
	}
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// Write swallows the default text body after a rewrite; everything else
// passes through.
func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.rewrote {
		return len(b), nil
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (NDJSON job
// results) still flush through the middleware.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the handler tree with request logging and metrics
// collection. Metrics are bucketed by the matched route pattern (not the raw
// path), so per-graph traffic aggregates under one counter per endpoint.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		rec := &statusRecorder{ResponseWriter: w, req: r, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(started)
		// The mux records the matched pattern on the request itself;
		// unmatched paths and method mismatches leave it empty.
		pattern := r.Pattern
		if pattern == "" {
			pattern = "(no route)"
		}
		s.metrics.record(pattern, rec.status, elapsed)
		if s.logger != nil {
			s.logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), rec.status, elapsed.Round(time.Microsecond))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Too late to change the status; nothing useful to do.
		_ = err
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusClientClosedRequest is nginx's convention for "the client went away
// before the response was ready" — nobody reads the body, but the status
// keeps access logs and metrics honest about why the work stopped.
const statusClientClosedRequest = 499

// retryAfterSeconds is the Retry-After hint attached to shed (429)
// responses: solves finish in milliseconds-to-seconds, so a short backoff
// is enough for a queue slot to open.
const retryAfterSeconds = "1"

// writeComputeError maps a compute-path failure to its HTTP status: a full
// admission queue is 429 + Retry-After (the stale-serve fallback has
// already been tried by scores), an expired deadline 504, a client gone 499,
// anything else 500.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admission.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.mu.Lock()
		s.metrics.deadlines++
		s.metrics.mu.Unlock()
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}
