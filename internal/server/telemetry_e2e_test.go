package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"d2pr/internal/faultinject"
	"d2pr/internal/registry"
	"d2pr/internal/telemetry/promtext"
)

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	ts := testServer(t, false)

	// No inbound ID → a generated 16-hex ID on the response.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); !hexID.MatchString(id) {
		t.Errorf("generated request id = %q, want 16 hex chars", id)
	}

	// A well-formed inbound ID is echoed verbatim.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-abc-123")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "trace-abc-123" {
		t.Errorf("echoed request id = %q, want trace-abc-123", id)
	}

	// A malformed inbound ID (non-printable bytes, oversized) is replaced,
	// never reflected.
	for _, bad := range []string{"evil\x80id", strings.Repeat("x", 200)} {
		req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-ID", bad)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if id := resp.Header.Get("X-Request-ID"); id == bad || !hexID.MatchString(id) {
			t.Errorf("malformed inbound id %q came back as %q, want a generated replacement", bad, id)
		}
	}
}

func TestServerTimingOnCompute(t *testing.T) {
	_, ts := multiServer(t)

	// Cold request: a fresh solve must carry the full stage breakdown.
	resp, err := http.Get(ts.URL + "/v1/alpha/rank?p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "cache;desc=miss") {
		t.Errorf("cold Server-Timing = %q, want cache;desc=miss", st)
	}
	for _, stage := range []string{"queue;dur=", "engine;dur=", "solve;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("cold Server-Timing = %q, missing %s", st, stage)
		}
	}

	// Warm repeat: a hit reports the tier and no solve stages (nothing ran).
	resp, err = http.Get(ts.URL + "/v1/alpha/rank?p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st = resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "cache;desc=hit") || strings.Contains(st, "solve;dur=") {
		t.Errorf("warm Server-Timing = %q, want cache;desc=hit with no stages", st)
	}

	// PPR path mirrors the contract.
	resp, err = http.Get(ts.URL + "/v1/alpha/ppr?seed=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st = resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "cache;desc=miss") || !strings.Contains(st, "solve;dur=") {
		t.Errorf("ppr Server-Timing = %q, want miss with stages", st)
	}
}

// TestStatusRecorderFlush checks the Flusher passthrough directly: the
// NDJSON job-results stream relies on flushes reaching the client through
// the middleware's recorder.
func TestStatusRecorderFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/x", nil)
	sr := &statusRecorder{ResponseWriter: rec, req: req, status: http.StatusOK}
	var _ http.Flusher = sr
	sr.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
}

// TestRewrittenStatusReachesMetrics drives the mux's 404 and 405 fallbacks
// through the middleware and checks (a) the JSON rewrite and (b) that the
// rewritten status — not the swallowed default — is what telemetry records.
func TestRewrittenStatusReachesMetrics(t *testing.T) {
	s, ts := multiServer(t)

	resp, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("404 fallback body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 || body.Error != "no such route" {
		t.Errorf("404 fallback = %d %q", resp.StatusCode, body.Error)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/healthz", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("405 fallback body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 || body.Error != "method not allowed" {
		t.Errorf("405 fallback = %d %q", resp.StatusCode, body.Error)
	}

	// Both land under the "(no route)" pattern with their rewritten status.
	var found bool
	for _, rs := range s.Telemetry().RouteSummaries() {
		if rs.Route == "(no route)" {
			found = true
			if rs.Count != 2 || rs.Errors != 2 {
				t.Errorf("(no route) summary = %+v, want count 2 errors 2", rs)
			}
		}
	}
	if !found {
		t.Errorf("no (no route) series recorded: %+v", s.Telemetry().RouteSummaries())
	}
	if got := s.Telemetry().Errors(); got != 2 {
		t.Errorf("global errors = %d, want 2", got)
	}
}

// TestMetricsContentNegotiation exercises all three selection paths: default
// JSON, Accept-driven Prometheus, and the explicit ?format= override in both
// directions.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := multiServer(t)

	get := func(path, accept string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	resp, body := get("/metrics", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q, want JSON", ct)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("default body is not JSON: %.80s", body)
	}

	resp, body = get("/metrics", "text/plain")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("prometheus content type = %q", ct)
	}
	if _, err := promtext.Parse([]byte(body)); err != nil {
		t.Errorf("Accept-negotiated exposition invalid: %v", err)
	}

	_, body = get("/metrics?format=prometheus", "")
	if _, err := promtext.Parse([]byte(body)); err != nil {
		t.Errorf("?format=prometheus exposition invalid: %v", err)
	}

	resp, body = get("/metrics?format=json", "text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("?format=json with prometheus Accept = %q, want JSON (query wins)", ct)
	}
}

// TestMetricsPrometheusScrape is the end-to-end acceptance check: drive real
// traffic (rank hits+misses, ppr, a 404), scrape /metrics in Prometheus
// format, validate it with the strict parser, and assert the families the
// dashboards are built on carry the right numbers.
func TestMetricsPrometheusScrape(t *testing.T) {
	_, ts := multiServer(t)
	getJSON(t, ts.URL+"/v1/alpha/rank?p=1", nil)
	getJSON(t, ts.URL+"/v1/alpha/rank?p=1", nil) // hit
	getJSON(t, ts.URL+"/v1/beta/rank?p=0.5", nil)
	getJSON(t, ts.URL+"/v1/alpha/ppr?seed=0", nil)
	getJSON(t, ts.URL+"/v1/nosuch/rank", nil) // 404

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, buf.String())
	}

	// Route histogram: the rank route must expose 2xx and 4xx series with
	// cumulative buckets (validated structurally by the parser already).
	hist, ok := promtext.Find(fams, "d2pr_http_request_duration_seconds")
	if !ok || hist.Type != "histogram" {
		t.Fatalf("request duration histogram missing")
	}
	classes := map[string]bool{}
	for _, s := range hist.Samples {
		if route, _ := s.Get("route"); route == "GET /v1/{graph}/rank" {
			class, _ := s.Get("class")
			classes[class] = true
		}
	}
	if !classes["2xx"] || !classes["4xx"] {
		t.Errorf("rank route histogram classes = %v, want 2xx and 4xx", classes)
	}

	// Latency quantiles per route.
	quant, ok := promtext.Find(fams, "d2pr_http_request_latency_quantile_seconds")
	if !ok {
		t.Fatal("latency quantile family missing")
	}
	qs := map[string]bool{}
	for _, s := range quant.Samples {
		if route, _ := s.Get("route"); route == "GET /v1/{graph}/rank" {
			q, _ := s.Get("quantile")
			qs[q] = true
			if s.Value <= 0 {
				t.Errorf("quantile %s = %v, want > 0", q, s.Value)
			}
		}
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		if !qs[q] {
			t.Errorf("quantile %s missing for rank route", q)
		}
	}

	// Per-graph solver stats: alpha saw one iterative + one push solve, beta
	// one iterative.
	solves, _ := promtext.Find(fams, "d2pr_solves_total")
	got := map[string]float64{}
	for _, s := range solves.Samples {
		g, _ := s.Get("graph")
		k, _ := s.Get("kind")
		got[g+"/"+k] = s.Value
	}
	if got["alpha/iterative"] != 1 || got["alpha/push"] != 1 || got["beta/iterative"] != 1 {
		t.Errorf("solves = %v", got)
	}
	iters, _ := promtext.Find(fams, "d2pr_solve_iterations_total")
	for _, s := range iters.Samples {
		if g, _ := s.Get("graph"); g == "alpha" && s.Value <= 0 {
			t.Errorf("alpha iterations = %v, want > 0", s.Value)
		}
	}
	if _, ok := promtext.Find(fams, "d2pr_solve_last_residual"); !ok {
		t.Error("residual family missing")
	}
	if _, ok := promtext.Find(fams, "d2pr_solve_duration_seconds"); !ok {
		t.Error("solve duration histogram missing")
	}

	// Server-level and runtime families ride the same payload.
	for _, name := range []string{
		"d2pr_rankcache_hits_total", "d2pr_pprcache_misses_total",
		"d2pr_admission_admitted_total", "d2pr_jobs_submitted_total",
		"d2pr_graphs_loaded", "go_goroutines", "go_memstats_heap_alloc_bytes",
	} {
		if _, ok := promtext.Find(fams, name); !ok {
			t.Errorf("family %s missing from scrape", name)
		}
	}
}

// TestMetricsJSONShape checks the enriched JSON exposition: client_closed,
// per-route percentiles, and the per-graph solves block.
func TestMetricsJSONShape(t *testing.T) {
	_, ts := multiServer(t)
	getJSON(t, ts.URL+"/v1/alpha/rank?p=1", nil)
	var m MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("status %d", code)
	}
	if m.ClientClosed != 0 {
		t.Errorf("client_closed = %d, want 0", m.ClientClosed)
	}
	if len(m.Solves) != 1 || m.Solves[0].Graph != "alpha" {
		t.Fatalf("solves = %+v", m.Solves)
	}
	if m.Solves[0].IterationsTotal == 0 || m.Solves[0].LastResidual <= 0 {
		t.Errorf("solve stats empty: %+v", m.Solves[0])
	}
	var rank *RouteCount
	for i := range m.Routes {
		if m.Routes[i].Route == "GET /v1/{graph}/rank" {
			rank = &m.Routes[i]
		}
	}
	if rank == nil || rank.P50Ms <= 0 {
		t.Errorf("rank route percentiles missing: %+v", m.Routes)
	}
}

// syncWriter serializes writes from the handler goroutine with reads from
// the test goroutine.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSlowRequestLogging sets the slow threshold to 1ns so every request is
// an outlier and asserts the WARN record carries the stage breakdown.
func TestSlowRequestLogging(t *testing.T) {
	reg := registry.New()
	if err := reg.AddGraph("alpha", testGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	var logBuf syncWriter
	s, err := NewMulti(reg, Config{
		Logger:               slog.New(slog.NewTextHandler(&logBuf, nil)),
		SlowRequestThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/alpha/rank?p=0.5", nil)
	req.Header.Set("X-Request-ID", "slow-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The middleware logs after the handler returns; poll briefly for the
	// record to land.
	deadline := time.Now().Add(2 * time.Second)
	var out string
	for time.Now().Before(deadline) {
		out = logBuf.String()
		if strings.Contains(out, "slow request") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"slow request", "level=WARN", "request_id=slow-test-1",
		"queue_ms=", "engine_ms=", "solve_ms=", "iterations=", "algo=d2pr", "cache=miss",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-request log missing %q:\n%s", want, out)
		}
	}
}

// TestJobRequestID checks the request-ID contract on the async path: the ID
// of the submitting request is stamped on the job record.
func TestJobRequestID(t *testing.T) {
	_, ts := multiServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"graph": "alpha", "ps": [0.1, 0.2]}`))
	req.Header.Set("X-Request-ID", "job-origin-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub JobSubmitted
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if sub.Job.RequestID != "job-origin-42" {
		t.Errorf("job request_id = %q, want job-origin-42", sub.Job.RequestID)
	}
	var st struct {
		RequestID string `json:"request_id"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, sub.Job.ID), &st); code != 200 {
		t.Fatalf("job get status %d", code)
	}
	if st.RequestID != "job-origin-42" {
		t.Errorf("job status request_id = %q, want job-origin-42", st.RequestID)
	}
}

// TestBatchResultsCarrySolverStats checks that fresh (non-cached) rows of a
// synchronous batch report iterations/residual/convergence.
func TestBatchResultsCarrySolverStats(t *testing.T) {
	_, ts := multiServer(t)
	resp, err := http.Post(ts.URL+"/v1/alpha/rank/batch", "application/json",
		strings.NewReader(`{"ps": [0.3, 0.6], "top_k": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(batch.Results) != 2 {
		t.Fatalf("batch = %d, %+v", resp.StatusCode, batch)
	}
	for _, row := range batch.Results {
		if row.Error != "" {
			t.Fatalf("row error: %s", row.Error)
		}
		if row.Cached {
			continue
		}
		if row.Iterations == 0 || !row.Converged {
			t.Errorf("fresh row missing solver stats: %+v", row)
		}
	}
}

// TestMetricsLifecycleFamilies exercises the lifecycle telemetry end to end:
// a successful reload, a failed reload (corrupted file), and a recovered
// compute panic must all be visible in the JSON /metrics body and, through
// the strict promtext parser, in the Prometheus exposition
// (d2pr_panics_total, d2pr_graph_reloads_total{result}, d2pr_graph_state).
func TestMetricsLifecycleFamilies(t *testing.T) {
	faultinject.Enable()
	t.Cleanup(faultinject.Disable)
	_, ts, _, path := chaosServer(t)

	// One healthy reload, one failed reload over a corrupted file, one panic.
	if code := getJSON(t, ts.URL+"/v1/web/rank", nil); code != http.StatusOK {
		t.Fatalf("rank: %d", code)
	}
	reload := func() int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/web/reload", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := reload(); code != http.StatusOK {
		t.Fatalf("healthy reload: %d", code)
	}
	if err := os.WriteFile(path, []byte("0 not-a-node\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := reload(); code != http.StatusBadGateway {
		t.Fatalf("corrupt reload: %d, want 502", code)
	}
	faultinject.Arm(faultinject.PointRankCompute, "web", faultinject.Fault{
		Panic: "injected metrics panic", Count: 1,
	})
	if code := getJSON(t, ts.URL+"/v1/web/rank?p=0.25", nil); code != http.StatusInternalServerError {
		t.Fatalf("panicking rank: %d, want 500", code)
	}

	// JSON exposition.
	var mr MetricsResponse
	if code := getJSON(t, ts.URL+"/metrics", &mr); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if mr.Panics < 1 {
		t.Errorf("json panics = %d, want >= 1", mr.Panics)
	}
	if mr.ReloadsOK != 1 || mr.ReloadsFailed != 1 {
		t.Errorf("json reloads = %d ok / %d failed, want 1/1", mr.ReloadsOK, mr.ReloadsFailed)
	}
	if mr.GraphStates["quarantined"] != 1 {
		t.Errorf("json graph_states = %v, want one quarantined (corrupt file)", mr.GraphStates)
	}

	// Prometheus exposition, through the strict parser.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}

	panics, ok := promtext.Find(fams, "d2pr_panics_total")
	if !ok || panics.Type != "counter" || len(panics.Samples) != 1 || panics.Samples[0].Value < 1 {
		t.Errorf("d2pr_panics_total = %+v, want counter >= 1", panics)
	}
	reloads, ok := promtext.Find(fams, "d2pr_graph_reloads_total")
	if !ok || reloads.Type != "counter" {
		t.Fatal("d2pr_graph_reloads_total missing")
	}
	byResult := map[string]float64{}
	for _, smp := range reloads.Samples {
		r, _ := smp.Get("result")
		byResult[r] = smp.Value
	}
	if byResult["ok"] != 1 || byResult["failed"] != 1 {
		t.Errorf("reloads by result = %v, want ok=1 failed=1", byResult)
	}
	states, ok := promtext.Find(fams, "d2pr_graph_state")
	if !ok || states.Type != "gauge" {
		t.Fatal("d2pr_graph_state missing")
	}
	// Exactly one state sample per graph carries 1; web is quarantined after
	// the corrupt reload, mem never materialized (loading).
	current := map[string]string{}
	perGraph := map[string]int{}
	for _, smp := range states.Samples {
		g, _ := smp.Get("graph")
		st, _ := smp.Get("state")
		if smp.Value == 1 {
			current[g] = st
			perGraph[g]++
		}
	}
	if perGraph["web"] != 1 || perGraph["mem"] != 1 {
		t.Errorf("graphs with multiple active states: %v", perGraph)
	}
	if current["web"] != "quarantined" {
		t.Errorf("web state = %q, want quarantined", current["web"])
	}
	if current["mem"] != "loading" {
		t.Errorf("mem state = %q, want loading", current["mem"])
	}
}
