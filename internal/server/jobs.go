package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"d2pr/internal/jobs"
	"d2pr/internal/registry"
)

// MaxSyncGrid caps the grid size /v1/{graph}/rank/batch accepts; larger
// sweeps must go through the asynchronous /v1/jobs route, which bounds
// concurrency and survives the client disconnecting.
const MaxSyncGrid = 256

// maxSweepBody bounds the sweep-spec request body. The largest legitimate
// spec is three float lists totalling jobs.MaxGridSize entries — far under
// a megabyte.
const maxSweepBody = 1 << 20

// decodeSweep parses a SweepSpec request body strictly: unknown fields and
// trailing content are rejected so a typo'd axis name ("betass") fails
// loudly instead of silently sweeping the default.
func decodeSweep(w http.ResponseWriter, r *http.Request) (jobs.SweepSpec, error) {
	var spec jobs.SweepSpec
	err := decodeStrictJSON(w, r, &spec)
	return spec, err
}

// JobSubmitted is the POST /v1/jobs response body.
type JobSubmitted struct {
	Job jobs.Status `json:"job"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := decodeSweep(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Malformed sweeps (including a missing "graph") are 400 before the
	// registry is consulted; only a well-formed spec naming an unregistered
	// graph gets the synchronous routes' 404.
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Fail unknown graphs at submit time with the same 404 the synchronous
	// routes use, rather than queuing a job doomed to fail.
	if !s.reg.Has(spec.Graph) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w %q", registry.ErrUnknownGraph, spec.Graph))
		return
	}
	st, err := s.jobs.SubmitTraced(spec, requestIDFrom(r))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, jobs.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, JobSubmitted{Job: st})
}

// JobListResponse is the GET /v1/jobs response body.
type JobListResponse struct {
	Jobs []jobs.Status `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// JobResultsResponse is the GET /v1/jobs/{id}/results response body in JSON
// mode: the rows completed so far (all of them once the job is terminal)
// plus the job status.
type JobResultsResponse struct {
	Job     jobs.Status         `json:"job"`
	Results []jobs.ConfigResult `json:"results"`
}

func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("format") == "ndjson" {
		s.streamJobResults(w, r, id)
		return
	}
	rows, st, err := s.jobs.Results(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if rows == nil {
		rows = []jobs.ConfigResult{}
	}
	writeJSON(w, http.StatusOK, JobResultsResponse{Job: st, Results: rows})
}

// streamJobResults serves format=ndjson: one ConfigResult JSON object per
// line, flushed as each configuration completes, followed by a terminal
// status line {"job": {...}} once the job finishes. The connection follows a
// running job to completion, so a client can submit a sweep and consume
// results incrementally with one request.
func (s *Server) streamJobResults(w http.ResponseWriter, r *http.Request, id string) {
	// Probe existence before committing the 200 + streaming headers.
	if _, err := s.jobs.Get(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	st, err := s.jobs.Stream(r.Context(), id, func(row jobs.ConfigResult) error {
		if err := enc.Encode(row); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		return // client went away mid-stream; nothing more to send
	}
	_ = enc.Encode(JobSubmitted{Job: st})
	if flusher != nil {
		flusher.Flush()
	}
}

// BatchResponse is the POST /v1/{graph}/rank/batch response body.
type BatchResponse struct {
	Graph   string              `json:"graph"`
	Count   int                 `json:"count"`
	Results []jobs.ConfigResult `json:"results"`
}

// handleRankBatch runs a small sweep synchronously: the registry snapshot is
// resolved once and its CSR shared across every configuration, configurations
// execute concurrently on a request-local worker pool, and each score vector
// lands in the rank cache exactly as a /rank request's would.
func (s *Server) handleRankBatch(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	spec, err := decodeSweep(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if spec.Graph != "" && spec.Graph != snap.Name {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep names graph %q but was posted to %q", spec.Graph, snap.Name))
		return
	}
	spec.Graph = snap.Name
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if n := spec.GridSize(); n > MaxSyncGrid {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("grid of %d configurations exceeds the synchronous limit %d; submit it as a job via POST /v1/jobs", n, MaxSyncGrid))
		return
	}
	if err := spec.ValidateWith(snap); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, jobs.ErrNoSignificance) {
			status = http.StatusNotFound // same contract as /correlate
		}
		writeError(w, status, err)
		return
	}
	// The request deadline bounds the whole batch: configurations the
	// deadline keeps from running come back as skipped rows, exactly like a
	// cancelled async job's.
	ctx, cancel, err := s.requestCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	// Share the job manager's semaphore: JobWorkers caps total in-flight
	// sweep configurations across async jobs AND concurrent batches.
	results := jobs.RunSyncTraced(ctx, snap, spec, s.cache, s.jobs.Sem(), s.tel)
	writeJSON(w, http.StatusOK, BatchResponse{Graph: snap.Name, Count: len(results), Results: results})
}
