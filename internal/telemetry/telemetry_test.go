package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"d2pr/internal/telemetry/promtext"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-5, 0},
		{1, 0},
		{1 << histMinExp, 0},                // exactly the first bound → first bucket (le semantics)
		{1<<histMinExp + 1, 1},              // one past → next bucket
		{1 << (histMinExp + 1), 1},          // exactly the second bound
		{1 << histMaxExp, numFinite - 1},    // last finite bound
		{1<<histMaxExp + 1, numFinite},      // just past → overflow
		{time.Duration(1) << 62, numFinite}, // far past → overflow
		{100 * time.Millisecond, bucketIndex(100 * time.Millisecond)}, // self-consistent
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestBucketLeInvariant checks the property the Prometheus `le` label
// depends on: every observation lands in a bucket whose upper bound is >= it.
func TestBucketLeInvariant(t *testing.T) {
	for exp := 0; exp < 40; exp++ {
		for _, off := range []int64{-1, 0, 1} {
			ns := int64(1)<<exp + off
			if ns <= 0 {
				continue
			}
			i := bucketIndex(time.Duration(ns))
			if i < numFinite && ns > bucketBoundNs(i) {
				t.Errorf("duration %d placed in bucket %d with bound %d (bound < value)", ns, i, bucketBoundNs(i))
			}
			if i > 0 && ns <= bucketBoundNs(i-1) {
				t.Errorf("duration %d placed in bucket %d but fits bucket %d (bound %d)", ns, i, i-1, bucketBoundNs(i-1))
			}
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations at ~1ms, 1 at ~1s: p50 must sit in the 1ms octave,
	// p99.9... near the outlier's octave.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	snap := h.Snapshot()
	if snap.Count != 101 {
		t.Fatalf("count = %d, want 101", snap.Count)
	}
	p50 := snap.Quantile(0.5)
	if p50 <= 0 || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want within the 1ms octave", p50)
	}
	p100 := snap.Quantile(1)
	if p100 < 500*time.Millisecond {
		t.Errorf("p100 = %v, want near the 1s outlier", p100)
	}
	// Quantiles must be monotone in q.
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		v := snap.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestRecordClassification(t *testing.T) {
	r := NewRegistry()
	r.Record("GET /a", 200, time.Millisecond)
	r.Record("GET /a", 200, time.Millisecond)
	r.Record("GET /a", 404, time.Millisecond)
	r.Record("GET /a", 499, time.Millisecond)
	r.Record("GET /a", 504, time.Millisecond)
	if got := r.Requests(); got != 5 {
		t.Errorf("requests = %d, want 5", got)
	}
	// 404 and 504 are errors; 499 is not.
	if got := r.Errors(); got != 2 {
		t.Errorf("errors = %d, want 2 (499 must not count)", got)
	}
	if got := r.ClientClosed(); got != 1 {
		t.Errorf("client_closed = %d, want 1", got)
	}
	if got := r.Deadlines(); got != 1 {
		t.Errorf("deadlines = %d, want 1", got)
	}
	sums := r.RouteSummaries()
	if len(sums) != 1 || sums[0].Route != "GET /a" {
		t.Fatalf("route summaries = %+v", sums)
	}
	if sums[0].Count != 5 {
		t.Errorf("route count = %d, want 5", sums[0].Count)
	}
	// RouteSummary.Errors is class-based (4xx+5xx), so the 499 counts here
	// even though it is excluded from the global error counter.
	if sums[0].Errors != 3 {
		t.Errorf("route errors = %d, want 3 (404 and 499 in 4xx class, 504 in 5xx)", sums[0].Errors)
	}
	if sums[0].P50Ms <= 0 || sums[0].P99Ms < sums[0].P50Ms {
		t.Errorf("percentiles not sane: %+v", sums[0])
	}
}

func TestRecordSolve(t *testing.T) {
	r := NewRegistry()
	r.RecordSolve("g", SolveStats{
		Algo: "d2pr", Iterations: 40, Residual: 1e-9, Converged: true,
		EngineBuild: 5 * time.Millisecond, AdmissionWait: time.Millisecond, Solve: 2 * time.Millisecond,
	})
	r.RecordSolve("g", SolveStats{
		Algo: "d2pr", Iterations: 60, Residual: 3e-9, Converged: false,
		EngineBuild: time.Millisecond, Solve: 3 * time.Millisecond,
	})
	r.RecordSolve("g", SolveStats{
		Algo: "ppr", Pushes: 1234, Residual: 1e-7, Converged: true, Solve: time.Millisecond,
	})
	r.RecordSolveError("g")
	sums := r.GraphSummaries()
	if len(sums) != 1 {
		t.Fatalf("graph summaries = %+v", sums)
	}
	g := sums[0]
	if g.Solves != 2 || g.PPRSolves != 1 || g.SolveErrors != 1 || g.Unconverged != 1 {
		t.Errorf("counts wrong: %+v", g)
	}
	if g.IterationsTotal != 100 || g.PushesTotal != 1234 {
		t.Errorf("work totals wrong: %+v", g)
	}
	if g.LastResidual != 1e-7 {
		t.Errorf("last residual = %v, want 1e-7 (most recent solve)", g.LastResidual)
	}
	// Engine build keeps the max (the real transpose), not the latest.
	if g.EngineBuildMs != 5 {
		t.Errorf("engine build = %vms, want 5 (max observed)", g.EngineBuildMs)
	}
	if g.AdmissionWaitMs != 1 {
		t.Errorf("admission wait = %vms, want 1", g.AdmissionWaitMs)
	}
	if g.MeanIterations == 0 || g.SolveP50Ms <= 0 {
		t.Errorf("derived stats missing: %+v", g)
	}
}

// TestRecordConcurrent drives the hot path from many goroutines; run with
// -race this doubles as the data-race check for the lock-free design.
func TestRecordConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				status := 200
				if i%10 == 0 {
					status = 500
				}
				r.Record("GET /x", status, time.Duration(i)*time.Microsecond)
				if i%50 == 0 {
					r.RecordSolve("g", SolveStats{Algo: "d2pr", Iterations: 1, Converged: true, Solve: time.Microsecond})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Requests(); got != goroutines*per {
		t.Errorf("requests = %d, want %d", got, goroutines*per)
	}
	if got := r.Errors(); got != goroutines*per/10 {
		t.Errorf("errors = %d, want %d", got, goroutines*per/10)
	}
	sums := r.RouteSummaries()
	if len(sums) != 1 || sums[0].Count != goroutines*per {
		t.Errorf("route summary = %+v", sums)
	}
}

// TestWritePrometheusParses renders a populated registry and feeds the output
// through the strict text-format parser: family contiguity, histogram
// invariants, and duplicate detection are all enforced there.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Record("GET /v1/{graph}/rank", 200, 3*time.Millisecond)
	r.Record("GET /v1/{graph}/rank", 200, 5*time.Millisecond)
	r.Record("GET /v1/{graph}/rank", 404, time.Millisecond)
	r.Record("GET /metrics", 200, 100*time.Microsecond)
	r.Record(`GET /odd"route\with{chars}`, 200, time.Millisecond)
	r.RecordSolve("paper-graph", SolveStats{Algo: "d2pr", Iterations: 42, Residual: 1e-9, Converged: true, Solve: 2 * time.Millisecond, EngineBuild: time.Millisecond})
	r.RecordSolve("paper-graph", SolveStats{Algo: "ppr", Pushes: 99, Residual: 1e-7, Converged: true, Solve: time.Millisecond})
	r.RecordSolveError("paper-graph")

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	r.WritePrometheus(p)
	if err := p.Err(); err != nil {
		t.Fatalf("write error: %v", err)
	}
	fams, err := promtext.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	want := map[string]string{
		"d2pr_uptime_seconds":                        "gauge",
		"d2pr_http_requests_total":                   "counter",
		"d2pr_http_errors_total":                     "counter",
		"d2pr_http_client_closed_total":              "counter",
		"d2pr_http_deadline_exceeded_total":          "counter",
		"d2pr_http_request_duration_seconds":         "histogram",
		"d2pr_http_request_latency_quantile_seconds": "gauge",
		"d2pr_solves_total":                          "counter",
		"d2pr_solve_errors_total":                    "counter",
		"d2pr_solve_iterations_total":                "counter",
		"d2pr_ppr_pushes_total":                      "counter",
		"d2pr_solve_last_residual":                   "gauge",
		"d2pr_solve_duration_seconds":                "histogram",
		"go_goroutines":                              "gauge",
		"go_gc_cycles_total":                         "counter",
	}
	for name, typ := range want {
		f, ok := promtext.Find(fams, name)
		if !ok {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s type = %s, want %s", name, f.Type, typ)
		}
	}
	// Spot-check values: per-class request counts and the solve kinds.
	reqs, _ := promtext.Find(fams, "d2pr_http_requests_total")
	var got2xx, got4xx float64
	for _, s := range reqs.Samples {
		route, _ := s.Get("route")
		if route == "GET /v1/{graph}/rank" {
			class, _ := s.Get("class")
			switch class {
			case "2xx":
				got2xx = s.Value
			case "4xx":
				got4xx = s.Value
			}
		}
	}
	if got2xx != 2 || got4xx != 1 {
		t.Errorf("rank route classes = 2xx:%v 4xx:%v, want 2/1", got2xx, got4xx)
	}
	solves, _ := promtext.Find(fams, "d2pr_solves_total")
	kinds := map[string]float64{}
	for _, s := range solves.Samples {
		kind, _ := s.Get("kind")
		kinds[kind] = s.Value
	}
	if kinds["iterative"] != 1 || kinds["push"] != 1 {
		t.Errorf("solve kinds = %v, want iterative:1 push:1", kinds)
	}
	// The escaped route must round-trip through the parser intact.
	var found bool
	for _, s := range reqs.Samples {
		if route, _ := s.Get("route"); route == `GET /odd"route\with{chars}` {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped route label did not round-trip")
	}
}

func BenchmarkRegistryRecord(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record("GET /v1/{graph}/rank", 200, 3*time.Millisecond)
		}
	})
}
