// Package telemetry is the serving layer's observability core: wait-free
// request counters and log2-bucketed latency histograms keyed by route ×
// status class, per-graph solver statistics (iterations, residuals, pushes,
// admission wait), and a Prometheus text-format exposition of all of it plus
// Go runtime stats. The hot path — Record and RecordSolve — takes no locks:
// every counter is an atomic and the route/graph tables are sync.Maps whose
// entries are created once and then only atomically updated, so a fully
// saturated server measures itself without a global mutex serializing its
// request completions.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SolveStats carries the per-solve telemetry a compute path produces: what
// the solver did (iterations, residual, pushes) and where the wall-clock
// went (engine build, admission queue, solve proper). It travels from
// core → rankspec → the caches' compute closures → the server, which surfaces
// it as Server-Timing headers and aggregates it here.
type SolveStats struct {
	// Algo is the rankspec algorithm name ("d2pr", "pagerank", "hits",
	// "degree", or "ppr").
	Algo string
	// Iterations is the power-iteration count (0 for push/degree solves).
	Iterations int
	// Residual is the solver's final L1 residual; for forward push it is the
	// un-pushed residual mass.
	Residual float64
	// Converged reports whether the solver met its tolerance. Push and
	// degree solves always "converge" (they run to their own termination
	// criterion), so only iterative solves can report false.
	Converged bool
	// Pushes counts forward-push operations (PPR solves only).
	Pushes int
	// EngineBuild is the time spent materializing the pull topology. ~0
	// whenever the graph's engine was already cached.
	EngineBuild time.Duration
	// AdmissionWait is the time spent queued for an admission slot.
	AdmissionWait time.Duration
	// Solve is the wall-clock of the solve stage itself (transition build +
	// iteration/push + top-k selection).
	Solve time.Duration
}

// Status classes for route bucketing: 1xx…5xx.
const numClasses = 5

var classNames = [numClasses]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

func classIndex(status int) int {
	c := status/100 - 1
	if c < 0 {
		c = 0
	}
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// classStats is one route × status-class series.
type classStats struct {
	count atomic.Uint64
	hist  Histogram
}

// routeStats holds one route's per-class series. Allocated once per route on
// first sight, then never written except through atomics.
type routeStats struct {
	classes [numClasses]classStats
}

// graphStats aggregates solver telemetry for one graph.
type graphStats struct {
	solves      atomic.Uint64 // iterative + degree solves
	pprSolves   atomic.Uint64 // forward-push solves
	solveErrors atomic.Uint64
	unconverged atomic.Uint64
	iterations  atomic.Uint64
	pushes      atomic.Uint64
	// lastResidual is Float64bits of the most recent solve's residual.
	lastResidual atomic.Uint64
	admWaitNs    atomic.Int64
	// engineBuildNs keeps the maximum observed build time: the first solve
	// pays the real transpose, later ones see a cached engine (~0), and the
	// max is the number capacity planning wants.
	engineBuildNs atomic.Int64
	hist          Histogram // solve-stage wall time
}

// Registry is the process-wide telemetry sink. All methods are safe for
// concurrent use; the zero value is not usable — construct with NewRegistry.
type Registry struct {
	start        time.Time
	requests     atomic.Uint64
	errors       atomic.Uint64 // status ≥ 400, except 499
	clientClosed atomic.Uint64 // 499: client went away first
	deadlines    atomic.Uint64 // 504: compute deadline expired
	totalNs      atomic.Int64  // summed request latency
	panics       atomic.Uint64 // recovered panics (handlers, jobs, computes)
	reloadsOK    atomic.Uint64 // graph reloads that swapped a snapshot in
	reloadsFail  atomic.Uint64 // graph reloads whose materialization failed

	routes sync.Map // route pattern → *routeStats
	graphs sync.Map // graph name → *graphStats
}

// NewRegistry returns an empty registry with its uptime clock started.
func NewRegistry() *Registry {
	return &Registry{start: time.Now()}
}

// Start returns when the registry was created (the server's start time).
func (r *Registry) Start() time.Time { return r.start }

func (r *Registry) route(pattern string) *routeStats {
	if v, ok := r.routes.Load(pattern); ok {
		return v.(*routeStats)
	}
	v, _ := r.routes.LoadOrStore(pattern, &routeStats{})
	return v.(*routeStats)
}

func (r *Registry) graph(name string) *graphStats {
	if v, ok := r.graphs.Load(name); ok {
		return v.(*graphStats)
	}
	v, _ := r.graphs.LoadOrStore(name, &graphStats{})
	return v.(*graphStats)
}

// Record logs one completed request. 499 (client closed before the response)
// is deliberately not an error — a disconnect-heavy tail would otherwise fake
// a high error rate — and is counted in its own series; 504 additionally
// feeds the deadline counter, so no caller needs to count deadline
// expirations by hand.
func (r *Registry) Record(route string, status int, elapsed time.Duration) {
	r.requests.Add(1)
	r.totalNs.Add(int64(elapsed))
	switch {
	case status == 499:
		r.clientClosed.Add(1)
	case status >= 400:
		r.errors.Add(1)
	}
	if status == 504 {
		r.deadlines.Add(1)
	}
	cs := &r.route(route).classes[classIndex(status)]
	cs.count.Add(1)
	cs.hist.Observe(elapsed)
}

// RecordSolve aggregates one finished solve into the graph's series. It is
// called from inside the caches' compute closures, so solves abandoned by
// their requester (deadline expired, client gone) are still accounted for.
func (r *Registry) RecordSolve(graph string, st SolveStats) {
	gs := r.graph(graph)
	if st.Algo == "ppr" {
		gs.pprSolves.Add(1)
		gs.pushes.Add(uint64(st.Pushes))
	} else {
		gs.solves.Add(1)
	}
	gs.iterations.Add(uint64(st.Iterations))
	if !st.Converged {
		gs.unconverged.Add(1)
	}
	gs.lastResidual.Store(math.Float64bits(st.Residual))
	gs.admWaitNs.Add(int64(st.AdmissionWait))
	if b := int64(st.EngineBuild); b > 0 {
		for {
			old := gs.engineBuildNs.Load()
			if b <= old || gs.engineBuildNs.CompareAndSwap(old, b) {
				break
			}
		}
	}
	gs.hist.Observe(st.Solve)
}

// RecordSolveError counts a failed solve attempt against the graph (the
// request-level failure is counted separately by Record).
func (r *Registry) RecordSolveError(graph string) {
	r.graph(graph).solveErrors.Add(1)
}

// RecordPanic counts one recovered panic. Every recovery site — the HTTP
// middleware, the jobs executor, the caches' compute goroutines — feeds this
// one counter, so a nonzero d2pr_panics_total always means "a bug fired and
// was contained" regardless of which layer caught it.
func (r *Registry) RecordPanic() { r.panics.Add(1) }

// Panics returns the recovered-panic count.
func (r *Registry) Panics() uint64 { return r.panics.Load() }

// RecordReload counts one graph reload attempt by outcome.
func (r *Registry) RecordReload(ok bool) {
	if ok {
		r.reloadsOK.Add(1)
	} else {
		r.reloadsFail.Add(1)
	}
}

// Reloads returns the reload-attempt counts (successes, failures).
func (r *Registry) Reloads() (ok, failed uint64) {
	return r.reloadsOK.Load(), r.reloadsFail.Load()
}

// Requests returns the total request count.
func (r *Registry) Requests() uint64 { return r.requests.Load() }

// Errors returns the count of status ≥ 400 responses, excluding 499.
func (r *Registry) Errors() uint64 { return r.errors.Load() }

// ClientClosed returns the count of 499 responses.
func (r *Registry) ClientClosed() uint64 { return r.clientClosed.Load() }

// Deadlines returns the count of 504 responses.
func (r *Registry) Deadlines() uint64 { return r.deadlines.Load() }

// AvgLatencyMs returns the mean request latency in milliseconds.
func (r *Registry) AvgLatencyMs() float64 {
	n := r.requests.Load()
	if n == 0 {
		return 0
	}
	return float64(r.totalNs.Load()) / 1e6 / float64(n)
}

// RouteSummary is the JSON-facing per-route aggregate: total count, error
// count, and latency percentiles across all status classes.
type RouteSummary struct {
	Route  string  `json:"route"`
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors,omitempty"`
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P95Ms  float64 `json:"p95_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// RouteSummaries returns one summary per observed route, sorted by route.
func (r *Registry) RouteSummaries() []RouteSummary {
	var out []RouteSummary
	r.routes.Range(func(k, v any) bool {
		rs := v.(*routeStats)
		sum := RouteSummary{Route: k.(string)}
		var merged HistogramSnapshot
		for ci := range rs.classes {
			cs := &rs.classes[ci]
			c := cs.count.Load()
			if c == 0 {
				continue
			}
			sum.Count += c
			if ci >= classIndex(400) {
				sum.Errors += c
			}
			merged.merge(cs.hist.Snapshot())
		}
		sum.P50Ms = ms(merged.Quantile(0.50))
		sum.P95Ms = ms(merged.Quantile(0.95))
		sum.P99Ms = ms(merged.Quantile(0.99))
		out = append(out, sum)
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].Route < out[b].Route })
	return out
}

// GraphSummary is the JSON-facing per-graph solver aggregate.
type GraphSummary struct {
	Graph           string  `json:"graph"`
	Solves          uint64  `json:"solves"`
	PPRSolves       uint64  `json:"ppr_solves,omitempty"`
	SolveErrors     uint64  `json:"solve_errors,omitempty"`
	Unconverged     uint64  `json:"unconverged,omitempty"`
	IterationsTotal uint64  `json:"iterations_total"`
	MeanIterations  float64 `json:"mean_iterations,omitempty"`
	PushesTotal     uint64  `json:"pushes_total,omitempty"`
	LastResidual    float64 `json:"last_residual"`
	AdmissionWaitMs float64 `json:"admission_wait_ms_total,omitempty"`
	EngineBuildMs   float64 `json:"engine_build_ms,omitempty"`
	SolveP50Ms      float64 `json:"solve_p50_ms,omitempty"`
	SolveP95Ms      float64 `json:"solve_p95_ms,omitempty"`
	SolveP99Ms      float64 `json:"solve_p99_ms,omitempty"`
}

// GraphSummaries returns one summary per graph with recorded solves, sorted
// by graph name.
func (r *Registry) GraphSummaries() []GraphSummary {
	var out []GraphSummary
	r.graphs.Range(func(k, v any) bool {
		gs := v.(*graphStats)
		snap := gs.hist.Snapshot()
		sum := GraphSummary{
			Graph:           k.(string),
			Solves:          gs.solves.Load(),
			PPRSolves:       gs.pprSolves.Load(),
			SolveErrors:     gs.solveErrors.Load(),
			Unconverged:     gs.unconverged.Load(),
			IterationsTotal: gs.iterations.Load(),
			PushesTotal:     gs.pushes.Load(),
			LastResidual:    math.Float64frombits(gs.lastResidual.Load()),
			AdmissionWaitMs: float64(gs.admWaitNs.Load()) / 1e6,
			EngineBuildMs:   float64(gs.engineBuildNs.Load()) / 1e6,
			SolveP50Ms:      ms(snap.Quantile(0.50)),
			SolveP95Ms:      ms(snap.Quantile(0.95)),
			SolveP99Ms:      ms(snap.Quantile(0.99)),
		}
		if n := sum.Solves + sum.PPRSolves; n > 0 {
			sum.MeanIterations = float64(sum.IterationsTotal) / float64(n)
		}
		out = append(out, sum)
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].Graph < out[b].Graph })
	return out
}
