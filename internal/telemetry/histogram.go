package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log2 buckets over nanoseconds. The first bucket's
// upper bound is 2^histMinExp ns (≈1µs, below any real request) and the last
// finite bound 2^histMaxExp ns (≈34s, past any survivable request — the
// admission layer caps timeouts at one minute but solves that slow have long
// since been shed); everything above lands in the +Inf overflow bucket. That
// is 27 buckets per series: coarse enough to stay cheap, fine enough that
// p99 interpolation is within a factor of 2 of the truth, which is what a
// log-latency percentile is for.
const (
	histMinExp     = 10 // first bucket: le 1.024µs
	histMaxExp     = 35 // last finite bucket: le ~34.36s
	numFinite      = histMaxExp - histMinExp + 1
	numHistBuckets = numFinite + 1 // + overflow (+Inf)
)

// Histogram is a fixed-bucket log2 latency histogram safe for concurrent use.
// Observe is wait-free: one atomic add per bucket plus one for the running
// sum. The zero value is ready to use.
type Histogram struct {
	buckets [numHistBuckets]atomic.Uint64
	sumNs   atomic.Int64
}

// bucketIndex places a duration. bits.Len64(ns-1) is the smallest k with
// ns ≤ 2^k, so exact powers of two land in the bucket whose upper bound they
// equal — the `le` buckets below stay honest cumulative ≤ counts.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	exp := bits.Len64(uint64(d) - 1)
	switch {
	case exp <= histMinExp:
		return 0
	case exp > histMaxExp:
		return numHistBuckets - 1
	default:
		return exp - histMinExp
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.sumNs.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a Histogram. The copy is not
// atomic across buckets — observations racing the snapshot may or may not be
// included — but every cumulative count derived from it is internally
// consistent because Count is derived from the buckets themselves.
type HistogramSnapshot struct {
	Buckets [numHistBuckets]uint64
	Count   uint64
	SumNs   int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// merge adds o's buckets into s (for cross-status-class route quantiles).
func (s *HistogramSnapshot) merge(o HistogramSnapshot) {
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
	s.Count += o.Count
	s.SumNs += o.SumNs
}

// bucketBoundNs returns the inclusive upper bound of bucket i in nanoseconds.
// The overflow bucket reports twice the last finite bound; exposition maps it
// to +Inf instead.
func bucketBoundNs(i int) int64 {
	if i >= numFinite {
		return int64(1) << (histMaxExp + 1)
	}
	return int64(1) << (histMinExp + i)
}

// Quantile estimates the q-quantile (q in [0, 1]) by walking the cumulative
// counts and interpolating linearly inside the containing bucket. With log2
// buckets the estimate is exact to within one octave — plenty for latency
// percentiles. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			hi := float64(bucketBoundNs(i))
			lo := 0.0
			if i > 0 {
				lo = float64(bucketBoundNs(i - 1))
			}
			frac := (rank - cum) / fc
			return time.Duration(lo + frac*(hi-lo))
		}
		cum += fc
	}
	return time.Duration(bucketBoundNs(numHistBuckets - 1))
}

// BucketBounds returns the exposition upper bounds in seconds, one per
// bucket; the final entry is +Inf (math.Inf is avoided here so the table is
// a plain computation — the Prometheus writer special-cases the last index).
func bucketBoundsSeconds() []float64 {
	out := make([]float64, numFinite)
	for i := range out {
		out[i] = float64(bucketBoundNs(i)) * 1e-9
	}
	return out
}
