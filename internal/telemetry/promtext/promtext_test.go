package promtext

import (
	"math"
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	payload := `# HELP http_requests_total Total requests.
# TYPE http_requests_total counter
http_requests_total{route="GET /a",class="2xx"} 12
http_requests_total{route="GET /a",class="4xx"} 3
# TYPE up gauge
up 1
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 4
latency_seconds_bucket{le="1"} 9
latency_seconds_bucket{le="+Inf"} 10
latency_seconds_sum 3.5
latency_seconds_count 10
`
	fams, err := Parse([]byte(payload))
	if err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	f, ok := Find(fams, "http_requests_total")
	if !ok || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if route, _ := f.Samples[0].Get("route"); route != "GET /a" {
		t.Errorf("label lost: %+v", f.Samples[0])
	}
	h, _ := Find(fams, "latency_seconds")
	if h.Type != "histogram" || len(h.Samples) != 5 {
		t.Fatalf("histogram family wrong: %+v", h)
	}
	if !math.IsInf(h.Samples[2].Value, 0) && h.Samples[2].Value != 10 {
		t.Errorf("+Inf bucket sample wrong: %+v", h.Samples[2])
	}
}

func TestParseEscapes(t *testing.T) {
	payload := "# TYPE m counter\n" +
		`m{route="GET /x \"q\" \\ and\nnewline"} 1` + "\n"
	fams, err := Parse([]byte(payload))
	if err != nil {
		t.Fatalf("escaped payload rejected: %v", err)
	}
	got, _ := fams[0].Samples[0].Get("route")
	want := "GET /x \"q\" \\ and\nnewline"
	if got != want {
		t.Errorf("unescaped label = %q, want %q", got, want)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		errSub  string
	}{
		{
			"no trailing newline",
			"# TYPE m counter\nm 1",
			"newline",
		},
		{
			"sample without TYPE",
			"m 1\n",
			"no preceding # TYPE",
		},
		{
			"duplicate TYPE",
			"# TYPE m counter\nm 1\n# TYPE m counter\n",
			"duplicate TYPE",
		},
		{
			"invalid type name",
			"# TYPE m countr\nm 1\n",
			"invalid family type",
		},
		{
			"interleaved families",
			"# TYPE a counter\n# TYPE b counter\na 1\nb 1\na 2\n",
			"interleaved",
		},
		{
			"duplicate series",
			"# TYPE m counter\nm{x=\"1\"} 1\nm{x=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"histogram without +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf",
		},
		{
			"histogram count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"_count",
		},
		{
			"histogram decreasing cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"decrease",
		},
		{
			"histogram unsorted bounds",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"strictly increasing",
		},
		{
			"histogram missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"_sum",
		},
		{
			"bad value",
			"# TYPE m counter\nm one\n",
			"invalid sample value",
		},
		{
			"unterminated label",
			"# TYPE m counter\nm{x=\"1 1\n",
			"unterminated",
		},
		{
			"duplicate label",
			"# TYPE m counter\nm{x=\"1\",x=\"2\"} 1\n",
			"duplicate label",
		},
		{
			"bad escape",
			"# TYPE m counter\nm{x=\"\\t\"} 1\n",
			"invalid escape",
		},
		{
			"invalid metric name",
			"# TYPE m counter\n1m 1\n",
			"invalid metric name",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.payload))
			if err == nil {
				t.Fatalf("payload accepted, want error containing %q", c.errSub)
			}
			if !strings.Contains(err.Error(), c.errSub) {
				t.Errorf("error = %q, want it to contain %q", err, c.errSub)
			}
		})
	}
}
