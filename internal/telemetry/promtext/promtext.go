// Package promtext is a strict parser for the Prometheus text exposition
// format (version 0.0.4), built so the test suite can validate /metrics
// scrapes structurally instead of grepping for substrings. It enforces the
// rules real scrapers rely on and sloppy emitters break silently:
//
//   - every sample belongs to a family declared by a preceding # TYPE line;
//   - a family's samples are contiguous (no interleaving) and its # TYPE
//     appears exactly once;
//   - no two samples share a name and label set (duplicate series);
//   - histogram families are well-formed: le bounds strictly increase,
//     cumulative bucket counts never decrease, the +Inf bucket exists, and
//     _count equals the +Inf bucket with a _sum present;
//   - names, labels, and values are syntactically valid, and the payload
//     ends with a newline.
//
// It is a test dependency by design — the serving path never parses its own
// exposition — but lives outside _test files so both the telemetry unit
// tests and the server e2e tests share one validator.
package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (including _bucket/_sum/_count suffixes).
	Name string
	// Labels holds the label pairs in declaration order.
	Labels []Label
	Value  float64
}

// Label is one label pair.
type Label struct {
	Name, Value string
}

// Get returns the value of the named label and whether it was present.
func (s Sample) Get(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// Family is one declared metric family with its samples in order.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples []Sample
}

// Sample name suffixes a histogram/summary family owns.
var familySuffixes = []string{"_bucket", "_sum", "_count"}

// baseName maps a sample name to its declaring family name given the set of
// declared families: exact match first, then suffix-stripped for histogram
// and summary families.
func baseName(name string, families map[string]*Family) (string, bool) {
	if _, ok := families[name]; ok {
		return name, true
	}
	for _, suf := range familySuffixes {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base, true
		}
	}
	return "", false
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Parse parses and validates a full exposition payload, returning the
// families in declaration order.
func Parse(data []byte) ([]Family, error) {
	text := string(data)
	if text != "" && !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("promtext: payload does not end with a newline")
	}

	families := map[string]*Family{}
	var order []string
	closed := map[string]bool{} // families whose sample block has ended
	current := ""               // family of the preceding sample line, "" at start
	seen := map[string]bool{}   // duplicate-series detection: name + canonical labels

	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.SplitN(strings.TrimPrefix(rest, "TYPE "), " ", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("promtext: line %d: malformed TYPE line", lineNo)
				}
				name, typ := parts[0], parts[1]
				if !validName(name) {
					return nil, fmt.Errorf("promtext: line %d: invalid family name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("promtext: line %d: invalid family type %q", lineNo, typ)
				}
				if f, ok := families[name]; ok && f.Type != "" {
					return nil, fmt.Errorf("promtext: line %d: duplicate TYPE for family %q", lineNo, name)
				}
				if closed[name] {
					return nil, fmt.Errorf("promtext: line %d: TYPE for %q after its samples ended", lineNo, name)
				}
				f := families[name]
				if f == nil {
					f = &Family{Name: name}
					families[name] = f
					order = append(order, name)
				}
				f.Type = typ
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(strings.TrimPrefix(rest, "HELP "), " ", 2)
				if len(parts) == 0 || !validName(parts[0]) {
					return nil, fmt.Errorf("promtext: line %d: malformed HELP line", lineNo)
				}
				name := parts[0]
				if closed[name] {
					return nil, fmt.Errorf("promtext: line %d: HELP for %q after its samples ended", lineNo, name)
				}
				f := families[name]
				if f == nil {
					f = &Family{Name: name}
					families[name] = f
					order = append(order, name)
				}
				if len(parts) == 2 {
					f.Help = parts[1]
				}
			default:
				// Plain comment: ignored.
			}
			continue
		}

		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		fam, ok := baseName(sample.Name, families)
		if !ok {
			return nil, fmt.Errorf("promtext: line %d: sample %q has no preceding # TYPE declaration", lineNo, sample.Name)
		}
		if families[fam].Type == "" {
			return nil, fmt.Errorf("promtext: line %d: sample %q declared by HELP only, missing TYPE", lineNo, sample.Name)
		}
		if fam != current {
			if closed[fam] {
				return nil, fmt.Errorf("promtext: line %d: family %q samples are interleaved with another family", lineNo, fam)
			}
			if current != "" {
				closed[current] = true
			}
			current = fam
		}
		key := seriesKey(sample)
		if seen[key] {
			return nil, fmt.Errorf("promtext: line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		families[fam].Samples = append(families[fam].Samples, sample)
	}

	out := make([]Family, 0, len(order))
	for _, name := range order {
		f := families[name]
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
		out = append(out, *f)
	}
	return out, nil
}

// seriesKey canonicalizes a sample's identity: name plus sorted label pairs.
func seriesKey(s Sample) string {
	ls := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		ls[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(ls)
	return s.Name + "{" + strings.Join(ls, ",") + "}"
}

// parseSampleLine parses `name[{labels}] value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line

	// Metric name.
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' && rest[i] != '\t' {
		i++
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]

	// Optional label block.
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("unterminated label block")
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return s, fmt.Errorf("label %q value is not quoted", lname)
			}
			val, remaining, err := unescapeLabelValue(rest[1:])
			if err != nil {
				return s, fmt.Errorf("label %q: %w", lname, err)
			}
			rest = remaining
			for _, l := range s.Labels {
				if l.Name == lname {
					return s, fmt.Errorf("duplicate label %q", lname)
				}
			}
			s.Labels = append(s.Labels, Label{Name: lname, Value: val})
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if !strings.HasPrefix(rest, "}") {
				return s, fmt.Errorf("expected ',' or '}' after label %q", lname)
			}
		}
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected `value [timestamp]`, got %q", strings.TrimSpace(rest))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

// unescapeLabelValue consumes an escaped label value up to its closing quote,
// returning the value and the remainder after the quote.
func unescapeLabelValue(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", rest[i])
			}
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

// validateHistogram checks every series of a histogram family: strictly
// increasing le bounds, non-decreasing cumulative counts, a +Inf bucket,
// _count equal to it, and a _sum present.
func validateHistogram(f *Family) error {
	type series struct {
		bounds   []float64
		counts   []float64
		haveInf  bool
		infCount float64
		count    *float64
		haveSum  bool
	}
	bySeries := map[string]*series{}
	get := func(s Sample) *series {
		stripped := s
		stripped.Name = f.Name
		var ls []Label
		for _, l := range s.Labels {
			if l.Name != "le" {
				ls = append(ls, l)
			}
		}
		stripped.Labels = ls
		key := seriesKey(stripped)
		sr := bySeries[key]
		if sr == nil {
			sr = &series{}
			bySeries[key] = sr
		}
		return sr
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Get("le")
			if !ok {
				return fmt.Errorf("promtext: histogram %s: bucket sample without le label", f.Name)
			}
			sr := get(s)
			if le == "+Inf" {
				sr.haveInf = true
				sr.infCount = s.Value
				sr.bounds = append(sr.bounds, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("promtext: histogram %s: invalid le %q", f.Name, le)
				}
				sr.bounds = append(sr.bounds, b)
			}
			sr.counts = append(sr.counts, s.Value)
		case f.Name + "_sum":
			get(s).haveSum = true
		case f.Name + "_count":
			v := s.Value
			get(s).count = &v
		default:
			return fmt.Errorf("promtext: histogram %s: stray sample %s", f.Name, s.Name)
		}
	}
	for key, sr := range bySeries {
		if !sr.haveInf {
			return fmt.Errorf("promtext: histogram series %s has no +Inf bucket", key)
		}
		if !sr.haveSum {
			return fmt.Errorf("promtext: histogram series %s has no _sum", key)
		}
		if sr.count == nil {
			return fmt.Errorf("promtext: histogram series %s has no _count", key)
		}
		if *sr.count != sr.infCount {
			return fmt.Errorf("promtext: histogram series %s: _count %v != +Inf bucket %v", key, *sr.count, sr.infCount)
		}
		for i := 1; i < len(sr.bounds); i++ {
			if !(sr.bounds[i] > sr.bounds[i-1]) {
				return fmt.Errorf("promtext: histogram series %s: le bounds not strictly increasing at %v", key, sr.bounds[i])
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("promtext: histogram series %s: cumulative counts decrease at le=%v", key, sr.bounds[i])
			}
		}
	}
	return nil
}

// Find returns the family with the given name, if present.
func Find(families []Family, name string) (Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}
