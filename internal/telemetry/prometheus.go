package telemetry

import (
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Label is one Prometheus label pair.
type Label struct {
	Name, Value string
}

// PromWriter emits the Prometheus text exposition format (version 0.0.4):
// one # HELP / # TYPE pair per family followed by its samples, never
// interleaved. Errors are sticky; check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
	buf []byte
}

// NewPromWriter wraps w. Callers typically pass a bytes.Buffer and flush the
// whole exposition in one response write.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) write(b []byte) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.Write(b)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Family declares a metric family. Every Sample for it must follow before
// the next Family call — the writer is the single producer, so emission
// order is family-contiguous by construction.
func (p *PromWriter) Family(name, typ, help string) {
	b := p.buf[:0]
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, escapeHelp(help)...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	p.buf = b
	p.write(b)
}

// formatValue renders a sample value; +Inf/-Inf/NaN use the exposition
// spellings.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample emits one sample line for the current family. labels may be nil.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	b := p.buf[:0]
	b = append(b, name...)
	if len(labels) > 0 {
		b = append(b, '{')
		for i, l := range labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l.Name...)
			b = append(b, `="`...)
			b = append(b, escapeLabel(l.Value)...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, formatValue(v)...)
	b = append(b, '\n')
	p.buf = b
	p.write(b)
}

// HistogramSamples emits the _bucket/_sum/_count triplet of one histogram
// series under family name (declared by the caller with type "histogram").
// labels identify the series; the le label is appended per bucket.
func (p *PromWriter) HistogramSamples(name string, labels []Label, snap HistogramSnapshot) {
	bounds := bucketBoundsSeconds()
	var cum uint64
	ls := make([]Label, len(labels)+1)
	copy(ls, labels)
	for i, bound := range bounds {
		cum += snap.Buckets[i]
		ls[len(labels)] = Label{"le", strconv.FormatFloat(bound, 'g', -1, 64)}
		p.Sample(name+"_bucket", ls, float64(cum))
	}
	cum += snap.Buckets[numHistBuckets-1]
	ls[len(labels)] = Label{"le", "+Inf"}
	p.Sample(name+"_bucket", ls, float64(cum))
	p.Sample(name+"_sum", labels, float64(snap.SumNs)*1e-9)
	p.Sample(name+"_count", labels, float64(cum))
}

// routeSnapshot is the point-in-time state of one route used by the
// exposition (collected first so each family can be written contiguously).
type routeSnapshot struct {
	route  string
	counts [numClasses]uint64
	hists  [numClasses]HistogramSnapshot
	merged HistogramSnapshot
}

func (r *Registry) snapshotRoutes() []routeSnapshot {
	var out []routeSnapshot
	r.routes.Range(func(k, v any) bool {
		rs := v.(*routeStats)
		snap := routeSnapshot{route: k.(string)}
		for ci := range rs.classes {
			cs := &rs.classes[ci]
			snap.counts[ci] = cs.count.Load()
			if snap.counts[ci] == 0 {
				continue
			}
			snap.hists[ci] = cs.hist.Snapshot()
			snap.merged.merge(snap.hists[ci])
		}
		out = append(out, snap)
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].route < out[b].route })
	return out
}

// WritePrometheus emits the registry's HTTP and solver families followed by
// the Go runtime stats. The caller owns any additional server-level families
// (cache, admission, jobs) and writes them through the same PromWriter before
// or after this call — each family is self-contained, so ordering between
// families is free.
func (r *Registry) WritePrometheus(p *PromWriter) {
	p.Family("d2pr_uptime_seconds", "gauge", "Seconds since the server started.")
	p.Sample("d2pr_uptime_seconds", nil, time.Since(r.start).Seconds())

	p.Family("d2pr_http_requests_total", "counter", "Completed HTTP requests by route and status class.")
	routes := r.snapshotRoutes()
	for _, rt := range routes {
		for ci, c := range rt.counts {
			if c == 0 {
				continue
			}
			p.Sample("d2pr_http_requests_total", []Label{{"route", rt.route}, {"class", classNames[ci]}}, float64(c))
		}
	}

	p.Family("d2pr_http_errors_total", "counter", "Responses with status >= 400, excluding 499 client disconnects.")
	p.Sample("d2pr_http_errors_total", nil, float64(r.errors.Load()))
	p.Family("d2pr_http_client_closed_total", "counter", "Requests whose client disconnected before the response (status 499).")
	p.Sample("d2pr_http_client_closed_total", nil, float64(r.clientClosed.Load()))
	p.Family("d2pr_http_deadline_exceeded_total", "counter", "Compute requests that ran out of deadline (status 504).")
	p.Sample("d2pr_http_deadline_exceeded_total", nil, float64(r.deadlines.Load()))

	p.Family("d2pr_http_request_duration_seconds", "histogram", "Request latency by route and status class (log2 buckets).")
	for _, rt := range routes {
		for ci, c := range rt.counts {
			if c == 0 {
				continue
			}
			p.HistogramSamples("d2pr_http_request_duration_seconds",
				[]Label{{"route", rt.route}, {"class", classNames[ci]}}, rt.hists[ci])
		}
	}

	// Quantiles live in their own gauge family: the exposition format does
	// not allow summary-style quantile samples inside a histogram family.
	p.Family("d2pr_http_request_latency_quantile_seconds", "gauge", "Interpolated request-latency quantiles per route (all status classes).")
	for _, rt := range routes {
		if rt.merged.Count == 0 {
			continue
		}
		for _, q := range [...]struct {
			q float64
			s string
		}{{0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
			p.Sample("d2pr_http_request_latency_quantile_seconds",
				[]Label{{"route", rt.route}, {"quantile", q.s}},
				rt.merged.Quantile(q.q).Seconds())
		}
	}

	r.writeSolveFamilies(p)
	writeGoStats(p)
}

// graphSnapshot mirrors routeSnapshot for the solver families.
type graphSnapshot struct {
	name string
	sum  GraphSummary
	hist HistogramSnapshot
}

func (r *Registry) snapshotGraphs() []graphSnapshot {
	var out []graphSnapshot
	r.graphs.Range(func(k, v any) bool {
		gs := v.(*graphStats)
		out = append(out, graphSnapshot{
			name: k.(string),
			sum: GraphSummary{
				Solves:          gs.solves.Load(),
				PPRSolves:       gs.pprSolves.Load(),
				SolveErrors:     gs.solveErrors.Load(),
				Unconverged:     gs.unconverged.Load(),
				IterationsTotal: gs.iterations.Load(),
				PushesTotal:     gs.pushes.Load(),
				LastResidual:    math.Float64frombits(gs.lastResidual.Load()),
				AdmissionWaitMs: float64(gs.admWaitNs.Load()) / 1e6,
				EngineBuildMs:   float64(gs.engineBuildNs.Load()) / 1e6,
			},
			hist: gs.hist.Snapshot(),
		})
		return true
	})
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

func (r *Registry) writeSolveFamilies(p *PromWriter) {
	graphs := r.snapshotGraphs()

	p.Family("d2pr_solves_total", "counter", "Completed solves by graph and kind (iterative vs. forward-push).")
	for _, g := range graphs {
		if g.sum.Solves > 0 {
			p.Sample("d2pr_solves_total", []Label{{"graph", g.name}, {"kind", "iterative"}}, float64(g.sum.Solves))
		}
		if g.sum.PPRSolves > 0 {
			p.Sample("d2pr_solves_total", []Label{{"graph", g.name}, {"kind", "push"}}, float64(g.sum.PPRSolves))
		}
	}
	p.Family("d2pr_solve_errors_total", "counter", "Failed solve attempts by graph.")
	for _, g := range graphs {
		if g.sum.SolveErrors > 0 {
			p.Sample("d2pr_solve_errors_total", []Label{{"graph", g.name}}, float64(g.sum.SolveErrors))
		}
	}
	p.Family("d2pr_solve_unconverged_total", "counter", "Iterative solves that hit MaxIter before meeting tolerance.")
	for _, g := range graphs {
		if g.sum.Unconverged > 0 {
			p.Sample("d2pr_solve_unconverged_total", []Label{{"graph", g.name}}, float64(g.sum.Unconverged))
		}
	}
	p.Family("d2pr_solve_iterations_total", "counter", "Power iterations performed, by graph.")
	for _, g := range graphs {
		p.Sample("d2pr_solve_iterations_total", []Label{{"graph", g.name}}, float64(g.sum.IterationsTotal))
	}
	p.Family("d2pr_ppr_pushes_total", "counter", "Forward-push operations performed, by graph.")
	for _, g := range graphs {
		if g.sum.PushesTotal > 0 {
			p.Sample("d2pr_ppr_pushes_total", []Label{{"graph", g.name}}, float64(g.sum.PushesTotal))
		}
	}
	p.Family("d2pr_solve_last_residual", "gauge", "Final residual of the most recent solve, by graph.")
	for _, g := range graphs {
		p.Sample("d2pr_solve_last_residual", []Label{{"graph", g.name}}, g.sum.LastResidual)
	}
	p.Family("d2pr_admission_wait_seconds_total", "counter", "Cumulative time solves spent queued for an admission slot, by graph.")
	for _, g := range graphs {
		p.Sample("d2pr_admission_wait_seconds_total", []Label{{"graph", g.name}}, g.sum.AdmissionWaitMs/1e3)
	}
	p.Family("d2pr_engine_build_seconds", "gauge", "Largest observed pull-topology build time, by graph.")
	for _, g := range graphs {
		p.Sample("d2pr_engine_build_seconds", []Label{{"graph", g.name}}, g.sum.EngineBuildMs/1e3)
	}
	p.Family("d2pr_solve_duration_seconds", "histogram", "Solve-stage wall time by graph (log2 buckets).")
	for _, g := range graphs {
		p.HistogramSamples("d2pr_solve_duration_seconds", []Label{{"graph", g.name}}, g.hist)
	}
}

// writeGoStats emits the standard Go runtime families: goroutines, heap, GC.
// ReadMemStats stops the world for microseconds — fine at scrape frequency.
func writeGoStats(p *PromWriter) {
	p.Family("go_goroutines", "gauge", "Number of goroutines that currently exist.")
	p.Sample("go_goroutines", nil, float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Family("go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	p.Sample("go_memstats_heap_alloc_bytes", nil, float64(ms.HeapAlloc))
	p.Family("go_memstats_heap_inuse_bytes", "gauge", "Bytes in in-use heap spans.")
	p.Sample("go_memstats_heap_inuse_bytes", nil, float64(ms.HeapInuse))
	p.Family("go_memstats_heap_objects", "gauge", "Number of allocated heap objects.")
	p.Sample("go_memstats_heap_objects", nil, float64(ms.HeapObjects))
	p.Family("go_memstats_alloc_bytes_total", "counter", "Cumulative bytes allocated for heap objects.")
	p.Sample("go_memstats_alloc_bytes_total", nil, float64(ms.TotalAlloc))
	p.Family("go_memstats_next_gc_bytes", "gauge", "Heap size at which the next GC cycle starts.")
	p.Sample("go_memstats_next_gc_bytes", nil, float64(ms.NextGC))
	p.Family("go_gc_cycles_total", "counter", "Completed GC cycles.")
	p.Sample("go_gc_cycles_total", nil, float64(ms.NumGC))
	p.Family("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	p.Sample("go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)*1e-9)
	p.Family("go_gc_cpu_fraction", "gauge", "Fraction of CPU time used by the GC since program start.")
	p.Sample("go_gc_cpu_fraction", nil, ms.GCCPUFraction)
}
