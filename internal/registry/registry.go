// Package registry holds a named collection of graphs for the serving layer.
// Entries are registered cheaply (a file path, a synthetic-dataset name, or
// an already-built graph) and materialized lazily on first access; loading is
// concurrency-safe and single-flight, so a server can register a whole
// directory of graphs at startup without paying for any of them until a
// request arrives.
//
// Materialization is epoch-versioned and fault-tolerant. Each entry holds an
// atomically swappable *Snapshot (epoch counter, content checksum, loaded-at
// timestamp): Reload materializes a shadow snapshot off the serving path and
// swaps it in atomically, while in-flight requests keep the snapshot (and
// therefore the engine and cache epoch) they already pinned. Failed loads run
// through a lifecycle state machine (internal/lifecycle): transient failures
// degrade the entry and self-heal via capped, jittered exponential backoff on
// later accesses; permanent failures (corrupt input) quarantine it until a
// manual reload re-arms it. An entry that ever loaded successfully keeps
// serving its last good snapshot through failed reloads — graceful
// degradation, never a terminal error.
//
// Sources:
//
//   - AddGraph: an in-memory *graph.Graph, available immediately.
//   - AddFile:  an edge-list file (plus optional significance file), parsed
//     on first access.
//   - AddDataset: one of the paper's eight synthetic data graphs, generated
//     on first access.
//   - LoadDir:  registers every edge-list file in a directory.
package registry

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/faultinject"
	"d2pr/internal/graph"
	"d2pr/internal/lifecycle"
)

// Snapshot is one materialized version of a registry entry: an immutable
// graph plus its optional per-node significance vector (nil when the source
// has none). A request that resolved a Snapshot keeps using it — graph,
// engine, and cache epoch — even if the entry is reloaded mid-flight; the
// swap only redirects future resolutions.
type Snapshot struct {
	Name         string
	Source       string // human-readable provenance, e.g. "file:web.tsv"
	Graph        *graph.Graph
	Significance []float64

	// Epoch counts successful materializations of the entry, starting at 1.
	// Cache keys derived from a snapshot include it, so scores computed
	// against a replaced graph are never served after a swap.
	Epoch uint64
	// Checksum fingerprints the source bytes ("fnv64a:<hex>" for file-backed
	// entries, "" for memory and generated sources).
	Checksum string
	// LoadedAt is when this snapshot's materialization finished.
	LoadedAt time.Time

	engineMu sync.Mutex
	engine   *core.Engine
}

// Engine returns the solver engine for the snapshot's graph (cached pull
// topology, worker pool, scratch buffers — see core.Engine), built lazily on
// first use. The snapshot pins the engine for as long as it lives, so every
// serving path over this graph — synchronous ranks, batch sweeps, background
// jobs, cache warming — shares one topology and never re-transposes; a
// reload's new snapshot builds its own engine, and the old one dies with the
// old epoch.
func (s *Snapshot) Engine() *core.Engine {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	if s.engine == nil {
		// Fire before the build so an injected panic leaves engine nil and
		// the next caller retries; the error return is meaningless here
		// (building cannot fail), only Delay and Panic faults apply.
		_ = faultinject.Fire(faultinject.PointEngineBuild, s.Name)
		s.engine = core.EngineFor(s.Graph)
	}
	return s.engine
}

// EngineIfBuilt returns the snapshot's engine if some solve has already built
// it, nil otherwise. Read-only surfaces (/v1/{graph}/info, /metrics) use this
// so reporting on a graph nobody has ranked yet never triggers the O(arcs)
// engine build.
func (s *Snapshot) EngineIfBuilt() *core.Engine {
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	return s.engine
}

// loaded is one load attempt's successful outcome.
type loaded struct {
	g        *graph.Graph
	sig      []float64
	checksum string
}

// attempt is one in-flight materialization. Joiners (concurrent Gets and
// coalescing Reloads) park on done; snap/err are valid once it closes.
type attempt struct {
	done chan struct{}
	snap *Snapshot
	err  error
}

// entry is one registered graph: a load function, the current good snapshot
// (atomic, nil until the first success), and the lifecycle machine that
// tracks load health. mu serializes materialization attempts; cur is read
// lock-free on the serving path.
type entry struct {
	name   string
	source string
	load   func() (loaded, error)

	lc *lifecycle.Machine

	mu        sync.Mutex
	inflight  *attempt
	lastEpoch uint64
	cur       atomic.Pointer[Snapshot]
}

// status builds the entry's Status (see Statuses).
func (e *entry) status() Status {
	info := e.lc.Info()
	st := Status{
		Name:      e.name,
		Source:    e.source,
		State:     info.State,
		Retries:   info.Failures,
		Error:     info.Error,
		NextRetry: info.NextRetry,
	}
	if s := e.cur.Load(); s != nil {
		st.Loaded = true
		st.Nodes = s.Graph.NumNodes()
		st.Edges = s.Graph.NumEdges()
		st.Epoch = s.Epoch
		st.Checksum = s.Checksum
		st.LoadedAt = s.LoadedAt
	}
	return st
}

// Options tunes a Registry beyond the zero-config default.
type Options struct {
	// Backoff is the retry/quarantine policy applied to every entry's
	// failed loads. The zero value takes lifecycle's defaults (100ms base
	// doubling to 30s, quarantine after 5 consecutive failures).
	Backoff lifecycle.Config
}

// Registry is a concurrency-safe named-graph collection. The zero value is
// not usable; call New or NewWith.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	opts    Options
}

// New returns an empty registry with default lifecycle policy.
func New() *Registry { return NewWith(Options{}) }

// NewWith returns an empty registry with opts' lifecycle policy.
func NewWith(opts Options) *Registry {
	return &Registry{entries: map[string]*entry{}, opts: opts}
}

// ErrUnknownGraph is wrapped by Get for names that were never registered.
var ErrUnknownGraph = errors.New("registry: unknown graph")

// StateError reports a Get against an entry that has no servable snapshot:
// its first load has failed and the lifecycle machine is holding it degraded
// (retry scheduled) or quarantined (manual reload required). The serving
// layer distinguishes it from ErrUnknownGraph: the graph exists, it is
// sick — 503 with the state in the body, not 404.
type StateError struct {
	Name  string
	State lifecycle.State
	// RetryAt is when the next automatic retry becomes due (degraded only).
	RetryAt time.Time
	Err     error
}

func (e *StateError) Error() string {
	return fmt.Sprintf("registry: graph %q is %s: %v", e.Name, e.State, e.Err)
}

func (e *StateError) Unwrap() error { return e.Err }

// newEntry builds an entry with the registry's lifecycle policy.
func (r *Registry) newEntry(name, source string, load func() (loaded, error)) *entry {
	return &entry{name: name, source: source, load: load, lc: lifecycle.NewMachine(r.opts.Backoff)}
}

func (r *Registry) add(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("registry: duplicate graph name %q", e.name)
	}
	r.entries[e.name] = e
	return nil
}

func (r *Registry) lookup(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// AddGraph registers an already-built graph under name. significance may be
// nil.
func (r *Registry) AddGraph(name string, g *graph.Graph, significance []float64) error {
	if g == nil || g.NumNodes() == 0 {
		return fmt.Errorf("registry: graph %q is empty", name)
	}
	if significance != nil && len(significance) != g.NumNodes() {
		return fmt.Errorf("registry: %s: %d significances for %d nodes", name, len(significance), g.NumNodes())
	}
	return r.add(r.newEntry(name, "memory", func() (loaded, error) {
		return loaded{g: g, sig: significance}, nil
	}))
}

// AddFile registers an edge-list file to be parsed on first access. sigPath
// is an optional per-node significance file ("" for none). weighted selects
// whether a third weight column is required.
func (r *Registry) AddFile(name, path string, kind graph.Kind, weighted bool, sigPath string) error {
	return r.add(r.newEntry(name, "file:"+path, func() (loaded, error) {
		return loadEdgeListFile(path, kind, weighted, sigPath)
	}))
}

// AddDataset registers one of the paper's synthetic data graphs (see
// dataset.GraphNames) to be generated on first access. The dataset's
// significance vector rides along, enabling /v1/{graph}/correlate.
// Unknown names fail here, not at first request.
func (r *Registry) AddDataset(name string, cfg dataset.Config) error {
	if !slices.Contains(dataset.GraphNames(), name) {
		return fmt.Errorf("registry: unknown dataset graph %q (want one of %v)", name, dataset.GraphNames())
	}
	return r.add(r.newEntry(name, "dataset:"+name, func() (loaded, error) {
		d, err := dataset.GraphByName(cfg, name)
		if err != nil {
			// Generation is deterministic in cfg: a failure now fails
			// identically forever, so retrying it is pointless.
			return loaded{}, lifecycle.Permanent(err)
		}
		return loaded{g: d.Weighted, sig: d.Significance}, nil
	}))
}

// AddAllDatasets registers all eight paper graphs under their Table-3 names.
func (r *Registry) AddAllDatasets(cfg dataset.Config) error {
	for _, name := range dataset.GraphNames() {
		if err := r.AddDataset(name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// edgeListExts are the file extensions LoadDir treats as edge lists.
var edgeListExts = map[string]bool{".tsv": true, ".txt": true, ".edges": true}

// LoadDir registers every edge-list file (*.tsv, *.txt, *.edges) directly
// inside dir. The graph name is the file base name without extension; a
// sibling "<name>.sig" file, when present, is read as the significance
// vector. Whether a file is weighted is sniffed from its first data line
// (three or more columns → weighted); a ".directed" infix in the name (e.g.
// "web.directed.tsv" → graph "web") marks the edge list as directed.
//
// One unreadable file does not abort the rest of the directory: the file is
// still registered (sniffing deferred to load time, so a transient read
// failure self-heals), its read error is pre-recorded on the entry's
// lifecycle machine — Statuses reports it degraded — and it is excluded from
// the returned count, which covers only cleanly registered graphs.
func (r *Registry) LoadDir(dir string) (int, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	n := 0
	for _, de := range des {
		if de.IsDir() || !edgeListExts[filepath.Ext(de.Name())] {
			continue
		}
		path := filepath.Join(dir, de.Name())
		name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
		kind := graph.Undirected
		if strings.HasSuffix(name, ".directed") {
			kind = graph.Directed
			name = strings.TrimSuffix(name, ".directed")
		}
		sigPath := filepath.Join(dir, name+".sig")
		if _, err := os.Stat(sigPath); err != nil {
			sigPath = ""
		}
		weighted, sniffErr := sniffWeighted(path)
		if sniffErr != nil {
			// Register with the sniff deferred into the load path: if the
			// file becomes readable the entry heals on its own schedule.
			e := r.newEntry(name, "file:"+path, func() (loaded, error) {
				w, err := sniffWeighted(path)
				if err != nil {
					return loaded{}, err
				}
				return loadEdgeListFile(path, kind, w, sigPath)
			})
			e.lc.Fail(fmt.Errorf("registry: %s: %w", path, sniffErr))
			if err := r.add(e); err != nil {
				return n, err
			}
			continue
		}
		if err := r.AddFile(name, path, kind, weighted, sigPath); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Names returns the registered graph names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Has reports whether name is registered, without forcing a load.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[name]
	return ok
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Get materializes and returns the named graph's current snapshot. The happy
// path — the entry has a good snapshot — is one lock-free atomic load, and
// stays servable regardless of later reload failures. Concurrent Gets for an
// unmaterialized entry share one load. A failed load is not sticky: Gets
// inside the backoff window fail fast with a *StateError (degraded), the
// first Get past it retries, and a quarantined entry keeps failing fast
// until a manual Reload re-arms it.
func (r *Registry) Get(name string) (*Snapshot, error) {
	return r.GetContext(context.Background(), name)
}

// SnapshotIfLoaded returns the entry's current snapshot without triggering a
// load — nil when the name is unknown or the graph has never materialized.
// One lock-free atomic read; the observability surfaces use it so reporting
// never competes with serving.
func (r *Registry) SnapshotIfLoaded(name string) *Snapshot {
	e, ok := r.lookup(name)
	if !ok {
		return nil
	}
	return e.cur.Load()
}

// GetContext is Get with a context bounding the wait on an in-flight load
// led by another caller (it does not interrupt the load itself).
func (r *Registry) GetContext(ctx context.Context, name string) (*Snapshot, error) {
	e, ok := r.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	if s := e.cur.Load(); s != nil {
		return s, nil
	}
	for {
		e.mu.Lock()
		if s := e.cur.Load(); s != nil {
			e.mu.Unlock()
			return s, nil
		}
		if a := e.inflight; a != nil {
			e.mu.Unlock()
			select {
			case <-a.done:
				if a.err == nil {
					return a.snap, nil
				}
				// The attempt we joined failed; loop to report the entry's
				// resulting state (or lead a retry if the backoff allows).
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		switch st := e.lc.State(); st {
		case lifecycle.StateQuarantined:
			serr := &StateError{Name: e.name, State: st, Err: e.lc.LastErr()}
			e.mu.Unlock()
			return nil, serr
		case lifecycle.StateDegraded:
			if at := e.lc.RetryAt(); time.Now().Before(at) {
				serr := &StateError{Name: e.name, State: st, RetryAt: at, Err: e.lc.LastErr()}
				e.mu.Unlock()
				return nil, serr
			}
		}
		// First attempt, or a degraded entry past its backoff: lead a load.
		a := &attempt{done: make(chan struct{})}
		e.inflight = a
		e.mu.Unlock()
		r.materialize(e, a)
		if a.err != nil {
			return nil, &StateError{Name: e.name, State: e.lc.State(), RetryAt: e.lc.RetryAt(), Err: a.err}
		}
		return a.snap, nil
	}
}

// materialize runs one load attempt to completion and publishes the outcome:
// on success the shadow snapshot is built off the serving path and swapped in
// with the next epoch; on failure the lifecycle machine decides degraded vs.
// quarantined and any existing snapshot keeps serving. The loader runs
// without locks held; a panicking loader is converted to a permanent failure
// rather than wedging the in-flight attempt (and every joiner parked on it).
func (r *Registry) materialize(e *entry, a *attempt) {
	var res loaded
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = lifecycle.Permanent(fmt.Errorf("loader panicked: %v", p))
			}
		}()
		if err := faultinject.Fire(faultinject.PointRegistryLoad, e.name); err != nil {
			return err
		}
		res, err = e.load()
		return err
	}()
	if err == nil && res.sig != nil && len(res.sig) != res.g.NumNodes() {
		err = lifecycle.Permanent(fmt.Errorf("%d significances for %d nodes", len(res.sig), res.g.NumNodes()))
	}
	e.mu.Lock()
	if err != nil {
		a.err = fmt.Errorf("registry: load %s (%s): %w", e.name, e.source, err)
		e.lc.Fail(a.err)
	} else {
		e.lastEpoch++
		a.snap = &Snapshot{
			Name: e.name, Source: e.source, Graph: res.g, Significance: res.sig,
			Epoch: e.lastEpoch, Checksum: res.checksum, LoadedAt: time.Now(),
		}
		e.cur.Store(a.snap)
		e.lc.Succeed()
	}
	e.inflight = nil
	e.mu.Unlock()
	close(a.done)
}

// Reload forces a fresh materialization of the named entry — the manual,
// operator-facing path behind POST /v1/graphs/{graph}/reload. The shadow
// load runs off the serving path: requests keep resolving the old snapshot
// until the atomic swap, and keep it if the load fails. Reloading a
// quarantined (or degraded) entry re-arms its lifecycle with a fresh retry
// budget. A reload arriving while another materialization is in flight
// coalesces onto it instead of stacking a second load. Returns the entry's
// post-attempt status alongside the attempt's error, so callers surface both.
func (r *Registry) Reload(name string) (Status, error) {
	return r.ReloadContext(context.Background(), name)
}

// ReloadContext is Reload with a context bounding the wait on an attempt it
// coalesces onto.
func (r *Registry) ReloadContext(ctx context.Context, name string) (Status, error) {
	e, ok := r.lookup(name)
	if !ok {
		return Status{}, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	e.mu.Lock()
	if a := e.inflight; a != nil {
		e.mu.Unlock()
		select {
		case <-a.done:
			return e.status(), a.err
		case <-ctx.Done():
			return e.status(), ctx.Err()
		}
	}
	e.lc.Rearm()
	a := &attempt{done: make(chan struct{})}
	e.inflight = a
	e.mu.Unlock()
	r.materialize(e, a)
	return e.status(), a.err
}

// TryReload is the periodic auto-reload policy (the -reload-interval loop):
// it reloads only entries that are already materialized (laziness preserved —
// a graph nobody asked for is not loaded just to refresh it), not quarantined
// (quarantine is an operator decision that a timer must not override), and
// not inside a failure-backoff window. It never re-arms the lifecycle, so
// repeated auto-reload failures still march an entry toward quarantine.
// The second return reports whether a reload was actually attempted.
func (r *Registry) TryReload(name string) (Status, bool, error) {
	e, ok := r.lookup(name)
	if !ok {
		return Status{}, false, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	e.mu.Lock()
	skip := e.cur.Load() == nil || e.inflight != nil
	if !skip {
		switch e.lc.State() {
		case lifecycle.StateQuarantined:
			skip = true
		case lifecycle.StateDegraded:
			skip = time.Now().Before(e.lc.RetryAt())
		}
	}
	if skip {
		st := e.status()
		e.mu.Unlock()
		return st, false, nil
	}
	a := &attempt{done: make(chan struct{})}
	e.inflight = a
	e.mu.Unlock()
	r.materialize(e, a)
	return e.status(), true, a.err
}

// Status describes one registry entry without forcing a load.
type Status struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Loaded bool   `json:"loaded"`
	// State is the entry's lifecycle state: loading (never materialized, or
	// re-armed), ready, degraded (last load failed, retry scheduled), or
	// quarantined (permanent failure or retries exhausted; manual reload
	// required). A degraded or quarantined entry with Loaded still true keeps
	// serving its last good snapshot.
	State lifecycle.State `json:"state"`
	// Error is the most recent load failure, "" after a success.
	Error string `json:"error,omitempty"`
	// Retries counts consecutive failed load attempts since the last success.
	Retries int `json:"retries,omitempty"`
	// NextRetry is when the scheduled backoff retry becomes due (degraded
	// only).
	NextRetry time.Time `json:"next_retry,omitzero"`
	// Nodes and Edges are only set once the entry is loaded.
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
	// Epoch, Checksum, and LoadedAt describe the current snapshot (see
	// Snapshot); zero/empty until the entry is loaded.
	Epoch    uint64    `json:"epoch,omitempty"`
	Checksum string    `json:"checksum,omitempty"`
	LoadedAt time.Time `json:"loaded_at,omitzero"`
}

// Statuses reports every entry's name, provenance, and load/lifecycle state,
// sorted by name. It never triggers loads — the serving layer uses it for
// the graph listing and readiness endpoints.
func (r *Registry) Statuses() []Status {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	out := make([]Status, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.status())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Status returns one entry's status without forcing a load.
func (r *Registry) Status(name string) (Status, error) {
	e, ok := r.lookup(name)
	if !ok {
		return Status{}, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	return e.status(), nil
}

func loadEdgeListFile(path string, kind graph.Kind, weighted bool, sigPath string) (loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		// Open failures (missing file, permissions, transient FS trouble)
		// are retryable; parse failures below are not.
		return loaded{}, err
	}
	// The checksum is computed over exactly the bytes the parser consumed,
	// via the tee — no second read of the file.
	h := fnv.New64a()
	g, err := graph.ReadEdgeList(io.TeeReader(f, h), kind, weighted)
	f.Close()
	if err != nil {
		return loaded{}, lifecycle.Permanent(err)
	}
	res := loaded{g: g, checksum: fmt.Sprintf("fnv64a:%016x", h.Sum64())}
	if sigPath != "" {
		sf, err := os.Open(sigPath)
		if err != nil {
			return loaded{}, err
		}
		// The graph is already loaded, so its node count bounds the score
		// ids exactly — a malformed sidecar cannot demand an allocation
		// beyond n entries.
		res.sig, err = graph.ReadScoresFor(sf, g.NumNodes())
		sf.Close()
		if err != nil {
			return loaded{}, lifecycle.Permanent(err)
		}
	}
	return res, nil
}

// sniffWeighted reports whether the first data line of an edge list has a
// third (weight) column.
func sniffWeighted(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return len(strings.Fields(line)) >= 3, nil
	}
	return false, sc.Err()
}
