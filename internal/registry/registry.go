// Package registry holds a named collection of graphs for the serving layer.
// Entries are registered cheaply (a file path, a synthetic-dataset name, or
// an already-built graph) and materialized lazily on first access; loading is
// concurrency-safe and happens at most once per entry, so a server can
// register a whole directory of graphs at startup without paying for any of
// them until a request arrives.
//
// Sources:
//
//   - AddGraph: an in-memory *graph.Graph, available immediately.
//   - AddFile:  an edge-list file (plus optional significance file), parsed
//     on first access.
//   - AddDataset: one of the paper's eight synthetic data graphs, generated
//     on first access.
//   - LoadDir:  registers every edge-list file in a directory.
package registry

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"d2pr/internal/core"
	"d2pr/internal/dataset"
	"d2pr/internal/graph"
)

// Snapshot is a materialized registry entry: an immutable graph plus its
// optional per-node significance vector (nil when the source has none).
type Snapshot struct {
	Name         string
	Source       string // human-readable provenance, e.g. "file:web.tsv"
	Graph        *graph.Graph
	Significance []float64

	engineOnce sync.Once
	engine     *core.Engine
}

// Engine returns the solver engine for the snapshot's graph (cached pull
// topology, worker pool, scratch buffers — see core.Engine), built lazily on
// first use. The snapshot pins the engine for as long as it lives, so every
// serving path over this graph — synchronous ranks, batch sweeps, background
// jobs, cache warming — shares one topology and never re-transposes.
func (s *Snapshot) Engine() *core.Engine {
	s.engineOnce.Do(func() { s.engine = core.EngineFor(s.Graph) })
	return s.engine
}

// entry is one registered graph; load runs at most once via once, and the
// outcome is published through an atomic pointer so Statuses can peek at the
// load state without racing a concurrent materialize.
type entry struct {
	name   string
	source string
	load   func() (*graph.Graph, []float64, error)

	once sync.Once
	res  atomic.Pointer[loadResult]
}

type loadResult struct {
	snap *Snapshot
	err  error
}

func (e *entry) materialize() (*Snapshot, error) {
	e.once.Do(func() {
		var res loadResult
		g, sig, err := e.load()
		switch {
		case err != nil:
			res.err = fmt.Errorf("registry: load %s (%s): %w", e.name, e.source, err)
		case sig != nil && len(sig) != g.NumNodes():
			res.err = fmt.Errorf("registry: %s: %d significances for %d nodes", e.name, len(sig), g.NumNodes())
		default:
			res.snap = &Snapshot{Name: e.name, Source: e.source, Graph: g, Significance: sig}
		}
		e.res.Store(&res)
	})
	res := e.res.Load()
	return res.snap, res.err
}

// Registry is a concurrency-safe named-graph collection. The zero value is
// not usable; call New.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// ErrUnknownGraph is wrapped by Get for names that were never registered.
var ErrUnknownGraph = errors.New("registry: unknown graph")

func (r *Registry) add(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("registry: duplicate graph name %q", e.name)
	}
	r.entries[e.name] = e
	return nil
}

// AddGraph registers an already-built graph under name. significance may be
// nil.
func (r *Registry) AddGraph(name string, g *graph.Graph, significance []float64) error {
	if g == nil || g.NumNodes() == 0 {
		return fmt.Errorf("registry: graph %q is empty", name)
	}
	if significance != nil && len(significance) != g.NumNodes() {
		return fmt.Errorf("registry: %s: %d significances for %d nodes", name, len(significance), g.NumNodes())
	}
	return r.add(&entry{
		name:   name,
		source: "memory",
		load: func() (*graph.Graph, []float64, error) {
			return g, significance, nil
		},
	})
}

// AddFile registers an edge-list file to be parsed on first access. sigPath
// is an optional per-node significance file ("" for none). weighted selects
// whether a third weight column is required.
func (r *Registry) AddFile(name, path string, kind graph.Kind, weighted bool, sigPath string) error {
	return r.add(&entry{
		name:   name,
		source: "file:" + path,
		load: func() (*graph.Graph, []float64, error) {
			return loadEdgeListFile(path, kind, weighted, sigPath)
		},
	})
}

// AddDataset registers one of the paper's synthetic data graphs (see
// dataset.GraphNames) to be generated on first access. The dataset's
// significance vector rides along, enabling /v1/{graph}/correlate.
// Unknown names fail here, not at first request.
func (r *Registry) AddDataset(name string, cfg dataset.Config) error {
	if !slices.Contains(dataset.GraphNames(), name) {
		return fmt.Errorf("registry: unknown dataset graph %q (want one of %v)", name, dataset.GraphNames())
	}
	return r.add(&entry{
		name:   name,
		source: "dataset:" + name,
		load: func() (*graph.Graph, []float64, error) {
			d, err := dataset.GraphByName(cfg, name)
			if err != nil {
				return nil, nil, err
			}
			return d.Weighted, d.Significance, nil
		},
	})
}

// AddAllDatasets registers all eight paper graphs under their Table-3 names.
func (r *Registry) AddAllDatasets(cfg dataset.Config) error {
	for _, name := range dataset.GraphNames() {
		if err := r.AddDataset(name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// edgeListExts are the file extensions LoadDir treats as edge lists.
var edgeListExts = map[string]bool{".tsv": true, ".txt": true, ".edges": true}

// LoadDir registers every edge-list file (*.tsv, *.txt, *.edges) directly
// inside dir. The graph name is the file base name without extension; a
// sibling "<name>.sig" file, when present, is read as the significance
// vector. Whether a file is weighted is sniffed from its first data line
// (three or more columns → weighted); a ".directed" infix in the name (e.g.
// "web.directed.tsv" → graph "web") marks the edge list as directed.
// Returns the number of graphs registered.
func (r *Registry) LoadDir(dir string) (int, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	n := 0
	for _, de := range des {
		if de.IsDir() || !edgeListExts[filepath.Ext(de.Name())] {
			continue
		}
		path := filepath.Join(dir, de.Name())
		name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
		kind := graph.Undirected
		if strings.HasSuffix(name, ".directed") {
			kind = graph.Directed
			name = strings.TrimSuffix(name, ".directed")
		}
		weighted, err := sniffWeighted(path)
		if err != nil {
			return n, fmt.Errorf("registry: %s: %w", path, err)
		}
		sigPath := filepath.Join(dir, name+".sig")
		if _, err := os.Stat(sigPath); err != nil {
			sigPath = ""
		}
		if err := r.AddFile(name, path, kind, weighted, sigPath); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Names returns the registered graph names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Has reports whether name is registered, without forcing a load.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[name]
	return ok
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Get materializes and returns the named graph. Concurrent calls for the
// same name share one load; a failed load is sticky (the error is returned
// on every subsequent Get rather than retried).
func (r *Registry) Get(name string) (*Snapshot, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	return e.materialize()
}

// Status describes one registry entry without forcing a load.
type Status struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Loaded bool   `json:"loaded"`
	// Error is the sticky load failure, if the entry was tried and failed
	// (Loaded stays false in that case).
	Error string `json:"error,omitempty"`
	// Nodes and Edges are only set once the entry is loaded.
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
}

// Statuses reports every entry's name, provenance, and load state, sorted by
// name. It never triggers loads — the serving layer uses it for the graph
// listing endpoint.
func (r *Registry) Statuses() []Status {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Status, 0, len(r.entries))
	for _, e := range r.entries {
		st := Status{Name: e.name, Source: e.source}
		if res := e.res.Load(); res != nil {
			if res.err != nil {
				st.Error = res.err.Error()
			} else {
				st.Loaded = true
				st.Nodes = res.snap.Graph.NumNodes()
				st.Edges = res.snap.Graph.NumEdges()
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

func loadEdgeListFile(path string, kind graph.Kind, weighted bool, sigPath string) (*graph.Graph, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.ReadEdgeList(f, kind, weighted)
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	var sig []float64
	if sigPath != "" {
		sf, err := os.Open(sigPath)
		if err != nil {
			return nil, nil, err
		}
		// The graph is already loaded, so its node count bounds the score
		// ids exactly — a malformed sidecar cannot demand an allocation
		// beyond n entries.
		sig, err = graph.ReadScoresFor(sf, g.NumNodes())
		sf.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	return g, sig, nil
}

// sniffWeighted reports whether the first data line of an edge list has a
// third (weight) column.
func sniffWeighted(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return len(strings.Fields(line)) >= 3, nil
	}
	return false, sc.Err()
}
