package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"d2pr/internal/dataset"
	"d2pr/internal/graph"
)

func mustGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddGraphAndGet(t *testing.T) {
	r := New()
	if err := r.AddGraph("g", mustGraph(t), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name != "g" || snap.Graph.NumNodes() != 3 || snap.Significance[2] != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestAddGraphValidation(t *testing.T) {
	r := New()
	if err := r.AddGraph("empty", nil, nil); err == nil {
		t.Error("nil graph must error")
	}
	if err := r.AddGraph("g", mustGraph(t), []float64{1}); err == nil {
		t.Error("significance length mismatch must error")
	}
	if err := r.AddGraph("g", mustGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGraph("g", mustGraph(t), nil); err == nil {
		t.Error("duplicate name must error")
	}
}

func TestGetUnknown(t *testing.T) {
	r := New()
	_, err := r.Get("nope")
	if !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("err = %v, want ErrUnknownGraph", err)
	}
}

func TestLazyLoadOnce(t *testing.T) {
	r := New()
	var loads int32
	g := mustGraph(t)
	r.add(&entry{
		name: "lazy", source: "test",
		load: func() (*graph.Graph, []float64, error) {
			atomic.AddInt32(&loads, 1)
			return g, nil, nil
		},
	})
	if st := r.Statuses(); st[0].Loaded {
		t.Error("entry loaded before first Get")
	}
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if _, err := r.Get("lazy"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Errorf("load ran %d times under concurrency, want 1", loads)
	}
	st := r.Statuses()
	if !st[0].Loaded || st[0].Nodes != 3 {
		t.Errorf("status = %+v", st[0])
	}
}

func TestFailedLoadIsSticky(t *testing.T) {
	r := New()
	var loads int32
	r.add(&entry{
		name: "bad", source: "test",
		load: func() (*graph.Graph, []float64, error) {
			atomic.AddInt32(&loads, 1)
			return nil, nil, errors.New("disk on fire")
		},
	})
	for i := 0; i < 3; i++ {
		if _, err := r.Get("bad"); err == nil {
			t.Fatal("want error")
		}
	}
	if loads != 1 {
		t.Errorf("failed load retried %d times, want sticky failure", loads)
	}
	st := r.Statuses()
	if st[0].Loaded {
		t.Error("failed entry must not report Loaded")
	}
	if st[0].Error == "" {
		t.Error("failed entry must surface its load error")
	}
}

func TestAddDataset(t *testing.T) {
	r := New()
	if err := r.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddDataset("bogus", dataset.Config{}); err == nil {
		t.Error("unknown dataset names must fail at add time")
	}
	snap, err := r.Get(dataset.IMDBActorActor)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Graph.NumNodes() == 0 || snap.Significance == nil {
		t.Errorf("dataset snapshot = %+v", snap)
	}
}

func TestAddAllDatasets(t *testing.T) {
	r := New()
	if err := r.AddAllDatasets(dataset.Config{Scale: 0.05}); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Len(), len(dataset.GraphNames()); got != want {
		t.Errorf("len = %d, want %d", got, want)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("plain.tsv", "0\t1\n1\t2\n")
	write("heavy.tsv", "# weighted\n0\t1\t2.5\n1\t2\t1.0\n")
	write("web.directed.txt", "0\t1\n1\t2\n2\t0\n")
	write("plain.sig", "0\t0.5\n1\t0.25\n2\t0.25\n")
	write("notes.md", "ignored")

	r := New()
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("registered %d graphs, want 3 (names: %v)", n, r.Names())
	}

	plain, err := r.Get("plain")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Graph.Weighted() || plain.Significance == nil {
		t.Errorf("plain = %+v", plain)
	}
	heavy, err := r.Get("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Graph.Weighted() {
		t.Error("heavy.tsv must be sniffed as weighted")
	}
	if w, ok := heavy.Graph.EdgeWeight(0, 1); !ok || w != 2.5 {
		t.Errorf("heavy weight(0,1) = %v, %v", w, ok)
	}
	web, err := r.Get("web")
	if err != nil {
		t.Fatal(err)
	}
	if !web.Graph.Directed() {
		t.Error(".directed infix must mark the graph directed")
	}
}

func TestLoadDirMissing(t *testing.T) {
	r := New()
	if _, err := r.LoadDir("/no/such/dir"); err == nil {
		t.Error("missing dir must error")
	}
}
