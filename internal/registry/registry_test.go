package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"d2pr/internal/dataset"
	"d2pr/internal/graph"
	"d2pr/internal/lifecycle"
)

func mustGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(graph.Undirected, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fastRetry is a backoff policy small enough for tests to wait out.
var fastRetry = Options{Backoff: lifecycle.Config{Base: time.Millisecond, Max: 2 * time.Millisecond}}

// waitReady polls Get until the entry serves or the deadline passes.
func waitReady(t *testing.T, r *Registry, name string) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if snap, err := r.Get(name); err == nil {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("graph %q never became ready", name)
	return nil
}

func TestAddGraphAndGet(t *testing.T) {
	r := New()
	if err := r.AddGraph("g", mustGraph(t), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Name != "g" || snap.Graph.NumNodes() != 3 || snap.Significance[2] != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Epoch != 1 {
		t.Errorf("first materialization epoch = %d, want 1", snap.Epoch)
	}
	if snap.LoadedAt.IsZero() {
		t.Error("snapshot must carry its load time")
	}
}

func TestAddGraphValidation(t *testing.T) {
	r := New()
	if err := r.AddGraph("empty", nil, nil); err == nil {
		t.Error("nil graph must error")
	}
	if err := r.AddGraph("g", mustGraph(t), []float64{1}); err == nil {
		t.Error("significance length mismatch must error")
	}
	if err := r.AddGraph("g", mustGraph(t), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGraph("g", mustGraph(t), nil); err == nil {
		t.Error("duplicate name must error")
	}
}

func TestGetUnknown(t *testing.T) {
	r := New()
	_, err := r.Get("nope")
	if !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("err = %v, want ErrUnknownGraph", err)
	}
}

func TestLazyLoadOnce(t *testing.T) {
	r := New()
	var loads int32
	g := mustGraph(t)
	r.add(r.newEntry("lazy", "test", func() (loaded, error) {
		atomic.AddInt32(&loads, 1)
		return loaded{g: g}, nil
	}))
	if st := r.Statuses(); st[0].Loaded || st[0].State != lifecycle.StateLoading {
		t.Errorf("before first Get: status = %+v", st[0])
	}
	const n = 16
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if _, err := r.Get("lazy"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Errorf("load ran %d times under concurrency, want 1", loads)
	}
	st := r.Statuses()
	if !st[0].Loaded || st[0].Nodes != 3 || st[0].State != lifecycle.StateReady || st[0].Epoch != 1 {
		t.Errorf("status = %+v", st[0])
	}
}

// TestTransientFailureHeals is the regression test for the old sticky-error
// behavior: a transient load failure must degrade the entry (fail-fast inside
// the backoff window), then heal on its own once the fault clears — not brick
// the entry until restart.
func TestTransientFailureHeals(t *testing.T) {
	r := NewWith(fastRetry)
	var loads int32
	var broken atomic.Bool
	broken.Store(true)
	g := mustGraph(t)
	r.add(r.newEntry("flaky", "test", func() (loaded, error) {
		atomic.AddInt32(&loads, 1)
		if broken.Load() {
			return loaded{}, errors.New("disk on fire")
		}
		return loaded{g: g}, nil
	}))

	_, err := r.Get("flaky")
	var serr *StateError
	if !errors.As(err, &serr) || serr.State != lifecycle.StateDegraded {
		t.Fatalf("first failed Get: err = %v, want StateError(degraded)", err)
	}
	if serr.RetryAt.IsZero() {
		t.Error("degraded StateError must expose the scheduled retry time")
	}
	st := r.Statuses()
	if st[0].Loaded || st[0].State != lifecycle.StateDegraded || st[0].Error == "" {
		t.Errorf("degraded status = %+v", st[0])
	}

	broken.Store(false)
	snap := waitReady(t, r, "flaky")
	if snap.Epoch != 1 || snap.Graph.NumNodes() != 3 {
		t.Errorf("healed snapshot = %+v", snap)
	}
	if st := r.Statuses(); st[0].State != lifecycle.StateReady || st[0].Error != "" {
		t.Errorf("healed status = %+v", st[0])
	}
}

// TestDegradedFailsFastInsideBackoff asserts Gets inside the backoff window
// return immediately without re-invoking the loader.
func TestDegradedFailsFastInsideBackoff(t *testing.T) {
	r := NewWith(Options{Backoff: lifecycle.Config{Base: time.Hour, Max: time.Hour}})
	var loads int32
	r.add(r.newEntry("bad", "test", func() (loaded, error) {
		atomic.AddInt32(&loads, 1)
		return loaded{}, errors.New("nope")
	}))
	for i := 0; i < 5; i++ {
		if _, err := r.Get("bad"); err == nil {
			t.Fatal("want error")
		}
	}
	if loads != 1 {
		t.Errorf("loader ran %d times inside the backoff window, want 1", loads)
	}
}

func TestPermanentFailureQuarantines(t *testing.T) {
	r := NewWith(fastRetry)
	var loads int32
	r.add(r.newEntry("corrupt", "test", func() (loaded, error) {
		atomic.AddInt32(&loads, 1)
		return loaded{}, lifecycle.Permanent(errors.New("parse error at line 3"))
	}))
	_, err := r.Get("corrupt")
	var serr *StateError
	if !errors.As(err, &serr) || serr.State != lifecycle.StateQuarantined {
		t.Fatalf("err = %v, want StateError(quarantined)", err)
	}
	// Quarantine means no automatic retries, ever — even past any backoff.
	time.Sleep(10 * time.Millisecond)
	if _, err := r.Get("corrupt"); err == nil {
		t.Fatal("quarantined entry must keep failing")
	}
	if loads != 1 {
		t.Errorf("quarantined loader ran %d times, want 1", loads)
	}
	if st := r.Statuses(); st[0].State != lifecycle.StateQuarantined {
		t.Errorf("status = %+v", st[0])
	}
}

func TestRetryBudgetExhaustionQuarantines(t *testing.T) {
	r := NewWith(Options{Backoff: lifecycle.Config{
		Base: time.Nanosecond, Max: time.Nanosecond, MaxRetries: 2,
	}})
	var loads int32
	r.add(r.newEntry("hopeless", "test", func() (loaded, error) {
		atomic.AddInt32(&loads, 1)
		return loaded{}, errors.New("still transient, allegedly")
	}))
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := r.Get("hopeless")
		var serr *StateError
		if errors.As(err, &serr) && serr.State == lifecycle.StateQuarantined {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := atomic.LoadInt32(&loads); got != 2 {
		t.Errorf("loader ran %d times before quarantine, want MaxRetries=2", got)
	}
}

func TestReloadSwapsEpoch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0\t1\n1\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.AddFile("g", path, graph.Undirected, false, ""); err != nil {
		t.Fatal(err)
	}
	old, err := r.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if old.Epoch != 1 || old.Checksum == "" {
		t.Fatalf("first snapshot = epoch %d, checksum %q", old.Epoch, old.Checksum)
	}

	// Grow the file and reload: the swap must bump the epoch and change the
	// checksum, while the old snapshot stays fully usable for in-flight work.
	if err := os.WriteFile(path, []byte("0\t1\n1\t2\n2\t3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := r.Reload("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 || st.State != lifecycle.StateReady || st.Nodes != 4 {
		t.Errorf("post-reload status = %+v", st)
	}
	fresh, err := r.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Epoch != 2 || fresh.Checksum == old.Checksum {
		t.Errorf("fresh = epoch %d checksum %q, old checksum %q", fresh.Epoch, fresh.Checksum, old.Checksum)
	}
	if old.Graph.NumNodes() != 3 || old.Engine() == nil {
		t.Error("pinned old snapshot must remain usable after the swap")
	}
}

// TestReloadFailureKeepsServing: a reload that hits a corrupted file
// quarantines the entry, but requests keep getting the last good snapshot —
// and a manual reload after the file is fixed re-arms it.
func TestReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0\t1\n1\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.AddFile("g", path, graph.Undirected, false, ""); err != nil {
		t.Fatal(err)
	}
	old, err := r.Get("g")
	if err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(path, []byte("0\tnot-a-node\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, rerr := r.Reload("g")
	if rerr == nil {
		t.Fatal("reloading a corrupt file must error")
	}
	if st.State != lifecycle.StateQuarantined {
		t.Errorf("corrupt reload state = %s, want quarantined", st.State)
	}
	if !st.Loaded || st.Epoch != 1 || st.Error == "" {
		t.Errorf("status after failed reload = %+v", st)
	}
	snap, err := r.Get("g")
	if err != nil || snap != old {
		t.Fatalf("Get after failed reload = %v, %v; want the prior snapshot", snap, err)
	}

	if err := os.WriteFile(path, []byte("0\t1\n1\t2\n2\t0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = r.Reload("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != lifecycle.StateReady || st.Epoch != 2 {
		t.Errorf("re-armed reload status = %+v", st)
	}
}

func TestTryReloadPolicy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.tsv")
	if err := os.WriteFile(path, []byte("0\t1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New()
	if err := r.AddFile("g", path, graph.Undirected, false, ""); err != nil {
		t.Fatal(err)
	}

	// Unmaterialized entries are skipped: auto-reload must not defeat lazy
	// loading.
	if _, attempted, err := r.TryReload("g"); err != nil || attempted {
		t.Fatalf("TryReload on unloaded entry: attempted=%v err=%v", attempted, err)
	}
	if _, err := r.Get("g"); err != nil {
		t.Fatal(err)
	}
	st, attempted, err := r.TryReload("g")
	if err != nil || !attempted || st.Epoch != 2 {
		t.Fatalf("TryReload on loaded entry: attempted=%v epoch=%d err=%v", attempted, st.Epoch, err)
	}

	// Quarantined entries are skipped: quarantine is an operator decision.
	if err := os.WriteFile(path, []byte("junk junk junk junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload("g"); err == nil {
		t.Fatal("corrupt reload must error")
	}
	if _, attempted, _ := r.TryReload("g"); attempted {
		t.Error("TryReload must not touch a quarantined entry")
	}
}

func TestAddDataset(t *testing.T) {
	r := New()
	if err := r.AddDataset(dataset.IMDBActorActor, dataset.Config{Scale: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddDataset("bogus", dataset.Config{}); err == nil {
		t.Error("unknown dataset names must fail at add time")
	}
	snap, err := r.Get(dataset.IMDBActorActor)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Graph.NumNodes() == 0 || snap.Significance == nil {
		t.Errorf("dataset snapshot = %+v", snap)
	}
}

func TestAddAllDatasets(t *testing.T) {
	r := New()
	if err := r.AddAllDatasets(dataset.Config{Scale: 0.05}); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Len(), len(dataset.GraphNames()); got != want {
		t.Errorf("len = %d, want %d", got, want)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("plain.tsv", "0\t1\n1\t2\n")
	write("heavy.tsv", "# weighted\n0\t1\t2.5\n1\t2\t1.0\n")
	write("web.directed.txt", "0\t1\n1\t2\n2\t0\n")
	write("plain.sig", "0\t0.5\n1\t0.25\n2\t0.25\n")
	write("notes.md", "ignored")

	r := New()
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("registered %d graphs, want 3 (names: %v)", n, r.Names())
	}

	plain, err := r.Get("plain")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Graph.Weighted() || plain.Significance == nil {
		t.Errorf("plain = %+v", plain)
	}
	heavy, err := r.Get("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Graph.Weighted() {
		t.Error("heavy.tsv must be sniffed as weighted")
	}
	if w, ok := heavy.Graph.EdgeWeight(0, 1); !ok || w != 2.5 {
		t.Errorf("heavy weight(0,1) = %v, %v", w, ok)
	}
	web, err := r.Get("web")
	if err != nil {
		t.Fatal(err)
	}
	if !web.Graph.Directed() {
		t.Error(".directed infix must mark the graph directed")
	}
}

// TestLoadDirPartialFailure: one unreadable file in the directory must not
// abort the rest — the healthy graphs register and count, the broken one is
// registered degraded (visible in Statuses, excluded from the count), and it
// heals once the file becomes readable.
func TestLoadDirPartialFailure(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "good.tsv"), []byte("0\t1\n1\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A symlink to a missing target is unreadable for sniffing and loading
	// alike (and stays so even when tests run as root, unlike chmod 0).
	target := filepath.Join(dir, "ghost-target")
	if err := os.Symlink(target, filepath.Join(dir, "ghost.tsv")); err != nil {
		t.Skipf("symlink unsupported: %v", err)
	}

	r := NewWith(fastRetry)
	n, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count = %d, want 1 (only the cleanly registered graph)", n)
	}
	if got := r.Names(); len(got) != 2 {
		t.Fatalf("names = %v, want both graphs registered", got)
	}
	if _, err := r.Get("good"); err != nil {
		t.Errorf("healthy sibling must load: %v", err)
	}
	var ghost Status
	for _, st := range r.Statuses() {
		if st.Name == "ghost" {
			ghost = st
		}
	}
	if ghost.State != lifecycle.StateDegraded || ghost.Error == "" || ghost.Loaded {
		t.Errorf("ghost status = %+v, want degraded with the read error", ghost)
	}

	// The file appears: the deferred sniff + load path must heal the entry.
	if err := os.WriteFile(target, []byte("0\t1\t2.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := waitReady(t, r, "ghost")
	if !snap.Graph.Weighted() {
		t.Error("healed ghost must be sniffed weighted from the now-readable file")
	}
}

func TestLoadDirMissing(t *testing.T) {
	r := New()
	if _, err := r.LoadDir("/no/such/dir"); err == nil {
		t.Error("missing dir must error")
	}
}
