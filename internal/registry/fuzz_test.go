package registry

import (
	"os"
	"path/filepath"
	"testing"

	"d2pr/internal/graph"
)

// FuzzSniffWeighted asserts that edge-list weight sniffing plus the full
// file-load path never panic, whatever bytes are on disk. Accepted loads
// must produce structurally valid graphs.
func FuzzSniffWeighted(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n3\t4\t2.5\n"))
	f.Add([]byte(""))
	f.Add([]byte("# only comments\n#\n"))
	f.Add([]byte("0 1 2 3 4 5\n"))
	f.Add([]byte("\x00\xff\xfe binary junk\n0 1\n"))
	f.Add([]byte("0 1 NaN\n"))
	f.Add([]byte("9999999999999999999999 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.tsv")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		weighted, err := sniffWeighted(path)
		if err != nil {
			return // unreadable first line is a rejection, not a crash
		}
		// Drive the sniffed verdict through the real loader the way
		// LoadDir would: neither outcome may panic.
		r := New()
		if err := r.AddFile("fuzz", path, graph.Undirected, weighted, ""); err != nil {
			return
		}
		snap, err := r.Get("fuzz")
		if err != nil {
			return // malformed edge lists are rejected gracefully
		}
		if err := snap.Graph.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", err, data)
		}
	})
}

// FuzzSigSidecar asserts that a malformed .sig sidecar never panics the
// loader: a fixed valid edge list is paired with arbitrary sidecar bytes,
// and the only acceptable outcomes are a clean rejection or a snapshot
// whose significance vector matches the node count.
func FuzzSigSidecar(f *testing.F) {
	f.Add([]byte("0\t0.5\n1\t0.25\n2\t1\n"))
	f.Add([]byte(""))
	f.Add([]byte("# c\n2\t-3e8\n"))
	f.Add([]byte("0\t0.5\t0.5\n"))
	f.Add([]byte("zero\t0.5\n"))
	f.Add([]byte("0 Inf\n"))
	f.Add([]byte("-1\t2\n"))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte("99999999\t1\n")) // dense-range blowup must be bounded by len check
	f.Fuzz(func(t *testing.T, sig []byte) {
		dir := t.TempDir()
		edges := filepath.Join(dir, "g.tsv")
		if err := os.WriteFile(edges, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		sigPath := filepath.Join(dir, "g.sig")
		if err := os.WriteFile(sigPath, sig, 0o644); err != nil {
			t.Fatal(err)
		}
		r := New()
		if err := r.AddFile("g", edges, graph.Undirected, false, sigPath); err != nil {
			return
		}
		snap, err := r.Get("g")
		if err != nil {
			return // rejected sidecar (parse error or length mismatch)
		}
		if snap.Significance != nil && len(snap.Significance) != snap.Graph.NumNodes() {
			t.Fatalf("accepted %d significances for %d nodes (sig %q)",
				len(snap.Significance), snap.Graph.NumNodes(), sig)
		}
	})
}

// FuzzLoadDir drives directory registration with one fuzzed edge list and
// one fuzzed sidecar at once — the combination LoadDir wires together
// (sniffing, .directed name parsing, sidecar discovery) must never panic.
func FuzzLoadDir(f *testing.F) {
	f.Add([]byte("0 1\n"), []byte("0\t1\n1\t0.5\n"))
	f.Add([]byte("0 1 0.5\n"), []byte(""))
	f.Add([]byte("#\n"), []byte("#\n"))
	f.Add([]byte("a b c\n"), []byte("x"))
	f.Fuzz(func(t *testing.T, edges, sig []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "g.directed.tsv"), edges, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "g.sig"), sig, 0o644); err != nil {
			t.Fatal(err)
		}
		r := New()
		if _, err := r.LoadDir(dir); err != nil {
			return // sniffing rejected the file
		}
		for _, name := range r.Names() {
			snap, err := r.Get(name)
			if err != nil {
				continue
			}
			if err := snap.Graph.Validate(); err != nil {
				t.Fatalf("accepted graph %s fails validation: %v", name, err)
			}
		}
	})
}
