package d2pr

import (
	"math"
	"testing"
)

func fig1(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(Undirected, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 4}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRankDefaultIsPageRank(t *testing.T) {
	g := fig1(t)
	a, err := Rank(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-12 {
			t.Fatalf("node %d: Rank %v != PageRank %v", i, a.Scores[i], b.Scores[i])
		}
	}
}

func TestRankWithP(t *testing.T) {
	g := fig1(t)
	a, err := Rank(g, Params{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := D2PR(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestRankWithBeta(t *testing.T) {
	g, err := FromWeighted(Undirected, []WeightedEdge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Rank(g, Params{P: 1, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := D2PRBlended(g, 1, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	if _, err := Rank(g, Params{Beta: 1.5}); err == nil {
		t.Error("invalid beta must error")
	}
}

func TestRankWithSeeds(t *testing.T) {
	g := fig1(t)
	res, err := Rank(g, Params{Seeds: []int32{5}})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Rank(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[5] <= uniform.Scores[5] {
		t.Error("seeding node 5 must raise its score")
	}
	if _, err := Rank(g, Params{Seeds: []int32{42}}); err == nil {
		t.Error("out-of-range seed must error")
	}
	if _, err := Rank(g, Params{Seeds: []int32{-1}}); err == nil {
		t.Error("negative seed must error")
	}
}

func TestDegreeCorrelation(t *testing.T) {
	g := fig1(t)
	res, err := PageRank(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rho := DegreeCorrelation(g, res.Scores)
	if rho < 0.8 {
		t.Errorf("PageRank degree coupling = %v, want strong", rho)
	}
	pen, err := D2PR(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := DegreeCorrelation(g, pen.Scores); got >= rho {
		t.Errorf("penalized coupling %v must drop below %v", got, rho)
	}
}

func TestOptimalP(t *testing.T) {
	// A dense clique K6 bridged to a sparse 8-cycle: penalization drains
	// walk mass out of the high-degree clique into the low-degree cycle,
	// so inverse-degree significance rewards p > 0. (Star-shaped test
	// graphs don't work here — a leaf's only transition is its hub, so the
	// hub wins at every p.)
	b := NewBuilder(Undirected)
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := int32(6); i < 13; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(13, 6) // close the cycle
	b.AddEdge(5, 6)  // bridge
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Significance = inverse degree → strong penalization should win.
	sig := make([]float64, g.NumNodes())
	for i := range sig {
		sig[i] = 1 / float64(1+g.Degree(int32(i)))
	}
	p, rho, err := OptimalP(g, sig, -2, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Errorf("optimal p = %v, want positive for inverse-degree significance", p)
	}
	if rho <= 0 {
		t.Errorf("optimal rho = %v", rho)
	}
	if _, _, err := OptimalP(g, sig, 2, -2, 1, Options{}); err == nil {
		t.Error("hi < lo must error")
	}
	if _, _, err := OptimalP(g, sig, -1, 1, 0, Options{}); err == nil {
		t.Error("zero step must error")
	}
}

func TestFacadeHelpers(t *testing.T) {
	g := fig1(t)
	if s := ComputeStats(g); s.Nodes != 6 || s.Edges != 6 {
		t.Errorf("stats = %+v", s)
	}
	if got := Spearman([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 1 {
		t.Errorf("Spearman = %v", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v", got)
	}
	if got := TopK([]float64{1, 3, 2}, 2); got[0] != 1 || got[1] != 2 {
		t.Errorf("TopK = %v", got)
	}
	if got := CompetitionRanks([]float64{1, 3, 2}); got[1] != 1 {
		t.Errorf("CompetitionRanks = %v", got)
	}
	dc := DegreeCentrality(g)
	if len(dc) != 6 {
		t.Errorf("DegreeCentrality size %d", len(dc))
	}
	h, err := HITS(g, Options{})
	if err != nil || len(h.Authorities) != 6 {
		t.Errorf("HITS: %v", err)
	}
	ppr, err := PersonalizedPageRank(g, []int32{0}, Options{})
	if err != nil || len(ppr.Scores) != 6 {
		t.Errorf("PPR: %v", err)
	}
	b := NewBuilder(Directed).AddEdge(0, 1)
	if g2, err := b.Build(); err != nil || g2.NumEdges() != 1 {
		t.Errorf("builder via façade: %v", err)
	}
}
