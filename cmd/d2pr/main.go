// Command d2pr ranks the nodes of an edge-list graph with the D2PR family
// and baseline centralities.
//
// Usage:
//
//	d2pr [flags] <edgelist-file>
//	d2pr [flags] -          # read the edge list from stdin
//
// The edge list is one arc per line: "<src> <dst> [<weight>]"; '#' starts a
// comment. Output is "<node>\t<score>" for every node, or a top-k table with
// -top.
//
// Examples:
//
//	d2pr -p 0.5 graph.tsv                 # D2PR with p = 0.5
//	d2pr -algo pagerank -top 10 graph.tsv # conventional PageRank, top 10
//	d2pr -directed -weighted -p 1 -beta 0.25 graph.tsv
//	d2pr -algo hits graph.tsv             # HITS authorities
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"d2pr"
	"d2pr/internal/core"
	"d2pr/internal/graph"
	"d2pr/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "d2pr: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("d2pr", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "d2pr", "algorithm: d2pr|pagerank|ppr|hits|degree|closeness|betweenness|eigenvector")
		p        = fs.Float64("p", 0, "degree de-coupling weight (d2pr)")
		beta     = fs.Float64("beta", 0, "connection-strength mix in [0,1] (weighted d2pr)")
		alpha    = fs.Float64("alpha", 0.85, "residual probability")
		tol      = fs.Float64("tol", 1e-10, "convergence tolerance")
		maxIter  = fs.Int("maxiter", 500, "iteration cap")
		directed = fs.Bool("directed", false, "treat the edge list as directed")
		weighted = fs.Bool("weighted", false, "read a weight column")
		seeds    = fs.String("seeds", "", "comma-separated seed nodes for personalization")
		top      = fs.Int("top", 0, "print only the top-k nodes as a table")
		degCorr  = fs.Bool("degcorr", false, "also print Spearman correlation with node degree")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one input file (or '-'), got %d args", fs.NArg())
	}
	var in io.Reader
	if fs.Arg(0) == "-" {
		in = stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	kind := graph.Undirected
	if *directed {
		kind = graph.Directed
	}
	g, err := graph.ReadEdgeList(in, kind, *weighted)
	if err != nil {
		return err
	}
	opts := core.Options{Alpha: *alpha, Tol: *tol, MaxIter: *maxIter}

	var scores []float64
	switch *algo {
	case "d2pr":
		params := d2pr.Params{P: *p, Beta: *beta, Options: opts}
		if *seeds != "" {
			params.Seeds, err = parseSeeds(*seeds)
			if err != nil {
				return err
			}
		}
		res, err := d2pr.Rank(g, params)
		if err != nil {
			return err
		}
		scores = res.Scores
		fmt.Fprintf(os.Stderr, "converged=%v iterations=%d residual=%.3g\n",
			res.Converged, res.Iterations, res.Residual)
	case "ppr":
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		res, err := core.PersonalizedPageRank(g, seedList, opts)
		if err != nil {
			return err
		}
		scores = res.Scores
	default:
		scores, err = core.CentralityByName(g, *algo, opts)
		if err != nil {
			return err
		}
	}

	if *degCorr {
		fmt.Fprintf(os.Stderr, "corr(scores, degree) = %.4f\n", d2pr.DegreeCorrelation(g, scores))
	}
	if *top > 0 {
		fmt.Fprintln(stdout, "rank\tnode\tdegree\tscore")
		for i, u := range stats.TopK(scores, *top) {
			fmt.Fprintf(stdout, "%d\t%d\t%d\t%.6g\n", i+1, u, g.Degree(int32(u)), scores[u])
		}
		return nil
	}
	return graph.WriteScores(stdout, scores)
}

func parseSeeds(s string) ([]int32, error) {
	var out []int32
	var cur int64
	var have bool
	flush := func() error {
		if !have {
			return fmt.Errorf("empty seed in %q", s)
		}
		out = append(out, int32(cur))
		cur, have = 0, false
		return nil
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			cur = cur*10 + int64(c-'0')
			have = true
		case c == ',':
			if err := flush(); err != nil {
				return nil, err
			}
		case c == ' ':
			// permit spaces after commas
		default:
			return nil, fmt.Errorf("bad seed list %q", s)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}
