package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.tsv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleEdges = "0 1\n0 2\n0 3\n1 2\n2 4\n4 5\n"

func TestRunD2PRTop(t *testing.T) {
	path := writeTemp(t, sampleEdges)
	var out bytes.Buffer
	err := run([]string{"-p", "0.5", "-top", "3", path}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("output lines = %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "rank\tnode") {
		t.Errorf("missing header: %q", lines[0])
	}
}

func TestRunScoresOutput(t *testing.T) {
	path := writeTemp(t, sampleEdges)
	var out bytes.Buffer
	if err := run([]string{"-algo", "pagerank", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 score lines, got %d", len(lines))
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-algo", "degree", "-"}, strings.NewReader(sampleEdges), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(out.String()), "\n")) != 6 {
		t.Error("stdin path broken")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeTemp(t, sampleEdges)
	for _, algo := range []string{"d2pr", "pagerank", "hits", "degree", "closeness", "betweenness", "eigenvector"} {
		var out bytes.Buffer
		if err := run([]string{"-algo", algo, path}, nil, &out); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-algo", "ppr", "-seeds", "0,2", path}, nil, &out); err != nil {
		t.Errorf("ppr: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTemp(t, sampleEdges)
	cases := [][]string{
		{},                                   // no file
		{path, "extra"},                      // too many args
		{"-algo", "bogus", path},             // unknown algorithm
		{"-algo", "ppr", path},               // ppr without seeds
		{"-beta", "2", path},                 // invalid beta
		{filepath.Join(t.TempDir(), "nope")}, // missing file
	}
	for _, args := range cases {
		if err := run(args, nil, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunWeightedDirected(t *testing.T) {
	path := writeTemp(t, "0 1 2.5\n1 2 1.0\n2 0 4.0\n")
	var out bytes.Buffer
	err := run([]string{"-directed", "-weighted", "-p", "1", "-beta", "0.5", path}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1,22, 333")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{1, 22, 333}) {
		t.Errorf("got %v", got)
	}
	for _, bad := range []string{"", "1,,2", "a", "1;2"} {
		if _, err := parseSeeds(bad); err == nil {
			t.Errorf("%q: want error", bad)
		}
	}
}
