// Command d2pr-gen materializes the synthetic data graphs as edge-list and
// significance files, so they can be inspected, re-ranked with cmd/d2pr, or
// consumed by external tooling.
//
// Usage:
//
//	d2pr-gen -out DIR [-scale f] [-seed n] [-graph name]
//
// For every graph it writes <name>.edges (TSV edge list with weights) and
// <name>.sig (per-node significance). With -list it prints the known graph
// names and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"d2pr/internal/dataset"
	"d2pr/internal/graph"
)

func main() {
	var (
		out   = flag.String("out", "", "output directory (required unless -list)")
		scale = flag.Float64("scale", 1.0, "data graph scale factor")
		seed  = flag.Uint64("seed", 42, "generator seed")
		name  = flag.String("graph", "", "generate only this graph (default: all)")
		list  = flag.Bool("list", false, "list graph names and exit")
	)
	flag.Parse()
	if *list {
		for _, n := range dataset.GraphNames() {
			fmt.Println(n)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "d2pr-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *scale, *seed, *name); err != nil {
		fmt.Fprintf(os.Stderr, "d2pr-gen: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, seed uint64, only string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	cfg := dataset.Config{Scale: scale, Seed: seed}
	var graphs []*dataset.DataGraph
	if only != "" {
		d, err := dataset.GraphByName(cfg, only)
		if err != nil {
			return err
		}
		graphs = []*dataset.DataGraph{d}
	} else {
		graphs = dataset.AllGraphs(cfg)
	}
	for _, d := range graphs {
		edgePath := filepath.Join(out, d.Name+".edges")
		sigPath := filepath.Join(out, d.Name+".sig")
		if err := writeFile(edgePath, func(f *os.File) error {
			return graph.WriteEdgeList(f, d.Weighted)
		}); err != nil {
			return err
		}
		if err := writeFile(sigPath, func(f *os.File) error {
			return graph.WriteScores(f, d.Significance)
		}); err != nil {
			return err
		}
		s := graph.ComputeStats(d.Weighted)
		fmt.Printf("%-30s group=%s nodes=%d edges=%d avgdeg=%.2f → %s\n",
			d.Name, d.Group, s.Nodes, s.Edges, s.AvgDegree, edgePath)
	}
	return nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}
