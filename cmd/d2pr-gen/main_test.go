package main

import (
	"os"
	"path/filepath"
	"testing"

	"d2pr/internal/dataset"
	"d2pr/internal/graph"
)

func TestGenSingleGraphRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 0.2, 7, dataset.DBLPAuthorAuthor); err != nil {
		t.Fatal(err)
	}
	edgePath := filepath.Join(dir, dataset.DBLPAuthorAuthor+".edges")
	sigPath := filepath.Join(dir, dataset.DBLPAuthorAuthor+".sig")

	f, err := os.Open(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f, graph.Undirected, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dataset.GraphByName(dataset.Config{Scale: 0.2, Seed: 7}, dataset.DBLPAuthorAuthor)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != want.Weighted.NumEdges() {
		t.Errorf("edges on disk %d, generated %d", g.NumEdges(), want.Weighted.NumEdges())
	}

	sf, err := os.Open(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	sig, err := graph.ReadScores(sf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != len(want.Significance) {
		t.Fatalf("sig len %d, want %d", len(sig), len(want.Significance))
	}
	for i := range sig {
		diff := sig[i] - want.Significance[i]
		if diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("sig[%d] = %v, want %v", i, sig[i], want.Significance[i])
		}
	}
}

func TestGenAllGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all eight graphs")
	}
	dir := t.TempDir()
	if err := run(dir, 0.1, 3, ""); err != nil {
		t.Fatal(err)
	}
	for _, name := range dataset.GraphNames() {
		if _, err := os.Stat(filepath.Join(dir, name+".edges")); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".sig")); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGenUnknownGraph(t *testing.T) {
	if err := run(t.TempDir(), 1, 1, "bogus"); err == nil {
		t.Error("unknown graph must error")
	}
}
